//! Offline subset of `proptest`: random-input property testing.
//!
//! Vendored because the workspace builds with no crates.io access. The
//! `proptest!` macro here runs each property against `cases` random
//! inputs from a per-test deterministic seed (FNV-1a of the test name),
//! so failures reproduce across runs and machines. Unlike upstream there
//! is **no shrinking**: a failing case reports the generated inputs via
//! `Debug` where available and the assertion message otherwise.

use rand::rngs::StdRng;

pub mod strategy {
    //! The [`Strategy`] trait: a recipe for generating random values.

    use super::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    pub trait Strategy {
        type Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }
    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy returning a fixed value (upstream `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use super::StdRng;
    use rand::distributions::{Distribution, Standard};
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn generate(rng: &mut StdRng) -> Self;
    }

    impl<T> Arbitrary for T
    where
        Standard: Distribution<T>,
    {
        fn generate(rng: &mut StdRng) -> T {
            Standard.sample(rng)
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> super::strategy::Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            T::generate(rng)
        }
    }

    /// The canonical strategy for `T`: uniform over the whole type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies with a target size range.

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Inclusive-exclusive size bounds for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `BTreeSet` of values from `element`, cardinality drawn from `size`.
    ///
    /// Duplicates are retried; if the element domain is too small to reach
    /// the drawn cardinality the set is returned at its attainable size
    /// (still at least `lo` for domains of at least `lo` distinct values).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.lo..self.size.hi);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 100 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    //! `prop::option::of` — optional values.

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    pub struct OptionStrategy<S>(S);

    /// `Some` from the inner strategy with probability 3/4, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Configuration and the per-case error protocol used by the macros.

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases each property must pass.
        pub cases: u32,
        /// Abort if this many cases are rejected by `prop_assume!` overall.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Input rejected by `prop_assume!` — retry with fresh input.
        Reject(String),
        /// Property falsified.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The generator driving value generation (re-exported so the macros
    /// resolve it via `$crate` regardless of the caller's dependencies).
    pub type TestRng = rand::rngs::StdRng;

    /// Deterministic per-test generator for the given seed.
    pub fn rng_for(seed: u64) -> TestRng {
        <TestRng as rand::SeedableRng>::seed_from_u64(seed)
    }

    /// FNV-1a of the test path — the per-test deterministic seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Everything the `use proptest::prelude::*;` idiom expects.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            l,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Define property tests. Supports the upstream surface used in this
/// workspace: an optional `#![proptest_config(..)]` header and any number
/// of `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::test_runner::rng_for(seed);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let _: () = $body;
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "{}: too many inputs rejected by prop_assume! ({} rejects, {} accepted)",
                                stringify!($name), rejected, accepted
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "{} falsified after {} passing case(s) (seed {:#x}):\n{}",
                            stringify!($name), accepted, seed, msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn assume_filters(a in any::<u64>()) {
            prop_assume!(a != 0);
            prop_assert!(a > 0, "a = {a}");
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 3..10),
            s in prop::collection::btree_set(any::<u64>(), 1..50),
            o in prop::option::of(0u64..6),
        ) {
            prop_assert!((3..10).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 50);
            if let Some(x) = o {
                prop_assert!(x < 6);
            }
        }

        #[test]
        fn range_from_strategy(x in 1u64..) {
            prop_assert_ne!(x, 0);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        // No #[test] on the inner item: it is invoked directly below.
        proptest! {
            fn always_false(_a in any::<u8>()) {
                prop_assert!(false);
            }
        }
        always_false();
    }
}
