//! Offline subset of the `criterion` benchmarking API.
//!
//! Vendored because the workspace builds with no crates.io access. The
//! measurement loop calibrates an iteration count against a per-target
//! wall-clock budget and reports the mean time per iteration — enough to
//! eyeball hot-path regressions locally. CI only compiles benches
//! (`cargo bench --no-run`), so no statistical machinery is needed here.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark target.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Benchmark registry and entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_target(&id.into().id, None, &mut f);
        self
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        // Sampling is budget-driven here; accepted for API compatibility.
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_target(&full, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier; converts from the string forms used in benches.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), param) }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// How batched inputs are grouped; only a hint upstream, ignored here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: one timed iteration decides how many fit the budget.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed() + once;
        self.iters = iters + 1;
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Setup runs outside the timed section, matching upstream.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let mut total = once;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = iters + 1;
    }
}

fn run_target<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0 };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<56} (no measurement)");
        return;
    }
    let per_iter = b.total.as_nanos() as f64 / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter * 1e9 / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.1} Kelem/s", n as f64 / per_iter * 1e9 / 1e3)
        }
        None => String::new(),
    };
    println!("{name:<56} {:>14}/iter ({} iters){rate}", format_ns(per_iter), b.iters);
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            { let _ = &$config; }
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups (benches set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` passes args we don't implement;
            // run everything regardless so the harness stays drop-in.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        g.bench_function(format!("batched_{}", 1), |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs_end_to_end() {
        benches();
    }
}
