//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! The tiny-groups workspace builds in environments with no access to
//! crates.io, so the handful of `rand` items the code actually uses are
//! vendored here behind the same paths (`rand::Rng`, `rand::SeedableRng`,
//! `rand::rngs::StdRng`). The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across platforms and runs, which is the
//! property every experiment and test in the workspace relies on.
//!
//! The streams are NOT bit-compatible with upstream `rand`'s ChaCha12
//! `StdRng`; nothing in the workspace depends on upstream streams, only
//! on seed-reproducibility within this implementation.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: raw word and byte output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit state into a full seed with SplitMix64 (the
    /// standard seeding recipe for the xoshiro family).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`lo..hi`, `lo..=hi`, or float ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        let unit: f64 = self.gen();
        unit < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A non-deterministically seeded sample from the [`Standard`] distribution.
///
/// Upstream `rand::random` draws from a thread-local generator; here it is
/// seeded from the system clock and a counter, which is sufficient for the
/// few non-reproducible call sites (none of the experiments use it).
pub fn random<T>() -> T
where
    Standard: Distribution<T>,
{
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut rng = rngs::StdRng::seed_from_u64(nanos ^ n.rotate_left(32));
    Standard.sample(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..1);
            assert_eq!(y, 0);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fill_bytes_covers_whole_buffer() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
