//! Concrete generators. `StdRng` is xoshiro256** (Blackman–Vigna): 256
//! bits of state, period 2^256 − 1, passes BigCrush, and is tiny — a good
//! fit for deterministic simulation workloads.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}
