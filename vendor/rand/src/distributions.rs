//! The `Standard` distribution and uniform range sampling.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for
/// integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(i8, i16, i32, i64, isize);

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        <Standard as Distribution<u128>>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Use a high bit: low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<T, const N: usize> Distribution<[T; N]> for Standard
where
    Standard: Distribution<T>,
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [T; N] {
        std::array::from_fn(|_| self.sample(rng))
    }
}

pub mod uniform {
    //! Range sampling for `Rng::gen_range`.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that `Rng::gen_range` can sample from.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniform `u64` in `[0, span)` by 128-bit multiply-shift (Lemire).
    /// The residual bias is O(span / 2^64) — immaterial for simulation.
    #[inline]
    fn mul_shift(word: u64, span: u64) -> u64 {
        ((word as u128 * span as u128) >> 64) as u64
    }

    macro_rules! sample_range_int {
        ($($t:ty => $wide:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    let off = mul_shift(rng.next_u64(), span);
                    ((self.start as $wide).wrapping_add(off as $wide)) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let off = mul_shift(rng.next_u64(), span + 1);
                    ((lo as $wide).wrapping_add(off as $wide)) as $t
                }
            }
        )*};
    }
    sample_range_int!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    // Each float type keeps the unit draw within its own mantissa width
    // (53 bits for f64, 24 for f32): drawing more bits and casting down
    // can round up to exactly 1.0, breaking the half-open contract.
    macro_rules! sample_range_float {
        ($($t:ty => $shift:expr, $denom:expr),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = (rng.next_u64() >> $shift) as $t * (1.0 / $denom as $t);
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    sample_range_float!(f32 => 40, (1u64 << 24), f64 => 11, (1u64 << 53));
}
