//! Adaptive **frontier refinement**: find each row's capture threshold
//! by bisection instead of sweeping the whole β ladder, and pour extra
//! seeds only into the two cells that straddle it.
//!
//! The paper's guarantee is a *threshold*, not a surface: per
//! (strategy, defense, d₂, churn, topology) row there is one β where
//! capture begins, and every multi-seed epoch run a uniform grid spends
//! far from that β buys nothing. This engine replaces the row's uniform
//! β sweep with three moves:
//!
//! 1. **bracket** — probe the ladder's top rung: does the row capture
//!    anywhere in range at all? Most of a uniform grid's wasted work
//!    disappears right here — a row that never captures costs one cell
//!    instead of the whole ladder, and a row that does is bracketed
//!    into `(below-range, top]`.
//! 2. **bisect** — capture is monotone in β (more budget never hurts
//!    the adversary), so binary refinement inside the bracket locates
//!    the first-capturing rung in `⌈log₂ K⌉` evaluations instead of
//!    `O(K)`.
//! 3. **confidence** — at the two bracket cells (last quiet rung, first
//!    captured rung) run extra trials, round by round, until the
//!    [`tg_sim::binomial_wilson`] bands on the two capture rates
//!    separate — or a round cap stops the spend. Seeds concentrate
//!    exactly where the statistical question lives.
//!
//! **Engine equivalence.** Cells are addressed through
//! [`crate::frontier::eval_cell`] with the same [`RowKey::label`]
//! namespace and (rung, trial) coordinates the uniform engine uses, so
//! any cell both engines touch is byte-identical, and the frontier
//! *decision* at a cell uses only the base trials (the extra confidence
//! seeds sharpen the reported band — they never move the frontier).
//! Consequently a refinement sweep over a uniform sweep's exact grid
//! reproduces its frontier map cell-for-cell while running a fraction
//! of the cells — the E12 acceptance property, pinned by
//! `exp::e12_refine`'s tests with the measured saving.
//!
//! The worked cost story at seed 42 lands in `e12_refine_cost.csv`
//! (and the golden snapshot): evaluated cell-runs and trial-runs
//! against the full-grid equivalents, with the saving as a fraction.

use crate::frontier::{
    eval_cell_counted, key_cells, CellStats, FrontierConfig, RowKey, CAPTURE_EPS,
};
use crate::table::{f, Table};
use std::collections::BTreeMap;
use tg_sim::{binomial_wilson, parallel_map};

/// One adaptive refinement sweep: the grid whose frontier is wanted
/// (its `betas` ladder fixes the resolution the threshold is located
/// at) plus the confidence-band policy.
#[derive(Clone, Debug)]
pub struct RefineConfig {
    /// The axes, ladder, and per-cell trial/epoch budget. `betas` plays
    /// the role of the uniform grid's β axis: refinement returns the
    /// same rung a uniform sweep of this grid would, it just evaluates
    /// fewer of them.
    pub grid: FrontierConfig,
    /// z-score of the Wilson bands used for the separation test
    /// (1.645 ≈ one-sided 95%).
    pub z: f64,
    /// Maximum extra-seed rounds per bracket cell; each round adds the
    /// grid's per-cell trial count to both bracket cells.
    pub max_extra_rounds: usize,
}

/// Locate the first index in `0..k` where a monotone predicate turns
/// true: probe the top rung (monotonicity makes it decisive — false
/// there means false everywhere, the bracket-existence check), then
/// bisect down against a *virtual* quiet floor at index −1, so a
/// threshold sitting on rung 0 is found without a dedicated bottom
/// probe.
///
/// `eval` is called at most `1 + ⌈log₂ k⌉` times; on a *monotone*
/// predicate the result equals an exhaustive first-true scan (pinned by
/// this module's tests over every threshold position), and whenever the
/// result is positive its predecessor has been evaluated — the quiet
/// side of the bracket the confidence phase needs.
pub fn bisect_first_true(k: usize, mut eval: impl FnMut(usize) -> bool) -> Option<usize> {
    if k == 0 || !eval(k - 1) {
        return None;
    }
    let (mut lo, mut hi) = (-1isize, (k - 1) as isize);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if eval(mid as usize) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi as usize)
}

/// Why a cell was evaluated.
fn phase_of(bi: usize, k: usize, order: usize) -> &'static str {
    if order == 0 && bi + 1 == k {
        "probe-hi"
    } else {
        "bisect"
    }
}

/// One evaluated cell of a row: its trials (base first, confidence
/// extras appended) and the bookkeeping for the tables.
struct RowCell {
    bi: usize,
    phase: &'static str,
    trials: Vec<crate::frontier::TrialStats>,
    /// How many of `trials` were simulated live rather than replayed
    /// from the grid's result store (all of them without a store).
    live_trials: usize,
}

impl RowCell {
    /// Captured-trial count for the Wilson band.
    fn successes(&self) -> usize {
        self.trials.iter().filter(|t| t.captured_frac > CAPTURE_EPS).count()
    }

    fn band(&self, z: f64) -> (f64, f64) {
        binomial_wilson(self.successes(), self.trials.len(), z)
    }
}

/// Everything refinement learned about one row.
struct RowOutcome {
    key: RowKey,
    cells: Vec<RowCell>,
    /// Index into the ladder of the first-capturing rung.
    frontier: Option<usize>,
    /// Base-trial mean captured fraction at the frontier rung (the
    /// uniform-grid-comparable estimate).
    captured_at: f64,
    /// Whether the bracket bands separated ( `None` when the frontier
    /// sits on the bottom rung — there is no quiet side to separate
    /// from — or the row never captures).
    separated: Option<bool>,
    extra_trials: usize,
}

/// Refine one row over the ladder.
fn refine_row(cfg: &RefineConfig, key: RowKey) -> RowOutcome {
    let grid = &cfg.grid;
    let k = grid.betas.len();
    let base = grid.trials.max(1);

    // Memoized cell evaluation: the frontier decision reads only the
    // base trials, so it is bit-identical to the uniform engine's.
    let mut memo: BTreeMap<usize, RowCell> = BTreeMap::new();
    let mut order = 0usize;
    let mut eval = |bi: usize| -> bool {
        let cell = memo.entry(bi).or_insert_with(|| {
            let phase = phase_of(bi, k, order);
            let (trials, live_trials) = eval_cell_counted(grid, &key, bi, grid.betas[bi], 0, base);
            RowCell { bi, phase, trials, live_trials }
        });
        order += 1;
        CellStats::of(&cell.trials[..base]).captured_frac > CAPTURE_EPS
    };
    let frontier = bisect_first_true(k, &mut eval);

    // Confidence phase: extra seeds at the bracket cells only.
    let mut extra_trials = 0usize;
    let mut separated = None;
    let mut captured_at = 0.0;
    if let Some(fi) = frontier {
        captured_at = CellStats::of(&memo[&fi].trials[..base]).captured_frac;
        let below = fi.checked_sub(1);
        if let Some(bl) = below {
            debug_assert!(memo.contains_key(&bl), "bisection leaves the quiet side evaluated");
            let mut rounds = 0;
            loop {
                let quiet_hi = memo[&bl].band(cfg.z).1;
                let captured_lo = memo[&fi].band(cfg.z).0;
                if quiet_hi < captured_lo {
                    separated = Some(true);
                    break;
                }
                if rounds == cfg.max_extra_rounds {
                    separated = Some(false);
                    break;
                }
                for &bi in &[bl, fi] {
                    let cell = memo.get_mut(&bi).expect("bracket cells evaluated");
                    let t0 = cell.trials.len();
                    let (extra, live) = eval_cell_counted(grid, &key, bi, grid.betas[bi], t0, base);
                    cell.trials.extend(extra);
                    cell.live_trials += live;
                    extra_trials += base;
                }
                rounds += 1;
            }
        }
    }

    let mut cells: Vec<RowCell> = memo.into_values().collect();
    cells.sort_by_key(|c| c.bi);
    RowOutcome { key, cells, frontier, captured_at, separated, extra_trials }
}

/// Everything one refinement sweep emits.
#[derive(Clone, Debug)]
pub struct RefineOutcome {
    /// Every evaluated cell (`e12_refine_cells.csv`).
    pub cells: Table,
    /// The refined frontier with confidence bands
    /// (`e12_refine_map.csv`).
    pub frontier: Table,
    /// The cost ledger vs the full uniform grid
    /// (`e12_refine_cost.csv`).
    pub cost: Table,
    /// Cells actually simulated (the uniform grid would run
    /// `rows × ladder` of them).
    pub cell_runs: usize,
    /// Seeded trials actually simulated, confidence extras included.
    pub trial_runs: usize,
    /// Cells with at least one **live** (not store-replayed) trial.
    /// Equals `cell_runs` without a store; a fully warm run reports 0 —
    /// the strictly-fewer-live-cell-runs acceptance number.
    pub live_cell_runs: usize,
    /// Trials simulated live; the remaining `trial_runs` were replayed
    /// from the grid's result store.
    pub live_trial_runs: usize,
}

impl RefineOutcome {
    /// The CSV-persisted tables, in emission order.
    pub fn tables(&self) -> [&Table; 3] {
        [&self.cells, &self.frontier, &self.cost]
    }

    /// The refined frontier β for the row matching `(strategy, defense,
    /// d2, churn, kind)` labels, or `None` when that row never captured
    /// in range.
    pub fn frontier_beta(&self, row: &[&str; 5]) -> Option<f64> {
        self.frontier
            .rows
            .iter()
            .find(|r| (0..5).all(|i| r[i] == row[i]))
            .and_then(|r| r[5].parse().ok())
    }
}

/// Run the adaptive sweep. Rows fan out in parallel exactly like the
/// uniform engine's; within a row the ladder is bracketed, bisected,
/// and confidence-banded as described in the module docs.
pub fn run_refine(cfg: &RefineConfig) -> RefineOutcome {
    let rows: Vec<RowOutcome> = parallel_map(cfg.grid.rows(), |key| refine_row(cfg, key));

    let cell_runs: usize = rows.iter().map(|r| r.cells.len()).sum();
    let trial_runs: usize = rows.iter().flat_map(|r| &r.cells).map(|c| c.trials.len()).sum();
    let live_cell_runs: usize =
        rows.iter().flat_map(|r| &r.cells).filter(|c| c.live_trials > 0).count();
    let live_trial_runs: usize = rows.iter().flat_map(|r| &r.cells).map(|c| c.live_trials).sum();
    RefineOutcome {
        cells: cells_table(cfg, &rows),
        frontier: frontier_table(cfg, &rows),
        cost: cost_table(cfg, &rows, cell_runs, trial_runs, live_cell_runs, live_trial_runs),
        cell_runs,
        trial_runs,
        live_cell_runs,
        live_trial_runs,
    }
}

fn cells_table(cfg: &RefineConfig, rows: &[RowOutcome]) -> Table {
    let mut t = Table::new(
        "e12_refine_cells",
        &[
            "strategy",
            "defense",
            "d2",
            "churn",
            "kind",
            "beta",
            "phase",
            "trials",
            "captured_frac",
            "capture_rate",
            "ci_lo",
            "ci_hi",
        ],
    );
    for row in rows {
        for cell in &row.cells {
            let pooled = CellStats::of(&cell.trials);
            let (lo, hi) = cell.band(cfg.z);
            let mut cells = key_cells(&row.key);
            cells.extend([
                f(cfg.grid.betas[cell.bi]),
                cell.phase.to_string(),
                cell.trials.len().to_string(),
                f(pooled.captured_frac),
                f(pooled.capture_rate),
                f(lo),
                f(hi),
            ]);
            t.push(cells);
        }
    }
    t
}

fn frontier_table(cfg: &RefineConfig, rows: &[RowOutcome]) -> Table {
    let mut t = Table::new(
        "e12_refine_map",
        &[
            "strategy",
            "defense",
            "d2",
            "churn",
            "kind",
            "frontier_beta",
            "captured_at_frontier",
            "capture_rate",
            "ci_lo",
            "ci_hi",
            "quiet_ci_hi",
            "separated",
            "cell_runs",
            "trials_spent",
        ],
    );
    for row in rows {
        let mut cells = key_cells(&row.key);
        match row.frontier {
            Some(fi) => {
                let at = row.cells.iter().find(|c| c.bi == fi).expect("frontier cell evaluated");
                let pooled = CellStats::of(&at.trials);
                let (lo, hi) = at.band(cfg.z);
                let quiet_hi = fi
                    .checked_sub(1)
                    .and_then(|bl| row.cells.iter().find(|c| c.bi == bl))
                    .map(|c| f(c.band(cfg.z).1))
                    .unwrap_or_else(|| "-".to_string());
                let separated = match row.separated {
                    Some(true) => "yes",
                    Some(false) => "no",
                    None => "-",
                };
                cells.extend([
                    f(cfg.grid.betas[fi]),
                    f(row.captured_at),
                    f(pooled.capture_rate),
                    f(lo),
                    f(hi),
                    quiet_hi,
                    separated.to_string(),
                ]);
            }
            None => cells.extend(std::iter::repeat_n("-".to_string(), 7)),
        }
        let trials: usize = row.cells.iter().map(|c| c.trials.len()).sum();
        cells.extend([row.cells.len().to_string(), trials.to_string()]);
        t.push(cells);
    }
    t
}

fn cost_table(
    cfg: &RefineConfig,
    rows: &[RowOutcome],
    cell_runs: usize,
    trial_runs: usize,
    live_cell_runs: usize,
    live_trial_runs: usize,
) -> Table {
    let mut t = Table::new(
        "e12_refine_cost",
        &[
            "rows",
            "ladder",
            "trials_per_cell",
            "cell_runs",
            "trial_runs",
            "extra_trials",
            "live_cell_runs",
            "live_trial_runs",
            "store_trial_hits",
            "grid_cell_runs",
            "grid_trial_runs",
            "cell_saving",
            "trial_saving",
        ],
    );
    let (n_rows, k, base) = (rows.len(), cfg.grid.betas.len(), cfg.grid.trials.max(1));
    let grid_cells = n_rows * k;
    let grid_trials = grid_cells * base;
    let extra: usize = rows.iter().map(|r| r.extra_trials).sum();
    let saving = |spent: usize, full: usize| {
        if full == 0 {
            "-".to_string()
        } else {
            f(1.0 - spent as f64 / full as f64)
        }
    };
    t.push(vec![
        n_rows.to_string(),
        k.to_string(),
        base.to_string(),
        cell_runs.to_string(),
        trial_runs.to_string(),
        extra.to_string(),
        live_cell_runs.to_string(),
        live_trial_runs.to_string(),
        (trial_runs - live_trial_runs).to_string(),
        grid_cells.to_string(),
        grid_trials.to_string(),
        saving(cell_runs, grid_cells),
        saving(trial_runs, grid_trials),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The refinement-correctness contract: on every monotone capture
    /// function over every ladder length, bisection returns exactly
    /// what an exhaustive first-true scan returns — and within its
    /// evaluation budget.
    #[test]
    fn bisection_matches_exhaustive_search_on_monotone_predicates() {
        for k in 0..40usize {
            // threshold == k means "never captures".
            for threshold in 0..=k {
                let mut evals = 0usize;
                let got = bisect_first_true(k, |i| {
                    evals += 1;
                    i >= threshold
                });
                let expect = (0..k).find(|&i| i >= threshold);
                assert_eq!(got, expect, "k={k} threshold={threshold}");
                let budget = 1 + (k.max(1) as f64).log2().ceil() as usize;
                assert!(evals <= budget, "k={k} threshold={threshold}: {evals} evals > {budget}");
            }
        }
    }

    /// The quiet side of the bracket is always evaluated when the
    /// frontier is not on the bottom rung — the confidence phase
    /// depends on it.
    #[test]
    fn bisection_evaluates_the_last_quiet_rung() {
        for k in 2..24usize {
            for threshold in 1..k {
                let mut seen = std::collections::HashSet::new();
                let got = bisect_first_true(k, |i| {
                    seen.insert(i);
                    i >= threshold
                });
                assert_eq!(got, Some(threshold));
                assert!(seen.contains(&(threshold - 1)), "k={k} threshold={threshold}: {seen:?}");
            }
        }
    }
}
