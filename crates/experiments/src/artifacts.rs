//! Process-wide accounting of dropped result artifacts.
//!
//! Every persistence path (CSV tables, JSON bench records, figure
//! panels) degrades to a `warning:` line on I/O failure rather than
//! aborting a half-finished sweep — but a run that silently sheds the
//! artifacts it was asked to produce must not exit 0. Writers report
//! failures through [`note_dropped`]; `run_all` checks
//! [`dropped_count`] at the end and exits non-zero if anything was
//! lost.

use std::sync::atomic::{AtomicUsize, Ordering};

static DROPPED: AtomicUsize = AtomicUsize::new(0);

/// Record (and warn about) one artifact that could not be persisted.
/// `what` names the artifact the way the user asked for it
/// ("CSV for e11_frontier", "BENCH_kernel.json", …).
pub fn note_dropped(what: &str, err: &dyn std::fmt::Display) {
    eprintln!("warning: could not write {what}: {err}");
    DROPPED.fetch_add(1, Ordering::Relaxed);
}

/// How many artifacts have been dropped so far in this process.
pub fn dropped_count() -> usize {
    DROPPED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_artifacts_are_counted() {
        let before = dropped_count();
        note_dropped("CSV for demo", &"disk full");
        note_dropped("BENCH_kernel.json", &"permission denied");
        // Relative assertion: other tests in the same process may also
        // exercise failure paths.
        assert!(dropped_count() >= before + 2);
    }
}
