//! Result tables: aligned stdout rendering plus CSV persistence.

use std::fmt::Write as _;
use std::path::Path;

/// A rectangular result table with named columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Table name (becomes the CSV file stem).
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells, each the same length as `headers`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given name and headers.
    pub fn new(name: &str, headers: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch in table {}", self.name);
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.name);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Serialize as CSV (RFC-4180-ish: cells containing commas or quotes
    /// get quoted).
    pub fn to_csv(&self) -> String {
        let esc = |c: &String| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Parse one cell, naming the table, row, and column on failure.
    ///
    /// The re-read paths of several experiments fold their own CSV
    /// back into summary statistics; a bare `row[i].parse().unwrap()`
    /// there dies with an anonymous `ParseFloatError` that says
    /// nothing about *which* table or cell was malformed. This
    /// accessor is the checked replacement.
    ///
    /// # Panics
    /// Panics with the table name, row index, column header, and raw
    /// cell text if the row or column is out of bounds or the cell
    /// does not parse as `T`.
    pub fn cell<T: std::str::FromStr>(&self, row: usize, col: usize) -> T {
        let header = self
            .headers
            .get(col)
            .unwrap_or_else(|| panic!("table {}: no column {col} (row {row})", self.name));
        let raw = self
            .rows
            .get(row)
            .unwrap_or_else(|| panic!("table {}: no row {row} (column {header})", self.name))
            .get(col)
            .unwrap_or_else(|| {
                panic!("table {}: row {row} has no column {col} ({header})", self.name)
            });
        raw.parse().unwrap_or_else(|_| {
            panic!(
                "table {}: row {row}, column {col} ({header}): cell {raw:?} does not parse as {}",
                self.name,
                std::any::type_name::<T>(),
            )
        })
    }

    /// Write the CSV under `dir/<name>.csv`, creating `dir` if needed.
    /// The write is atomic (temp file + rename via
    /// [`tg_sim::store::write_atomic`]): a crash mid-write leaves the
    /// previous file intact rather than a truncated CSV the re-read
    /// paths would parse as valid-but-short data.
    pub fn write_csv(&self, dir: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(format!("{}.csv", self.name));
        tg_sim::store::write_atomic(&path, self.to_csv().as_bytes())?;
        Ok(path)
    }

    /// Print (unless quiet) and persist per the options. A failed write
    /// is counted by [`crate::artifacts`] so `run_all` can exit
    /// non-zero when requested artifacts were dropped.
    pub fn emit(&self, opts: &crate::args::Options) {
        if !opts.quiet {
            println!("{}", self.render());
        }
        match self.write_csv(&opts.out_dir) {
            Ok(path) => {
                if !opts.quiet {
                    println!("wrote {}", path.display());
                }
            }
            Err(e) => crate::artifacts::note_dropped(&format!("CSV for {}", self.name), &e),
        }
    }
}

/// Format a float with sensible experiment precision. Values too small
/// for four decimal places fall back to scientific notation: `{:.4}`
/// would render any |v| < 0.00005 as `"0.0000"`, destroying
/// small-but-nonzero capture rates on CSV re-read, while `{:e}` keeps
/// them nonzero (and, being Rust's shortest-round-trip notation, exact).
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else if v.abs() < 0.00005 {
        format!("{v:e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into(), "x,y".into()]);
        t.push(vec!["22".into(), "z\"q".into()]);
        t
    }

    #[test]
    fn render_aligns() {
        let r = sample().render();
        assert!(r.contains("== demo =="));
        assert!(r.contains(" a"));
        assert!(r.contains("22"));
    }

    #[test]
    fn csv_escapes() {
        let c = sample().to_csv();
        assert!(c.starts_with("a,b\n"));
        assert!(c.contains("\"x,y\""));
        assert!(c.contains("\"z\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("t", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let t = sample();
        let dir = std::env::temp_dir().join("tg-exp-test");
        let path = t.write_csv(dir.to_str().unwrap()).unwrap();
        let data = std::fs::read_to_string(path).unwrap();
        assert_eq!(data, t.to_csv());
    }

    #[test]
    fn cell_parses_in_place() {
        let t = sample();
        assert_eq!(t.cell::<u64>(1, 0), 22);
        assert_eq!(t.cell::<f64>(0, 0), 1.0);
        assert_eq!(t.cell::<String>(0, 1), "x,y");
    }

    #[test]
    #[should_panic(expected = "table demo: row 0, column 1 (b): cell \"x,y\" does not parse")]
    fn cell_names_the_bad_cell() {
        sample().cell::<f64>(0, 1);
    }

    #[test]
    #[should_panic(expected = "table demo: no row 9")]
    fn cell_names_the_missing_row() {
        sample().cell::<f64>(9, 0);
    }

    #[test]
    #[should_panic(expected = "table demo: no column 7")]
    fn cell_names_the_missing_column() {
        sample().cell::<f64>(0, 7);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.12345), "0.1235");
        assert_eq!(f(6.54321), "6.54");
        assert_eq!(f(123456.0), "123456");
    }

    #[test]
    fn tiny_values_survive_as_scientific_notation() {
        // Below the {:.4} resolution the old formatter emitted
        // "0.0000"; now the exact value survives the CSV round trip.
        assert_eq!(f(1e-6), "1e-6");
        assert_eq!(f(-3.2e-9), "-3.2e-9");
        assert_eq!(f(1e-6).parse::<f64>().unwrap(), 1e-6);
        // The boundary: 0.00005 still formats positionally…
        assert_eq!(f(0.00005), "0.0001");
        // …and nothing nonzero ever renders as a zero string anymore.
        for v in [1e-5, 4.9e-5, 1e-12, f64::MIN_POSITIVE] {
            assert_ne!(f(v).parse::<f64>().unwrap(), 0.0, "f({v}) = {}", f(v));
        }
    }

    #[test]
    fn write_csv_is_atomic_leaves_no_temp_files() {
        let t = sample();
        let dir = std::env::temp_dir().join(format!("tg-exp-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap();
        t.write_csv(dir_s).unwrap();
        t.write_csv(dir_s).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["demo.csv".to_string()], "{names:?}");
    }
}
