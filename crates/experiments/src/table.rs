//! Result tables: aligned stdout rendering plus CSV persistence.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A rectangular result table with named columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Table name (becomes the CSV file stem).
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells, each the same length as `headers`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given name and headers.
    pub fn new(name: &str, headers: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch in table {}", self.name);
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.name);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Serialize as CSV (RFC-4180-ish: cells containing commas or quotes
    /// get quoted).
    pub fn to_csv(&self) -> String {
        let esc = |c: &String| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write the CSV under `dir/<name>.csv`, creating `dir` if needed.
    pub fn write_csv(&self, dir: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(format!("{}.csv", self.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }

    /// Print (unless quiet) and persist per the options.
    pub fn emit(&self, opts: &crate::args::Options) {
        if !opts.quiet {
            println!("{}", self.render());
        }
        match self.write_csv(&opts.out_dir) {
            Ok(path) => {
                if !opts.quiet {
                    println!("wrote {}", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not write CSV for {}: {e}", self.name),
        }
    }
}

/// Format a float with sensible experiment precision.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into(), "x,y".into()]);
        t.push(vec!["22".into(), "z\"q".into()]);
        t
    }

    #[test]
    fn render_aligns() {
        let r = sample().render();
        assert!(r.contains("== demo =="));
        assert!(r.contains(" a"));
        assert!(r.contains("22"));
    }

    #[test]
    fn csv_escapes() {
        let c = sample().to_csv();
        assert!(c.starts_with("a,b\n"));
        assert!(c.contains("\"x,y\""));
        assert!(c.contains("\"z\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("t", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let t = sample();
        let dir = std::env::temp_dir().join("tg-exp-test");
        let path = t.write_csv(dir.to_str().unwrap()).unwrap();
        let data = std::fs::read_to_string(path).unwrap();
        assert_eq!(data, t.to_csv());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.12345), "0.1235");
        assert_eq!(f(6.54321), "6.54");
        assert_eq!(f(123456.0), "123456");
    }
}
