//! The adversary-vs-defense **frontier engine**: β × d₂ capture
//! heatmaps over the real protocols.
//!
//! Every result before this module was a point sample — one β, one
//! group-size factor. The paper's core claim is a *boundary*: tiny
//! groups of `d₂·ln ln n` members survive every placement strategy a
//! `β < 1/2` adversary can mount, **provided** §IV's minting defenses
//! are in force. This engine maps that boundary empirically. A grid of
//! cells
//!
//! ```text
//! (β, d₂, strategy, defense, fresh-vs-frozen strings)
//! ```
//!
//! each runs a multi-seed epoch simulation and reports how much of the
//! group population lost its good majority (*capture*). The defense
//! axis decides which system is simulated:
//!
//! * [`Defense::NoPow`] — the adversary's chosen ID values go straight
//!   into the §III dynamic layer ([`DynamicSystem`] +
//!   `StrategicProvider`): the world §IV exists to prevent,
//! * [`Defense::Pow`] — the **full §IV protocol** ([`FullSystem`] with
//!   a `StrategicPowProvider`): the epoch-string agreement runs for
//!   real, minting binds to the agreed string (or to a frozen genesis
//!   string when the §IV-B defense is switched off), and the strategy's
//!   desired placement survives only as far as the minting scheme
//!   allows (realized under `single-hash`, discarded under `f∘g`).
//!
//! The **frontier** of a (strategy, defense, d₂) row is the smallest β
//! whose cell captures more than [`CAPTURE_EPS`] of the groups — the β
//! at which that strategy first breaks through that defense at that
//! group size. Expected shape, and what E11's acceptance test pins: the
//! `f∘g` frontier sits at strictly higher β than the no-PoW frontier
//! for every adaptive placement strategy, and both frontiers rise with
//! d₂ (bigger groups buy β headroom).
//!
//! The sweep is embarrassingly parallel and fully deterministic: rows
//! fan out through [`tg_sim::parallel_map`], and every trial draws from
//! a [`tg_sim::derive_seed_grid`] stream keyed by the cell's coordinate
//! — results are byte-identical regardless of thread count. Within a
//! row, β is swept ascending with an early exit: once a cell captures
//! at least [`OVERRUN`] of the groups, higher-β cells are emitted as
//! `skipped-overrun` instead of simulated (capture is monotone in β, so
//! the simulation would only spend time confirming a lost system).

use crate::table::{f, Table};
use rand::rngs::StdRng;
use tg_core::dynamic::adversary::{
    AdaptiveMajorityFlipper, AdversaryStrategy, GapFilling, IntervalTargeting, StrategicProvider,
    Uniform,
};
use tg_core::dynamic::{AdversaryView, BuildMode, DynamicSystem, EpochIds, IdentityProvider};
use tg_core::Params;
use tg_crypto::OracleFamily;
use tg_idspace::Id;
use tg_overlay::GraphKind;
use tg_pow::{
    FullSystem, MintScheme, PrecomputeHoarder, PuzzleParams, StrategicPowProvider, StringParams,
};
use tg_sim::{derive_seed_grid, parallel_map};

/// A cell counts as **captured** when the mean fraction of groups
/// without a good majority exceeds this (an absolute noise floor — at
/// small n a handful of binomial-tail captures is background, not a
/// broken defense).
pub const CAPTURE_EPS: f64 = 0.01;

/// Early-exit threshold: once a cell's captured fraction reaches this,
/// the system is overrun and higher β in the same row are skipped.
pub const OVERRUN: f64 = 0.5;

/// The victim key for the `interval-targeting` strategy.
const VICTIM: f64 = 0.40;

/// The identity-pipeline defense of one frontier column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Defense {
    /// No PoW: chosen ID values go straight into the dynamic layer.
    NoPow,
    /// The full §IV protocol ([`FullSystem`]): puzzle minting under the
    /// given scheme, epoch strings agreed by the Appendix VIII protocol
    /// (`fresh_strings: false` freezes minting to the genesis string —
    /// the §IV-B defense disabled).
    Pow {
        /// Minting scheme (placement realized vs discarded).
        scheme: MintScheme,
        /// Whether minting binds to the freshly agreed string.
        fresh_strings: bool,
    },
}

impl Defense {
    /// Stable column label for tables and CSVs.
    pub fn label(&self) -> &'static str {
        match self {
            Defense::NoPow => "none",
            Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true } => "single-hash",
            Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: false } => {
                "single-hash-frozen"
            }
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true } => "f∘g",
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: false } => "f∘g-frozen",
        }
    }
}

/// The grid one frontier sweep covers.
#[derive(Clone, Debug)]
pub struct FrontierConfig {
    /// Good IDs per epoch.
    pub n_good: usize,
    /// Adversary budget fractions, **ascending** (early exit walks up).
    pub betas: Vec<f64>,
    /// Group-size factors swept (`draws = d₂·ln ln n`; `d₁ = d₂/2`).
    pub d2s: Vec<f64>,
    /// Strategy names (see [`make_strategy`]).
    pub strategies: Vec<&'static str>,
    /// Defense columns.
    pub defenses: Vec<Defense>,
    /// Epochs simulated per trial.
    pub epochs: usize,
    /// Independent trials (seeds) per cell.
    pub trials: usize,
    /// Robustness searches per epoch.
    pub searches: usize,
    /// Master seed; every trial derives its own grid stream from it.
    pub seed: u64,
}

/// A fresh strategy instance by name. The hoarder grinds real puzzles
/// against the epoch string its view carries, so it gets an oracle
/// family derived from the trial seed and an easy calibration sized to
/// yield ≈ `budget` solutions per epoch.
pub fn make_strategy(name: &str, trial_seed: u64, budget: usize) -> Box<dyn AdversaryStrategy> {
    match name {
        "uniform" => Box::new(Uniform),
        "gap-filling" => Box::new(GapFilling),
        "interval-targeting" => {
            Box::new(IntervalTargeting { victim: Id::from_f64(VICTIM), width: 0.01 })
        }
        "adaptive-majority-flipper" => Box::new(AdaptiveMajorityFlipper::default()),
        "precompute-hoarder" => {
            let puzzle = PuzzleParams { tau: Id::from_f64(0.02), attempts_per_step: 1, t_epoch: 2 };
            let fam = OracleFamily::new(trial_seed ^ 0xE11);
            let attempts = (budget.max(1) as f64 / puzzle.success_prob()).round() as u64;
            Box::new(PrecomputeHoarder::new(fam, puzzle, attempts))
        }
        other => panic!("unknown strategy {other}"),
    }
}

/// Construction parameters of one cell: the paper's defaults with the
/// swept (β, d₂) installed and the E10 sweep conventions (mild churn,
/// no join-request attack — capture is the measured variable).
fn cell_params(beta: f64, d2: f64) -> Params {
    let mut params = Params::paper_defaults();
    params.beta = beta;
    params.d2 = d2;
    params.d1 = d2 / 2.0;
    params.churn_rate = 0.1;
    params.attack_requests_per_id = 0;
    params
}

/// Groups without a good majority across all sides, as a fraction.
fn captured_frac(sys: &DynamicSystem) -> f64 {
    let (mut captured, mut total) = (0usize, 0usize);
    for g in &sys.graphs {
        total += g.groups.len();
        captured += g.groups.iter().filter(|gr| !gr.has_good_majority(&g.pool)).count();
    }
    captured as f64 / total.max(1) as f64
}

/// Wraps a provider to record each epoch's adversary census on the way
/// into the dynamic layer.
struct Recording {
    inner: Box<dyn IdentityProvider>,
    last_bad: usize,
    last_share: f64,
}

impl IdentityProvider for Recording {
    fn ids_for_epoch(
        &mut self,
        epoch: u64,
        view: &AdversaryView<'_>,
        rng: &mut StdRng,
    ) -> EpochIds {
        let ids = self.inner.ids_for_epoch(epoch, view, rng);
        self.last_bad = ids.bad.len();
        self.last_share = ids.bad_ring_share();
        ids
    }
}

/// Mean per-epoch measurements of one trial.
struct TrialStats {
    captured_frac: f64,
    bad_ids: f64,
    bad_share: f64,
    frac_red: f64,
    success_dual: f64,
}

/// One seeded simulation of one cell.
fn run_trial(
    cfg: &FrontierConfig,
    strategy: &'static str,
    defense: Defense,
    d2: f64,
    beta: f64,
    trial_seed: u64,
) -> TrialStats {
    let params = cell_params(beta, d2);
    let budget = (beta / (1.0 - beta) * cfg.n_good as f64).round() as usize;
    let strategy = make_strategy(strategy, trial_seed, budget);
    let epochs = cfg.epochs.max(1);
    let mut acc = TrialStats {
        captured_frac: 0.0,
        bad_ids: 0.0,
        bad_share: 0.0,
        frac_red: 0.0,
        success_dual: 0.0,
    };
    match defense {
        Defense::NoPow => {
            let inner = Box::new(StrategicProvider::boxed(cfg.n_good, budget, strategy));
            let mut provider = Recording { inner, last_bad: 0, last_share: 0.0 };
            let mut sys = DynamicSystem::new(
                params,
                GraphKind::Chord,
                BuildMode::DualGraph,
                &mut provider,
                trial_seed,
            );
            sys.searches_per_epoch = cfg.searches;
            for _ in 0..epochs {
                let r = sys.advance_epoch(&mut provider);
                acc.captured_frac += captured_frac(&sys);
                acc.bad_ids += provider.last_bad as f64;
                acc.bad_share += provider.last_share;
                acc.frac_red += r.frac_red[0];
                acc.success_dual += r.search_success_dual;
            }
        }
        Defense::Pow { scheme, fresh_strings } => {
            let provider = StrategicPowProvider::boxed(cfg.n_good, budget as f64, scheme, strategy);
            let mut sys = FullSystem::new(
                params,
                GraphKind::Chord,
                PuzzleParams::calibrated(16, 2048),
                StringParams::default(),
                cfg.n_good,
                budget as f64,
                true,
                trial_seed,
            )
            .with_adversary(provider);
            if !fresh_strings {
                sys = sys.with_frozen_strings();
            }
            sys.dynamics.searches_per_epoch = cfg.searches;
            for _ in 0..epochs {
                let r = sys.run_epoch();
                acc.captured_frac += captured_frac(&sys.dynamics);
                acc.bad_ids += r.minted_bad as f64;
                acc.bad_share += r.bad_share;
                acc.frac_red += r.dynamics.frac_red[0];
                acc.success_dual += r.dynamics.search_success_dual;
            }
        }
    }
    let e = epochs as f64;
    TrialStats {
        captured_frac: acc.captured_frac / e,
        bad_ids: acc.bad_ids / e,
        bad_share: acc.bad_share / e,
        frac_red: acc.frac_red / e,
        success_dual: acc.success_dual / e,
    }
}

/// One cell of the grid, aggregated over trials (`None` when skipped by
/// the early exit).
#[derive(Clone, Debug)]
struct Cell {
    strategy: &'static str,
    defense: Defense,
    d2: f64,
    beta: f64,
    stats: Option<CellStats>,
}

#[derive(Clone, Copy, Debug)]
struct CellStats {
    captured_frac: f64,
    capture_rate: f64,
    bad_ids: f64,
    bad_share: f64,
    frac_red: f64,
    success_dual: f64,
}

/// Everything one frontier sweep emits.
#[derive(Clone, Debug)]
pub struct FrontierOutcome {
    /// The per-cell heatmap table (`e11_frontier.csv`).
    pub cells: Table,
    /// The capture frontier per (strategy, defense, d₂)
    /// (`e11_frontier_map.csv`).
    pub frontier: Table,
    /// Text-rendered β × d₂ heatmap panes, one per (strategy, defense).
    pub heatmaps: String,
}

impl FrontierOutcome {
    /// The CSV-persisted tables, in emission order.
    pub fn tables(&self) -> [&Table; 2] {
        [&self.cells, &self.frontier]
    }

    /// The frontier β for a (strategy, defense, d₂) row, or `None` when
    /// the strategy never captured within the swept range.
    pub fn frontier_beta(&self, strategy: &str, defense: &str, d2: &str) -> Option<f64> {
        self.frontier
            .rows
            .iter()
            .find(|r| r[0] == strategy && r[1] == defense && r[2] == d2)
            .and_then(|r| r[3].parse().ok())
    }
}

/// Run the full grid. Rows — one per (strategy, defense, d₂) — fan out
/// in parallel; each row walks β ascending with the overrun early exit.
pub fn run_frontier(cfg: &FrontierConfig) -> FrontierOutcome {
    let mut specs: Vec<(&'static str, Defense, f64)> = Vec::new();
    for &strategy in &cfg.strategies {
        for &defense in &cfg.defenses {
            for &d2 in &cfg.d2s {
                specs.push((strategy, defense, d2));
            }
        }
    }

    let rows: Vec<Vec<Cell>> = parallel_map(specs, |(strategy, defense, d2)| {
        // The grid stream for this row: coordinates are (β index, trial),
        // the label carries the row identity — early exits never shift
        // another cell's randomness.
        let label = format!("e11/{strategy}/{}/{d2}", defense.label());
        let mut out = Vec::with_capacity(cfg.betas.len());
        let mut overrun = false;
        for (bi, &beta) in cfg.betas.iter().enumerate() {
            if overrun {
                out.push(Cell { strategy, defense, d2, beta, stats: None });
                continue;
            }
            let trials: Vec<TrialStats> = (0..cfg.trials)
                .map(|t| {
                    let trial_seed = derive_seed_grid(cfg.seed, &label, bi as u64, t as u64);
                    run_trial(cfg, strategy, defense, d2, beta, trial_seed)
                })
                .collect();
            let n = trials.len().max(1) as f64;
            let stats = CellStats {
                captured_frac: trials.iter().map(|t| t.captured_frac).sum::<f64>() / n,
                capture_rate: trials.iter().filter(|t| t.captured_frac > CAPTURE_EPS).count()
                    as f64
                    / n,
                bad_ids: trials.iter().map(|t| t.bad_ids).sum::<f64>() / n,
                bad_share: trials.iter().map(|t| t.bad_share).sum::<f64>() / n,
                frac_red: trials.iter().map(|t| t.frac_red).sum::<f64>() / n,
                success_dual: trials.iter().map(|t| t.success_dual).sum::<f64>() / n,
            };
            overrun = stats.captured_frac >= OVERRUN;
            out.push(Cell { strategy, defense, d2, beta, stats: Some(stats) });
        }
        out
    });

    FrontierOutcome {
        cells: cells_table(cfg, &rows),
        frontier: frontier_table(&rows),
        heatmaps: heatmaps(cfg, &rows),
    }
}

fn cells_table(cfg: &FrontierConfig, rows: &[Vec<Cell>]) -> Table {
    let mut t = Table::new(
        "e11_frontier",
        &[
            "strategy",
            "defense",
            "d2",
            "beta",
            "status",
            "trials",
            "epochs",
            "bad_ids",
            "bad_share",
            "captured_frac",
            "capture_rate",
            "frac_red_s0",
            "success_dual",
        ],
    );
    for cell in rows.iter().flatten() {
        let mut row = vec![
            cell.strategy.to_string(),
            cell.defense.label().to_string(),
            f(cell.d2),
            f(cell.beta),
        ];
        match cell.stats {
            Some(s) => row.extend([
                "run".to_string(),
                cfg.trials.to_string(),
                cfg.epochs.to_string(),
                f(s.bad_ids),
                f(s.bad_share),
                f(s.captured_frac),
                f(s.capture_rate),
                f(s.frac_red),
                f(s.success_dual),
            ]),
            None => row.extend([
                "skipped-overrun".to_string(),
                cfg.trials.to_string(),
                cfg.epochs.to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        }
        t.push(row);
    }
    t
}

fn frontier_table(rows: &[Vec<Cell>]) -> Table {
    let mut t = Table::new(
        "e11_frontier_map",
        &["strategy", "defense", "d2", "frontier_beta", "captured_at_frontier"],
    );
    for row in rows {
        if row.is_empty() {
            continue;
        }
        let first =
            row.iter().find(|c| c.stats.map(|s| s.captured_frac > CAPTURE_EPS).unwrap_or(false));
        let (beta, at) = match first {
            Some(c) => (f(c.beta), f(c.stats.expect("found by stats").captured_frac)),
            None => ("-".to_string(), "-".to_string()),
        };
        let head = &row[0];
        t.push(vec![
            head.strategy.to_string(),
            head.defense.label().to_string(),
            f(head.d2),
            beta,
            at,
        ]);
    }
    t
}

/// One glyph per cell: `·` below the noise floor, `+` captured, `#`
/// overrun, `»` skipped (the row already overran at lower β).
fn glyph(cell: &Cell) -> char {
    match cell.stats {
        None => '»',
        Some(s) if s.captured_frac >= OVERRUN => '#',
        Some(s) if s.captured_frac > CAPTURE_EPS => '+',
        Some(_) => '·',
    }
}

/// Render the β × d₂ panes, d₂ descending (large groups on top — the
/// frontier reads as a coastline rising to the right).
fn heatmaps(cfg: &FrontierConfig, rows: &[Vec<Cell>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for &strategy in &cfg.strategies {
        for &defense in &cfg.defenses {
            let _ = writeln!(out, "[{strategy} vs {}]", defense.label());
            let header: Vec<String> = cfg.betas.iter().map(|&b| f(b)).collect();
            let _ = writeln!(out, "  {:>7}  β= {}", "", header.join("  "));
            let mut d2s = cfg.d2s.clone();
            d2s.sort_by(|a, b| b.partial_cmp(a).expect("finite d2"));
            for d2 in d2s {
                let row = rows
                    .iter()
                    .flatten()
                    .filter(|c| c.strategy == strategy && c.defense == defense && c.d2 == d2);
                let glyphs: Vec<String> = cfg
                    .betas
                    .iter()
                    .map(|&beta| {
                        let cell = row.clone().find(|c| c.beta == beta).expect("full grid");
                        format!("{:^width$}", glyph(cell), width = f(beta).len())
                    })
                    .collect();
                let _ = writeln!(out, "  d2={:<4}     {}", f(d2), glyphs.join("  "));
            }
            let _ = writeln!(out);
        }
    }
    out.push_str("·  quiet (< 1% groups captured)   +  captured   #  overrun (≥ 50%)   »  skipped after overrun\n");
    out
}
