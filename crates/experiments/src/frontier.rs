//! The adversary-vs-defense **frontier engine**: capture heatmaps over
//! the real protocols, on an N-D parameter grid.
//!
//! Every result before this module was a point sample — one β, one
//! group-size factor. The paper's core claim is a *boundary*: tiny
//! groups of `d₂·ln ln n` members survive every placement strategy a
//! `β < 1/2` adversary can mount, **provided** §IV's minting defenses
//! are in force. This engine maps that boundary empirically. A grid of
//! cells
//!
//! ```text
//! (β, d₂, churn, topology, strategy, defense, fresh-vs-frozen strings)
//! ```
//!
//! each runs a multi-seed epoch simulation and reports how much of the
//! group population lost its good majority (*capture*). The β and d₂
//! axes are the classic pair; `churn_rate` and [`GraphKind`] joined as
//! first-class axes for the churn-timed adversary and the
//! topology-sensitivity question (capture thresholds shift with the
//! input-graph family, the tree-networks observation of Kailkhura et
//! al. transplanted to overlay families). The defense axis decides
//! which system is simulated:
//!
//! * [`Defense::NoPow`] — the adversary's chosen ID values go straight
//!   into the §III dynamic layer ([`DynamicSystem`] +
//!   `StrategicProvider`): the world §IV exists to prevent,
//! * [`Defense::Pow`] — the **full §IV protocol** ([`FullSystem`] with
//!   a `StrategicPowProvider`): the epoch-string agreement runs for
//!   real, minting binds to the agreed string (or to a frozen genesis
//!   string when the §IV-B defense is switched off), and the strategy's
//!   desired placement survives only as far as the minting scheme
//!   allows (realized under `single-hash`, discarded under `f∘g`).
//!
//! The **frontier** of a row — one [`RowKey`], i.e. one (strategy,
//! defense, d₂, churn, topology) combination — is the smallest β whose
//! cell captures more than [`CAPTURE_EPS`] of the groups: the β at
//! which that strategy first breaks through that defense at that
//! operating point. Expected shape, and what E11's acceptance test
//! pins: the `f∘g` frontier sits at strictly higher β than the no-PoW
//! frontier for every adaptive placement strategy, and both frontiers
//! rise with d₂ (bigger groups buy β headroom).
//!
//! The sweep is embarrassingly parallel and fully deterministic: rows
//! fan out through [`tg_sim::parallel_map`], and every trial draws from
//! a [`tg_sim::derive_seed_grid`] stream keyed by the cell's coordinate
//! — results are byte-identical regardless of thread count. The cell
//! key is the row's [`RowKey::label`] (the categorical part) plus a
//! (β index, trial) grid coordinate; the label format for rows on the
//! legacy axes (churn [`LEGACY_CHURN`], Chord) is frozen so the
//! committed golden corpus — and any cell the adaptive refinement
//! engine ([`crate::refine`]) re-addresses — replays bit-for-bit.
//! Within a row, β is swept ascending with an early exit: once a cell
//! captures at least [`OVERRUN`] of the groups, higher-β cells are
//! emitted as `skipped-overrun` instead of simulated (capture is
//! monotone in β, so the simulation would only spend time confirming a
//! lost system).

use crate::table::{f, Table};
use rand::rngs::StdRng;
use tg_core::dynamic::adversary::{
    AdaptiveMajorityFlipper, AdversaryStrategy, ChurnTimed, GapFilling, IntervalTargeting,
    StrategicProvider, Uniform,
};
use tg_core::dynamic::{AdversaryView, BuildMode, DynamicSystem, EpochIds, IdentityProvider};
use tg_core::Params;
use tg_crypto::OracleFamily;
use tg_idspace::Id;
use tg_overlay::GraphKind;
use tg_pow::{
    FullSystem, MintScheme, PrecomputeHoarder, PuzzleParams, StrategicPowProvider, StringParams,
};
use tg_sim::{derive_seed_grid, parallel_map};

/// A cell counts as **captured** when the mean fraction of groups
/// without a good majority exceeds this (an absolute noise floor — at
/// small n a handful of binomial-tail captures is background, not a
/// broken defense).
pub const CAPTURE_EPS: f64 = 0.01;

/// Early-exit threshold: once a cell's captured fraction reaches this,
/// the system is overrun and higher β in the same row are skipped.
pub const OVERRUN: f64 = 0.5;

/// The churn rate of the original 2-D (β × d₂) sweeps, frozen into the
/// legacy cell-label format (see [`RowKey::label`]).
pub const LEGACY_CHURN: f64 = 0.1;

/// The victim key for the `interval-targeting` strategy.
const VICTIM: f64 = 0.40;

/// The identity-pipeline defense of one frontier column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Defense {
    /// No PoW: chosen ID values go straight into the dynamic layer.
    NoPow,
    /// The full §IV protocol ([`FullSystem`]): puzzle minting under the
    /// given scheme, epoch strings agreed by the Appendix VIII protocol
    /// (`fresh_strings: false` freezes minting to the genesis string —
    /// the §IV-B defense disabled).
    Pow {
        /// Minting scheme (placement realized vs discarded).
        scheme: MintScheme,
        /// Whether minting binds to the freshly agreed string.
        fresh_strings: bool,
    },
}

impl Defense {
    /// Stable column label for tables and CSVs.
    pub fn label(&self) -> &'static str {
        match self {
            Defense::NoPow => "none",
            Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true } => "single-hash",
            Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: false } => {
                "single-hash-frozen"
            }
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true } => "f∘g",
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: false } => "f∘g-frozen",
        }
    }
}

/// The categorical coordinate of one frontier row: everything about a
/// cell except its β rung and trial index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RowKey {
    /// Strategy name (see [`make_strategy`]).
    pub strategy: &'static str,
    /// Defense column.
    pub defense: Defense,
    /// Group-size factor (`draws = d₂·ln ln n`; `d₁ = d₂/2`).
    pub d2: f64,
    /// Per-epoch good-departure fraction.
    pub churn: f64,
    /// Input-graph topology family.
    pub kind: GraphKind,
}

impl RowKey {
    /// Whether this row sits on the frozen legacy axes of the original
    /// 2-D sweep (churn [`LEGACY_CHURN`], Chord topology).
    pub fn is_legacy_axes(&self) -> bool {
        self.churn == LEGACY_CHURN && self.kind == GraphKind::Chord
    }

    /// The seed-stream label of this row's cells. **This string is a
    /// persistence format**: both sweep engines (uniform grid and
    /// adaptive refinement) and the golden corpus address cells through
    /// it, so rows on the legacy axes keep the exact pre-N-D spelling
    /// and the extended axes append rather than reorder.
    pub fn label(&self) -> String {
        let (strategy, defense, d2) = (self.strategy, self.defense.label(), self.d2);
        if self.is_legacy_axes() {
            format!("e11/{strategy}/{defense}/{d2}")
        } else {
            format!("e11/{strategy}/{defense}/{d2}/c{}/{}", self.churn, self.kind.name())
        }
    }
}

/// The grid one frontier sweep covers.
#[derive(Clone, Debug)]
pub struct FrontierConfig {
    /// Good IDs per epoch.
    pub n_good: usize,
    /// Adversary budget fractions, **ascending** (early exit walks up).
    pub betas: Vec<f64>,
    /// Group-size factors swept.
    pub d2s: Vec<f64>,
    /// Per-epoch good-departure fractions swept.
    pub churns: Vec<f64>,
    /// Input-graph topology families swept.
    pub kinds: Vec<GraphKind>,
    /// Strategy names (see [`make_strategy`]).
    pub strategies: Vec<&'static str>,
    /// Defense columns.
    pub defenses: Vec<Defense>,
    /// Epochs simulated per trial.
    pub epochs: usize,
    /// Independent trials (seeds) per cell.
    pub trials: usize,
    /// Robustness searches per epoch.
    pub searches: usize,
    /// Master seed; every trial derives its own grid stream from it.
    pub seed: u64,
}

impl FrontierConfig {
    /// Every row of the grid, in sweep order (strategy-major, then
    /// defense, d₂, churn, topology). Shared with the refinement engine
    /// so both sweeps enumerate identical rows.
    pub fn rows(&self) -> Vec<RowKey> {
        let mut specs = Vec::new();
        for &strategy in &self.strategies {
            for &defense in &self.defenses {
                for &d2 in &self.d2s {
                    for &churn in &self.churns {
                        for &kind in &self.kinds {
                            specs.push(RowKey { strategy, defense, d2, churn, kind });
                        }
                    }
                }
            }
        }
        specs
    }
}

/// A fresh strategy instance by name. The hoarder grinds real puzzles
/// against the epoch string its view carries, so it gets an oracle
/// family derived from the trial seed and an easy calibration sized to
/// yield ≈ `budget` solutions per epoch.
pub fn make_strategy(name: &str, trial_seed: u64, budget: usize) -> Box<dyn AdversaryStrategy> {
    match name {
        "uniform" => Box::new(Uniform),
        "gap-filling" => Box::new(GapFilling),
        "interval-targeting" => {
            Box::new(IntervalTargeting { victim: Id::from_f64(VICTIM), width: 0.01 })
        }
        "adaptive-majority-flipper" => Box::new(AdaptiveMajorityFlipper::default()),
        "churn-timed" => Box::new(ChurnTimed::default()),
        "precompute-hoarder" => {
            let puzzle = PuzzleParams { tau: Id::from_f64(0.02), attempts_per_step: 1, t_epoch: 2 };
            let fam = OracleFamily::new(trial_seed ^ 0xE11);
            let attempts = (budget.max(1) as f64 / puzzle.success_prob()).round() as u64;
            Box::new(PrecomputeHoarder::new(fam, puzzle, attempts))
        }
        other => panic!("unknown strategy {other}"),
    }
}

/// Construction parameters of one cell: the paper's defaults with the
/// swept (β, d₂, churn) installed and the E10 sweep conventions (no
/// join-request attack — capture is the measured variable).
fn cell_params(beta: f64, d2: f64, churn: f64) -> Params {
    let mut params = Params::paper_defaults();
    params.beta = beta;
    params.d2 = d2;
    params.d1 = d2 / 2.0;
    params.churn_rate = churn;
    params.attack_requests_per_id = 0;
    params
}

/// Groups without a good majority across all sides, as a fraction.
fn captured_frac(sys: &DynamicSystem) -> f64 {
    let (mut captured, mut total) = (0usize, 0usize);
    for g in &sys.graphs {
        total += g.groups.len();
        captured += g.groups.iter().filter(|gr| !gr.has_good_majority(&g.pool)).count();
    }
    captured as f64 / total.max(1) as f64
}

/// Wraps a provider to record each epoch's adversary census on the way
/// into the dynamic layer.
struct Recording {
    inner: Box<dyn IdentityProvider>,
    last_bad: usize,
    last_share: f64,
}

impl IdentityProvider for Recording {
    fn ids_for_epoch(
        &mut self,
        epoch: u64,
        view: &AdversaryView<'_>,
        rng: &mut StdRng,
    ) -> EpochIds {
        let ids = self.inner.ids_for_epoch(epoch, view, rng);
        self.last_bad = ids.bad.len();
        self.last_share = ids.bad_ring_share();
        ids
    }
}

/// Mean per-epoch measurements of one trial.
#[derive(Clone, Copy, Debug)]
pub struct TrialStats {
    /// Mean fraction of groups without a good majority.
    pub captured_frac: f64,
    /// Mean adversarial IDs entering the dynamic layer per epoch.
    pub bad_ids: f64,
    /// Mean key-space share those IDs own.
    pub bad_share: f64,
    /// Mean side-0 red fraction.
    pub frac_red: f64,
    /// Mean dual-search success.
    pub success_dual: f64,
}

/// One seeded simulation of one cell.
fn run_trial(cfg: &FrontierConfig, key: &RowKey, beta: f64, trial_seed: u64) -> TrialStats {
    let params = cell_params(beta, key.d2, key.churn);
    let budget = (beta / (1.0 - beta) * cfg.n_good as f64).round() as usize;
    let strategy = make_strategy(key.strategy, trial_seed, budget);
    let epochs = cfg.epochs.max(1);
    let mut acc = TrialStats {
        captured_frac: 0.0,
        bad_ids: 0.0,
        bad_share: 0.0,
        frac_red: 0.0,
        success_dual: 0.0,
    };
    match key.defense {
        Defense::NoPow => {
            let inner = Box::new(StrategicProvider::boxed(cfg.n_good, budget, strategy));
            let mut provider = Recording { inner, last_bad: 0, last_share: 0.0 };
            let mut sys = DynamicSystem::new(
                params,
                key.kind,
                BuildMode::DualGraph,
                &mut provider,
                trial_seed,
            );
            sys.searches_per_epoch = cfg.searches;
            for _ in 0..epochs {
                let r = sys.advance_epoch(&mut provider);
                acc.captured_frac += captured_frac(&sys);
                acc.bad_ids += provider.last_bad as f64;
                acc.bad_share += provider.last_share;
                acc.frac_red += r.frac_red[0];
                acc.success_dual += r.search_success_dual;
            }
        }
        Defense::Pow { scheme, fresh_strings } => {
            let provider = StrategicPowProvider::boxed(cfg.n_good, budget as f64, scheme, strategy);
            let mut sys = FullSystem::new(
                params,
                key.kind,
                PuzzleParams::calibrated(16, 2048),
                StringParams::default(),
                cfg.n_good,
                budget as f64,
                true,
                trial_seed,
            )
            .with_adversary(provider);
            if !fresh_strings {
                sys = sys.with_frozen_strings();
            }
            sys.dynamics.searches_per_epoch = cfg.searches;
            for _ in 0..epochs {
                let r = sys.run_epoch();
                acc.captured_frac += captured_frac(&sys.dynamics);
                acc.bad_ids += r.minted_bad as f64;
                acc.bad_share += r.bad_share;
                acc.frac_red += r.dynamics.frac_red[0];
                acc.success_dual += r.dynamics.search_success_dual;
            }
        }
    }
    let e = epochs as f64;
    TrialStats {
        captured_frac: acc.captured_frac / e,
        bad_ids: acc.bad_ids / e,
        bad_share: acc.bad_share / e,
        frac_red: acc.frac_red / e,
        success_dual: acc.success_dual / e,
    }
}

/// Evaluate one cell — `trials` seeded simulations of row `key` at β
/// rung `bi`, starting at trial index `t0`.
///
/// This is the one place cell randomness is derived: both the uniform
/// grid and the adaptive refinement engine evaluate cells through here,
/// so a cell addressed by the same `(row, rung, trial)` coordinate is
/// byte-identical across engines — the structural fact behind E12's
/// "same frontier, fewer cell-runs" acceptance claim. `t0 > 0` lets the
/// refinement engine pour *extra* seeds into a cell by extending the
/// same trial stream rather than re-drawing it.
pub fn eval_cell(
    cfg: &FrontierConfig,
    key: &RowKey,
    bi: usize,
    beta: f64,
    t0: usize,
    trials: usize,
) -> Vec<TrialStats> {
    let label = key.label();
    (t0..t0 + trials)
        .map(|t| {
            let trial_seed = derive_seed_grid(cfg.seed, &label, bi as u64, t as u64);
            run_trial(cfg, key, beta, trial_seed)
        })
        .collect()
}

/// One cell of the grid, aggregated over trials (`None` when skipped by
/// the early exit).
#[derive(Clone, Debug)]
struct Cell {
    key: RowKey,
    beta: f64,
    stats: Option<CellStats>,
}

/// Trial-aggregated cell measurements.
#[derive(Clone, Copy, Debug)]
pub struct CellStats {
    /// Mean captured-group fraction over the trials.
    pub captured_frac: f64,
    /// Fraction of trials whose captured fraction exceeded
    /// [`CAPTURE_EPS`] — the Bernoulli rate confidence bands are built
    /// on.
    pub capture_rate: f64,
    /// Mean adversarial IDs per epoch.
    pub bad_ids: f64,
    /// Mean adversarial key-space share.
    pub bad_share: f64,
    /// Mean side-0 red fraction.
    pub frac_red: f64,
    /// Mean dual-search success.
    pub success_dual: f64,
}

impl CellStats {
    /// Aggregate per-trial measurements.
    pub fn of(trials: &[TrialStats]) -> CellStats {
        let n = trials.len().max(1) as f64;
        CellStats {
            captured_frac: trials.iter().map(|t| t.captured_frac).sum::<f64>() / n,
            capture_rate: trials.iter().filter(|t| t.captured_frac > CAPTURE_EPS).count() as f64
                / n,
            bad_ids: trials.iter().map(|t| t.bad_ids).sum::<f64>() / n,
            bad_share: trials.iter().map(|t| t.bad_share).sum::<f64>() / n,
            frac_red: trials.iter().map(|t| t.frac_red).sum::<f64>() / n,
            success_dual: trials.iter().map(|t| t.success_dual).sum::<f64>() / n,
        }
    }
}

/// Everything one frontier sweep emits.
#[derive(Clone, Debug)]
pub struct FrontierOutcome {
    /// The per-cell heatmap table (`e11_frontier.csv`).
    pub cells: Table,
    /// The capture frontier per row (`e11_frontier_map.csv`).
    pub frontier: Table,
    /// Text-rendered β × d₂ heatmap panes, one per (strategy, defense,
    /// churn, topology).
    pub heatmaps: String,
}

impl FrontierOutcome {
    /// The CSV-persisted tables, in emission order.
    pub fn tables(&self) -> [&Table; 2] {
        [&self.cells, &self.frontier]
    }

    /// The frontier β for a (strategy, defense, d₂) row, or `None` when
    /// the strategy never captured within the swept range. With multiple
    /// churn/topology axis values this returns the first matching row in
    /// sweep order; disambiguate through the table directly when those
    /// axes are swept.
    pub fn frontier_beta(&self, strategy: &str, defense: &str, d2: &str) -> Option<f64> {
        self.frontier
            .rows
            .iter()
            .find(|r| r[0] == strategy && r[1] == defense && r[2] == d2)
            .and_then(|r| r[5].parse().ok())
    }
}

/// Run the full grid. Rows — one per [`RowKey`] — fan out in parallel;
/// each row walks β ascending with the overrun early exit.
pub fn run_frontier(cfg: &FrontierConfig) -> FrontierOutcome {
    let rows: Vec<Vec<Cell>> = parallel_map(cfg.rows(), |key| {
        // The grid stream for this row: coordinates are (β index, trial),
        // the label carries the row identity — early exits never shift
        // another cell's randomness.
        let mut out = Vec::with_capacity(cfg.betas.len());
        let mut overrun = false;
        for (bi, &beta) in cfg.betas.iter().enumerate() {
            if overrun {
                out.push(Cell { key, beta, stats: None });
                continue;
            }
            let stats = CellStats::of(&eval_cell(cfg, &key, bi, beta, 0, cfg.trials));
            overrun = stats.captured_frac >= OVERRUN;
            out.push(Cell { key, beta, stats: Some(stats) });
        }
        out
    });

    FrontierOutcome {
        cells: cells_table(cfg, &rows),
        frontier: frontier_table(&rows),
        heatmaps: heatmaps(cfg, &rows),
    }
}

/// The axis columns every sweep table leads with. Shared with the
/// refinement engine so the two engines' maps stay byte-comparable
/// column for column.
pub(crate) fn key_cells(key: &RowKey) -> Vec<String> {
    vec![
        key.strategy.to_string(),
        key.defense.label().to_string(),
        f(key.d2),
        f(key.churn),
        key.kind.name().to_string(),
    ]
}

fn cells_table(cfg: &FrontierConfig, rows: &[Vec<Cell>]) -> Table {
    let mut t = Table::new(
        "e11_frontier",
        &[
            "strategy",
            "defense",
            "d2",
            "churn",
            "kind",
            "beta",
            "status",
            "trials",
            "epochs",
            "bad_ids",
            "bad_share",
            "captured_frac",
            "capture_rate",
            "frac_red_s0",
            "success_dual",
        ],
    );
    for cell in rows.iter().flatten() {
        let mut row = key_cells(&cell.key);
        row.push(f(cell.beta));
        match cell.stats {
            Some(s) => row.extend([
                "run".to_string(),
                cfg.trials.to_string(),
                cfg.epochs.to_string(),
                f(s.bad_ids),
                f(s.bad_share),
                f(s.captured_frac),
                f(s.capture_rate),
                f(s.frac_red),
                f(s.success_dual),
            ]),
            None => row.extend([
                "skipped-overrun".to_string(),
                cfg.trials.to_string(),
                cfg.epochs.to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        }
        t.push(row);
    }
    t
}

fn frontier_table(rows: &[Vec<Cell>]) -> Table {
    let mut t = Table::new(
        "e11_frontier_map",
        &["strategy", "defense", "d2", "churn", "kind", "frontier_beta", "captured_at_frontier"],
    );
    for row in rows {
        if row.is_empty() {
            continue;
        }
        let first =
            row.iter().find(|c| c.stats.map(|s| s.captured_frac > CAPTURE_EPS).unwrap_or(false));
        let (beta, at) = match first {
            Some(c) => (f(c.beta), f(c.stats.expect("found by stats").captured_frac)),
            None => ("-".to_string(), "-".to_string()),
        };
        let mut cells = key_cells(&row[0].key);
        cells.extend([beta, at]);
        t.push(cells);
    }
    t
}

/// One glyph per cell: `·` below the noise floor, `+` captured, `#`
/// overrun, `»` skipped (the row already overran at lower β).
fn glyph(cell: &Cell) -> char {
    match cell.stats {
        None => '»',
        Some(s) if s.captured_frac >= OVERRUN => '#',
        Some(s) if s.captured_frac > CAPTURE_EPS => '+',
        Some(_) => '·',
    }
}

/// Render the β × d₂ panes, d₂ descending (large groups on top — the
/// frontier reads as a coastline rising to the right). With swept churn
/// or topology axes, each (churn, topology) combination gets its own
/// pane; on a single legacy-axes sweep the pane headers keep the
/// original two-part form.
fn heatmaps(cfg: &FrontierConfig, rows: &[Vec<Cell>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for &strategy in &cfg.strategies {
        for &defense in &cfg.defenses {
            for &churn in &cfg.churns {
                for &kind in &cfg.kinds {
                    let legacy_pane = cfg.churns.len() == 1
                        && cfg.kinds.len() == 1
                        && churn == LEGACY_CHURN
                        && kind == GraphKind::Chord;
                    if legacy_pane {
                        let _ = writeln!(out, "[{strategy} vs {}]", defense.label());
                    } else {
                        let _ = writeln!(
                            out,
                            "[{strategy} vs {} | churn={} {}]",
                            defense.label(),
                            f(churn),
                            kind.name()
                        );
                    }
                    let header: Vec<String> = cfg.betas.iter().map(|&b| f(b)).collect();
                    let _ = writeln!(out, "  {:>7}  β= {}", "", header.join("  "));
                    let mut d2s = cfg.d2s.clone();
                    d2s.sort_by(|a, b| b.partial_cmp(a).expect("finite d2"));
                    for d2 in d2s {
                        let row = rows.iter().flatten().filter(|c| {
                            c.key.strategy == strategy
                                && c.key.defense == defense
                                && c.key.d2 == d2
                                && c.key.churn == churn
                                && c.key.kind == kind
                        });
                        let glyphs: Vec<String> = cfg
                            .betas
                            .iter()
                            .map(|&beta| {
                                let cell = row.clone().find(|c| c.beta == beta).expect("full grid");
                                format!("{:^width$}", glyph(cell), width = f(beta).len())
                            })
                            .collect();
                        let _ = writeln!(out, "  d2={:<4}     {}", f(d2), glyphs.join("  "));
                    }
                    let _ = writeln!(out);
                }
            }
        }
    }
    out.push_str("·  quiet (< 1% groups captured)   +  captured   #  overrun (≥ 50%)   »  skipped after overrun\n");
    out
}
