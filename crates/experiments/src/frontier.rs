//! The adversary-vs-defense **frontier engine**: capture heatmaps over
//! the real protocols, on an N-D parameter grid.
//!
//! Every result before this module was a point sample — one β, one
//! group-size factor. The paper's core claim is a *boundary*: tiny
//! groups of `d₂·ln ln n` members survive every placement strategy a
//! `β < 1/2` adversary can mount, **provided** §IV's minting defenses
//! are in force. This engine maps that boundary empirically. A grid of
//! cells
//!
//! ```text
//! (β, d₂, churn, topology, strategy, defense, fresh-vs-frozen strings)
//! ```
//!
//! each runs a multi-seed epoch simulation and reports how much of the
//! group population lost its good majority (*capture*). The β and d₂
//! axes are the classic pair; `churn_rate` and [`GraphKind`] joined as
//! first-class axes for the churn-timed adversary and the
//! topology-sensitivity question (capture thresholds shift with the
//! input-graph family, the tree-networks observation of Kailkhura et
//! al. transplanted to overlay families). Every cell is simulated
//! through the unified scenario API — [`RowKey::scenario`] turns the
//! cell coordinate into a [`ScenarioSpec`], and
//! `tg_pow::scenario::build` erases which system runs behind the
//! [`tg_core::scenario::EpochDriver`]:
//!
//! * [`Defense::NoPow`] — the adversary's chosen ID values go straight
//!   into the §III dynamic layer (`tg_core::dynamic::DynamicSystem` +
//!   `StrategicProvider`): the world §IV exists to prevent,
//! * [`Defense::Pow`] — the **full §IV protocol**
//!   (`tg_pow::FullSystem` with a `StrategicPowProvider`): the
//!   epoch-string agreement runs for real, minting binds to the agreed
//!   string (or to a frozen genesis string when the §IV-B defense is
//!   switched off), and the strategy's desired placement survives only
//!   as far as the minting scheme allows (realized under `single-hash`,
//!   discarded under `f∘g`).
//!
//! The **frontier** of a row — one [`RowKey`], i.e. one (strategy,
//! defense, d₂, churn, topology) combination — is the smallest β whose
//! cell captures more than [`CAPTURE_EPS`] of the groups: the β at
//! which that strategy first breaks through that defense at that
//! operating point. Expected shape, and what E11's acceptance test
//! pins: the `f∘g` frontier sits at strictly higher β than the no-PoW
//! frontier for every adaptive placement strategy, and both frontiers
//! rise with d₂ (bigger groups buy β headroom).
//!
//! The sweep is embarrassingly parallel and fully deterministic: rows
//! fan out through [`tg_sim::parallel_map`], and every trial draws from
//! a [`tg_sim::derive_seed_grid`] stream keyed by the cell's coordinate
//! — results are byte-identical regardless of thread count. The cell
//! key is the row's [`RowKey::label`] (the categorical part) plus a
//! (β index, trial) grid coordinate; the label format for rows on the
//! legacy axes (churn [`LEGACY_CHURN`], Chord) is frozen so the
//! committed golden corpus — and any cell the adaptive refinement
//! engine ([`crate::refine`]) re-addresses — replays bit-for-bit.
//! Within a row, β is swept ascending with an early exit: once a cell
//! captures at least [`OVERRUN`] of the groups, higher-β cells are
//! emitted as `skipped-overrun` instead of simulated (capture is
//! monotone in β, so the simulation would only spend time confirming a
//! lost system).

use crate::table::{f, Table};
use tg_core::scenario::{
    budget_for, KernelChoice, ObsRow, ObservationBatch, RuntimeChoice, ScenarioSpec, StrategySpec,
    TransportChoice,
};
use tg_overlay::GraphKind;
use tg_sim::{derive_seed_grid, parallel_map, ResultStore};

pub use tg_core::scenario::Defense;

/// A cell counts as **captured** when the mean fraction of groups
/// without a good majority exceeds this (an absolute noise floor — at
/// small n a handful of binomial-tail captures is background, not a
/// broken defense).
pub const CAPTURE_EPS: f64 = 0.01;

/// Early-exit threshold: once a cell's captured fraction reaches this,
/// the system is overrun and higher β in the same row are skipped.
pub const OVERRUN: f64 = 0.5;

/// The churn rate of the original 2-D (β × d₂) sweeps, frozen into the
/// legacy cell-label format (see [`RowKey::label`]).
pub const LEGACY_CHURN: f64 = 0.1;

/// The victim key for the `interval-targeting` strategy.
const VICTIM: f64 = 0.40;

/// The categorical coordinate of one frontier row: everything about a
/// cell except its β rung and trial index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RowKey {
    /// Strategy name (see [`strategy_spec`]).
    pub strategy: &'static str,
    /// Defense column.
    pub defense: Defense,
    /// Group-size factor (`draws = d₂·ln ln n`; `d₁ = d₂/2`).
    pub d2: f64,
    /// Per-epoch good-departure fraction.
    pub churn: f64,
    /// Input-graph topology family.
    pub kind: GraphKind,
}

impl RowKey {
    /// Whether this row sits on the frozen legacy axes of the original
    /// 2-D sweep (churn [`LEGACY_CHURN`], Chord topology).
    pub fn is_legacy_axes(&self) -> bool {
        self.churn == LEGACY_CHURN && self.kind == GraphKind::Chord
    }

    /// The seed-stream label of this row's cells. **This string is a
    /// persistence format**: both sweep engines (uniform grid and
    /// adaptive refinement) and the golden corpus address cells through
    /// it, so rows on the legacy axes keep the exact pre-N-D spelling
    /// and the extended axes append rather than reorder.
    pub fn label(&self) -> String {
        let (strategy, defense, d2) = (self.strategy, self.defense.label(), self.d2);
        if self.is_legacy_axes() {
            format!("e11/{strategy}/{defense}/{d2}")
        } else {
            format!("e11/{strategy}/{defense}/{d2}/c{}/{}", self.churn, self.kind.name())
        }
    }

    /// The complete [`ScenarioSpec`] of one trial of one cell on this
    /// row: the paper's defaults with the swept (β, d₂, churn, topology,
    /// defense, strategy) installed and the sweep conventions (no
    /// join-request attack — capture is the measured variable; the
    /// adversary budget re-derived from β). This is the one place a
    /// frontier coordinate becomes a buildable scenario; both sweep
    /// engines construct their systems exclusively through it.
    pub fn scenario(&self, cfg: &FrontierConfig, beta: f64, trial_seed: u64) -> ScenarioSpec {
        let budget = budget_for(beta, cfg.n_good);
        ScenarioSpec::new(cfg.n_good, trial_seed)
            .beta(beta)
            .group_factor(self.d2)
            .churn(self.churn)
            .attack_requests(0)
            .topology(self.kind)
            .defense(self.defense)
            .strategy(strategy_spec(self.strategy, trial_seed, budget))
            .searches(cfg.searches)
            .kernel(cfg.kernel)
            .runtime(cfg.runtime)
            .transport(cfg.transport)
    }
}

/// The grid one frontier sweep covers.
#[derive(Clone, Debug)]
pub struct FrontierConfig {
    /// Good IDs per epoch.
    pub n_good: usize,
    /// Adversary budget fractions, **ascending** (early exit walks up).
    pub betas: Vec<f64>,
    /// Group-size factors swept.
    pub d2s: Vec<f64>,
    /// Per-epoch good-departure fractions swept.
    pub churns: Vec<f64>,
    /// Input-graph topology families swept.
    pub kinds: Vec<GraphKind>,
    /// Strategy names (see [`strategy_spec`]).
    pub strategies: Vec<&'static str>,
    /// Defense columns.
    pub defenses: Vec<Defense>,
    /// Epochs simulated per trial.
    pub epochs: usize,
    /// Independent trials (seeds) per cell.
    pub trials: usize,
    /// Robustness searches per epoch.
    pub searches: usize,
    /// Master seed; every trial derives its own grid stream from it.
    pub seed: u64,
    /// Which epoch kernel runs each cell (legacy per-group or arena/SoA
    /// — byte-identical observations, so the choice never moves a
    /// frontier; it is swept by the throughput experiment, not here).
    pub kernel: KernelChoice,
    /// Which epoch runtime advances each cell. Over the actor runtime's
    /// default perfect transport this is byte-identical to `Sync`; the
    /// fault-injection sweep (e14) owns the faulty-transport axes.
    pub runtime: RuntimeChoice,
    /// Which transport carries the actor runtime's messages (in-memory
    /// vs loopback TCP). Byte-identical observations either way — the
    /// socket choice exercises the real network path. Elided from cell
    /// labels at the default, so committed store keys stay stable.
    pub transport: TransportChoice,
    /// Optional content-addressed result store. When set, every trial's
    /// observation stream is looked up by its [`ScenarioSpec::label`]
    /// (plus epoch count) before simulating and published after — a
    /// warm sweep replays stored streams through the identical
    /// statistics path, so its tables are byte-for-byte the live run's.
    pub store: Option<ResultStore>,
    /// Evaluate the `tg_verify` invariant registry after every epoch of
    /// every simulated trial (panicking with a reproduction line on the
    /// first violation). Byte-identical observations either way, so a
    /// checked sweep's tables match an unchecked run's exactly.
    pub check_invariants: bool,
}

impl FrontierConfig {
    /// Every row of the grid, in sweep order (strategy-major, then
    /// defense, d₂, churn, topology). Shared with the refinement engine
    /// so both sweeps enumerate identical rows.
    pub fn rows(&self) -> Vec<RowKey> {
        let mut specs = Vec::new();
        for &strategy in &self.strategies {
            for &defense in &self.defenses {
                for &d2 in &self.d2s {
                    for &churn in &self.churns {
                        for &kind in &self.kinds {
                            specs.push(RowKey { strategy, defense, d2, churn, kind });
                        }
                    }
                }
            }
        }
        specs
    }
}

/// The declarative strategy of a sweep column, by name. The hoarder
/// grinds real puzzles against the epoch string its view carries, so
/// its spec carries an oracle-family seed derived from the trial seed
/// and an attempt budget sized to yield ≈ `budget` solutions per epoch.
pub fn strategy_spec(name: &str, trial_seed: u64, budget: usize) -> StrategySpec {
    match name {
        "uniform" => StrategySpec::Uniform,
        "gap-filling" => StrategySpec::GapFilling,
        "interval-targeting" => StrategySpec::IntervalTargeting { victim: VICTIM, width: 0.01 },
        "adaptive-majority-flipper" => StrategySpec::AdaptiveMajorityFlipper { margin: 2 },
        "churn-timed" => StrategySpec::ChurnTimed { trigger: 0.12, retainer: 0.2 },
        "precompute-hoarder" => {
            let success = tg_pow::scenario::hoarder_puzzle().success_prob();
            let attempts = (budget.max(1) as f64 / success).round() as u64;
            StrategySpec::PrecomputeHoarder { fam_seed: trial_seed ^ 0xE11, attempts }
        }
        other => panic!("unknown strategy {other}"),
    }
}

/// Mean per-epoch measurements of one trial.
#[derive(Clone, Copy, Debug)]
pub struct TrialStats {
    /// Mean fraction of groups without a good majority.
    pub captured_frac: f64,
    /// Mean adversarial IDs entering the dynamic layer per epoch.
    pub bad_ids: f64,
    /// Mean key-space share those IDs own.
    pub bad_share: f64,
    /// Mean side-0 red fraction.
    pub frac_red: f64,
    /// Mean dual-search success.
    pub success_dual: f64,
}

/// Reduce a trial's observation columns to its mean statistics. Both
/// the live path and the store-warm path funnel through here, so a
/// replayed stream yields bit-identical stats to the run that wrote it.
fn batch_stats(batch: &ObservationBatch) -> TrialStats {
    TrialStats {
        captured_frac: batch.mean_captured_frac(),
        bad_ids: batch.mean_bad_ids(),
        bad_share: batch.mean_bad_share(),
        frac_red: batch.mean_frac_red_s0(),
        success_dual: batch.mean_success_dual(),
    }
}

/// The store key of one trial's observation stream: the trial's full
/// scenario label (which already carries seed, axes, kernel, runtime)
/// plus the epoch count the stream covers.
pub fn trial_store_key(spec: &ScenarioSpec, epochs: usize) -> String {
    format!("{};epochs={epochs}", spec.label())
}

/// One seeded simulation of one cell: build the cell's scenario, drive
/// it through the unified [`tg_core::scenario::EpochDriver`], and
/// average the per-epoch observations. Which system runs (the bare
/// dynamic layer or the full epoch-string protocol) is the spec's
/// business, not this loop's. With a store configured the trial's
/// stream is fetched instead of simulated when present, and published
/// after simulating when absent; the returned flag says whether the
/// trial ran **live**. A corrupt stream panics — tampered results must
/// never silently feed a sweep.
fn run_trial(cfg: &FrontierConfig, key: &RowKey, beta: f64, trial_seed: u64) -> (TrialStats, bool) {
    let spec = key.scenario(cfg, beta, trial_seed);
    let epochs = cfg.epochs.max(1);
    if let Some(store) = &cfg.store {
        let skey = trial_store_key(&spec, epochs);
        match store.get(&skey) {
            Ok(Some(records)) => {
                assert_eq!(
                    records.len(),
                    epochs,
                    "stored stream for `{skey}` has the wrong epoch count"
                );
                let mut batch = ObservationBatch::new();
                for (i, rec) in records.iter().enumerate() {
                    let row = ObsRow::decode_line(rec).unwrap_or_else(|e| {
                        panic!("store record {i} for `{skey}` does not decode: {e}")
                    });
                    batch.push(row);
                }
                return (batch_stats(&batch), false);
            }
            Ok(None) => {}
            Err(e) => panic!("{e}"),
        }
        let mut driver = crate::checked::build_driver(&spec, cfg.check_invariants);
        let batch = driver.run(epochs);
        let records: Vec<String> =
            (0..batch.len()).map(|i| batch.row_at(i).encode_line()).collect();
        if let Err(e) = store.put(&skey, &records) {
            // A publish failure degrades the cache, not the sweep.
            eprintln!("warning: {e}");
        }
        return (batch_stats(batch), true);
    }
    let mut driver = crate::checked::build_driver(&spec, cfg.check_invariants);
    // One batched run fills the driver's columnar `ObservationBatch`;
    // the mean helpers reduce each column in epoch order, so the stats
    // are bit-identical to the old step-and-accumulate loop.
    let batch = driver.run(epochs);
    (batch_stats(batch), true)
}

/// Evaluate one cell — `trials` seeded simulations of row `key` at β
/// rung `bi`, starting at trial index `t0`.
///
/// This is the one place cell randomness is derived: both the uniform
/// grid and the adaptive refinement engine evaluate cells through here,
/// so a cell addressed by the same `(row, rung, trial)` coordinate is
/// byte-identical across engines — the structural fact behind E12's
/// "same frontier, fewer cell-runs" acceptance claim. `t0 > 0` lets the
/// refinement engine pour *extra* seeds into a cell by extending the
/// same trial stream rather than re-drawing it.
pub fn eval_cell(
    cfg: &FrontierConfig,
    key: &RowKey,
    bi: usize,
    beta: f64,
    t0: usize,
    trials: usize,
) -> Vec<TrialStats> {
    eval_cell_counted(cfg, key, bi, beta, t0, trials).0
}

/// [`eval_cell`], additionally reporting how many of the trials ran
/// **live** (were simulated) rather than replayed from the configured
/// store — the number the refinement cost ledger and the warm-start
/// acceptance test count. Without a store every trial is live.
pub fn eval_cell_counted(
    cfg: &FrontierConfig,
    key: &RowKey,
    bi: usize,
    beta: f64,
    t0: usize,
    trials: usize,
) -> (Vec<TrialStats>, usize) {
    let label = key.label();
    let mut live = 0usize;
    let stats = (t0..t0 + trials)
        .map(|t| {
            let trial_seed = derive_seed_grid(cfg.seed, &label, bi as u64, t as u64);
            let (stats, was_live) = run_trial(cfg, key, beta, trial_seed);
            live += usize::from(was_live);
            stats
        })
        .collect();
    (stats, live)
}

/// One cell of the grid, aggregated over trials (`None` when skipped by
/// the early exit).
#[derive(Clone, Debug)]
struct Cell {
    key: RowKey,
    beta: f64,
    stats: Option<CellStats>,
}

/// Trial-aggregated cell measurements.
#[derive(Clone, Copy, Debug)]
pub struct CellStats {
    /// Mean captured-group fraction over the trials.
    pub captured_frac: f64,
    /// Fraction of trials whose captured fraction exceeded
    /// [`CAPTURE_EPS`] — the Bernoulli rate confidence bands are built
    /// on.
    pub capture_rate: f64,
    /// Mean adversarial IDs per epoch.
    pub bad_ids: f64,
    /// Mean adversarial key-space share.
    pub bad_share: f64,
    /// Mean side-0 red fraction.
    pub frac_red: f64,
    /// Mean dual-search success.
    pub success_dual: f64,
}

impl CellStats {
    /// Aggregate per-trial measurements.
    pub fn of(trials: &[TrialStats]) -> CellStats {
        let n = trials.len().max(1) as f64;
        CellStats {
            captured_frac: trials.iter().map(|t| t.captured_frac).sum::<f64>() / n,
            capture_rate: trials.iter().filter(|t| t.captured_frac > CAPTURE_EPS).count() as f64
                / n,
            bad_ids: trials.iter().map(|t| t.bad_ids).sum::<f64>() / n,
            bad_share: trials.iter().map(|t| t.bad_share).sum::<f64>() / n,
            frac_red: trials.iter().map(|t| t.frac_red).sum::<f64>() / n,
            success_dual: trials.iter().map(|t| t.success_dual).sum::<f64>() / n,
        }
    }
}

/// Everything one frontier sweep emits.
#[derive(Clone, Debug)]
pub struct FrontierOutcome {
    /// The per-cell heatmap table (`e11_frontier.csv`).
    pub cells: Table,
    /// The capture frontier per row (`e11_frontier_map.csv`).
    pub frontier: Table,
    /// Text-rendered β × d₂ heatmap panes, one per (strategy, defense,
    /// churn, topology).
    pub heatmaps: String,
}

impl FrontierOutcome {
    /// The CSV-persisted tables, in emission order.
    pub fn tables(&self) -> [&Table; 2] {
        [&self.cells, &self.frontier]
    }

    /// The frontier β for a (strategy, defense, d₂) row, or `None` when
    /// the strategy never captured within the swept range. With multiple
    /// churn/topology axis values this returns the first matching row in
    /// sweep order; disambiguate through the table directly when those
    /// axes are swept.
    pub fn frontier_beta(&self, strategy: &str, defense: &str, d2: &str) -> Option<f64> {
        self.frontier
            .rows
            .iter()
            .find(|r| r[0] == strategy && r[1] == defense && r[2] == d2)
            .and_then(|r| r[5].parse().ok())
    }
}

/// Run the full grid. Rows — one per [`RowKey`] — fan out in parallel;
/// each row walks β ascending with the overrun early exit.
pub fn run_frontier(cfg: &FrontierConfig) -> FrontierOutcome {
    let rows: Vec<Vec<Cell>> = parallel_map(cfg.rows(), |key| {
        // The grid stream for this row: coordinates are (β index, trial),
        // the label carries the row identity — early exits never shift
        // another cell's randomness.
        let mut out = Vec::with_capacity(cfg.betas.len());
        let mut overrun = false;
        for (bi, &beta) in cfg.betas.iter().enumerate() {
            if overrun {
                out.push(Cell { key, beta, stats: None });
                continue;
            }
            let stats = CellStats::of(&eval_cell(cfg, &key, bi, beta, 0, cfg.trials));
            overrun = stats.captured_frac >= OVERRUN;
            out.push(Cell { key, beta, stats: Some(stats) });
        }
        out
    });

    FrontierOutcome {
        cells: cells_table(cfg, &rows),
        frontier: frontier_table(&rows),
        heatmaps: heatmaps(cfg, &rows),
    }
}

/// The axis columns every sweep table leads with. Shared with the
/// refinement engine so the two engines' maps stay byte-comparable
/// column for column.
pub(crate) fn key_cells(key: &RowKey) -> Vec<String> {
    vec![
        key.strategy.to_string(),
        key.defense.label().to_string(),
        f(key.d2),
        f(key.churn),
        key.kind.name().to_string(),
    ]
}

fn cells_table(cfg: &FrontierConfig, rows: &[Vec<Cell>]) -> Table {
    let mut t = Table::new(
        "e11_frontier",
        &[
            "strategy",
            "defense",
            "d2",
            "churn",
            "kind",
            "beta",
            "status",
            "trials",
            "epochs",
            "bad_ids",
            "bad_share",
            "captured_frac",
            "capture_rate",
            "frac_red_s0",
            "success_dual",
        ],
    );
    for cell in rows.iter().flatten() {
        let mut row = key_cells(&cell.key);
        row.push(f(cell.beta));
        match cell.stats {
            Some(s) => row.extend([
                "run".to_string(),
                cfg.trials.to_string(),
                cfg.epochs.to_string(),
                f(s.bad_ids),
                f(s.bad_share),
                f(s.captured_frac),
                f(s.capture_rate),
                f(s.frac_red),
                f(s.success_dual),
            ]),
            None => row.extend([
                "skipped-overrun".to_string(),
                cfg.trials.to_string(),
                cfg.epochs.to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        }
        t.push(row);
    }
    t
}

fn frontier_table(rows: &[Vec<Cell>]) -> Table {
    let mut t = Table::new(
        "e11_frontier_map",
        &["strategy", "defense", "d2", "churn", "kind", "frontier_beta", "captured_at_frontier"],
    );
    for row in rows {
        if row.is_empty() {
            continue;
        }
        let first =
            row.iter().find(|c| c.stats.map(|s| s.captured_frac > CAPTURE_EPS).unwrap_or(false));
        let (beta, at) = match first {
            Some(c) => (f(c.beta), f(c.stats.expect("found by stats").captured_frac)),
            None => ("-".to_string(), "-".to_string()),
        };
        let mut cells = key_cells(&row[0].key);
        cells.extend([beta, at]);
        t.push(cells);
    }
    t
}

/// One glyph per cell: `·` below the noise floor, `+` captured, `#`
/// overrun, `»` skipped (the row already overran at lower β).
fn glyph(cell: &Cell) -> char {
    match cell.stats {
        None => '»',
        Some(s) if s.captured_frac >= OVERRUN => '#',
        Some(s) if s.captured_frac > CAPTURE_EPS => '+',
        Some(_) => '·',
    }
}

/// Render the β × d₂ panes, d₂ descending (large groups on top — the
/// frontier reads as a coastline rising to the right). With swept churn
/// or topology axes, each (churn, topology) combination gets its own
/// pane; on a single legacy-axes sweep the pane headers keep the
/// original two-part form.
fn heatmaps(cfg: &FrontierConfig, rows: &[Vec<Cell>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for &strategy in &cfg.strategies {
        for &defense in &cfg.defenses {
            for &churn in &cfg.churns {
                for &kind in &cfg.kinds {
                    let legacy_pane = cfg.churns.len() == 1
                        && cfg.kinds.len() == 1
                        && churn == LEGACY_CHURN
                        && kind == GraphKind::Chord;
                    if legacy_pane {
                        let _ = writeln!(out, "[{strategy} vs {}]", defense.label());
                    } else {
                        let _ = writeln!(
                            out,
                            "[{strategy} vs {} | churn={} {}]",
                            defense.label(),
                            f(churn),
                            kind.name()
                        );
                    }
                    let header: Vec<String> = cfg.betas.iter().map(|&b| f(b)).collect();
                    let _ = writeln!(out, "  {:>7}  β= {}", "", header.join("  "));
                    let mut d2s = cfg.d2s.clone();
                    d2s.sort_by(|a, b| b.partial_cmp(a).expect("finite d2"));
                    for d2 in d2s {
                        let row = rows.iter().flatten().filter(|c| {
                            c.key.strategy == strategy
                                && c.key.defense == defense
                                && c.key.d2 == d2
                                && c.key.churn == churn
                                && c.key.kind == kind
                        });
                        let glyphs: Vec<String> = cfg
                            .betas
                            .iter()
                            .map(|&beta| {
                                let cell = row.clone().find(|c| c.beta == beta).expect("full grid");
                                format!("{:^width$}", glyph(cell), width = f(beta).len())
                            })
                            .collect();
                        let _ = writeln!(out, "  d2={:<4}     {}", f(d2), glyphs.join("  "));
                    }
                    let _ = writeln!(out);
                }
            }
        }
    }
    out.push_str("·  quiet (< 1% groups captured)   +  captured   #  overrun (≥ 50%)   »  skipped after overrun\n");
    out
}
