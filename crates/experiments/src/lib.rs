//! # tg-experiments
//!
//! The harness that regenerates every quantitative claim of the paper —
//! the experiment index of `DESIGN.md` §5 and the paper-vs-measured
//! record in `EXPERIMENTS.md`. Each experiment is a library function
//! returning a [`table::Table`] (so integration tests and benches can
//! drive them) plus a thin binary under `src/bin/` that parses CLI
//! options, prints the table, and writes CSV under `results/`.
//!
//! | Binary | Claim reproduced |
//! |---|---|
//! | `e1_robustness` | Theorem 3 / Lemma 4: ε-robustness vs `n`, `β` |
//! | `e2_groupsize` | §I-D: the `Θ(log log n)` threshold |
//! | `e3_costs` | Corollary 1: message/state costs vs the `Θ(log n)` baseline |
//! | `e4_epochs` | Lemma 9 + ablations: dynamic stability, two-graph necessity |
//! | `e5_state` | Lemma 10: per-ID state under the join-request attack |
//! | `e6_pow` | Lemma 11: minting bound, uniformity, one- vs two-hash |
//! | `e7_strings` | Lemma 12: agreement, `O(ln n)` sets, `Õ(n ln T)` messages |
//! | `e8_cuckoo` | The \[47\] data point: cuckoo-rule group-size trade-off |
//! | `e9_precompute` | §IV-B: pre-computation attack neutralized |
//! | `e10_adversaries` | The adversary-strategy matrix: placement strategies × identity pipelines |
//! | `e11_frontier` | The adversary-vs-defense frontier: β × d₂ capture heatmaps over the real `FullSystem` protocol |
//! | `e12_refine` | Adaptive frontier refinement: bisected thresholds with confidence bands over the churn × topology axes |
//! | `e13_scale` | Kernel throughput ladder: legacy vs arena epochs/sec up to 10⁶ identities |
//! | `e14_async` | Actor runtime under network faults: capture and search success vs drop rate × partition length |
//! | `figure1` | Figure 1: the input graph and group graph panels |
//! | `run_all` | Everything above via [`exp::REGISTRY`] (`--only` runs a subset, `--list` prints the registry) |
//!
//! Every experiment that simulates a system constructs it through the
//! unified scenario API (`tg_core::scenario::ScenarioSpec` built by
//! `tg_pow::scenario::build` into an `EpochDriver`) — no direct
//! `DynamicSystem`/`FullSystem` constructor calls in this crate.

pub mod args;
pub mod artifacts;
pub mod checked;
pub mod exp;
pub mod frontier;
pub mod refine;
pub mod table;

pub use args::Options;
pub use checked::build_driver;
pub use frontier::{Defense, FrontierConfig, FrontierOutcome, RowKey};
pub use refine::{RefineConfig, RefineOutcome};
pub use table::Table;
