//! **E9 — the pre-computation attack** (§IV-B).
//!
//! The adversary grinds puzzles for `h` epochs and releases everything
//! at once. Without fresh global strings the hoard is fully valid — the
//! adversary fields `h·βn` IDs instead of `βn`, breaking the β-budget
//! every other analysis step relies on. With per-epoch strings, stale
//! solutions fail verification and the attack collapses back to the
//! single-window budget.

use crate::args::Options;
use crate::table::{f, Table};
use tg_pow::attack::precomputation_attack;
use tg_pow::PuzzleParams;
use tg_sim::stream_rng;

/// Run E9 and return the result table.
pub fn run(opts: &Options) -> Table {
    let n: f64 = if opts.full { 16384.0 } else { 4096.0 };
    let beta = 0.05;
    let params = PuzzleParams::calibrated(16, 2048);
    let hoards = [1u64, 5, 10, 20];

    let mut table = Table::new(
        "e9_precompute",
        &[
            "hoard_epochs",
            "beta_n_budget",
            "accepted_fresh_strings",
            "accepted_stale_strings",
            "amplification",
        ],
    );
    for &h in &hoards {
        let mut rng = stream_rng(opts.seed, "e9", h);
        let out = precomputation_attack(&params, beta * n, h, &mut rng);
        table.push(vec![
            h.to_string(),
            f(beta * n),
            out.accepted_with_fresh_strings.to_string(),
            out.accepted_without_fresh_strings.to_string(),
            f(out.accepted_without_fresh_strings as f64
                / out.accepted_with_fresh_strings.max(1) as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_tracks_hoard_length() {
        let opts = Options {
            kernel: Default::default(),
            runtime: Default::default(),
            seed: 17,
            full: false,
            out_dir: "/tmp".into(),
            quiet: true,
            only: None,
            list: false,
            transport: Default::default(),
            store: None,
            check_invariants: false,
        };
        let t = run(&opts);
        for i in 0..t.rows.len() {
            let h: f64 = t.cell(i, 0);
            let amp: f64 = t.cell(i, 4);
            assert!(
                (amp - h).abs() < 0.35 * h,
                "hoarding {h} epochs must amplify ≈{h}×, got {amp:.2}×"
            );
        }
    }
}
