//! Experiment implementations (one module per DESIGN.md §5 entry).

pub mod e10_adversaries;
pub mod e11_frontier;
pub mod e12_refine;
pub mod e1_robustness;
pub mod e2_groupsize;
pub mod e3_costs;
pub mod e4_epochs;
pub mod e5_state;
pub mod e6_pow;
pub mod e7_strings;
pub mod e8_cuckoo;
pub mod e9_precompute;
pub mod figure1;
