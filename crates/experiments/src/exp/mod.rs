//! Experiment implementations (one module per DESIGN.md §5 entry), and
//! the [`REGISTRY`] the `run_all` binary drives them through.

pub mod e10_adversaries;
pub mod e11_frontier;
pub mod e12_refine;
pub mod e13_scale;
pub mod e14_async;
pub mod e15_model;
pub mod e1_robustness;
pub mod e2_groupsize;
pub mod e3_costs;
pub mod e4_epochs;
pub mod e5_state;
pub mod e6_pow;
pub mod e7_strings;
pub mod e8_cuckoo;
pub mod e9_precompute;
pub mod figure1;

use crate::args::Options;

/// One entry of the experiment registry: the stem `--only` selects by,
/// a one-line description (`run_all --list`), and the run-and-emit
/// entry point.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Stem name (`"e10"`, `"figure1"`, …).
    pub name: &'static str,
    /// One-line description of the claim the experiment reproduces.
    pub description: &'static str,
    /// Run with the given options and emit every produced table.
    pub run: fn(&Options),
}

/// Every experiment, in run order — the single source of truth behind
/// `run_all`'s execution loop, its `--list` output, and its `--only`
/// validation (no hand-maintained name list to drift).
pub const REGISTRY: [Experiment; 16] = [
    Experiment {
        name: "e1",
        description: "Theorem 3 / Lemma 4: ε-robustness vs n, β",
        run: |o| e1_robustness::run(o).emit(o),
    },
    Experiment {
        name: "e2",
        description: "§I-D: the Θ(log log n) group-size threshold",
        run: |o| e2_groupsize::run(o).emit(o),
    },
    Experiment {
        name: "e3",
        description: "Corollary 1: message/state costs vs the Θ(log n) baseline",
        run: |o| e3_costs::run(o).emit(o),
    },
    Experiment {
        name: "e4",
        description: "Lemma 9 + ablations: dynamic stability, two-graph necessity",
        run: |o| e4_epochs::run(o).emit(o),
    },
    Experiment {
        name: "e5",
        description: "Lemma 10: per-ID state under the join-request attack",
        run: |o| e5_state::run(o).emit(o),
    },
    Experiment {
        name: "e6",
        description: "Lemma 11: minting bound, uniformity, one- vs two-hash",
        run: |o| {
            for t in e6_pow::run(o) {
                t.emit(o);
            }
        },
    },
    Experiment {
        name: "e7",
        description: "Lemma 12: string agreement, O(ln n) sets, Õ(n ln T) messages",
        run: |o| e7_strings::run(o).emit(o),
    },
    Experiment {
        name: "e8",
        description: "The [47] data point: cuckoo-rule group-size trade-off",
        run: |o| e8_cuckoo::run(o).emit(o),
    },
    Experiment {
        name: "e9",
        description: "§IV-B: pre-computation attack neutralized",
        run: |o| e9_precompute::run(o).emit(o),
    },
    Experiment {
        name: "e10",
        description: "Adversary-strategy matrix: placement strategies × identity pipelines",
        run: |o| {
            for t in e10_adversaries::run(o) {
                t.emit(o);
            }
        },
    },
    Experiment {
        name: "e11",
        description: "Adversary-vs-defense frontier: β × d₂ capture heatmaps over FullSystem",
        run: |o| {
            for t in e11_frontier::run(o).tables() {
                t.emit(o);
            }
        },
    },
    Experiment {
        name: "e12",
        description: "Adaptive frontier refinement: bisected thresholds over churn × topology",
        run: |o| {
            for t in e12_refine::run(o).tables() {
                t.emit(o);
            }
        },
    },
    Experiment {
        name: "e13",
        description: "Kernel throughput ladder: legacy vs arena epochs/sec up to 10⁶ identities",
        run: |o| e13_scale::run(o).emit(o),
    },
    Experiment {
        name: "e14",
        description: "Actor runtime under faults: capture/search vs drop rate × partition length",
        run: |o| e14_async::run(o).emit(o),
    },
    Experiment {
        name: "e15",
        description: "Exhaustive tiny-model check: every adversary placement × defense, verdicts",
        run: |o| {
            for t in e15_model::run(o) {
                t.emit(o);
            }
        },
    },
    Experiment {
        name: "figure1",
        description: "Figure 1: the input graph and group graph panels",
        run: |o| figure1::run(o).emit(o),
    },
];

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_described() {
        let mut seen = std::collections::HashSet::new();
        for e in REGISTRY {
            assert!(seen.insert(e.name), "duplicate registry name {}", e.name);
            assert!(!e.description.is_empty(), "{} needs a description", e.name);
            assert!(e.description.len() < 90, "{}: keep --list to one line", e.name);
        }
    }

    #[test]
    fn registry_covers_e1_through_e15_in_order() {
        let names: Vec<&str> = REGISTRY.iter().map(|e| e.name).collect();
        let expected: Vec<String> = (1..=15).map(|i| format!("e{i}")).collect();
        assert_eq!(&names[..15], &expected.iter().map(String::as_str).collect::<Vec<_>>()[..]);
        assert_eq!(names[15], "figure1");
    }
}
