//! **E3 — the Corollary 1 cost comparison.**
//!
//! For each `n`, build the tiny-groups construction and the `Θ(log n)`
//! baseline over the same population and measure:
//!
//! * **group communication** — messages for one Byzantine-agreement run
//!   (Phase King) inside an average-size group: `Θ(|G|²)` per round, so
//!   `Θ((log log n)²)` vs `Θ(log²n)`,
//! * **secure routing** — all-to-all messages per search:
//!   `O(D·|G|²)`,
//! * **state** — entries a good ID tracks: co-members of its groups plus
//!   members of neighboring groups,
//! * plus the single-ID strawman's success rate (cheap and broken —
//!   §I-A's "not trivial" argument).
//!
//! Paper shape: tiny-group costs grow like `poly(log log n)` — nearly
//! flat — while the baseline grows like `log²n`; the ratio widens with
//! `n`.

use crate::args::Options;
use crate::table::{f, Table};
use tg_ba::{phase_king, AdversaryMode};
use tg_baselines::measure_single_id_routing;
use tg_core::{build_initial_graph, measure_robustness, GroupGraph, Params, Population};
use tg_crypto::OracleFamily;
use tg_overlay::GraphKind;
use tg_sim::stream_rng;

/// Mean state entries per good ID: co-members of every group the ID
/// belongs to, plus members of the leader's neighboring groups.
fn mean_state_per_id(gg: &GroupGraph) -> f64 {
    let pool_len = gg.pool.len();
    let mut membership_state = vec![0usize; pool_len];
    for (gi, group) in gg.groups.iter().enumerate() {
        let size = gg.group_size(gi);
        for &m in &group.members {
            membership_state[m as usize] += size.saturating_sub(1);
        }
    }
    let ring = gg.leaders.ring();
    let mut link_state = vec![0usize; gg.len()];
    for (w, state) in link_state.iter_mut().enumerate() {
        for u in gg.topology.neighbors(ring.at(w)) {
            let ui = ring.index_of(u).expect("neighbor on ring");
            *state += gg.group_size(ui);
        }
    }
    // Leaders and pool share the ring in static builds: combine.
    let good: Vec<usize> = (0..pool_len).filter(|&i| !gg.pool.is_bad(i)).collect();
    let total: usize = good.iter().map(|&i| membership_state[i] + link_state[i]).sum();
    total as f64 / good.len().max(1) as f64
}

/// Costs for one construction.
struct Costs {
    group_size: f64,
    ba_msgs: u64,
    routing_msgs: f64,
    hops: f64,
    state: f64,
    success: f64,
}

fn measure(gg: &GroupGraph, params: &Params, searches: usize, seed: u64) -> Costs {
    let mut rng = stream_rng(seed, "e3-measure", gg.len() as u64);
    let rep = measure_robustness(gg, params, searches, &mut rng);
    let m = rep.mean_group_size.round().max(1.0) as usize;
    let ba = phase_king(&vec![1u64; m], &vec![false; m], AdversaryMode::Honest);
    Costs {
        group_size: rep.mean_group_size,
        ba_msgs: ba.msgs,
        routing_msgs: rep.mean_msgs,
        hops: rep.mean_hops,
        state: mean_state_per_id(gg),
        success: rep.search_success,
    }
}

/// Run E3 and return the result table.
pub fn run(opts: &Options) -> Table {
    let ns: Vec<usize> = if opts.full {
        vec![1 << 10, 1 << 12, 1 << 14, 1 << 16]
    } else {
        vec![1 << 10, 1 << 12, 1 << 14]
    };
    let beta = 0.05;
    let searches = if opts.full { 1500 } else { 600 };

    let mut table = Table::new(
        "e3_costs",
        &["n", "scheme", "|G|", "ba_msgs", "route_msgs", "hops", "state_per_id", "search_success"],
    );

    for &n in &ns {
        let mut rng = stream_rng(opts.seed, "e3-pop", n as u64);
        let n_bad = (n as f64 * beta).round() as usize;
        let pop = Population::uniform(n - n_bad, n_bad, &mut rng);
        let fam = OracleFamily::new(opts.seed ^ n as u64);

        // Tiny groups (the paper) on a constant-degree graph — the
        // configuration Corollary 1 is stated for.
        let tiny_params = Params::paper_defaults();
        let tiny = build_initial_graph(pop.clone(), GraphKind::D2B, fam.h1, &tiny_params);
        let c = measure(&tiny, &tiny_params, searches, opts.seed);
        table.push(vec![
            n.to_string(),
            "tiny-loglog".into(),
            f(c.group_size),
            c.ba_msgs.to_string(),
            f(c.routing_msgs),
            f(c.hops),
            f(c.state),
            f(c.success),
        ]);

        // The Θ(log n) baseline.
        let base_params = Params::paper_defaults().with_classic_groups(1.5);
        let base = build_initial_graph(pop.clone(), GraphKind::D2B, fam.h1, &base_params);
        let c = measure(&base, &base_params, searches, opts.seed);
        table.push(vec![
            n.to_string(),
            "classic-logn".into(),
            f(c.group_size),
            c.ba_msgs.to_string(),
            f(c.routing_msgs),
            f(c.hops),
            f(c.state),
            f(c.success),
        ]);

        // The single-ID strawman.
        let graph = GraphKind::D2B.build(pop.ring().clone());
        let mut rng = stream_rng(opts.seed, "e3-single", n as u64);
        let s = measure_single_id_routing(&pop, graph.as_ref(), searches, &mut rng);
        table.push(vec![
            n.to_string(),
            "single-id".into(),
            "1".into(),
            "0".into(),
            f(s.mean_route_len),
            f(s.mean_route_len),
            "1".into(),
            f(s.success_rate),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_groups_cost_less_and_route_as_well() {
        let opts = Options {
            kernel: Default::default(),
            runtime: Default::default(),
            seed: 5,
            full: false,
            out_dir: "/tmp".into(),
            quiet: true,
            only: None,
            list: false,
            transport: Default::default(),
            store: None,
            check_invariants: false,
        };
        let mut rng = stream_rng(opts.seed, "e3-test", 0);
        let pop = Population::uniform(2000, 100, &mut rng);
        let fam = OracleFamily::new(9);
        let tiny_params = Params::paper_defaults();
        let tiny = build_initial_graph(pop.clone(), GraphKind::D2B, fam.h1, &tiny_params);
        let base_params = Params::paper_defaults().with_classic_groups(1.5);
        let base = build_initial_graph(pop, GraphKind::D2B, fam.h1, &base_params);
        let ct = measure(&tiny, &tiny_params, 300, 1);
        let cb = measure(&base, &base_params, 300, 1);
        assert!(ct.ba_msgs < cb.ba_msgs, "BA: {} vs {}", ct.ba_msgs, cb.ba_msgs);
        assert!(ct.routing_msgs < cb.routing_msgs);
        assert!(ct.state < cb.state);
        assert!(ct.success > 0.85, "tiny groups still route: {:.3}", ct.success);
    }

    #[test]
    fn state_metric_counts_comember_and_links() {
        let mut rng = stream_rng(1, "e3-test2", 0);
        let pop = Population::uniform(300, 0, &mut rng);
        let gg = build_initial_graph(
            pop,
            GraphKind::D2B,
            OracleFamily::new(2).h1,
            &Params::paper_defaults(),
        );
        let s = mean_state_per_id(&gg);
        let g = gg.mean_group_size();
        // Each ID belongs to ≈ |G| groups of size |G| and links to a few
        // neighbor groups: state = Θ(|G|²).
        assert!(s > 0.5 * g * g, "state {s:.1} vs |G|² ≈ {:.1}", g * g);
        assert!(s < 10.0 * g * g, "state {s:.1} vs |G|² ≈ {:.1}", g * g);
    }
}
