//! **E7 — global random-string propagation** (Lemma 12, Appendix VIII).
//!
//! Run the bins/counters flood over the blue subgraph of a freshly built
//! group graph, sweeping the adversary's release timing, and check the
//! three Lemma 12 claims: (i) every good giant-component ID's
//! end-of-Phase-2 minimum lands in everyone's solution set, (ii) solution
//! sets stay `O(ln n)`, (iii) per-node forwards stay polylogarithmic
//! (message total `Õ(n ln T)`).

use crate::args::Options;
use crate::table::{f, Table};
use tg_core::{build_initial_graph, Params, Population};
use tg_crypto::OracleFamily;
use tg_overlay::GraphKind;
use tg_pow::{run_string_protocol, StringAdversary, StringParams};
use tg_sim::stream_rng;

/// Run E7 and return the result table.
pub fn run(opts: &Options) -> Table {
    let n: usize = if opts.full { 4096 } else { 1024 };
    let beta = 0.05;
    let n_bad = (n as f64 * beta).round() as usize;

    let mut rng = stream_rng(opts.seed, "e7-pop", 0);
    let pop = Population::uniform(n - n_bad, n_bad, &mut rng);
    let gg = build_initial_graph(
        pop,
        GraphKind::Chord,
        OracleFamily::new(opts.seed).h1,
        &Params::paper_defaults(),
    );
    let params = StringParams::default();

    // `weak-β` uses the adversary's honest compute budget (its best
    // outputs usually lose to the good global minimum — the measured
    // finding that a small-β adversary cannot even field a candidate);
    // the `records@…` rows force the lucky tail Lemma 12 must survive.
    let scenarios: Vec<(&str, StringAdversary)> = vec![
        ("none", StringAdversary::None),
        (
            "weak-beta@0.49",
            StringAdversary::DelayedRelease { strings: 8, release_frac: 0.49, units: n_bad as f64 },
        ),
        ("records@0.30", StringAdversary::ForcedRecords { strings: 8, release_frac: 0.30 }),
        ("records@0.49", StringAdversary::ForcedRecords { strings: 8, release_frac: 0.49 }),
        ("records@0.70", StringAdversary::ForcedRecords { strings: 8, release_frac: 0.70 }),
        ("records@0.95", StringAdversary::ForcedRecords { strings: 8, release_frac: 0.95 }),
    ];

    let mut table = Table::new(
        "e7_strings",
        &[
            "adversary",
            "agreement",
            "missing_pairs",
            "giant_size",
            "mean_|R|",
            "max_|R|",
            "forwards_per_node",
            "messages",
            "steps",
        ],
    );
    for (idx, (label, adv)) in scenarios.into_iter().enumerate() {
        let mut rng = stream_rng(opts.seed, "e7-run", idx as u64);
        let out = run_string_protocol(&gg, &params, adv, &mut rng);
        table.push(vec![
            label.to_string(),
            out.agreement.to_string(),
            out.missing_pairs.to_string(),
            out.giant_size.to_string(),
            f(out.solution_set_sizes.mean),
            f(out.solution_set_sizes.max),
            f(out.forwards as f64 / gg.len() as f64),
            out.messages.to_string(),
            out.steps.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_agree_and_sets_stay_logarithmic() {
        let opts = Options {
            kernel: Default::default(),
            runtime: Default::default(),
            seed: 13,
            full: false,
            out_dir: "/tmp".into(),
            quiet: true,
            only: None,
            list: false,
            transport: Default::default(),
            store: None,
            check_invariants: false,
        };
        let t = run(&opts);
        assert_eq!(t.rows.len(), 6);
        let n = 1024f64;
        let ln_n = n.ln();
        // Per-node sends ≤ bins × cap × degree: every quantity polylog.
        let bins = (2.0 * (n * 4096.0).ln()).ceil();
        let cap = (2.0 * ln_n).ceil();
        let degree = 2.5 * ln_n; // Chord's deduplicated finger count
        for (i, row) in t.rows.iter().enumerate() {
            assert_eq!(row[1], "true", "agreement must hold for scenario {}", row[0]);
            let max_r: f64 = t.cell(i, 5);
            assert!(max_r <= (3.0f64 * ln_n).ceil(), "|R| bound violated: {max_r}");
            let fw: f64 = t.cell(i, 6);
            assert!(
                fw < bins * cap * degree,
                "forwards per node {fw} vs cap {:.0}",
                bins * cap * degree
            );
        }
    }
}
