//! **E8 — the cuckoo-rule baseline** (the Commensal Cuckoo \[47\] data
//! point the paper quotes).
//!
//! Sweep region (group) size and `β` under the join-leave attack and
//! measure join/leave events survived before some region loses its good
//! majority. The paper's quoted finding — `n = 8192`, `β ≈ 0.002` needs
//! `|G| = 64` for 10⁵ events — is the `--full` configuration's headline
//! row. The contrast: the tiny-groups construction (with PoW bounding
//! the adversary) runs at `|G| ≈ ln ln n`-scale groups — an order of
//! magnitude smaller — and E4 shows it surviving epochs of full
//! membership turnover.

use crate::args::Options;
use crate::table::{f, Table};
use tg_baselines::{CuckooParams, CuckooSim, CuckooStrategy};
use tg_sim::{parallel_map, stream_rng};

/// Run E8 and return the result table.
pub fn run(opts: &Options) -> Table {
    let n: usize = if opts.full { 8192 } else { 2048 };
    let budget: u64 = if opts.full { 100_000 } else { 30_000 };
    let group_sizes = [8usize, 16, 32, 64];
    let betas = [0.002, 0.01, 0.05];
    let trials: u64 = if opts.full { 3 } else { 2 };
    let seed = opts.seed;

    let mut cells = Vec::new();
    for &g in &group_sizes {
        for &beta in &betas {
            for trial in 0..trials {
                cells.push((g, beta, trial));
            }
        }
    }
    let results = parallel_map(cells, move |(g, beta, trial): (usize, f64, u64)| {
        let n_bad = ((n as f64) * beta).round().max(1.0) as usize;
        let params = CuckooParams { n_good: n - n_bad, n_bad, group_size: g, k: 4 };
        let mut rng = stream_rng(seed, "e8", (g as u64) << 32 | ((beta * 1e4) as u64) << 8 | trial);
        let mut sim = CuckooSim::new(params, &mut rng);
        let out = sim.run(budget, CuckooStrategy::RandomRejoin, &mut rng);
        (g, beta, trial, out)
    });

    let mut table = Table::new(
        "e8_cuckoo",
        &[
            "n",
            "group_size",
            "beta",
            "trial",
            "events_survived",
            "survived_budget",
            "worst_bad_fraction",
        ],
    );
    for (g, beta, trial, out) in results {
        table.push(vec![
            n.to_string(),
            g.to_string(),
            f(beta),
            trial.to_string(),
            out.failed_at.unwrap_or(out.events).to_string(),
            out.failed_at.is_none().to_string(),
            f(out.worst_bad_fraction),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The \[47\] shape: at fixed β, survival time grows with group size;
    /// log-log-sized regions die early.
    #[test]
    fn survival_grows_with_group_size() {
        let survived = |g: usize, seed: u64| -> u64 {
            let params = CuckooParams { n_good: 1960, n_bad: 40, group_size: g, k: 4 };
            let mut rng = stream_rng(seed, "e8-test", g as u64);
            let mut sim = CuckooSim::new(params, &mut rng);
            let out = sim.run(20_000, CuckooStrategy::RandomRejoin, &mut rng);
            out.failed_at.unwrap_or(out.events)
        };
        let small: u64 = (0..2).map(|s| survived(8, s)).sum();
        let large: u64 = (0..2).map(|s| survived(64, s)).sum();
        assert!(large > small, "64-node regions must outlive 8-node regions: {large} vs {small}");
        assert!(small < 2 * 20_000, "8-node regions must actually fail within budget");
    }
}
