//! **E5 — per-ID state under the join-request attack** (Lemma 10).
//!
//! The adversary tries to inflate good IDs' state by sending spurious
//! membership requests; a good ID accepts one only when *both* of its
//! verification searches fail (it then took the adversary's word). The
//! lemma: expected memberships stay `O(log log n)` per graph and
//! erroneous acceptances stay `O(1)` — sweep the attack intensity and
//! check the state stays flat.

use crate::args::Options;
use crate::table::{f, Table};
use tg_core::scenario::ScenarioSpec;
use tg_overlay::GraphKind;

/// Run E5 and return the result table.
pub fn run(opts: &Options) -> Table {
    let n_good: usize = if opts.full { 2000 } else { 600 };
    let beta = 0.05;
    let n_bad = (n_good as f64 * beta / (1.0 - beta)).round() as usize;
    let epochs = if opts.full { 4 } else { 3 };
    let attack_levels = [0usize, 4, 16];

    let mut table = Table::new(
        "e5_state",
        &[
            "attack_reqs_per_id",
            "epoch",
            "mean_memberships",
            "max_memberships",
            "spurious_issued",
            "spurious_accepted",
            "accept_rate",
        ],
    );

    for &attack in &attack_levels {
        let spec = ScenarioSpec::new(n_good, opts.seed)
            .budget(n_bad)
            .churn(0.2)
            .attack_requests(attack)
            .topology(GraphKind::D2B)
            .searches(200)
            .kernel(opts.kernel)
            .runtime(opts.runtime)
            .transport(opts.transport);
        let mut sys = crate::checked::build_driver(&spec, opts.check_invariants);
        for _ in 0..epochs {
            let r = sys.step();
            let accept_rate = if r.build.spurious_issued > 0 {
                r.build.spurious_accepted as f64 / r.build.spurious_issued as f64
            } else {
                0.0
            };
            table.push(vec![
                attack.to_string(),
                r.epoch.to_string(),
                f(r.mean_memberships),
                r.max_memberships.to_string(),
                r.build.spurious_issued.to_string(),
                r.build.spurious_accepted.to_string(),
                f(accept_rate),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lemma 10's content: even a 16×-per-ID request barrage changes the
    /// accepted state by at most O(1) per ID, because acceptance needs a
    /// dual search failure.
    #[test]
    fn attack_barely_moves_state() {
        let opts = Options {
            kernel: Default::default(),
            runtime: Default::default(),
            seed: 7,
            full: false,
            out_dir: "/tmp".into(),
            quiet: true,
            only: None,
            list: false,
            transport: Default::default(),
            store: None,
            check_invariants: false,
        };
        let t = run(&opts);
        // Partition rows by attack level; compare mean memberships.
        let rows_for = |attack: &str| -> Vec<usize> {
            (0..t.rows.len()).filter(|&i| t.rows[i][0] == attack).collect()
        };
        let mean_for = |attack: &str| -> f64 {
            let rows = rows_for(attack);
            rows.iter().map(|&i| t.cell::<f64>(i, 2)).sum::<f64>() / rows.len() as f64
        };
        let none = mean_for("0");
        let heavy = mean_for("16");
        assert!(
            (heavy - none).abs() / none < 0.25,
            "state must stay flat under attack: {none:.1} vs {heavy:.1}"
        );
        // And acceptance of spurious requests is rare.
        for i in rows_for("16") {
            let rate: f64 = t.cell(i, 6);
            assert!(rate < 0.05, "spurious accept rate {rate}");
        }
    }
}
