//! **E4 — dynamic stability across epochs, with ablations** (Lemma 9 and
//! the §III "why two graphs" argument).
//!
//! Three configurations run side by side over the same epoch count:
//!
//! * `dual` — the paper: two group graphs, dual searches, link updates
//!   retried (the "Updating Links" re-run semantics),
//! * `dual-oneshot` — two graphs but every link gets exactly one
//!   dual-search attempt: the confusion feedback loop
//!   (`new confusion ≈ 2L·q_f²`) sits near unit gain at simulation
//!   scales, so transient red groups can amplify,
//! * `single` — one group graph, single searches (`q_f` per slot instead
//!   of `q_f²`): the naive hand-off the paper explicitly warns against.
//!
//! Paper shape: `dual` holds `frac_red` flat (self-healing after
//! transients); the ablations degrade — `single` visibly compounds.

use crate::args::Options;
use crate::table::{f, Table};
use tg_core::dynamic::BuildMode;
use tg_core::scenario::ScenarioSpec;

/// One configuration's label and system settings.
fn configs(opts: &Options) -> Vec<(&'static str, BuildMode, usize)> {
    let _ = opts;
    vec![
        ("dual", BuildMode::DualGraph, 2),
        ("dual-oneshot", BuildMode::DualGraph, 0),
        ("single", BuildMode::SingleGraph, 2),
    ]
}

/// Run E4 and return the result table.
///
/// Defaults sit inside the finite-size stability region (Chord routes are
/// half the length of D2B's at these `n`, and churn is kept below the
/// analysis bound): the construction's guarantees are asymptotic ("given
/// that n is sufficiently large", §I-C), and the ablation columns are the
/// ones meant to show divergence.
pub fn run(opts: &Options) -> Table {
    let n_good: usize = if opts.full { 4000 } else { 2000 };
    let beta = 0.05;
    let epochs = if opts.full { 16 } else { 10 };
    let n_bad = (n_good as f64 * beta / (1.0 - beta)).round() as usize;

    let mut table = Table::new(
        "e4_epochs",
        &[
            "config",
            "epoch",
            "frac_red_s0",
            "frac_confused_s0",
            "success_single",
            "success_dual",
            "captured_slots",
            "links_failed",
        ],
    );

    for (label, mode, retries) in configs(opts) {
        let spec = ScenarioSpec::new(n_good, opts.seed)
            .budget(n_bad)
            .churn(0.15)
            .attack_requests(0)
            .link_retries(retries)
            .build_mode(mode)
            .searches(if opts.full { 800 } else { 400 })
            .kernel(opts.kernel)
            .runtime(opts.runtime)
            .transport(opts.transport);
        let mut sys = crate::checked::build_driver(&spec, opts.check_invariants);
        for _ in 0..epochs {
            let r = sys.step();
            table.push(vec![
                label.to_string(),
                r.epoch.to_string(),
                f(r.frac_red[0]),
                f(r.frac_confused[0]),
                f(r.search_success_single),
                f(r.search_success_dual),
                r.build.captured_slots.to_string(),
                r.build.links_failed.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline contrast at miniature scale: the paper configuration
    /// stays robust; the single-graph hand-off ends worse.
    #[test]
    fn dual_beats_single_over_epochs() {
        let run_final = |mode: BuildMode, retries: usize| -> (f64, f64) {
            let spec = ScenarioSpec::new(400, 11)
                .budget(21)
                .churn(0.2)
                .attack_requests(0)
                .link_retries(retries)
                .topology(tg_overlay::GraphKind::D2B)
                .build_mode(mode)
                .searches(200);
            let mut sys = spec.build().expect("honest no-PoW scenario");
            let b = sys.run(6);
            let last = b.len() - 1;
            (b.frac_red_s0()[last], b.search_success_dual()[last])
        };
        let (red_dual, success_dual) = run_final(BuildMode::DualGraph, 2);
        let (red_single, success_single) = run_final(BuildMode::SingleGraph, 2);
        assert!(success_dual > 0.85, "paper config success {success_dual:.3}");
        assert!(red_dual < 0.1, "paper config red fraction {red_dual:.3}");
        assert!(
            red_single >= red_dual,
            "single-graph must not beat the paper: {red_single:.3} vs {red_dual:.3}"
        );
        assert!(success_single <= success_dual + 0.02);
    }
}
