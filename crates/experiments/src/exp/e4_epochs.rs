//! **E4 — dynamic stability across epochs, with ablations** (Lemma 9 and
//! the §III "why two graphs" argument).
//!
//! Three configurations run side by side over the same epoch count:
//!
//! * `dual` — the paper: two group graphs, dual searches, link updates
//!   retried (the "Updating Links" re-run semantics),
//! * `dual-oneshot` — two graphs but every link gets exactly one
//!   dual-search attempt: the confusion feedback loop
//!   (`new confusion ≈ 2L·q_f²`) sits near unit gain at simulation
//!   scales, so transient red groups can amplify,
//! * `single` — one group graph, single searches (`q_f` per slot instead
//!   of `q_f²`): the naive hand-off the paper explicitly warns against.
//!
//! Paper shape: `dual` holds `frac_red` flat (self-healing after
//! transients); the ablations degrade — `single` visibly compounds.

use crate::args::Options;
use crate::table::{f, Table};
use tg_core::dynamic::{BuildMode, DynamicSystem, UniformProvider};
use tg_core::Params;
use tg_overlay::GraphKind;

/// One configuration's label and system settings.
fn configs(opts: &Options) -> Vec<(&'static str, BuildMode, usize)> {
    let _ = opts;
    vec![
        ("dual", BuildMode::DualGraph, 2),
        ("dual-oneshot", BuildMode::DualGraph, 0),
        ("single", BuildMode::SingleGraph, 2),
    ]
}

/// Run E4 and return the result table.
///
/// Defaults sit inside the finite-size stability region (Chord routes are
/// half the length of D2B's at these `n`, and churn is kept below the
/// analysis bound): the construction's guarantees are asymptotic ("given
/// that n is sufficiently large", §I-C), and the ablation columns are the
/// ones meant to show divergence.
pub fn run(opts: &Options) -> Table {
    let n_good: usize = if opts.full { 4000 } else { 2000 };
    let beta = 0.05;
    let epochs = if opts.full { 16 } else { 10 };
    let n_bad = (n_good as f64 * beta / (1.0 - beta)).round() as usize;

    let mut table = Table::new(
        "e4_epochs",
        &[
            "config",
            "epoch",
            "frac_red_s0",
            "frac_confused_s0",
            "success_single",
            "success_dual",
            "captured_slots",
            "links_failed",
        ],
    );

    for (label, mode, retries) in configs(opts) {
        let mut params = Params::paper_defaults();
        params.churn_rate = 0.15;
        params.attack_requests_per_id = 0;
        params.link_retries = retries;
        let mut provider = UniformProvider { n_good, n_bad };
        let mut sys = DynamicSystem::new(params, GraphKind::Chord, mode, &mut provider, opts.seed);
        sys.searches_per_epoch = if opts.full { 800 } else { 400 };
        for _ in 0..epochs {
            let r = sys.advance_epoch(&mut provider);
            table.push(vec![
                label.to_string(),
                r.epoch.to_string(),
                f(r.frac_red[0]),
                f(r.frac_confused[0]),
                f(r.search_success_single),
                f(r.search_success_dual),
                r.build.captured_slots.to_string(),
                r.build.links_failed.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline contrast at miniature scale: the paper configuration
    /// stays robust; the single-graph hand-off ends worse.
    #[test]
    fn dual_beats_single_over_epochs() {
        let run_final = |mode: BuildMode, retries: usize| -> (f64, f64) {
            let mut params = Params::paper_defaults();
            params.churn_rate = 0.2;
            params.attack_requests_per_id = 0;
            params.link_retries = retries;
            let mut provider = UniformProvider { n_good: 400, n_bad: 21 };
            let mut sys = DynamicSystem::new(params, GraphKind::D2B, mode, &mut provider, 11);
            sys.searches_per_epoch = 200;
            let mut last = (0.0, 0.0);
            for _ in 0..6 {
                let r = sys.advance_epoch(&mut provider);
                last = (r.frac_red[0], r.search_success_dual);
            }
            last
        };
        let (red_dual, success_dual) = run_final(BuildMode::DualGraph, 2);
        let (red_single, success_single) = run_final(BuildMode::SingleGraph, 2);
        assert!(success_dual > 0.85, "paper config success {success_dual:.3}");
        assert!(red_dual < 0.1, "paper config red fraction {red_dual:.3}");
        assert!(
            red_single >= red_dual,
            "single-graph must not beat the paper: {red_single:.3} vs {red_dual:.3}"
        );
        assert!(success_single <= success_dual + 0.02);
    }
}
