//! **E6 — proof-of-work minting** (Lemma 11 and the two-hash argument).
//!
//! Four measurements:
//!
//! 1. the adversary's minted-ID count per window concentrates at `βn`
//!    (the `(1+ε)βn` bound),
//! 2. its ID values pass a uniformity test (`f∘g` output),
//! 3. the targeted-interval attack: devastating against the single-hash
//!    scheme, useless against the paper's two-hash composition,
//! 4. the honest-miner reality check: with one expected solution per
//!    window, a good participant misses with probability `≈ 1/e`
//!    (the concentration the paper assumes and we report honestly).

use crate::args::Options;
use crate::table::{f, Table};
use tg_crypto::OracleFamily;
use tg_idspace::{Id, RingInterval};
use tg_pow::attack::targeted_interval_attack;
use tg_pow::{MintingSim, PuzzleParams};
use tg_sim::stats::{chi_square_accepts_uniform, chi_square_uniform};
use tg_sim::stream_rng;

/// Run E6 and return the result tables (minting + attack).
pub fn run(opts: &Options) -> Vec<Table> {
    let n_good: usize = if opts.full { 50_000 } else { 10_000 };
    let betas = [0.05, 0.10, 0.25];
    let windows = if opts.full { 10 } else { 5 };

    // --- Lemma 11: counts and uniformity ---
    let mut minting = Table::new(
        "e6_pow_minting",
        &[
            "beta",
            "mode",
            "window",
            "adversary_ids",
            "beta_n",
            "ratio",
            "chi2_uniform",
            "good_misses",
            "miss_rate",
        ],
    );
    for &beta in &betas {
        for (mode, idealized) in [("idealized", true), ("realistic", false)] {
            let sim = MintingSim {
                params: PuzzleParams::calibrated(16, 4096),
                n_good,
                adversary_units: beta * n_good as f64,
                idealized_good: idealized,
            };
            let mut rng =
                stream_rng(opts.seed, "e6-mint", (beta * 100.0) as u64 ^ idealized as u64);
            for w in 0..windows {
                let out = sim.run_window(&mut rng);
                let values: Vec<f64> = out.bad_ids.iter().map(|id| id.as_f64()).collect();
                let uniform = if values.len() >= 64 {
                    let (stat, dof) = chi_square_uniform(&values, 32);
                    chi_square_accepts_uniform(stat, dof)
                } else {
                    true
                };
                let beta_n = beta * n_good as f64;
                minting.push(vec![
                    f(beta),
                    mode.to_string(),
                    w.to_string(),
                    out.bad_ids.len().to_string(),
                    f(beta_n),
                    f(out.bad_ids.len() as f64 / beta_n),
                    uniform.to_string(),
                    out.good_misses.to_string(),
                    f(out.good_misses as f64 / n_good as f64),
                ]);
            }
        }
    }

    // --- The two-hash vs single-hash attack ---
    let mut attack = Table::new(
        "e6_pow_attack",
        &["scheme", "target_width", "ids_minted", "frac_in_target", "bias_factor"],
    );
    let fam = OracleFamily::new(opts.seed);
    let params = PuzzleParams { tau: Id::from_f64(0.02), attempts_per_step: 1, t_epoch: 2 };
    let width = 0.01;
    let target = RingInterval::between(Id::from_f64(0.40), Id::from_f64(0.40 + width));
    let attempts = if opts.full { 200_000 } else { 50_000 };
    let mut rng = stream_rng(opts.seed, "e6-attack", 0);
    let out = targeted_interval_attack(&fam, &params, target, attempts, &mut rng);
    attack.push(vec![
        "single-hash".into(),
        f(width),
        out.single_hash_count.to_string(),
        f(out.single_hash_in_target),
        f(out.single_hash_in_target / width),
    ]);
    attack.push(vec![
        "two-hash (paper)".into(),
        f(width),
        out.two_hash_count.to_string(),
        f(out.two_hash_in_target),
        f(out.two_hash_in_target / width),
    ]);

    vec![minting, attack]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minting_rows_have_ratio_near_one_and_attack_contrast() {
        let opts = Options {
            kernel: Default::default(),
            runtime: Default::default(),
            seed: 42,
            full: false,
            out_dir: "/tmp".into(),
            quiet: true,
            only: None,
            list: false,
            transport: Default::default(),
            store: None,
            check_invariants: false,
        };
        let tables = run(&opts);
        let minting = &tables[0];
        // The experiment is a pure function of the seed (labelled RNG
        // streams, no scheduling dependence), so the chi-square outcome
        // per window is deterministic: at this pinned seed every one of
        // the 30 windows accepts uniformity. No statistical tolerance —
        // any refactor that shifts the stream or the statistic fails
        // this exactly.
        for (i, row) in minting.rows.iter().enumerate() {
            let ratio: f64 = minting.cell(i, 5);
            assert!((0.7..1.3).contains(&ratio), "adversary count ratio {ratio}");
            assert_eq!(row[6], "true", "uniformity must hold at seed 42: row {row:?}");
        }
        // Realistic rows show the 1/e miss rate; idealized rows zero.
        for (i, row) in minting.rows.iter().enumerate() {
            let miss: f64 = minting.cell(i, 8);
            if row[1] == "idealized" {
                assert_eq!(miss, 0.0);
            } else {
                assert!((0.3..0.45).contains(&miss), "miss rate {miss}");
            }
        }
        let attack = &tables[1];
        let single_bias: f64 = attack.cell(0, 4);
        let two_bias: f64 = attack.cell(1, 4);
        assert!(single_bias > 50.0, "single-hash bias factor {single_bias}");
        assert!(two_bias < 3.0, "two-hash bias factor {two_bias}");
    }
}
