//! **E11 — the adversary-vs-defense frontier sweep** (the boundary of
//! Theorem 3, mapped instead of point-sampled).
//!
//! A β × d₂ grid per (strategy, defense) pane, run by the
//! [`crate::frontier`] engine. The no-PoW column drives the abstract
//! §III [`tg_core::dynamic::DynamicSystem`]; every PoW column drives
//! the **real** `tg-pow::FullSystem` epoch-string protocol with a
//! strategic adversary inside the minting pipeline — the first time the
//! §IV-B mechanics (string agreement, hoarding, stale-solution culling)
//! face the adaptive strategies.
//!
//! Expected shape: the no-PoW frontier for the adaptive strategies
//! (`gap-filling`, `adaptive-majority-flipper`) sits at low β — free
//! placement amplifies a small budget into captured groups — while the
//! paper's `f∘g` column pushes every strategy's frontier up to the β
//! where even uniform noise overwhelms a `d₂·ln ln n`-sized group. The
//! `f∘g-frozen` column isolates §IV-B: same scheme, but minting never
//! rotates its string, so the `precompute-hoarder` compounds across
//! epochs (at small scale the placement strategies are unaffected —
//! freezing the string only re-opens the pre-computation axis).

use crate::args::Options;
use crate::frontier::{run_frontier, Defense, FrontierConfig, FrontierOutcome, LEGACY_CHURN};
use tg_overlay::GraphKind;
use tg_pow::MintScheme;

/// The strategy axis of the small (per-PR) grid.
pub const STRATEGIES: [&str; 3] = ["uniform", "gap-filling", "adaptive-majority-flipper"];

/// The strategy axis of the `--full` (nightly) grid.
pub const STRATEGIES_FULL: [&str; 5] = [
    "uniform",
    "gap-filling",
    "interval-targeting",
    "adaptive-majority-flipper",
    "precompute-hoarder",
];

/// The adaptive strategies the acceptance contrast is stated over
/// (placement chosen from observed state, the hardest rows per
/// Dufoulon–Pandurangan's adaptive-adversary lens).
pub const ADAPTIVE_STRATEGIES: [&str; 2] = ["gap-filling", "adaptive-majority-flipper"];

/// The defense axis: no PoW, the warned-against single-hash scheme, the
/// paper's `f∘g`, and `f∘g` with the §IV-B fresh-string defense off.
pub const DEFENSES: [Defense; 4] = [
    Defense::NoPow,
    Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true },
    Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
    Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: false },
];

/// The grid for the given options: a 3×3 (β × d₂) sweep per pane at
/// small scale, an 8×5 sweep with all five strategies under `--full`.
pub fn config(opts: &Options) -> FrontierConfig {
    if opts.full {
        FrontierConfig {
            n_good: 2000,
            betas: vec![0.03, 0.06, 0.10, 0.15, 0.21, 0.28, 0.36, 0.45],
            d2s: vec![2.0, 3.0, 4.0, 6.0, 8.0],
            churns: vec![LEGACY_CHURN],
            kinds: vec![GraphKind::Chord],
            strategies: STRATEGIES_FULL.to_vec(),
            defenses: DEFENSES.to_vec(),
            epochs: 5,
            trials: 3,
            searches: 400,
            seed: opts.seed,
            kernel: opts.kernel,
            runtime: opts.runtime,
            transport: opts.transport,
            store: opts.open_store(),
            check_invariants: opts.check_invariants,
        }
    } else {
        FrontierConfig {
            n_good: 380,
            betas: vec![0.06, 0.12, 0.25],
            d2s: vec![3.0, 4.0, 6.0],
            churns: vec![LEGACY_CHURN],
            kinds: vec![GraphKind::Chord],
            strategies: STRATEGIES.to_vec(),
            defenses: DEFENSES.to_vec(),
            epochs: 2,
            trials: 1,
            searches: 100,
            seed: opts.seed,
            kernel: opts.kernel,
            runtime: opts.runtime,
            transport: opts.transport,
            store: opts.open_store(),
            check_invariants: opts.check_invariants,
        }
    }
}

/// Run E11 and return the full outcome (cell table, frontier map, text
/// heatmaps).
pub fn run(opts: &Options) -> FrontierOutcome {
    let cfg = config(opts);
    let out = run_frontier(&cfg);
    if let Some(store) = &cfg.store {
        if let Err(e) = store.write_index() {
            eprintln!("warning: could not write store index: {e}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::CAPTURE_EPS;

    fn opts() -> Options {
        Options {
            seed: 42,
            kernel: Default::default(),
            runtime: Default::default(),
            full: false,
            out_dir: "/tmp".into(),
            quiet: true,
            only: None,
            list: false,
            transport: Default::default(),
            store: None,
            check_invariants: false,
        }
    }

    /// One shared sweep for all assertions in this module (the
    /// determinism test pays for its own second run).
    fn shared_run() -> &'static FrontierOutcome {
        static RUN: std::sync::OnceLock<FrontierOutcome> = std::sync::OnceLock::new();
        RUN.get_or_init(|| run(&opts()))
    }

    /// The acceptance frontier contrast: for every adaptive strategy and
    /// every swept d₂, the `f∘g` defense first breaks at strictly higher
    /// β than no defense (a never-captured frontier counts as +∞).
    #[test]
    fn fog_frontier_strictly_dominates_no_pow() {
        let out = shared_run();
        let cfg = config(&opts());
        for strategy in ADAPTIVE_STRATEGIES {
            for &d2 in &cfg.d2s {
                let d2s = crate::table::f(d2);
                let none = out.frontier_beta(strategy, "none", &d2s);
                let fog = out.frontier_beta(strategy, "f∘g", &d2s);
                let none_v = none.unwrap_or(f64::INFINITY);
                let fog_v = fog.unwrap_or(f64::INFINITY);
                assert!(
                    fog_v > none_v,
                    "{strategy} d2={d2s}: f∘g frontier {fog:?} must sit at higher β than \
                     no-PoW frontier {none:?}"
                );
            }
        }
    }

    /// The adaptive strategies do break the undefended system somewhere
    /// in the swept range — the frontier exists, it is not vacuous.
    #[test]
    fn adaptive_strategies_capture_without_pow() {
        let out = shared_run();
        let cfg = config(&opts());
        for strategy in ADAPTIVE_STRATEGIES {
            for &d2 in &cfg.d2s {
                let d2s = crate::table::f(d2);
                assert!(
                    out.frontier_beta(strategy, "none", &d2s).is_some(),
                    "{strategy} d2={d2s}: must capture somewhere without PoW"
                );
            }
        }
    }

    /// Bigger groups buy β headroom: within the no-PoW column of each
    /// adaptive strategy, the frontier is monotone non-decreasing in d₂.
    #[test]
    fn frontier_rises_with_group_size() {
        let out = shared_run();
        let cfg = config(&opts());
        for strategy in ADAPTIVE_STRATEGIES {
            let frontiers: Vec<f64> = cfg
                .d2s
                .iter()
                .map(|&d2| {
                    out.frontier_beta(strategy, "none", &crate::table::f(d2))
                        .unwrap_or(f64::INFINITY)
                })
                .collect();
            for w in frontiers.windows(2) {
                assert!(
                    w[1] >= w[0],
                    "{strategy}: no-PoW frontier must not fall with d2: {frontiers:?}"
                );
            }
        }
    }

    /// Grid shape and bookkeeping: every cell present, rectangular rows,
    /// skipped cells only ever *after* a captured cell in the same row.
    #[test]
    fn grid_is_complete_and_early_exit_is_sound() {
        let out = shared_run();
        let cfg = config(&opts());
        let expected = cfg.strategies.len() * cfg.defenses.len() * cfg.d2s.len() * cfg.betas.len();
        assert_eq!(out.cells.rows.len(), expected, "one row per grid cell");
        for rows in out.cells.rows.chunks(cfg.betas.len()) {
            let mut seen_capture = false;
            for row in rows {
                if row[6] == "skipped-overrun" {
                    assert!(seen_capture, "skip before any capture in row {row:?}");
                } else if let Ok(v) = row[11].parse::<f64>() {
                    seen_capture |= v > CAPTURE_EPS;
                }
            }
        }
        // The frontier map covers every (strategy, defense, d2) row.
        assert_eq!(
            out.frontier.rows.len(),
            cfg.strategies.len() * cfg.defenses.len() * cfg.d2s.len()
        );
    }

    /// Same seed ⇒ byte-identical CSVs and heatmaps, regardless of how
    /// the parallel rows were scheduled. Runs on a reduced grid (both
    /// system kinds, both early-exit regimes) so the double execution
    /// stays cheap; the full-grid pinning lives in the golden suite.
    #[test]
    fn sweep_is_byte_identical_across_runs() {
        let cfg = FrontierConfig {
            n_good: 260,
            betas: vec![0.06, 0.25],
            d2s: vec![3.0],
            churns: vec![LEGACY_CHURN],
            kinds: vec![GraphKind::Chord],
            strategies: vec!["gap-filling"],
            defenses: DEFENSES.to_vec(),
            epochs: 2,
            trials: 2,
            searches: 60,
            seed: 42,
            kernel: Default::default(),
            runtime: Default::default(),
            transport: Default::default(),
            store: None,
            check_invariants: false,
        };
        let a = run_frontier(&cfg);
        let b = run_frontier(&cfg);
        assert_eq!(a.cells.to_csv(), b.cells.to_csv());
        assert_eq!(a.frontier.to_csv(), b.frontier.to_csv());
        assert_eq!(a.heatmaps, b.heatmaps);
    }
}
