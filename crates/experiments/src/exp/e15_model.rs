//! **E15 — the exhaustive invariant model check** (the `tg_verify`
//! layer as an experiment).
//!
//! Everything else in the registry measures the system statistically;
//! this experiment proves the tiny cases outright. It drives the
//! `tg_verify` model checker over **every** adversary placement of a
//! tiny static universe for every identity-pipeline defense and every
//! budget, plus every declarative adversary strategy through a checked
//! epoch driver, and emits three tables:
//!
//! * `e15_model` — one row per (defense, budget) enumeration cell:
//!   placements enumerated, placements capturing a group, exhaustive
//!   route checks and their violations, and the witness placement at
//!   the defense's capture threshold,
//! * `e15_strategies` — one row per (strategy, defense) pair run
//!   through [`tg_verify::CheckedDriver`]: epochs stepped and
//!   per-step invariant violations observed (all zero),
//! * `e15_invariants` — the per-invariant verdict: registry ID, paper
//!   citation, scope, how many checks ran, how many violated.
//!
//! The run is also the acceptance gate: it panics (after printing the
//! offending cell) if any placement below a defense's threshold
//! captures, if any route or budget check fails anywhere, if the
//! capture counts are not monotone in the budget, or if any checked
//! strategy run violates a per-step invariant. Quick mode enumerates
//! the default tiny universe; `--full` widens it to 12 good identities
//! and budget 6 (7 530 placements per defense).

use crate::args::Options;
use crate::table::Table;
use tg_core::scenario::{Defense, EpochDriver, MintScheme, ScenarioSpec, StrategySpec};
use tg_verify::{
    assert_model, registry, run_model, CheckedDriver, ModelConfig, ModelReport, Scope,
};

/// The enumeration universe for the given options: the `tg_verify`
/// default tiny config in quick mode, a wider one under `--full` —
/// both reseeded from `--seed` so the oracle family follows the run.
pub fn model_config(opts: &Options) -> ModelConfig {
    if opts.full {
        ModelConfig { n_good: 12, draws: 4, max_budget: 6, seed: opts.seed }
    } else {
        ModelConfig { seed: opts.seed, ..ModelConfig::tiny() }
    }
}

/// Every declarative strategy the spec layer can express, with tiny
/// in-range parameters.
fn all_strategies(seed: u64) -> Vec<StrategySpec> {
    vec![
        StrategySpec::Honest,
        StrategySpec::Uniform,
        StrategySpec::GapFilling,
        StrategySpec::IntervalTargeting { victim: 0.25, width: 0.02 },
        StrategySpec::AdaptiveMajorityFlipper { margin: 1 },
        StrategySpec::ChurnTimed { trigger: 0.1, retainer: 0.5 },
        StrategySpec::PrecomputeHoarder { fam_seed: seed ^ 0xE15, attempts: 64 },
    ]
}

/// The defense columns of the strategy sweep.
fn all_defenses() -> Vec<Defense> {
    vec![
        Defense::NoPow,
        Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true },
        Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
        Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: false },
    ]
}

fn enumeration_table(report: &ModelReport) -> Table {
    let mut t = Table::new(
        "e15_model",
        &[
            "defense",
            "budget",
            "placements",
            "capturing",
            "max_captured",
            "route_checks",
            "route_violations",
            "budget_violations",
            "witness",
        ],
    );
    for c in &report.cells {
        let witness = c
            .witness
            .as_ref()
            .map(|w| {
                let slots: Vec<String> = w.slots.iter().map(usize::to_string).collect();
                format!(
                    "slots {} capture group {} ({}/{} bad)",
                    slots.join("+"),
                    w.group,
                    w.bad_in_group,
                    w.group_size
                )
            })
            .unwrap_or_else(|| "-".to_string());
        t.push(vec![
            c.defense.label().to_string(),
            c.budget.to_string(),
            c.placements.to_string(),
            c.capturing.to_string(),
            c.max_captured.to_string(),
            c.route_checks.to_string(),
            c.route_violations.to_string(),
            c.budget_violations.to_string(),
            witness,
        ]);
    }
    t
}

/// Run every (strategy, defense) pair through a violation-collecting
/// [`CheckedDriver`] and return the sweep table plus per-invariant
/// violation counts and the total epoch-checks performed.
fn strategy_sweep(
    opts: &Options,
    by_invariant: &mut std::collections::BTreeMap<&'static str, (u64, u64)>,
) -> Table {
    let (n_good, epochs) = if opts.full { (200, 6) } else { (80, 4) };
    let mut t = Table::new("e15_strategies", &["strategy", "defense", "epochs", "violations"]);
    for strategy in all_strategies(opts.seed) {
        for defense in all_defenses() {
            let spec = ScenarioSpec::new(n_good, opts.seed)
                .strategy(strategy)
                .defense(defense)
                .searches(if opts.full { 120 } else { 60 })
                .kernel(opts.kernel)
                .runtime(opts.runtime)
                .transport(opts.transport);
            let mut driver = CheckedDriver::build(&spec)
                .unwrap_or_else(|e| panic!("e15 scenario `{}` must build: {e:?}", spec.label()));
            driver.run(epochs);
            for (id, (checked, _)) in by_invariant.iter_mut() {
                let _ = id;
                *checked += epochs as u64;
            }
            for v in driver.violations() {
                if let Some((_, violated)) = by_invariant.get_mut(v.invariant) {
                    *violated += 1;
                }
                eprintln!("e15: {v}");
            }
            t.push(vec![
                strategy.name().to_string(),
                defense.label().to_string(),
                epochs.to_string(),
                driver.violations().len().to_string(),
            ]);
        }
    }
    t
}

fn invariant_table(
    report: &ModelReport,
    by_invariant: &std::collections::BTreeMap<&'static str, (u64, u64)>,
) -> Table {
    let mut t =
        Table::new("e15_invariants", &["invariant", "citation", "scope", "checked", "violations"]);
    let route_checks: u64 = report.cells.iter().map(|c| c.route_checks).sum();
    let route_viol: u64 = report.cells.iter().map(|c| c.route_violations).sum();
    let placements: u64 = report.cells.iter().map(|c| c.placements).sum();
    let budget_viol: u64 = report.cells.iter().map(|c| c.budget_violations).sum();
    let below_threshold_captures: u64 = tg_verify::ModelDefense::ALL
        .iter()
        .map(|&d| {
            let t = report.threshold(d);
            report
                .defense_cells(d)
                .filter(|c| t.is_none_or(|t| c.budget < t))
                .map(|c| c.capturing)
                .sum::<u64>()
        })
        .sum();
    for inv in registry() {
        let (step_checked, step_viol) = by_invariant.get(inv.id()).copied().unwrap_or((0, 0));
        // Model-scope contributions: what the enumeration established
        // for this invariant, on top of the per-step sweep.
        let (model_checked, model_viol) = match inv.id() {
            "INV-GOODNESS" => (placements, below_threshold_captures),
            "INV-ROUTE" => (route_checks, route_viol),
            "INV-BUDGET" => (placements, budget_viol),
            "INV-MONOTONE" => (report.cells.len() as u64, 0),
            _ => (0, 0),
        };
        let scope = match inv.scope() {
            Scope::Step => "step",
            Scope::Model => "model",
            Scope::Both => "step+model",
        };
        t.push(vec![
            inv.id().to_string(),
            inv.citation().to_string(),
            scope.to_string(),
            (step_checked + model_checked).to_string(),
            (step_viol + model_viol).to_string(),
        ]);
    }
    t
}

/// The full experiment: enumerate, sweep, tabulate, then gate.
pub fn run(opts: &Options) -> Vec<Table> {
    let cfg = model_config(opts);
    let report = run_model(&cfg);
    if !opts.quiet {
        for d in tg_verify::ModelDefense::ALL {
            match report.threshold(d) {
                Some(t) => println!(
                    "e15: {} capture threshold at budget {t} ({} of {} placements)",
                    d.label(),
                    report.defense_cells(d).find(|c| c.budget == t).map_or(0, |c| c.capturing),
                    report.defense_cells(d).find(|c| c.budget == t).map_or(0, |c| c.placements),
                ),
                None => {
                    println!("e15: {} never captures up to budget {}", d.label(), cfg.max_budget)
                }
            }
        }
    }

    let mut by_invariant: std::collections::BTreeMap<&'static str, (u64, u64)> =
        registry().iter().map(|inv| (inv.id(), (0, 0))).collect();
    let strategies = strategy_sweep(opts, &mut by_invariant);
    let tables =
        vec![enumeration_table(&report), strategies, invariant_table(&report, &by_invariant)];

    // The acceptance gate, after the tables exist so a violation still
    // leaves the evidence on screen/disk for the repro.
    assert_model(&report);
    let step_violations: u64 = by_invariant.values().map(|&(_, v)| v).sum();
    assert_eq!(
        step_violations, 0,
        "checked strategy sweep must replay clean; see the e15 log lines above"
    );
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> Options {
        Options { quiet: true, ..Default::default() }
    }

    #[test]
    fn e15_quick_passes_its_own_gate_and_shapes_its_tables() {
        let tables = run(&quick_opts());
        assert_eq!(tables.len(), 3);
        let cells = &&tables[0];
        let cfg = model_config(&quick_opts());
        assert_eq!(cells.rows.len(), 3 * (cfg.max_budget + 1), "one row per defense × budget");
        let strategies = &tables[1];
        assert_eq!(strategies.rows.len(), 7 * 4, "one row per strategy × defense");
        assert!(
            strategies.rows.iter().all(|r| r[3] == "0"),
            "every checked strategy run replays clean"
        );
        let invariants = &tables[2];
        assert_eq!(invariants.rows.len(), 5, "one row per registered invariant");
        assert!(invariants.rows.iter().all(|r| r[4] == "0"), "zero violations everywhere");
    }

    #[test]
    fn e15_locates_the_undefended_threshold_with_a_witness() {
        let report = run_model(&model_config(&quick_opts()));
        let t = report.threshold(tg_verify::ModelDefense::NoPow).expect("threshold exists");
        assert!(t >= 2, "one tiny-model adversary must not capture");
        assert!(report.witness(tg_verify::ModelDefense::NoPow).is_some());
    }
}
