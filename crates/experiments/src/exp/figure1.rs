//! **F1 — Figure 1**: the input graph and group graph panels.
//!
//! Builds a small system, runs one search, and emits Graphviz DOT for
//! both panels: the input graph `H` with the search `w → … → y`
//! highlighted, and the group graph with red groups marked "B" and
//! dashed all-to-all links — the paper's illustration, regenerated from
//! live data.

use crate::args::Options;
use crate::table::Table;
use rand::Rng;
use tg_core::render::render_figure1;
use tg_core::{build_initial_graph, Params, Population};
use tg_crypto::OracleFamily;
use tg_idspace::Id;
use tg_overlay::GraphKind;
use tg_sim::stream_rng;

/// Run F1: writes `figure1_h.dot` and `figure1_g.dot` under the output
/// directory and returns a summary table.
pub fn run(opts: &Options) -> Table {
    let mut rng = stream_rng(opts.seed, "figure1", 0);
    let pop = Population::uniform(12, 2, &mut rng);
    let params = Params::paper_defaults();
    let gg = build_initial_graph(pop, GraphKind::Chord, OracleFamily::new(opts.seed).h1, &params);

    // A search from a good leader for a random key.
    let from = (0..gg.len()).find(|&i| !gg.leaders.is_bad(i) && !gg.is_red(i)).unwrap_or(0);
    let key = Id(rng.gen());
    let (h_dot, g_dot) = render_figure1(&gg, from, key);

    let mut table = Table::new("figure1", &["panel", "path", "nodes", "red_groups"]);
    let red = (0..gg.len()).filter(|&i| gg.is_red(i)).count();
    // A failed out-dir creation used to be swallowed with `.ok()`,
    // silently skipping both panels; now it is counted so `run_all`
    // exits non-zero when requested artifacts were dropped.
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        crate::artifacts::note_dropped(&format!("figure1 panels under {}", opts.out_dir), &e);
    }
    for (panel, dot) in [("H", &h_dot), ("G", &g_dot)] {
        let path = format!("{}/figure1_{}.dot", opts.out_dir, panel.to_lowercase());
        if let Err(e) = tg_sim::store::write_atomic(std::path::Path::new(&path), dot.as_bytes()) {
            crate::artifacts::note_dropped(&path, &e);
        }
        table.push(vec![panel.to_string(), path, gg.len().to_string(), red.to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_writes_dot_files() {
        let dir = std::env::temp_dir().join("tg-figure1-test");
        let opts = Options {
            kernel: Default::default(),
            runtime: Default::default(),
            seed: 21,
            full: false,
            out_dir: dir.to_str().unwrap().to_string(),
            quiet: true,
            only: None,
            list: false,
            transport: Default::default(),
            store: None,
            check_invariants: false,
        };
        let t = run(&opts);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let dot = std::fs::read_to_string(&row[1]).expect("dot file written");
            assert!(dot.starts_with("digraph"));
        }
    }
}
