//! **E13 — epoch-kernel throughput at scale** (the million-identity
//! sweep behind the arena/SoA redesign).
//!
//! Every other experiment asks *what* the reconstructed system computes;
//! this one asks *how fast* the epoch hot path turns identities into
//! group graphs. A ladder of population rungs drives the honest dynamic
//! scenario through both epoch kernels:
//!
//! * `legacy` — the original per-group `Vec` storage (the conformance
//!   oracle every equivalence test replays against),
//! * `arena` — the flat arena/SoA kernel: one contiguous member column
//!   per side, membership as range scans, group fan-out through
//!   deterministic chunking.
//!
//! The kernels are observation-identical by construction (pinned by the
//! equivalence proptests and the golden replays), so the only thing
//! this sweep measures is wall clock: epochs/second and
//! identities/second per rung. Quick mode climbs to 10⁴ identities so
//! the CI smoke step stays in seconds; `--full` climbs the arena kernel
//! to the titular 10⁶-identity rung (the legacy kernel stops at 10⁵ —
//! its per-group allocation pattern is exactly what the arena replaced).
//!
//! Besides the CSV table, the run serializes the largest arena rung as
//! `BENCH_kernel.json` in the output directory — the machine-readable
//! record the bench-trajectory CI step archives and diffs (the
//! `wall_ms_per_cell_run` key is the shared trajectory convention; for
//! this record one "cell-run" is one simulated epoch).

use std::time::Instant;

use crate::args::Options;
use crate::table::{f, Table};
use tg_core::scenario::{budget_for, KernelChoice, ScenarioSpec};
use tg_overlay::GraphKind;

/// β of every throughput rung (the paper default; the budget rides
/// along as `round(β/(1−β)·n_good)` so rung totals come out round).
pub const SCALE_BETA: f64 = 0.05;

/// Robustness searches per epoch on the throughput rungs — enough to
/// keep the observation pipeline honest, few enough that the timing is
/// the kernel's, not the sampler's.
const SCALE_SEARCHES: usize = 16;

/// One ladder rung: a kernel at a population size for a few epochs.
#[derive(Clone, Copy, Debug)]
pub struct Rung {
    /// Which epoch kernel runs the rung.
    pub kernel: KernelChoice,
    /// Good identities per epoch (`n_bad` derives from [`SCALE_BETA`]).
    pub n_good: usize,
    /// Timed epochs (the initial build is timed separately).
    pub epochs: usize,
}

impl Rung {
    /// Total identities per epoch (good + β-derived adversary budget).
    pub fn n_total(&self) -> usize {
        self.n_good + budget_for(SCALE_BETA, self.n_good)
    }
}

/// The ladder for the given options. Quick mode pairs both kernels on
/// small rungs (CI smoke); `--full` extends the arena kernel to the
/// 10⁶-identity rung (`n_good = 950 000` + 50 000 adversarial = 10⁶
/// exactly).
pub fn rungs(opts: &Options) -> Vec<Rung> {
    let rung = |kernel, n_good, epochs| Rung { kernel, n_good, epochs };
    if opts.full {
        vec![
            rung(KernelChoice::Legacy, 9_500, 3),
            rung(KernelChoice::Arena, 9_500, 3),
            rung(KernelChoice::Legacy, 95_000, 2),
            rung(KernelChoice::Arena, 95_000, 2),
            rung(KernelChoice::Arena, 285_000, 2),
            rung(KernelChoice::Arena, 950_000, 2),
        ]
    } else {
        vec![
            rung(KernelChoice::Legacy, 1_900, 3),
            rung(KernelChoice::Arena, 1_900, 3),
            rung(KernelChoice::Legacy, 4_750, 2),
            rung(KernelChoice::Arena, 4_750, 2),
        ]
    }
}

/// One measured rung: the configuration plus its wall-clock split.
#[derive(Clone, Copy, Debug)]
pub struct RungResult {
    /// The rung that ran.
    pub rung: Rung,
    /// Wall clock of the initial system build, milliseconds.
    pub build_ms: f64,
    /// Wall clock of the timed epoch loop, milliseconds.
    pub wall_ms: f64,
}

impl RungResult {
    /// Simulated epochs per second of the timed loop.
    pub fn epochs_per_sec(&self) -> f64 {
        self.rung.epochs as f64 / (self.wall_ms / 1e3).max(1e-9)
    }

    /// Identities processed per second: every epoch reconstructs the
    /// whole population, so the rate is `n_total · epochs / wall`.
    pub fn identities_per_sec(&self) -> f64 {
        (self.rung.n_total() * self.rung.epochs) as f64 / (self.wall_ms / 1e3).max(1e-9)
    }

    /// Mean wall milliseconds per simulated epoch.
    pub fn ms_per_epoch(&self) -> f64 {
        self.wall_ms / self.rung.epochs.max(1) as f64
    }
}

/// The scenario one rung drives: the honest dynamic system over D2B
/// (the paper's expander family — route lengths stress the kernel more
/// than Chord's) with the rung's kernel and an exact capacity hint.
pub fn rung_spec(rung: &Rung, seed: u64) -> ScenarioSpec {
    ScenarioSpec::new(rung.n_good, seed)
        .beta(SCALE_BETA)
        .churn(0.1)
        .attack_requests(0)
        .topology(GraphKind::D2B)
        .searches(SCALE_SEARCHES)
        .kernel(rung.kernel)
        .capacity(rung.n_total())
}

/// Time every rung, sequentially (each rung's epoch loop parallelizes
/// internally; running rungs back to back keeps the clocks honest).
pub fn measure(rungs: &[Rung], seed: u64) -> Vec<RungResult> {
    measure_stored(rungs, seed, None, false).into_iter().map(|(r, _)| r).collect()
}

/// Store key of one rung's timing record: the rung's scenario label
/// (which pins kernel, population, seed, capacity) plus its epoch
/// count, under an `e13` tag so timing records never collide with
/// observation streams.
fn rung_store_key(rung: &Rung, seed: u64) -> String {
    format!("e13;{};epochs={}", rung_spec(rung, seed).label(), rung.epochs)
}

/// [`measure`], consulting a result store so an interrupted ladder
/// resumes mid-way: rungs whose timing record is already stored are
/// replayed (the paired flag is `true`), the rest run live and publish
/// their record. Timing records use the `t1` line codec
/// (`t1,<build_ms>,<wall_ms>`, floats via `Display` for exactness).
pub fn measure_stored(
    rungs: &[Rung],
    seed: u64,
    store: Option<&tg_sim::ResultStore>,
    check_invariants: bool,
) -> Vec<(RungResult, bool)> {
    rungs
        .iter()
        .map(|&rung| {
            let key = store.map(|_| rung_store_key(&rung, seed));
            if let (Some(store), Some(key)) = (store, key.as_ref()) {
                match store.get(key) {
                    Ok(Some(records)) => {
                        let rec = records.first().map(String::as_str).unwrap_or("");
                        let parsed: Option<(f64, f64)> = rec.strip_prefix("t1,").and_then(|body| {
                            let (b, w) = body.split_once(',')?;
                            Some((b.parse().ok()?, w.parse().ok()?))
                        });
                        if let Some((build_ms, wall_ms)) = parsed {
                            return (RungResult { rung, build_ms, wall_ms }, true);
                        }
                        eprintln!("warning: unreadable timing record for `{key}`; re-timing");
                    }
                    Ok(None) => {}
                    Err(e) => panic!("{e}"),
                }
            }
            let spec = rung_spec(&rung, seed);
            let t0 = Instant::now();
            let mut driver = crate::checked::build_driver(&spec, check_invariants);
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            driver.run(rung.epochs);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            if let (Some(store), Some(key)) = (store, key.as_ref()) {
                if let Err(e) = store.put(key, &[format!("t1,{build_ms},{wall_ms}")]) {
                    eprintln!("warning: {e}");
                }
            }
            (RungResult { rung, build_ms, wall_ms }, false)
        })
        .collect()
}

/// Serialize one rung as the `BENCH_kernel.json` trajectory record.
/// Flat hand-rolled JSON in the workspace's `BENCH_*.json` dialect:
/// `wall_ms_per_cell_run` is the key the trajectory comparator diffs
/// (one cell-run ≙ one epoch here), the throughput fields are the
/// headline numbers the ISSUE records.
pub fn kernel_record_json(mode: &str, r: &RungResult, unix_time: u64) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"e13_scale\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"kernel\": \"{}\",\n",
            "  \"n_identities\": {},\n",
            "  \"epochs\": {},\n",
            "  \"build_ms\": {:.3},\n",
            "  \"wall_ms\": {:.3},\n",
            "  \"wall_ms_per_cell_run\": {:.3},\n",
            "  \"epochs_per_sec\": {:.3},\n",
            "  \"identities_per_sec\": {:.1},\n",
            "  \"unix_time\": {}\n",
            "}}\n"
        ),
        mode,
        r.rung.kernel.label(),
        r.rung.n_total(),
        r.rung.epochs,
        r.build_ms,
        r.wall_ms,
        r.ms_per_epoch(),
        r.epochs_per_sec(),
        r.identities_per_sec(),
        unix_time,
    )
}

/// The record rung: the largest arena rung of the ladder (the number
/// the ISSUE's acceptance reads at `--full` scale).
pub fn record_rung(results: &[RungResult]) -> Option<&RungResult> {
    results.iter().filter(|r| r.rung.kernel == KernelChoice::Arena).max_by_key(|r| r.rung.n_total())
}

/// Run E13: time the ladder, write `BENCH_kernel.json` next to the
/// CSVs, and return the throughput table.
pub fn run(opts: &Options) -> Table {
    let store = opts.open_store();
    let timed = measure_stored(&rungs(opts), opts.seed, store.as_ref(), opts.check_invariants);
    let mut table = Table::new(
        "e13_scale",
        &[
            "kernel",
            "n_identities",
            "epochs",
            "source",
            "build_ms",
            "wall_ms",
            "ms_per_epoch",
            "epochs_per_sec",
            "identities_per_sec",
        ],
    );
    for (r, cached) in &timed {
        table.push(vec![
            r.rung.kernel.label().to_string(),
            r.rung.n_total().to_string(),
            r.rung.epochs.to_string(),
            if *cached { "store" } else { "live" }.to_string(),
            f(r.build_ms),
            f(r.wall_ms),
            f(r.ms_per_epoch()),
            f(r.epochs_per_sec()),
            f(r.identities_per_sec()),
        ]);
    }
    let results: Vec<RungResult> = timed.iter().map(|(r, _)| *r).collect();
    if let Some(best) = record_rung(&results) {
        let unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mode = if opts.full { "full" } else { "quick" };
        let json = kernel_record_json(mode, best, unix);
        match std::fs::create_dir_all(&opts.out_dir) {
            Ok(()) => {
                let path = std::path::Path::new(&opts.out_dir).join("BENCH_kernel.json");
                match tg_sim::store::write_atomic(&path, json.as_bytes()) {
                    Ok(()) => {
                        if !opts.quiet {
                            println!("wrote {}", path.display());
                        }
                    }
                    Err(e) => crate::artifacts::note_dropped("BENCH_kernel.json", &e),
                }
            }
            // The old `if create_dir_all(...).is_ok()` silently skipped
            // the record; a missing out-dir now counts as a dropped
            // artifact so `run_all` exits non-zero.
            Err(e) => crate::artifacts::note_dropped("BENCH_kernel.json", &e),
        }
    }
    if let Some(store) = &store {
        if let Err(e) = store.write_index() {
            eprintln!("warning: could not write store index: {e}");
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(full: bool) -> Options {
        Options { full, quiet: true, ..Options::default() }
    }

    /// Quick mode stays CI-sized and pairs the kernels rung for rung so
    /// the table always carries a direct legacy-vs-arena contrast.
    #[test]
    fn quick_ladder_is_paired_and_small() {
        let ladder = rungs(&opts(false));
        assert!(ladder.iter().all(|r| r.n_total() <= 10_000), "quick rungs stay CI-sized");
        for ns in ladder.chunks(2) {
            assert_eq!(ns[0].n_good, ns[1].n_good, "kernels paired at each size");
            assert_eq!(ns[0].kernel, KernelChoice::Legacy);
            assert_eq!(ns[1].kernel, KernelChoice::Arena);
        }
    }

    /// `--full` tops out at exactly the titular million identities, on
    /// the arena kernel.
    #[test]
    fn full_ladder_reaches_one_million_identities() {
        let ladder = rungs(&opts(true));
        let top = ladder.iter().max_by_key(|r| r.n_total()).expect("non-empty ladder");
        assert_eq!(top.n_total(), 1_000_000);
        assert_eq!(top.kernel, KernelChoice::Arena);
    }

    /// The trajectory record carries the shared comparator key plus the
    /// throughput fields, and picks the largest arena rung.
    #[test]
    fn kernel_record_has_trajectory_keys() {
        let results = vec![
            RungResult {
                rung: Rung { kernel: KernelChoice::Legacy, n_good: 9_500, epochs: 2 },
                build_ms: 10.0,
                wall_ms: 50.0,
            },
            RungResult {
                rung: Rung { kernel: KernelChoice::Arena, n_good: 950_000, epochs: 2 },
                build_ms: 100.0,
                wall_ms: 400.0,
            },
            RungResult {
                rung: Rung { kernel: KernelChoice::Arena, n_good: 9_500, epochs: 2 },
                build_ms: 8.0,
                wall_ms: 30.0,
            },
        ];
        let best = record_rung(&results).expect("arena rung present");
        assert_eq!(best.rung.n_total(), 1_000_000);
        let json = kernel_record_json("full", best, 1_700_000_000);
        for key in [
            "\"bench\": \"e13_scale\"",
            "\"mode\": \"full\"",
            "\"kernel\": \"arena\"",
            "\"n_identities\": 1000000",
            "\"epochs\": 2",
            "\"wall_ms\": 400.000",
            "\"wall_ms_per_cell_run\": 200.000",
            "\"epochs_per_sec\": 5.000",
            "\"identities_per_sec\": 5000000.0",
            "\"unix_time\": 1700000000",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with("}\n"), "one flat JSON object");
    }

    /// A warm ladder replays every stored timing record instead of
    /// re-timing — the resumable-mid-ladder property: a partial cold
    /// pass leaves records the next pass skips.
    #[test]
    fn stored_ladder_resumes_without_retiming() {
        let dir = std::env::temp_dir().join(format!("tg-e13-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = tg_sim::ResultStore::open(&dir).unwrap();
        let ladder = [
            Rung { kernel: KernelChoice::Legacy, n_good: 380, epochs: 2 },
            Rung { kernel: KernelChoice::Arena, n_good: 380, epochs: 2 },
        ];
        // Cold half-ladder: only the first rung gets recorded.
        let cold = measure_stored(&ladder[..1], 42, Some(&store), false);
        assert!(cold.iter().all(|(_, cached)| !cached), "first pass is all live");
        // Resumed full ladder: rung 0 replays, rung 1 runs live.
        let warm = measure_stored(&ladder, 42, Some(&store), false);
        assert!(warm[0].1, "recorded rung is replayed");
        assert!(!warm[1].1, "new rung runs live");
        assert_eq!(warm[0].0.build_ms, cold[0].0.build_ms);
        assert_eq!(warm[0].0.wall_ms, cold[0].0.wall_ms);
    }

    /// A miniature rung actually runs through the measurement path and
    /// produces positive, consistent rates.
    #[test]
    fn measurement_produces_positive_rates() {
        let ladder = [Rung { kernel: KernelChoice::Arena, n_good: 380, epochs: 2 }];
        let results = measure(&ladder, 42);
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert!(r.wall_ms > 0.0 && r.build_ms > 0.0);
        assert!(r.epochs_per_sec() > 0.0);
        let ratio = r.identities_per_sec() / r.epochs_per_sec();
        assert!(
            (ratio - r.rung.n_total() as f64).abs() < 1e-6,
            "identity rate is epoch rate × population"
        );
    }
}
