//! **E10 — the adversary-strategy sweep** (the boundary Theorem 3
//! defends, probed from the other side).
//!
//! Every placement strategy of the `tg-core::dynamic::adversary` engine
//! runs against every identity pipeline:
//!
//! * `none` — no PoW: the adversary's chosen values go straight in (the
//!   world §IV exists to prevent),
//! * `single-hash` — the warned-against `ID = σ` scheme: the puzzle
//!   rate-limits the adversary but leaves placement free,
//! * `f∘g` — the paper: placement is discarded by the two-hash
//!   composition (Lemma 11) and only the `≈ βn` count survives.
//!
//! Reported per epoch: the adversary's identity count and key-space
//! share, groups without a good majority (captured), the red fraction,
//! dual-search success, and the success of searches aimed at the
//! interval-targeting victim key. Expected shape: `gap-filling` and
//! `adaptive-majority-flipper` capture far more groups than `uniform`
//! whenever placement is free, `interval-targeting` owns its arc but
//! captures ≈ uniform (the group layer blunts censorship placement),
//! and under `f∘g` every strategy collapses back to the uniform row.
//!
//! A second table isolates §IV-B: the `precompute-hoarder` under fresh
//! vs frozen epoch strings — the hoard dies at verification when
//! strings refresh and compounds without bound when they do not.

use crate::args::Options;
use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::Rng;
use tg_core::routing::dual_search;
use tg_core::runtime::RuntimeChoice;
use tg_core::scenario::{
    Defense, KernelChoice, ScenarioSpec, StrategySpec, StringMode, TransportChoice,
};
use tg_core::{GraphsView, GroupGraphView, Params};
use tg_idspace::{Id, RingDistance};
use tg_pow::MintScheme;
use tg_sim::{stream_rng, Metrics};

/// The victim key the interval-targeting strategy concentrates on (all
/// strategies are probed with searches for keys in its arc).
const VICTIM: f64 = 0.40;
/// Width of the victim arc, as a ring fraction.
const VICTIM_WIDTH: f64 = 0.01;

/// The strategy axis of the sweep.
pub const STRATEGIES: [&str; 5] = [
    "uniform",
    "gap-filling",
    "interval-targeting",
    "adaptive-majority-flipper",
    "precompute-hoarder",
];

/// The identity-pipeline axis of the sweep.
pub const PIPELINES: [&str; 3] = ["none", "single-hash", "f∘g"];

/// The declarative strategy of one sweep cell. The hoarder grinds real
/// puzzles, so its spec carries the cell's oracle-family seed and an
/// attempt budget (≈ `n_bad/τ` exact hashes per epoch stays cheap).
fn cell_strategy(name: &str, fam_seed: u64, n_bad: usize) -> StrategySpec {
    match name {
        "uniform" => StrategySpec::Uniform,
        "gap-filling" => StrategySpec::GapFilling,
        "interval-targeting" => {
            StrategySpec::IntervalTargeting { victim: VICTIM, width: VICTIM_WIDTH }
        }
        "adaptive-majority-flipper" => StrategySpec::AdaptiveMajorityFlipper { margin: 2 },
        "precompute-hoarder" => {
            StrategySpec::PrecomputeHoarder { fam_seed, attempts: (n_bad as f64 / 0.02) as u64 }
        }
        other => panic!("unknown strategy {other}"),
    }
}

/// The identity-pipeline axis as a scenario defense. The PoW pipelines
/// run at provider level with synthesized strings (the E10 convention:
/// the real string-agreement protocol is E11's subject).
fn cell_defense(pipeline: &str) -> Defense {
    match pipeline {
        "none" => Defense::NoPow,
        "single-hash" => Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true },
        "f∘g" => Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
        other => panic!("unknown pipeline {other}"),
    }
}

/// The shared per-cell scenario: paper parameters with the sweep's
/// churn/attack conventions over a dual-graph Chord system.
fn cell_spec(
    n_good: usize,
    n_bad: usize,
    searches: usize,
    cell_seed: u64,
    kernel: KernelChoice,
    runtime: RuntimeChoice,
    transport: TransportChoice,
) -> ScenarioSpec {
    ScenarioSpec::new(n_good, cell_seed)
        .params(sweep_params())
        .budget(n_bad)
        .strings(StringMode::Synthesized)
        .searches(searches)
        .kernel(kernel)
        .runtime(runtime)
        .transport(transport)
}

/// Dual-search success for keys u.a.r. in the victim arc.
fn victim_success(graphs: GraphsView<'_>, probes: usize, rng: &mut StdRng) -> f64 {
    let mut metrics = Metrics::new();
    let start = Id::from_f64(VICTIM).sub(RingDistance::from_f64(VICTIM_WIDTH));
    let mut ok = 0usize;
    let (s0, s1) = (graphs.side(0), graphs.side(1));
    for _ in 0..probes {
        let from = rng.gen_range(0..s0.len());
        let key = start.add(RingDistance::from_f64(rng.gen::<f64>() * VICTIM_WIDTH));
        if dual_search([&s0, &s1], from, key, &mut metrics) {
            ok += 1;
        }
    }
    ok as f64 / probes.max(1) as f64
}

fn sweep_params() -> Params {
    let mut params = Params::paper_defaults();
    params.churn_rate = 0.1;
    params.attack_requests_per_id = 0;
    params
}

/// One (strategy, pipeline) cell: run `epochs` epochs, one row each.
/// Cells are driven entirely by labelled RNG streams derived from the
/// master seed, so they can run in parallel without losing determinism.
fn run_cell(
    strategy: &str,
    pipeline: &str,
    n_good: usize,
    n_bad: usize,
    epochs: usize,
    searches: usize,
    seed: u64,
    kernel: KernelChoice,
    runtime: RuntimeChoice,
    transport: TransportChoice,
    check_invariants: bool,
) -> Vec<Vec<String>> {
    let pipeline_idx = PIPELINES.iter().position(|&p| p == pipeline).unwrap() as u64;
    let cell_seed = tg_sim::derive_seed(seed, strategy, pipeline_idx);
    let spec = cell_spec(n_good, n_bad, searches, cell_seed, kernel, runtime, transport)
        .strategy(cell_strategy(strategy, cell_seed ^ 0xE10, n_bad))
        .defense(cell_defense(pipeline));
    let mut sys = crate::checked::build_driver(&spec, check_invariants);
    (0..epochs)
        .map(|e| {
            let r = sys.step();
            let mut vrng = stream_rng(cell_seed, "e10-victim", e as u64);
            let mut row = vec![
                strategy.to_string(),
                pipeline.to_string(),
                r.epoch.to_string(),
                r.bad_ids.to_string(),
                f(r.bad_share),
                r.captured_groups.to_string(),
                f(r.frac_red[0]),
                f(r.search_success_dual),
            ];
            row.push(f(victim_success(sys.graphs(), searches / 2, &mut vrng)));
            row
        })
        .collect()
}

/// Run E10 and return the result tables (strategy sweep + hoard axis).
pub fn run(opts: &Options) -> Vec<Table> {
    let n_good: usize = if opts.full { 4000 } else { 1200 };
    let beta = 0.06;
    let n_bad = (n_good as f64 * beta / (1.0 - beta)).round() as usize;
    let epochs = if opts.full { 8 } else { 4 };
    let searches = if opts.full { 600 } else { 300 };

    let mut sweep = Table::new(
        "e10_adversaries",
        &[
            "strategy",
            "pipeline",
            "epoch",
            "bad_ids",
            "bad_share",
            "captured_groups",
            "frac_red_s0",
            "success_dual",
            "victim_success",
        ],
    );
    let mut cells = Vec::new();
    for strategy in STRATEGIES {
        for pipeline in PIPELINES {
            cells.push((strategy, pipeline));
        }
    }
    let seed = opts.seed;
    let kernel = opts.kernel;
    let runtime = opts.runtime;
    let transport = opts.transport;
    let check = opts.check_invariants;
    let results = tg_sim::parallel_map(cells, move |(strategy, pipeline)| {
        run_cell(
            strategy, pipeline, n_good, n_bad, epochs, searches, seed, kernel, runtime, transport,
            check,
        )
    });
    for rows in results {
        for row in rows {
            sweep.push(row);
        }
    }

    // --- §IV-B isolated: the hoard vs the fresh-string defense ---
    let mut hoard = Table::new(
        "e10_hoard",
        &[
            "fresh_strings",
            "epoch",
            "bad_ids",
            "beta_effective",
            "captured_groups",
            "frac_red_s0",
            "success_dual",
        ],
    );
    let hoard_rows = tg_sim::parallel_map(vec![true, false], move |fresh| {
        let cell_seed = tg_sim::derive_seed(seed, "e10-hoard", fresh as u64);
        let spec = cell_spec(n_good, n_bad, searches, cell_seed, kernel, runtime, transport)
            .strategy(cell_strategy("precompute-hoarder", cell_seed ^ 0xB0A, n_bad))
            .defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: fresh });
        let mut sys = crate::checked::build_driver(&spec, check);
        (0..epochs)
            .map(|_| {
                let r = sys.step();
                let beta_eff = r.bad_ids as f64 / (n_good + r.bad_ids) as f64;
                vec![
                    fresh.to_string(),
                    r.epoch.to_string(),
                    r.bad_ids.to_string(),
                    f(beta_eff),
                    r.captured_groups.to_string(),
                    f(r.frac_red[0]),
                    f(r.search_success_dual),
                ]
            })
            .collect::<Vec<_>>()
    });
    for rows in hoard_rows {
        for row in rows {
            hoard.push(row);
        }
    }

    vec![sweep, hoard]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options {
            kernel: Default::default(),
            runtime: Default::default(),
            seed: 42,
            full: false,
            out_dir: "/tmp".into(),
            quiet: true,
            only: None,
            list: false,
            transport: Default::default(),
            store: None,
            check_invariants: false,
        }
    }

    /// One shared sweep for all assertions in this module (the
    /// determinism test pays for its own second run).
    fn shared_run() -> &'static Vec<Table> {
        static RUN: std::sync::OnceLock<Vec<Table>> = std::sync::OnceLock::new();
        RUN.get_or_init(|| run(&opts()))
    }

    /// Cumulative captured groups per (strategy, pipeline) cell.
    fn captured_by_cell(sweep: &Table) -> std::collections::BTreeMap<(String, String), usize> {
        let mut out = std::collections::BTreeMap::new();
        for (i, row) in sweep.rows.iter().enumerate() {
            let captured: usize = sweep.cell(i, 5);
            *out.entry((row[0].clone(), row[1].clone())).or_insert(0) += captured;
        }
        out
    }

    /// The acceptance contrast: placement strategies beat uniform when
    /// placement is free; the paper's `f∘g` pipeline erases the edge.
    #[test]
    fn placement_attacks_work_without_pow_and_die_under_fog() {
        let tables = shared_run();
        let by_cell = captured_by_cell(&tables[0]);
        let get = |s: &str, p: &str| by_cell[&(s.to_string(), p.to_string())];

        for pipeline in ["none", "single-hash"] {
            let uniform = get("uniform", pipeline);
            assert!(
                get("gap-filling", pipeline) > uniform,
                "{pipeline}: gap-filling {} must capture strictly more than uniform {}",
                get("gap-filling", pipeline),
                uniform
            );
            assert!(
                get("adaptive-majority-flipper", pipeline) > uniform,
                "{pipeline}: flipper {} must capture strictly more than uniform {}",
                get("adaptive-majority-flipper", pipeline),
                uniform
            );
        }
        // Under f∘g every strategy sits within noise of uniform: the
        // capture counts are small binomial tails, so "noise" is a small
        // absolute band around the uniform row, not a tight ratio.
        let uniform_fog = get("uniform", "f∘g");
        for s in STRATEGIES {
            let c = get(s, "f∘g");
            assert!(
                c <= 3 * uniform_fog + 12,
                "f∘g must neutralize {s}: captured {c} vs uniform {uniform_fog}"
            );
        }
        // And the flipper's no-PoW edge is large, not marginal.
        assert!(get("adaptive-majority-flipper", "none") > 3 * get("uniform", "none") + 10);
    }

    /// §IV-B: the hoard compounds only when strings never refresh.
    #[test]
    fn hoard_axis_shows_fresh_string_defense() {
        let tables = shared_run();
        let hoard = &tables[1];
        let last_bad = |fresh: &str| -> usize {
            (0..hoard.rows.len())
                .filter(|&i| hoard.rows[i][0] == fresh)
                .map(|i| hoard.cell::<usize>(i, 2))
                .next_back()
                .expect("hoard table has rows for both fresh-string settings")
        };
        assert!(
            last_bad("false") > 2 * last_bad("true"),
            "frozen-string hoard {} vs fresh {}",
            last_bad("false"),
            last_bad("true")
        );
    }

    /// Same seed ⇒ byte-identical tables (the whole sweep is driven by
    /// labelled RNG streams; nothing depends on scheduling or iteration
    /// order).
    #[test]
    fn sweep_is_byte_identical_across_runs() {
        let a = shared_run();
        let b = run(&opts());
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.iter().zip(b.iter()) {
            assert_eq!(ta.render(), tb.render(), "table {} not deterministic", ta.name);
            assert_eq!(ta.to_csv(), tb.to_csv());
        }
    }
}
