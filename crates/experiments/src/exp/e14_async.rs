//! **E14 — protocol degradation under an unreliable network** (the
//! actor-runtime fault sweep).
//!
//! Every other experiment drives the synchronous epoch drivers, where
//! each epoch's messages all arrive. This one runs the same dynamic
//! scenario through the **actor runtime** ([`tg_core::runtime`]): the
//! epoch step decomposed into per-node actors exchanging typed protocol
//! messages over an in-memory transport with seeded fault injection.
//! The sweep crosses **drop rate × partition length** at a fixed β and
//! measures what an unreliable network does to the paper's guarantees:
//!
//! * dropped *membership announcements* silently shrink the delivered
//!   good population — the adversary's insiders bypass the overlay
//!   (worst case), so the *effective* β each epoch rises with the drop
//!   rate and captured groups rise with it,
//! * dropped or partition-cut *routing probes* lose search responses,
//!   so dual-search success degrades even where the graphs are healthy,
//! * transient partitions cut cross-partition traffic for the first
//!   ticks of each phase window, compounding both effects.
//!
//! Faults are pure hash derivations per (epoch, phase, link, seq) — no
//! RNG stream is consumed — so every cell of the sweep shares the same
//! kernel randomness and the dropped-message set grows monotonically
//! with the drop rate. The `drop = 0, part = 0` row doubles as a live
//! conformance check: it must match the synchronous driver byte for
//! byte (pinned separately by the equivalence suites).
//!
//! Quick mode runs a 4 × 2 grid in CI; `--full` densifies the drop axis
//! and extends the partition axis.

use crate::args::Options;
use crate::table::{f, Table};
use tg_core::runtime::RuntimeChoice;
use tg_core::scenario::{budget_for, ScenarioSpec, StrategySpec, TransportChoice};
use tg_sim::parallel_map;

/// β of every cell: the paper default — low enough that the
/// perfect-transport row stays mostly healthy, so the capture axis has
/// headroom to rise as drops inflate the effective adversary share.
pub const ASYNC_BETA: f64 = 0.08;

/// Good population per cell (quick mode). Small enough for CI smoke,
/// large enough that capture fractions are not single-group noise.
const QUICK_N_GOOD: usize = 260;

/// Good population per cell under `--full`.
const FULL_N_GOOD: usize = 400;

/// One cell of the fault grid: a drop rate, a partition length
/// (ticks of each phase window during which a seeded bisection of the
/// node space cuts cross-partition traffic), and the transport carrying
/// the messages.
#[derive(Clone, Copy, Debug)]
pub struct FaultCell {
    /// Per-message drop probability on the injected transport.
    pub drop: f64,
    /// Partition window length in transport ticks (0 = never).
    pub part: u64,
    /// Which transport implementation moves the bytes. Both apply the
    /// identical hash-derived fault fates, so matching mem/socket rows
    /// are numerically identical — the socket rows prove the real
    /// network path, not a different physics.
    pub transport: TransportChoice,
}

/// The sweep grid for the given options: drop rate × partition length,
/// on the `--transport` choice in quick mode and on **both** transports
/// under `--full` (the socket × drop × partition axes of the nightly
/// sweep).
pub fn grid(opts: &Options) -> Vec<FaultCell> {
    let (drops, parts, transports): (Vec<f64>, Vec<u64>, Vec<TransportChoice>) = if opts.full {
        (
            (0..=7).map(|i| i as f64 / 10.0).collect(),
            vec![0, 16, 32, 48],
            vec![TransportChoice::Mem, TransportChoice::Socket],
        )
    } else {
        (vec![0.0, 0.2, 0.4, 0.6], vec![0, 24], vec![opts.transport])
    };
    let mut cells = Vec::new();
    for &transport in &transports {
        for &part in &parts {
            for &drop in &drops {
                cells.push(FaultCell { drop, part, transport });
            }
        }
    }
    cells
}

/// The scenario behind one cell. Every cell shares the same master
/// seed — the kernel streams and the per-message fault hashes are
/// identical across the grid, so the only thing that varies is the
/// drop threshold and the partition window, and the capture column is
/// monotone in the drop rate by construction.
pub fn cell_spec(cell: FaultCell, opts: &Options, seed: u64) -> ScenarioSpec {
    let n_good = if opts.full { FULL_N_GOOD } else { QUICK_N_GOOD };
    ScenarioSpec::new(n_good, seed)
        .budget(budget_for(ASYNC_BETA, n_good))
        .churn(0.15)
        .strategy(StrategySpec::Uniform)
        .searches(if opts.full { 300 } else { 120 })
        .runtime(RuntimeChoice::Actor)
        .transport(cell.transport)
        .drop_rate(cell.drop)
        .partition(cell.part)
}

/// Mean observables of one cell over its epoch run.
#[derive(Clone, Copy, Debug)]
pub struct CellResult {
    /// The fault knobs that produced the row.
    pub cell: FaultCell,
    /// Mean captured-group fraction (groups without a good majority).
    pub capture: f64,
    /// Mean red fraction on side 0.
    pub frac_red: f64,
    /// Mean dual-search success.
    pub success_dual: f64,
    /// Final-epoch key-space share of delivered adversarial IDs.
    pub bad_share: f64,
    /// Mean late deliveries per epoch (messages that arrived after
    /// their phase-window deadline — `NetStats.late`, per-epoch delta).
    pub late: f64,
}

/// Run one cell: `trials` independent populations (trial seeds derived
/// from the master seed), `epochs` actor-runtime epochs each,
/// observables averaged over every epoch of every trial. Within one
/// trial the per-message fault hashes are fixed, so the dropped set
/// grows with the drop rate; averaging over trials smooths the
/// feedback noise of *which* identities survive.
pub fn run_cell(cell: FaultCell, opts: &Options, epochs: usize, trials: u64) -> CellResult {
    run_cell_stored(cell, opts, epochs, trials, None).0
}

/// [`run_cell`], consulting a result store: each trial's observation
/// stream is keyed by its scenario label (which carries the fault
/// knobs, population, and seed) plus the epoch count — stored trials
/// replay, missing trials simulate and publish. The paired count says
/// how many trials ran live, so an interrupted full sweep resumes
/// mid-grid paying only for the cells it never finished.
pub fn run_cell_stored(
    cell: FaultCell,
    opts: &Options,
    epochs: usize,
    trials: u64,
    store: Option<&tg_sim::ResultStore>,
) -> (CellResult, usize) {
    use tg_core::scenario::ObsRow;
    let (mut capture, mut red, mut dual, mut bad_share, mut late) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let mut live = 0usize;
    for trial in 0..trials {
        let seed = tg_sim::derive_seed(opts.seed, "e14-trial", trial);
        let spec = cell_spec(cell, opts, seed);
        let key = store.map(|_| crate::frontier::trial_store_key(&spec, epochs));
        let mut rows: Option<Vec<ObsRow>> = None;
        if let (Some(store), Some(key)) = (store, key.as_ref()) {
            match store.get(key) {
                Ok(Some(records)) => {
                    assert_eq!(
                        records.len(),
                        epochs,
                        "stored stream for `{key}` has the wrong epoch count"
                    );
                    rows = Some(
                        records
                            .iter()
                            .enumerate()
                            .map(|(i, rec)| {
                                ObsRow::decode_line(rec).unwrap_or_else(|e| {
                                    panic!("store record {i} for `{key}` does not decode: {e}")
                                })
                            })
                            .collect(),
                    );
                }
                Ok(None) => {}
                Err(e) => panic!("{e}"),
            }
        }
        let rows = rows.unwrap_or_else(|| {
            live += 1;
            let mut sys = crate::checked::build_driver(&spec, opts.check_invariants);
            let rows: Vec<ObsRow> = (0..epochs).map(|_| ObsRow::of(sys.step())).collect();
            if let (Some(store), Some(key)) = (store, key.as_ref()) {
                let records: Vec<String> = rows.iter().map(ObsRow::encode_line).collect();
                if let Err(e) = store.put(key, &records) {
                    eprintln!("warning: {e}");
                }
            }
            rows
        });
        for r in &rows {
            capture += r.captured_groups as f64 / r.total_groups.max(1) as f64;
            red += r.frac_red_s0;
            dual += r.search_success_dual;
            bad_share += r.bad_share;
            late += r.late as f64;
        }
    }
    let m = (epochs.max(1) as u64 * trials.max(1)) as f64;
    let result = CellResult {
        cell,
        capture: capture / m,
        frac_red: red / m,
        success_dual: dual / m,
        bad_share: bad_share / m,
        late: late / m,
    };
    (result, live)
}

/// The full sweep: one row per (partition, drop) cell, cells in grid
/// order, runs fanned out over [`parallel_map`] (each cell is driven
/// entirely by the shared master seed, so parallelism cannot perturb
/// the rows).
pub fn run(opts: &Options) -> Table {
    let (epochs, trials) = if opts.full { (8, 4) } else { (6, 3) };
    let cells = grid(opts);
    let o = opts.clone();
    let store = opts.open_store();
    let s = store.clone();
    let results =
        parallel_map(cells, move |cell| run_cell_stored(cell, &o, epochs, trials, s.as_ref()).0);
    if let Some(store) = &store {
        if let Err(e) = store.write_index() {
            eprintln!("warning: could not write store index: {e}");
        }
    }
    let mut table = Table::new(
        "e14_async",
        &[
            "drop",
            "part",
            "transport",
            "epochs",
            "capture",
            "frac_red_s0",
            "success_dual",
            "bad_share",
            "late",
        ],
    );
    for r in results {
        table.push(vec![
            f(r.cell.drop),
            r.cell.part.to_string(),
            r.cell.transport.label().to_string(),
            epochs.to_string(),
            f(r.capture),
            f(r.frac_red),
            f(r.success_dual),
            f(r.bad_share),
            f(r.late),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> Options {
        Options { quiet: true, ..Default::default() }
    }

    fn cell(drop: f64, part: u64) -> FaultCell {
        FaultCell { drop, part, transport: TransportChoice::Mem }
    }

    /// The acceptance property: at fixed β, capture rises monotonically
    /// with the drop rate along each partition row of the quick grid,
    /// and the lossy end is strictly worse than the perfect end.
    #[test]
    fn capture_rises_monotonically_with_drop_rate() {
        let opts = quick_opts();
        let epochs = 6;
        for &part in &[0u64, 24] {
            let row: Vec<CellResult> = [0.0, 0.2, 0.4, 0.6]
                .iter()
                .map(|&drop| run_cell(cell(drop, part), &opts, epochs, 3))
                .collect();
            for w in row.windows(2) {
                assert!(
                    w[1].capture >= w[0].capture - 1e-12,
                    "capture not monotone at part={part}: drop {} -> {} gave {} -> {}",
                    w[0].cell.drop,
                    w[1].cell.drop,
                    w[0].capture,
                    w[1].capture,
                );
            }
            assert!(
                row.last().unwrap().capture > row[0].capture,
                "lossy end should strictly exceed the perfect end at part={part}",
            );
        }
    }

    /// The late column reports the per-epoch mean of the transport's
    /// late-delivery counter: exactly zero over a perfect transport
    /// (nothing misses its phase deadline), and finite — not NaN — on
    /// every cell of the quick grid.
    #[test]
    fn late_column_is_zero_on_the_perfect_transport() {
        let opts = quick_opts();
        let perfect = run_cell(cell(0.0, 0), &opts, 3, 2);
        assert_eq!(perfect.late, 0.0, "no faults, no late deliveries");
        let lossy = run_cell(cell(0.4, 24), &opts, 3, 2);
        assert!(lossy.late.is_finite() && lossy.late >= 0.0);
    }

    /// Drops hurt search success: the heavily lossy cell answers fewer
    /// dual searches than the perfect-transport cell.
    #[test]
    fn drops_degrade_dual_search_success() {
        let opts = quick_opts();
        let perfect = run_cell(cell(0.0, 0), &opts, 4, 2);
        let lossy = run_cell(cell(0.6, 0), &opts, 4, 2);
        assert!(lossy.success_dual < perfect.success_dual);
    }

    /// The transport axis is observation-free: a socket cell reproduces
    /// its in-memory twin bit for bit (shared fault fates + identical
    /// phase schedules), faults included.
    #[test]
    fn socket_cells_match_mem_cells_bit_for_bit() {
        let opts = quick_opts();
        for (drop, part) in [(0.0, 0u64), (0.4, 24)] {
            let mem = run_cell(cell(drop, part), &opts, 3, 2);
            let sock =
                run_cell(FaultCell { drop, part, transport: TransportChoice::Socket }, &opts, 3, 2);
            for (got, want) in [
                (sock.capture, mem.capture),
                (sock.frac_red, mem.frac_red),
                (sock.success_dual, mem.success_dual),
                (sock.bad_share, mem.bad_share),
            ] {
                assert_eq!(got.to_bits(), want.to_bits(), "drop={drop} part={part}");
            }
        }
    }

    /// The acceptance sweep on real sockets: capture stays monotone in
    /// the drop rate when the cells run over loopback TCP.
    #[test]
    fn socket_capture_rises_monotonically_with_drop_rate() {
        let opts = quick_opts();
        let row: Vec<CellResult> = [0.0, 0.3, 0.6]
            .iter()
            .map(|&drop| {
                run_cell(
                    FaultCell { drop, part: 24, transport: TransportChoice::Socket },
                    &opts,
                    4,
                    2,
                )
            })
            .collect();
        for w in row.windows(2) {
            assert!(
                w[1].capture >= w[0].capture - 1e-12,
                "socket capture not monotone: drop {} -> {} gave {} -> {}",
                w[0].cell.drop,
                w[1].cell.drop,
                w[0].capture,
                w[1].capture,
            );
        }
        assert!(row.last().unwrap().capture > row[0].capture);
    }

    /// The quick grid honors `--transport socket`: every cell runs on
    /// the socket transport and the table carries the axis column.
    #[test]
    fn quick_grid_uses_the_transport_option() {
        let opts = Options { transport: TransportChoice::Socket, ..quick_opts() };
        let cells = grid(&opts);
        assert_eq!(cells.len(), 8);
        assert!(cells.iter().all(|c| c.transport == TransportChoice::Socket));
        let full = Options { full: true, ..quick_opts() };
        let cells = grid(&full);
        assert_eq!(cells.len(), 64, "full grid sweeps both transports");
        assert_eq!(cells.iter().filter(|c| c.transport == TransportChoice::Socket).count(), 32);
    }

    /// The grid is deterministic: the same options produce the same
    /// table twice, including under the parallel fan-out.
    #[test]
    fn sweep_is_deterministic() {
        let opts = quick_opts();
        assert_eq!(run(&opts).to_csv(), run(&opts).to_csv());
    }

    /// Store round trip: a warm cell replays every trial from its
    /// stored stream (zero live trials) and reproduces the live
    /// result bit for bit — stored sweeps are resumable without any
    /// numeric drift.
    #[test]
    fn warm_cell_replays_bit_identically() {
        let dir = std::env::temp_dir().join(format!("tg-e14-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = tg_sim::ResultStore::open(&dir).unwrap();
        let opts = quick_opts();
        let cell = cell(0.4, 24);
        let bare = run_cell(cell, &opts, 3, 2);
        let (cold, cold_live) = run_cell_stored(cell, &opts, 3, 2, Some(&store));
        assert_eq!(cold_live, 2, "cold pass simulates every trial");
        let (warm, warm_live) = run_cell_stored(cell, &opts, 3, 2, Some(&store));
        assert_eq!(warm_live, 0, "warm pass replays every trial");
        for (got, want) in [
            (warm.capture, cold.capture),
            (warm.frac_red, cold.frac_red),
            (warm.success_dual, cold.success_dual),
            (warm.bad_share, cold.bad_share),
            (cold.capture, bare.capture),
            (cold.bad_share, bare.bad_share),
        ] {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }
}
