//! **E1 — ε-robustness of the static construction** (Theorem 3,
//! Lemma 4).
//!
//! Sweep `n` and `β` over the implemented input graphs with
//! `|G| = Θ(log log n)` and measure: the red-group fraction, the
//! good-majority fraction, the search success rate, and the maximum
//! group responsibility (Lemma 1's `O(log^c n / n)`).
//!
//! Paper shape to reproduce: at fixed small `β`, the *failure* fraction
//! shrinks as `n` grows (the `O(1/poly(log n))` robustness gets better
//! with scale, because `ln ln n` group sizes grow while the bad-majority
//! probability drops superpolynomially in the size).

use crate::args::Options;
use crate::table::{f, Table};
use tg_core::{build_initial_graph, measure_robustness, Params, Population};
use tg_crypto::OracleFamily;
use tg_overlay::GraphKind;
use tg_sim::{parallel_map, stream_rng};

/// One grid cell.
#[derive(Clone, Copy, Debug)]
struct Cell {
    kind: GraphKind,
    n: usize,
    beta: f64,
    trial: u64,
}

/// Run E1 and return the result table.
pub fn run(opts: &Options) -> Table {
    let ns: Vec<usize> = if opts.full {
        vec![1 << 10, 1 << 12, 1 << 14, 1 << 16]
    } else {
        vec![1 << 10, 1 << 12, 1 << 14]
    };
    let betas = [0.02, 0.05, 0.10];
    let kinds = [GraphKind::Chord, GraphKind::D2B];
    let trials: u64 = if opts.full { 3 } else { 2 };
    let searches = if opts.full { 2000 } else { 800 };
    let seed = opts.seed;

    let mut cells = Vec::new();
    for &kind in &kinds {
        for &n in &ns {
            for &beta in &betas {
                for trial in 0..trials {
                    cells.push(Cell { kind, n, beta, trial });
                }
            }
        }
    }

    let results = parallel_map(cells, move |c: Cell| {
        let idx = (c.n as u64) ^ ((c.beta * 1000.0) as u64) << 24 ^ c.trial << 48;
        let mut rng = stream_rng(seed, "e1", idx ^ c.kind.name().len() as u64);
        let n_bad = (c.n as f64 * c.beta).round() as usize;
        let pop = Population::uniform(c.n - n_bad, n_bad, &mut rng);
        let fam = OracleFamily::new(seed ^ idx);
        let params = Params::paper_defaults();
        let gg = build_initial_graph(pop, c.kind, fam.h1, &params);
        let rep = measure_robustness(&gg, &params, searches, &mut rng);
        (c, rep)
    });

    let mut table = Table::new(
        "e1_robustness",
        &[
            "graph",
            "n",
            "beta",
            "trial",
            "|G|",
            "frac_red",
            "frac_good_maj",
            "search_success",
            "mean_hops",
            "max_responsibility",
        ],
    );
    for (c, rep) in results {
        table.push(vec![
            c.kind.name().to_string(),
            c.n.to_string(),
            f(c.beta),
            c.trial.to_string(),
            f(rep.mean_group_size),
            f(rep.frac_red),
            f(rep.frac_good_majority),
            f(rep.search_success),
            f(rep.mean_hops),
            f(rep.max_responsibility),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_smoke() {
        let opts = Options {
            kernel: Default::default(),
            runtime: Default::default(),
            seed: 1,
            full: false,
            out_dir: "/tmp".into(),
            quiet: true,
            only: None,
            list: false,
            transport: Default::default(),
            store: None,
            check_invariants: false,
        };
        // Shrink by running the real function — the quick grid is small
        // enough for CI, but for the unit test we only check shape via a
        // single handmade cell rather than the full sweep.
        let t = run_tiny(&opts);
        assert_eq!(t.headers.len(), 10);
        assert!(!t.rows.is_empty());
        // success column is a probability.
        for i in 0..t.rows.len() {
            let s: f64 = t.cell(i, 7);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    /// A miniature version of the sweep for tests.
    fn run_tiny(opts: &Options) -> Table {
        let mut rng = stream_rng(opts.seed, "e1-tiny", 0);
        let pop = Population::uniform(480, 20, &mut rng);
        let params = Params::paper_defaults();
        let gg = build_initial_graph(pop, GraphKind::Chord, OracleFamily::new(1).h1, &params);
        let rep = measure_robustness(&gg, &params, 200, &mut rng);
        let mut t = Table::new(
            "e1_robustness",
            &[
                "graph",
                "n",
                "beta",
                "trial",
                "|G|",
                "frac_red",
                "frac_good_maj",
                "search_success",
                "mean_hops",
                "max_responsibility",
            ],
        );
        t.push(vec![
            "chord".into(),
            "500".into(),
            f(0.04),
            "0".into(),
            f(rep.mean_group_size),
            f(rep.frac_red),
            f(rep.frac_good_majority),
            f(rep.search_success),
            f(rep.mean_hops),
            f(rep.max_responsibility),
        ]);
        t
    }
}
