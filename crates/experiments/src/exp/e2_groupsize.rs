//! **E2 — the `Θ(log log n)` group-size threshold** (§I-D, "Can we do
//! better?").
//!
//! At fixed `n` and `β`, sweep a *fixed* per-group draw count from 1 (no
//! redundancy) past `d2·ln ln n`. The paper's intuition: below
//! `≈ ln ln n / ln ln ln n` the per-group bad-majority probability is
//! `ω(log log n / log n)` and a union bound over the `D`-hop search path
//! no longer closes — failures blow up; at `Θ(ln ln n)` they vanish.
//! The sweep exposes the knee.

use crate::args::Options;
use crate::table::{f, Table};
use tg_core::{build_initial_graph, measure_robustness, Params, Population};
use tg_crypto::OracleFamily;
use tg_overlay::GraphKind;
use tg_sim::{parallel_map, stream_rng};

/// Run E2 and return the result table.
pub fn run(opts: &Options) -> Table {
    let n: usize = if opts.full { 1 << 16 } else { 1 << 14 };
    let beta = 0.10;
    let searches = if opts.full { 2000 } else { 1000 };
    let trials: u64 = if opts.full { 3 } else { 2 };
    let draws_sweep: Vec<usize> = (1..=16).collect();
    let seed = opts.seed;
    let lnln = ((n as f64).ln()).ln();

    let mut cells = Vec::new();
    for &draws in &draws_sweep {
        for trial in 0..trials {
            cells.push((draws, trial));
        }
    }
    let results = parallel_map(cells, move |(draws, trial): (usize, u64)| {
        let mut rng = stream_rng(seed, "e2", (draws as u64) << 8 | trial);
        let n_bad = (n as f64 * beta).round() as usize;
        let pop = Population::uniform(n - n_bad, n_bad, &mut rng);
        let params = Params::paper_defaults().with_fixed_groups(draws);
        let fam = OracleFamily::new(seed ^ draws as u64 ^ (trial << 32));
        let gg = build_initial_graph(pop, GraphKind::Chord, fam.h1, &params);
        let rep = measure_robustness(&gg, &params, searches, &mut rng);
        (draws, trial, rep)
    });

    let mut table = Table::new(
        "e2_groupsize",
        &["draws", "lnln_n", "trial", "|G|", "frac_red", "search_failure"],
    );
    for (draws, trial, rep) in results {
        table.push(vec![
            draws.to_string(),
            f(lnln),
            trial.to_string(),
            f(rep.mean_group_size),
            f(rep.frac_red),
            f(1.0 - rep.search_success),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The knee must exist: one-member groups fail massively, large
    /// groups barely at all.
    #[test]
    fn threshold_shape_at_small_scale() {
        let seed = 3;
        let n = 2048usize;
        let beta = 0.10;
        let fail_at = |draws: usize| {
            let mut rng = stream_rng(seed, "e2-test", draws as u64);
            let n_bad = (n as f64 * beta) as usize;
            let pop = Population::uniform(n - n_bad, n_bad, &mut rng);
            let params = Params::paper_defaults().with_fixed_groups(draws);
            let gg = build_initial_graph(
                pop,
                GraphKind::Chord,
                OracleFamily::new(draws as u64).h1,
                &params,
            );
            let rep = measure_robustness(&gg, &params, 400, &mut rng);
            1.0 - rep.search_success
        };
        let tiny = fail_at(1);
        let healthy = fail_at(12);
        assert!(tiny > 0.3, "singleton groups fail often: {tiny:.3}");
        assert!(healthy < 0.05, "12-draw groups nearly never fail: {healthy:.3}");
    }
}
