//! **E12 — adaptive frontier refinement over the extended axes** (the
//! E11 boundary, located by bisection instead of swept, with churn and
//! topology as first-class dimensions).
//!
//! Two claims, one experiment:
//!
//! * **Efficiency** — per row, the capture threshold is *located*
//!   (bracket → bisect → confidence seeds at the bracket cells, see
//!   [`crate::refine`]) rather than swept. At matching resolution the
//!   refined map equals the uniform grid's map — cell streams are
//!   shared, decisions read the same base trials — while evaluating a
//!   fraction of the cells; the acceptance test below runs both engines
//!   on one grid at seed 42 and pins the ≥2× saving.
//! * **New axes** — the default grid sweeps `churn_rate` and
//!   [`GraphKind`] alongside β, with the [`ChurnTimed`] adversary in
//!   the strategy set: an adversary that times its budget to the epochs
//!   right after heavy good-ID departure only shows up as a threshold
//!   *shift along the churn axis*, which a (β × d₂)-only grid can
//!   never display. The PoW rows face the real `FullSystem` epoch-string
//!   protocol, exactly like E11's.
//!
//! Expected shape: under no PoW, the churn-timed frontier at heavy
//! churn sits at or below its light-churn frontier (the strike lands
//! when margins are thinnest, and at light churn the strategy idles at
//! its camouflage retainer); under `f∘g` the placement half of the
//! strike is discarded and the shift flattens toward the uniform noise
//! floor.
//!
//! [`ChurnTimed`]: tg_core::dynamic::ChurnTimed
//! [`GraphKind`]: tg_overlay::GraphKind

use crate::args::Options;
use crate::frontier::{Defense, FrontierConfig, LEGACY_CHURN};
use crate::refine::{run_refine, RefineConfig, RefineOutcome};
use tg_overlay::GraphKind;
use tg_pow::MintScheme;

/// The strategy axis of the small (per-PR) grid: the strongest
/// placement attacker plus the timing attacker this experiment adds.
pub const STRATEGIES: [&str; 2] = ["gap-filling", "churn-timed"];

/// The strategy axis of the `--full` (nightly) grid.
pub const STRATEGIES_FULL: [&str; 4] =
    ["uniform", "gap-filling", "adaptive-majority-flipper", "churn-timed"];

/// The defense axis: the undefended dynamic layer vs the paper's full
/// `f∘g` protocol (the ablation columns stay in E11; here the question
/// is how the frontier moves along the *new* axes).
pub const DEFENSES: [Defense; 2] =
    [Defense::NoPow, Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true }];

/// Light-vs-heavy churn: below and above the churn-timed adversary's
/// strike trigger.
pub const CHURNS: [f64; 2] = [0.05, 0.2];

/// Topology families swept at small scale.
pub const KINDS: [GraphKind; 2] = [GraphKind::Chord, GraphKind::D2B];

/// The β ladder of the small grid — four times E11's resolution over
/// the same range, which is exactly the regime where bisection beats a
/// uniform sweep.
pub const LADDER: [f64; 12] = [0.02, 0.04, 0.06, 0.09, 0.12, 0.16, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45];

/// The grid for the given options.
pub fn config(opts: &Options) -> RefineConfig {
    let grid = if opts.full {
        FrontierConfig {
            n_good: 1200,
            betas: vec![
                0.02, 0.04, 0.06, 0.08, 0.1, 0.13, 0.16, 0.19, 0.22, 0.26, 0.3, 0.34, 0.38, 0.42,
                0.46, 0.5,
            ],
            d2s: vec![3.0, 4.0, 6.0],
            churns: vec![0.05, LEGACY_CHURN, 0.2],
            kinds: vec![GraphKind::Chord, GraphKind::D2B, GraphKind::DistanceHalving],
            strategies: STRATEGIES_FULL.to_vec(),
            defenses: DEFENSES.to_vec(),
            epochs: 4,
            trials: 3,
            searches: 300,
            seed: opts.seed,
            kernel: opts.kernel,
            runtime: opts.runtime,
            transport: opts.transport,
            store: opts.open_store(),
            check_invariants: opts.check_invariants,
        }
    } else {
        FrontierConfig {
            n_good: 300,
            betas: LADDER.to_vec(),
            d2s: vec![4.0],
            churns: CHURNS.to_vec(),
            kinds: KINDS.to_vec(),
            strategies: STRATEGIES.to_vec(),
            defenses: DEFENSES.to_vec(),
            epochs: 2,
            trials: 1,
            searches: 60,
            seed: opts.seed,
            kernel: opts.kernel,
            runtime: opts.runtime,
            transport: opts.transport,
            store: opts.open_store(),
            check_invariants: opts.check_invariants,
        }
    };
    RefineConfig { grid, z: 1.645, max_extra_rounds: 2 }
}

/// Run E12 and return the full outcome (evaluated cells, refined
/// frontier map with confidence bands, cost ledger).
pub fn run(opts: &Options) -> RefineOutcome {
    let cfg = config(opts);
    let out = run_refine(&cfg);
    if let Some(store) = &cfg.grid.store {
        if let Err(e) = store.write_index() {
            eprintln!("warning: could not write store index: {e}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::run_frontier;
    use crate::table::f;

    fn opts() -> Options {
        Options {
            seed: 42,
            kernel: Default::default(),
            runtime: Default::default(),
            full: false,
            out_dir: "/tmp".into(),
            quiet: true,
            only: None,
            list: false,
            transport: Default::default(),
            store: None,
            check_invariants: false,
        }
    }

    /// One shared sweep for the assertions in this module.
    fn shared_run() -> &'static RefineOutcome {
        static RUN: std::sync::OnceLock<RefineOutcome> = std::sync::OnceLock::new();
        RUN.get_or_init(|| run(&opts()))
    }

    /// The grid both engines race on for the acceptance comparison:
    /// E11's legacy axes — its two adaptive strategies against all four
    /// defense columns — on a 16-rung geometric β ladder (the canonical
    /// spacing for a threshold whose location spans a decade and a
    /// half: uniform resolution in `log β`).
    fn comparison_grid() -> FrontierConfig {
        FrontierConfig {
            n_good: 300,
            betas: vec![
                0.01, 0.0129, 0.0166, 0.0214, 0.0276, 0.0356, 0.0459, 0.0592, 0.0763, 0.0983,
                0.1268, 0.1634, 0.2107, 0.2716, 0.3501, 0.45,
            ],
            d2s: vec![3.0, 6.0],
            churns: vec![LEGACY_CHURN],
            kinds: vec![GraphKind::Chord],
            strategies: vec!["gap-filling", "adaptive-majority-flipper"],
            defenses: crate::exp::e11_frontier::DEFENSES.to_vec(),
            epochs: 1,
            trials: 1,
            searches: 50,
            seed: 42,
            kernel: Default::default(),
            runtime: Default::default(),
            transport: Default::default(),
            store: None,
            check_invariants: false,
        }
    }

    /// **The acceptance property**: at seed 42 the refinement engine
    /// reproduces the uniform grid's frontier map — same first-capturing
    /// β *and* same measured capture there, row for row — while running
    /// at most half the cell-runs. The saving is logged.
    #[test]
    fn refinement_matches_uniform_frontier_with_half_the_cell_runs() {
        let grid = comparison_grid();
        let uniform = run_frontier(&grid);
        let refined =
            run_refine(&RefineConfig { grid: grid.clone(), z: 1.645, max_extra_rounds: 1 });

        assert_eq!(uniform.frontier.rows.len(), refined.frontier.rows.len());
        for (u, r) in uniform.frontier.rows.iter().zip(&refined.frontier.rows) {
            // axes (5 columns), frontier β, and the capture measured at
            // the frontier must agree byte-for-byte.
            assert_eq!(u[..7], r[..7], "frontier mismatch: uniform {u:?} vs refined {r:?}");
        }

        // Cells the uniform engine actually simulated (its overrun early
        // exit already skips the far side — the refinement must halve
        // what is left, per-cell trial budget held equal). The extra
        // confidence seeds are capability the uniform sweep does not
        // have at all; they are budgeted separately and still leave the
        // total trial spend strictly below the uniform engine's.
        let uniform_cells = uniform.cells.rows.iter().filter(|r| r[6] == "run").count();
        assert!(
            2 * refined.cell_runs <= uniform_cells,
            "refinement must halve the uniform sweep: {} vs {uniform_cells} cell-runs",
            refined.cell_runs,
        );
        assert!(
            refined.trial_runs < uniform_cells * grid.trials,
            "even with confidence seeds the refinement must spend fewer trials: {} vs {}",
            refined.trial_runs,
            uniform_cells * grid.trials
        );
        eprintln!(
            "[e12] refinement: {} cell-runs ({} trials incl. confidence seeds) vs uniform \
             {uniform_cells} cells — {:.0}% of the cell-runs saved",
            refined.cell_runs,
            refined.trial_runs,
            100.0 * (1.0 - refined.cell_runs as f64 / uniform_cells as f64)
        );
    }

    /// Structure of the default sweep: every row of the
    /// strategy × defense × d₂ × churn × topology product appears in
    /// the map, and the confidence columns are coherent (bands inside
    /// [0,1] straddling their rate; cost ledger consistent with the
    /// per-row counts).
    #[test]
    fn map_covers_all_rows_with_coherent_bands() {
        let out = shared_run();
        let cfg = config(&opts());
        assert_eq!(out.frontier.rows.len(), cfg.grid.rows().len());
        let mut cell_runs = 0usize;
        for row in &out.frontier.rows {
            cell_runs += row[12].parse::<usize>().expect("cell_runs column");
            if row[5] == "-" {
                continue;
            }
            let (rate, lo, hi) = (
                row[7].parse::<f64>().expect("capture_rate"),
                row[8].parse::<f64>().expect("ci_lo"),
                row[9].parse::<f64>().expect("ci_hi"),
            );
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
            assert!(lo <= rate && rate <= hi, "band [{lo},{hi}] must straddle rate {rate}");
        }
        assert_eq!(cell_runs, out.cell_runs, "ledger must match the per-row counts");
        assert!(
            out.cell_runs < cfg.grid.rows().len() * cfg.grid.betas.len(),
            "refinement must evaluate strictly fewer cells than the grid"
        );
    }

    /// The churn-axis story the new adversary exists for: under no PoW,
    /// the churn-timed frontier at heavy churn (strike armed) never
    /// sits above its light-churn frontier (camouflage retainer), on
    /// either topology — and on at least one topology the threshold
    /// strictly drops.
    #[test]
    fn churn_timed_frontier_drops_under_heavy_churn_without_pow() {
        let out = shared_run();
        let mut strict_drop = false;
        for kind in KINDS {
            let at = |churn: f64| {
                out.frontier_beta(&["churn-timed", "none", &f(4.0), &f(churn), kind.name()])
                    .unwrap_or(f64::INFINITY)
            };
            let (light, heavy) = (at(0.05), at(0.2));
            assert!(
                heavy <= light,
                "{}: heavy-churn frontier {heavy} above light-churn {light}",
                kind.name()
            );
            strict_drop |= heavy < light;
        }
        assert!(strict_drop, "the strike must strictly lower the threshold somewhere");
    }

    /// Same seed ⇒ byte-identical tables, regardless of scheduling, on
    /// a reduced grid that still crosses both engines' phases.
    #[test]
    fn refinement_is_byte_identical_across_runs() {
        let cfg = RefineConfig {
            grid: FrontierConfig {
                n_good: 260,
                betas: vec![0.06, 0.12, 0.25],
                d2s: vec![3.0],
                churns: vec![0.2],
                kinds: vec![GraphKind::Chord],
                strategies: vec!["churn-timed"],
                defenses: DEFENSES.to_vec(),
                epochs: 2,
                trials: 2,
                searches: 60,
                seed: 42,
                kernel: Default::default(),
                runtime: Default::default(),
                transport: Default::default(),
                store: None,
                check_invariants: false,
            },
            z: 1.645,
            max_extra_rounds: 1,
        };
        let (a, b) = (run_refine(&cfg), run_refine(&cfg));
        for (ta, tb) in a.tables().iter().zip(tb_iter(&b)) {
            assert_eq!(ta.to_csv(), tb.to_csv());
        }
        assert_eq!(a.cell_runs, b.cell_runs);
        assert_eq!(a.trial_runs, b.trial_runs);
    }

    fn tb_iter(o: &RefineOutcome) -> impl Iterator<Item = &crate::table::Table> {
        o.tables().into_iter()
    }
}
