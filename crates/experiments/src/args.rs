//! Minimal CLI option parsing shared by the experiment binaries.
//!
//! Supported flags (all optional):
//! `--seed <u64>` (default 42), `--full` (paper-scale parameters),
//! `--out <dir>` (default `results/`), `--quiet` (suppress the table),
//! `--only e10,e11,e12` (run a subset), `--list` (print the
//! experiment registry and exit — both consumed by `run_all`; the
//! single-experiment binaries accept and ignore them so one flag set
//! can be passed around scripts unchanged), `--kernel legacy|arena`
//! (which epoch kernel drives the simulated systems — identical results
//! either way; `arena` is the scale path e13 benchmarks), and
//! `--runtime sync|actor` (which epoch runtime advances them —
//! identical results over the actor runtime's default perfect
//! transport; e14 is the faulty-transport sweep), `--transport
//! mem|socket` (which transport carries the actor runtime's protocol
//! messages — the deterministic in-memory network or real loopback TCP
//! sockets; identical results either way, by the shared fault-fate
//! construction), and `--store <dir>`
//! (a content-addressed result store: sweeps replay cells whose
//! observation streams are already stored and publish the ones they
//! simulate, making warm re-runs cheap and long ladders resumable), and
//! `--check-invariants` (wrap every driver the experiment builds in
//! `tg_verify::CheckedDriver`, evaluating the named paper invariants
//! after every epoch and panicking with a reproduction line on the
//! first violation — observations are unchanged, only checked).

use tg_core::runtime::RuntimeChoice;
use tg_core::scenario::{KernelChoice, TransportChoice};

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Master seed for the experiment's randomness streams.
    pub seed: u64,
    /// Run the larger, paper-scale configuration.
    pub full: bool,
    /// Output directory for CSV files.
    pub out_dir: String,
    /// Suppress stdout tables.
    pub quiet: bool,
    /// Restrict `run_all` to the named experiments (`e1`…`e14`,
    /// `figure1`). `None` runs everything.
    pub only: Option<Vec<String>>,
    /// Print the experiment registry (name + one-line description) and
    /// exit 0 instead of running anything (`run_all --list`).
    pub list: bool,
    /// Which epoch kernel drives the simulated systems.
    pub kernel: KernelChoice,
    /// Which epoch runtime advances them (synchronous in-process vs
    /// actor message passing).
    pub runtime: RuntimeChoice,
    /// Which transport carries the actor runtime's protocol messages
    /// (in-memory vs loopback TCP sockets). Only meaningful with
    /// `--runtime actor`; experiments thread it into their specs, where
    /// the socket/sync combination is rejected at build time.
    pub transport: TransportChoice,
    /// Directory of the content-addressed result store
    /// ([`tg_sim::store`]). When set, sweeps replay any cell whose
    /// observation stream is already stored and publish the streams of
    /// cells they simulate — warm re-runs and resumed ladders skip the
    /// work already on disk. `None` (the default) runs everything live.
    pub store: Option<String>,
    /// Evaluate the `tg_verify` invariant registry after every epoch of
    /// every driver the experiment builds, panicking with a full
    /// reproduction line (invariant ID + scenario label + epoch) on the
    /// first violation. Checks draw from their own RNG streams, so the
    /// observations — and every CSV and golden — are byte-identical
    /// with or without the flag.
    pub check_invariants: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 42,
            full: false,
            out_dir: "results".to_string(),
            quiet: false,
            only: None,
            list: false,
            kernel: KernelChoice::default(),
            runtime: RuntimeChoice::default(),
            transport: TransportChoice::default(),
            store: None,
            check_invariants: false,
        }
    }
}

impl Options {
    /// Parse from an iterator of arguments (excluding the program name).
    ///
    /// # Panics
    /// Panics with a usage message on unknown flags or malformed values —
    /// the binaries are developer tools, failing loudly is the feature.
    pub fn parse(args: impl Iterator<Item = String>) -> Options {
        let mut opts = Options::default();
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                    opts.seed = v.parse().unwrap_or_else(|_| usage("--seed must be a u64"));
                }
                "--full" => opts.full = true,
                "--quiet" => opts.quiet = true,
                "--list" => opts.list = true,
                "--out" => {
                    opts.out_dir = it.next().unwrap_or_else(|| usage("--out needs a value"));
                }
                "--only" => {
                    let v = it.next().unwrap_or_else(|| usage("--only needs a value"));
                    let names: Vec<String> = v
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if names.is_empty() {
                        usage("--only needs a comma-separated experiment list");
                    }
                    opts.only = Some(names);
                }
                "--kernel" => {
                    let v = it.next().unwrap_or_else(|| usage("--kernel needs a value"));
                    opts.kernel = KernelChoice::parse(&v)
                        .unwrap_or_else(|| usage("--kernel must be legacy or arena"));
                }
                "--runtime" => {
                    let v = it.next().unwrap_or_else(|| usage("--runtime needs a value"));
                    opts.runtime = RuntimeChoice::parse(&v)
                        .unwrap_or_else(|| usage("--runtime must be sync or actor"));
                }
                "--transport" => {
                    let v = it.next().unwrap_or_else(|| usage("--transport needs a value"));
                    opts.transport = TransportChoice::parse(&v)
                        .unwrap_or_else(|| usage("--transport must be mem or socket"));
                }
                "--store" => {
                    opts.store = Some(it.next().unwrap_or_else(|| usage("--store needs a value")));
                }
                "--check-invariants" => opts.check_invariants = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        opts
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Options {
        Options::parse(std::env::args().skip(1))
    }

    /// Open the result store named by `--store`, if any. A store
    /// directory that cannot be created degrades to a live run with a
    /// warning — caching is an accelerator, never a prerequisite.
    pub fn open_store(&self) -> Option<tg_sim::ResultStore> {
        let dir = self.store.as_ref()?;
        match tg_sim::ResultStore::open(dir) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("warning: could not open result store at {dir}: {e}");
                None
            }
        }
    }

    /// Whether `run_all` should run the experiment with this stem name
    /// (`"e10"`, `"figure1"`, …). Everything is selected when no
    /// `--only` filter was given.
    pub fn selected(&self, name: &str) -> bool {
        self.only.as_ref().is_none_or(|names| names.iter().any(|n| n == name))
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <experiment> [--seed N] [--full] [--out DIR] [--quiet] [--only e10,e11,e12] \
         [--list] [--kernel legacy|arena] [--runtime sync|actor] [--transport mem|socket] \
         [--store DIR] [--check-invariants]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Options {
        Options::parse(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.seed, 42);
        assert!(!o.full);
        assert_eq!(o.out_dir, "results");
        assert!(o.only.is_none());
    }

    #[test]
    fn flags() {
        let o = parse(&["--seed", "7", "--full", "--out", "/tmp/x", "--quiet"]);
        assert_eq!(o.seed, 7);
        assert!(o.full);
        assert_eq!(o.out_dir, "/tmp/x");
        assert!(o.quiet);
    }

    #[test]
    fn list_flag_parses() {
        assert!(parse(&["--list"]).list);
        assert!(!parse(&[]).list);
    }

    #[test]
    fn kernel_flag_parses() {
        assert_eq!(parse(&[]).kernel, KernelChoice::Legacy);
        assert_eq!(parse(&["--kernel", "arena"]).kernel, KernelChoice::Arena);
        assert_eq!(parse(&["--kernel", "legacy"]).kernel, KernelChoice::Legacy);
    }

    #[test]
    fn runtime_flag_parses() {
        assert_eq!(parse(&[]).runtime, RuntimeChoice::Sync);
        assert_eq!(parse(&["--runtime", "actor"]).runtime, RuntimeChoice::Actor);
        assert_eq!(parse(&["--runtime", "sync"]).runtime, RuntimeChoice::Sync);
    }

    #[test]
    fn transport_flag_parses() {
        assert_eq!(parse(&[]).transport, TransportChoice::Mem);
        assert_eq!(parse(&["--transport", "socket"]).transport, TransportChoice::Socket);
        assert_eq!(parse(&["--transport", "mem"]).transport, TransportChoice::Mem);
    }

    #[test]
    fn store_flag_parses_and_opens() {
        assert_eq!(parse(&[]).store, None);
        let dir = std::env::temp_dir()
            .join(format!("tg-args-store-{}", std::process::id()))
            .display()
            .to_string();
        let o = parse(&["--store", &dir]);
        assert_eq!(o.store.as_deref(), Some(dir.as_str()));
        assert!(o.open_store().is_some(), "a creatable directory opens");
        assert!(parse(&[]).open_store().is_none(), "no flag, no store");
    }

    #[test]
    fn check_invariants_flag_parses() {
        assert!(!parse(&[]).check_invariants);
        assert!(parse(&["--check-invariants"]).check_invariants);
    }

    #[test]
    fn only_filters_experiments() {
        let o = parse(&["--only", "e10, e12"]);
        assert!(o.selected("e10"));
        assert!(o.selected("e12"));
        assert!(!o.selected("e11"));
        assert!(!o.selected("figure1"));
        // No filter selects everything.
        assert!(parse(&[]).selected("e11"));
    }
}
