//! Minimal CLI option parsing shared by the experiment binaries.
//!
//! Supported flags (all optional):
//! `--seed <u64>` (default 42), `--full` (paper-scale parameters),
//! `--out <dir>` (default `results/`), `--quiet` (suppress the table).

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Master seed for the experiment's randomness streams.
    pub seed: u64,
    /// Run the larger, paper-scale configuration.
    pub full: bool,
    /// Output directory for CSV files.
    pub out_dir: String,
    /// Suppress stdout tables.
    pub quiet: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options { seed: 42, full: false, out_dir: "results".to_string(), quiet: false }
    }
}

impl Options {
    /// Parse from an iterator of arguments (excluding the program name).
    ///
    /// # Panics
    /// Panics with a usage message on unknown flags or malformed values —
    /// the binaries are developer tools, failing loudly is the feature.
    pub fn parse(args: impl Iterator<Item = String>) -> Options {
        let mut opts = Options::default();
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                    opts.seed = v.parse().unwrap_or_else(|_| usage("--seed must be a u64"));
                }
                "--full" => opts.full = true,
                "--quiet" => opts.quiet = true,
                "--out" => {
                    opts.out_dir = it.next().unwrap_or_else(|| usage("--out needs a value"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        opts
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Options {
        Options::parse(std::env::args().skip(1))
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <experiment> [--seed N] [--full] [--out DIR] [--quiet]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Options {
        Options::parse(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.seed, 42);
        assert!(!o.full);
        assert_eq!(o.out_dir, "results");
    }

    #[test]
    fn flags() {
        let o = parse(&["--seed", "7", "--full", "--out", "/tmp/x", "--quiet"]);
        assert_eq!(o.seed, 7);
        assert!(o.full);
        assert_eq!(o.out_dir, "/tmp/x");
        assert!(o.quiet);
    }
}
