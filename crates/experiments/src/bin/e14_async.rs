//! CLI wrapper for the `e14_async` experiment; see the library module
//! docs. Sweeps the actor-runtime fault grid (drop rate × partition
//! length at fixed β) and emits the degradation table. Quick mode is
//! the CI smoke grid; `--full` densifies both axes.
use tg_experiments::exp::e14_async;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    e14_async::run(&opts).emit(&opts);
    eprintln!("[e14] fault sweep done ({} cells)", e14_async::grid(&opts).len());
}
