//! CLI wrapper for the `e2_groupsize` experiment; see the library module docs.
use tg_experiments::exp::e2_groupsize;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    e2_groupsize::run(&opts).emit(&opts);
}
