//! CLI wrapper for the `e13_scale` experiment; see the library module
//! docs. Emits the kernel-throughput ladder and logs where the
//! machine-readable trajectory record landed. Quick mode is the CI
//! smoke ladder; `--full` climbs the arena kernel to 10⁶ identities.
use tg_experiments::exp::e13_scale;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    e13_scale::run(&opts).emit(&opts);
    eprintln!(
        "[e13] throughput ladder done ({} rungs); BENCH_kernel.json in {}",
        e13_scale::rungs(&opts).len(),
        opts.out_dir,
    );
}
