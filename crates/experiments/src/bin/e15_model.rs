//! CLI wrapper for the `e15_model` experiment; see the library module
//! docs. Enumerates every adversary placement of the tiny model
//! universe across all identity-pipeline defenses, sweeps every
//! declarative strategy through the checked driver, emits the
//! enumeration/strategy/invariant tables, and exits nonzero (panics)
//! if any invariant is violated. `--full` widens the universe.
use tg_experiments::exp::e15_model;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    for table in e15_model::run(&opts) {
        table.emit(&opts);
    }
    eprintln!("[e15] model check done (all invariants hold)");
}
