//! Run every experiment with the given options — regenerates all the
//! tables and figures recorded in EXPERIMENTS.md. `--only e10,e11,e12`
//! restricts the run to a subset (CI smoke and local iteration).
use tg_experiments::exp::*;
use tg_experiments::Options;

/// Every experiment stem `--only` may name, in run order.
const KNOWN: [&str; 13] =
    ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "figure1"];

fn main() {
    let opts = Options::from_env();
    if let Some(only) = &opts.only {
        let unknown: Vec<&str> =
            only.iter().map(String::as_str).filter(|n| !KNOWN.contains(n)).collect();
        if !unknown.is_empty() {
            eprintln!("[run_all] unknown experiment(s) {unknown:?}; known: {KNOWN:?}");
            std::process::exit(2);
        }
    }
    let t0 = std::time::Instant::now();
    let mut ran = 0usize;
    let mut step = |name: &str, banner: &str, f: &mut dyn FnMut(&Options)| {
        if opts.selected(name) {
            eprintln!("[run_all] {banner}…");
            f(&opts);
            ran += 1;
        }
    };
    step("e1", "E1 robustness", &mut |o| e1_robustness::run(o).emit(o));
    step("e2", "E2 group-size threshold", &mut |o| e2_groupsize::run(o).emit(o));
    step("e3", "E3 cost comparison", &mut |o| e3_costs::run(o).emit(o));
    step("e4", "E4 dynamic epochs + ablations", &mut |o| e4_epochs::run(o).emit(o));
    step("e5", "E5 state attack", &mut |o| e5_state::run(o).emit(o));
    step("e6", "E6 proof-of-work minting", &mut |o| {
        for t in e6_pow::run(o) {
            t.emit(o);
        }
    });
    step("e7", "E7 string propagation", &mut |o| e7_strings::run(o).emit(o));
    step("e8", "E8 cuckoo baseline", &mut |o| e8_cuckoo::run(o).emit(o));
    step("e9", "E9 pre-computation attack", &mut |o| e9_precompute::run(o).emit(o));
    step("e10", "E10 adversary strategies", &mut |o| {
        for t in e10_adversaries::run(o) {
            t.emit(o);
        }
    });
    step("e11", "E11 adversary-vs-defense frontier", &mut |o| {
        for t in e11_frontier::run(o).tables() {
            t.emit(o);
        }
    });
    step("e12", "E12 adaptive frontier refinement", &mut |o| {
        for t in e12_refine::run(o).tables() {
            t.emit(o);
        }
    });
    step("figure1", "Figure 1", &mut |o| figure1::run(o).emit(o));
    if ran == 0 {
        eprintln!("[run_all] nothing selected — check the --only list");
        std::process::exit(2);
    }
    eprintln!("[run_all] {ran} experiment(s) done in {:.1?}", t0.elapsed());
}
