//! Run every experiment with the given options — regenerates all the
//! tables and figures recorded in EXPERIMENTS.md. The execution order,
//! the `--list` output, and the `--only` validation all come from one
//! place: [`tg_experiments::exp::REGISTRY`].
//!
//! * `--list` — print the registry (name + one-line description) and
//!   exit 0,
//! * `--only e10,e11,e12` — restrict the run to a subset (CI smoke and
//!   local iteration); unknown names exit 2 with the known list.

use tg_experiments::exp::REGISTRY;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    if opts.list {
        let width = REGISTRY.iter().map(|e| e.name.len()).max().unwrap_or(0);
        for e in REGISTRY {
            println!("{:width$}  {}", e.name, e.description);
        }
        return;
    }
    if let Some(only) = &opts.only {
        let unknown: Vec<&str> = only
            .iter()
            .map(String::as_str)
            .filter(|n| !REGISTRY.iter().any(|e| e.name == *n))
            .collect();
        if !unknown.is_empty() {
            let known: Vec<&str> = REGISTRY.iter().map(|e| e.name).collect();
            eprintln!("[run_all] unknown experiment(s) {unknown:?}; known: {known:?}");
            std::process::exit(2);
        }
    }
    let t0 = std::time::Instant::now();
    let mut ran = 0usize;
    for e in REGISTRY {
        if opts.selected(e.name) {
            eprintln!("[run_all] {}: {}…", e.name, e.description);
            (e.run)(&opts);
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("[run_all] nothing selected — check the --only list");
        std::process::exit(2);
    }
    eprintln!("[run_all] {ran} experiment(s) done in {:.1?}", t0.elapsed());
    let dropped = tg_experiments::artifacts::dropped_count();
    if dropped > 0 {
        eprintln!("[run_all] {dropped} requested artifact(s) could not be written (see warnings)");
        std::process::exit(1);
    }
}
