//! Run every experiment with the given options — regenerates all the
//! tables and figures recorded in EXPERIMENTS.md.
use tg_experiments::exp::*;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    let t0 = std::time::Instant::now();
    eprintln!("[run_all] E1 robustness…");
    e1_robustness::run(&opts).emit(&opts);
    eprintln!("[run_all] E2 group-size threshold…");
    e2_groupsize::run(&opts).emit(&opts);
    eprintln!("[run_all] E3 cost comparison…");
    e3_costs::run(&opts).emit(&opts);
    eprintln!("[run_all] E4 dynamic epochs + ablations…");
    e4_epochs::run(&opts).emit(&opts);
    eprintln!("[run_all] E5 state attack…");
    e5_state::run(&opts).emit(&opts);
    eprintln!("[run_all] E6 proof-of-work minting…");
    for t in e6_pow::run(&opts) {
        t.emit(&opts);
    }
    eprintln!("[run_all] E7 string propagation…");
    e7_strings::run(&opts).emit(&opts);
    eprintln!("[run_all] E8 cuckoo baseline…");
    e8_cuckoo::run(&opts).emit(&opts);
    eprintln!("[run_all] E9 pre-computation attack…");
    e9_precompute::run(&opts).emit(&opts);
    eprintln!("[run_all] E10 adversary strategies…");
    for t in e10_adversaries::run(&opts) {
        t.emit(&opts);
    }
    eprintln!("[run_all] E11 adversary-vs-defense frontier…");
    for t in e11_frontier::run(&opts).tables() {
        t.emit(&opts);
    }
    eprintln!("[run_all] Figure 1…");
    figure1::run(&opts).emit(&opts);
    eprintln!("[run_all] done in {:.1?}", t0.elapsed());
}
