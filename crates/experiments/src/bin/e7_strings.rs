//! CLI wrapper for the `e7_strings` experiment; see the library module docs.
use tg_experiments::exp::e7_strings;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    e7_strings::run(&opts).emit(&opts);
}
