//! CLI wrapper for the `e12_refine` experiment; see the library module
//! docs. Emits the evaluated-cell table, the refined frontier map with
//! confidence bands, and the cost ledger, then logs the saving against
//! the equivalent uniform grid.
use tg_experiments::exp::e12_refine;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    let out = e12_refine::run(&opts);
    for table in out.tables() {
        table.emit(&opts);
    }
    let cfg = e12_refine::config(&opts);
    let grid_cells = cfg.grid.rows().len() * cfg.grid.betas.len();
    eprintln!(
        "[e12] located {} frontiers with {} cell-runs ({} trials incl. confidence seeds); \
         the uniform grid is {} cells — {:.0}% saved",
        out.frontier.rows.len(),
        out.cell_runs,
        out.trial_runs,
        grid_cells,
        100.0 * (1.0 - out.cell_runs as f64 / grid_cells.max(1) as f64),
    );
}
