//! CLI wrapper for the `e6_pow` experiment; see the library module docs.
use tg_experiments::exp::e6_pow;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    for table in e6_pow::run(&opts) {
        table.emit(&opts);
    }
}
