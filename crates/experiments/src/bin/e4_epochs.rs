//! CLI wrapper for the `e4_epochs` experiment; see the library module docs.
use tg_experiments::exp::e4_epochs;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    e4_epochs::run(&opts).emit(&opts);
}
