//! CLI wrapper for the `e1_robustness` experiment; see the library module docs.
use tg_experiments::exp::e1_robustness;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    e1_robustness::run(&opts).emit(&opts);
}
