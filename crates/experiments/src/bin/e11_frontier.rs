//! CLI wrapper for the `e11_frontier` experiment; see the library
//! module docs. Besides the two CSVs, prints the text-rendered β × d₂
//! capture heatmaps (one pane per strategy × defense).
use tg_experiments::exp::e11_frontier;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    let out = e11_frontier::run(&opts);
    for table in out.tables() {
        table.emit(&opts);
    }
    if !opts.quiet {
        println!("{}", out.heatmaps);
    }
}
