//! CLI wrapper for the `e5_state` experiment; see the library module docs.
use tg_experiments::exp::e5_state;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    e5_state::run(&opts).emit(&opts);
}
