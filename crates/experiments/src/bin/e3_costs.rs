//! CLI wrapper for the `e3_costs` experiment; see the library module docs.
use tg_experiments::exp::e3_costs;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    e3_costs::run(&opts).emit(&opts);
}
