//! CLI wrapper for the `e9_precompute` experiment; see the library module docs.
use tg_experiments::exp::e9_precompute;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    e9_precompute::run(&opts).emit(&opts);
}
