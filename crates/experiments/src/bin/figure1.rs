//! CLI wrapper for the `figure1` experiment; see the library module docs.
use tg_experiments::exp::figure1;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    figure1::run(&opts).emit(&opts);
}
