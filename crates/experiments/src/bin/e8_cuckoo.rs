//! CLI wrapper for the `e8_cuckoo` experiment; see the library module docs.
use tg_experiments::exp::e8_cuckoo;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    e8_cuckoo::run(&opts).emit(&opts);
}
