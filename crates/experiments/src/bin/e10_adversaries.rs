//! CLI wrapper for the `e10_adversaries` experiment; see the library
//! module docs.
use tg_experiments::exp::e10_adversaries;
use tg_experiments::Options;

fn main() {
    let opts = Options::from_env();
    for table in e10_adversaries::run(&opts) {
        table.emit(&opts);
    }
}
