//! The one place experiment code builds scenario drivers.
//!
//! Every harness routes through [`build_driver`] so the
//! `--check-invariants` flag reaches every simulated system uniformly:
//! unchecked, it is exactly `tg_pow::scenario::build`; checked, the
//! driver is wrapped in a strict [`tg_verify::CheckedDriver`] that
//! panics with a full reproduction line (invariant ID, scenario label,
//! epoch) on the first violated paper invariant. The wrapper draws
//! its sampling randomness from its own labelled streams, so checked
//! and unchecked runs produce byte-identical observations, CSVs, and
//! goldens.

use tg_core::scenario::{EpochDriver, ScenarioSpec};
use tg_verify::CheckedDriver;

/// Build `spec`'s driver, optionally wrapped in a strict invariant
/// checker.
///
/// # Panics
/// Panics if the spec is unbuildable (experiment specs are
/// constructed, not parsed, so that is a harness bug), or — when
/// `check_invariants` is set — on the first invariant violation.
pub fn build_driver(spec: &ScenarioSpec, check_invariants: bool) -> Box<dyn EpochDriver> {
    if check_invariants {
        let checked = CheckedDriver::build(spec)
            .unwrap_or_else(|e| panic!("scenario `{}` must build: {e:?}", spec.label()))
            .strict();
        Box::new(checked)
    } else {
        tg_pow::scenario::build(spec)
            .unwrap_or_else(|e| panic!("scenario `{}` must build: {e:?}", spec.label()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_and_unchecked_drivers_agree() {
        let spec = ScenarioSpec::new(60, 42).searches(40);
        let mut plain = build_driver(&spec, false);
        let mut checked = build_driver(&spec, true);
        for _ in 0..3 {
            assert_eq!(
                format!("{:?}", plain.step()),
                format!("{:?}", checked.step()),
                "the checked wrapper must not perturb observations"
            );
        }
    }
}
