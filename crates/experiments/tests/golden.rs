//! Golden-report regression suite: pinned-seed runs of the simulation
//! kernels compared byte-for-byte against committed snapshots.
//!
//! Every experiment is a pure function of its seed (labelled RNG
//! streams, order-preserving parallel sweeps, no iteration-order
//! dependence), so refactors to the sim kernels must reproduce these
//! files *exactly* — a silent numerical drift in construction, routing,
//! or measurement fails here even when every statistical bound still
//! holds.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test -p tg-experiments --test golden
//! ```
//!
//! and commit the diff under `tests/golden/` alongside the change that
//! explains it.

use tg_experiments::exp::{e11_frontier, e12_refine, e1_robustness, e4_epochs};
use tg_experiments::Options;

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `actual` against the committed snapshot `name`, or rewrite
/// the snapshot when `GOLDEN_REGEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with GOLDEN_REGEN=1", name));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot; if the change is intentional, regenerate with \
         GOLDEN_REGEN=1 and commit the diff"
    );
}

fn opts() -> Options {
    Options {
        seed: 42,
        full: false,
        out_dir: "/tmp".into(),
        quiet: true,
        only: None,
        list: false,
        kernel: Default::default(),
        runtime: Default::default(),
        transport: Default::default(),
        store: None,
        check_invariants: false,
    }
}

/// E1 (static robustness sweep): every `RobustnessReport`-derived cell,
/// pinned.
#[test]
fn e1_robustness_matches_golden() {
    check_golden("e1_robustness.csv", &e1_robustness::run(&opts()).to_csv());
}

/// E4 (dynamic epochs + ablations): every `EpochReport`-derived cell,
/// pinned.
#[test]
fn e4_epochs_matches_golden() {
    check_golden("e4_epochs.csv", &e4_epochs::run(&opts()).to_csv());
}

/// E10 (adversary-strategy sweep): every (strategy × pipeline) cell of
/// the seed-42 sweep plus the §IV-B hoard table, pinned. Together with
/// the E11/E12 snapshots this is the conformance corpus for the
/// `ScenarioSpec`/`EpochDriver` construction path: the bytes were
/// produced by the pre-redesign direct constructors and must keep
/// reproducing through the spec-built drivers.
#[test]
fn e10_adversaries_matches_golden() {
    let tables = tg_experiments::exp::e10_adversaries::run(&opts());
    check_golden("e10_adversaries.csv", &tables[0].to_csv());
    check_golden("e10_hoard.csv", &tables[1].to_csv());
}

/// E11 (adversary-vs-defense frontier): the full seed-42 3×3 (β × d₂)
/// grid — every cell, the frontier map, and the text heatmaps, pinned.
/// This is the strongest regression net over the strategic `FullSystem`
/// pipeline: any drift in string agreement, strategic minting, or the
/// sweep's seed discipline shows up as a byte diff here.
#[test]
fn e11_frontier_matches_golden() {
    let out = e11_frontier::run(&opts());
    check_golden("e11_frontier.csv", &out.cells.to_csv());
    check_golden("e11_frontier_map.csv", &out.frontier.to_csv());
    check_golden("e11_frontier_heatmap.txt", &out.heatmaps);
}

/// E12 (adaptive frontier refinement): the seed-42 refinement over the
/// churn × topology axes — every evaluated cell with its phase and
/// confidence band, the refined frontier map, and the cost ledger,
/// pinned. Beyond the numerical-drift net this also freezes the
/// refinement *trajectory*: a change to the bisection order, the
/// bracket bookkeeping, or the extra-seed policy shows up as a byte
/// diff even when the located frontier is unchanged.
#[test]
fn e12_refine_matches_golden() {
    let out = e12_refine::run(&opts());
    check_golden("e12_refine_cells.csv", &out.cells.to_csv());
    check_golden("e12_refine_map.csv", &out.frontier.to_csv());
    check_golden("e12_refine_cost.csv", &out.cost.to_csv());
}

// The raw `EpochReport` golden (`epoch_report_seed42.txt`) moved to
// `crates/core/tests/golden_epoch_report.rs`: it pins the dynamic-layer
// implementation itself, so it lives with the impl — the experiments
// layer constructs systems only through `ScenarioSpec`/`EpochDriver`.
