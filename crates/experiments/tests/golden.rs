//! Golden-report regression suite: pinned-seed runs of the simulation
//! kernels compared byte-for-byte against committed snapshots.
//!
//! Every experiment is a pure function of its seed (labelled RNG
//! streams, order-preserving parallel sweeps, no iteration-order
//! dependence), so refactors to the sim kernels must reproduce these
//! files *exactly* — a silent numerical drift in construction, routing,
//! or measurement fails here even when every statistical bound still
//! holds.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test -p tg-experiments --test golden
//! ```
//!
//! and commit the diff under `tests/golden/` alongside the change that
//! explains it.

use tg_core::dynamic::{BuildMode, DynamicSystem, UniformProvider};
use tg_core::Params;
use tg_experiments::exp::{e11_frontier, e12_refine, e1_robustness, e4_epochs};
use tg_experiments::Options;
use tg_overlay::GraphKind;

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `actual` against the committed snapshot `name`, or rewrite
/// the snapshot when `GOLDEN_REGEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with GOLDEN_REGEN=1", name));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot; if the change is intentional, regenerate with \
         GOLDEN_REGEN=1 and commit the diff"
    );
}

fn opts() -> Options {
    Options { seed: 42, full: false, out_dir: "/tmp".into(), quiet: true, only: None }
}

/// E1 (static robustness sweep): every `RobustnessReport`-derived cell,
/// pinned.
#[test]
fn e1_robustness_matches_golden() {
    check_golden("e1_robustness.csv", &e1_robustness::run(&opts()).to_csv());
}

/// E4 (dynamic epochs + ablations): every `EpochReport`-derived cell,
/// pinned.
#[test]
fn e4_epochs_matches_golden() {
    check_golden("e4_epochs.csv", &e4_epochs::run(&opts()).to_csv());
}

/// E11 (adversary-vs-defense frontier): the full seed-42 3×3 (β × d₂)
/// grid — every cell, the frontier map, and the text heatmaps, pinned.
/// This is the strongest regression net over the strategic `FullSystem`
/// pipeline: any drift in string agreement, strategic minting, or the
/// sweep's seed discipline shows up as a byte diff here.
#[test]
fn e11_frontier_matches_golden() {
    let out = e11_frontier::run(&opts());
    check_golden("e11_frontier.csv", &out.cells.to_csv());
    check_golden("e11_frontier_map.csv", &out.frontier.to_csv());
    check_golden("e11_frontier_heatmap.txt", &out.heatmaps);
}

/// E12 (adaptive frontier refinement): the seed-42 refinement over the
/// churn × topology axes — every evaluated cell with its phase and
/// confidence band, the refined frontier map, and the cost ledger,
/// pinned. Beyond the numerical-drift net this also freezes the
/// refinement *trajectory*: a change to the bisection order, the
/// bracket bookkeeping, or the extra-seed policy shows up as a byte
/// diff even when the located frontier is unchanged.
#[test]
fn e12_refine_matches_golden() {
    let out = e12_refine::run(&opts());
    check_golden("e12_refine_cells.csv", &out.cells.to_csv());
    check_golden("e12_refine_map.csv", &out.frontier.to_csv());
    check_golden("e12_refine_cost.csv", &out.cost.to_csv());
}

/// The raw `EpochReport` structure of a small dynamic run — all fields,
/// full float precision (Debug prints shortest-roundtrip), including
/// the construction counters and message metrics the CSVs round away.
#[test]
fn epoch_report_matches_golden() {
    let mut params = Params::paper_defaults();
    params.churn_rate = 0.1;
    params.attack_requests_per_id = 1;
    let mut provider = UniformProvider { n_good: 380, n_bad: 20 };
    let mut sys =
        DynamicSystem::new(params, GraphKind::D2B, BuildMode::DualGraph, &mut provider, 42);
    sys.searches_per_epoch = 200;
    let mut snapshot = String::new();
    for _ in 0..2 {
        let r = sys.advance_epoch(&mut provider);
        snapshot.push_str(&format!("{r:#?}\n"));
    }
    check_golden("epoch_report_seed42.txt", &snapshot);
}
