//! Actor-runtime conformance against the committed golden corpus: the
//! seed-42 snapshots under `tests/golden/` were produced by the
//! synchronous epoch drivers, and this suite replays the same
//! experiments with `--runtime actor` — every byte must reproduce.
//!
//! This is the strongest statement of the async runtime's contract: the
//! epoch step decomposed into per-node actors exchanging protocol
//! messages over the in-memory transport must, when that transport is
//! *perfect* (no drops, no latency, no partitions — the defaults),
//! deliver exactly what the synchronous step computes. The transport
//! draws no RNG and delivers in send order, so the kernel streams and
//! every observation byte are untouched; a drift here is always a bug
//! in the actor runtime (a reordering, a stray rescale, a consumed
//! random draw), never a stale file.
//!
//! Coverage mirrors `golden_arena.rs`: the honest dynamic layer (E4),
//! the strategic no-PoW and minting pipelines (E10), the full
//! epoch-string protocol frontier sweeps (E11/E12), and E1 as the
//! static-layer control pinning that the runtime knob leaks nowhere
//! outside the epoch path.

use tg_core::runtime::RuntimeChoice;
use tg_experiments::exp::{e10_adversaries, e11_frontier, e12_refine, e1_robustness, e4_epochs};
use tg_experiments::Options;

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `actual` against the committed sync-runtime snapshot.
fn check_replay(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {name} ({e}); regenerate via the sync suite first")
    });
    assert_eq!(
        actual, expected,
        "{name}: the actor runtime over a perfect transport drifted from the synchronous \
         snapshot — the runtimes are required to be observation-identical, fix the actor \
         path (do not regenerate)"
    );
}

fn actor_opts() -> Options {
    Options {
        seed: 42,
        full: false,
        out_dir: "/tmp".into(),
        quiet: true,
        only: None,
        list: false,
        kernel: Default::default(),
        runtime: RuntimeChoice::Actor,
        transport: Default::default(),
        store: None,
        check_invariants: false,
    }
}

/// E1 (static robustness): the runtime knob must be inert off the
/// epoch path.
#[test]
fn e1_replays_byte_identically_on_actor() {
    check_replay("e1_robustness.csv", &e1_robustness::run(&actor_opts()).to_csv());
}

/// E4 (honest dynamic epochs + ablations) through the actor runtime.
#[test]
fn e4_replays_byte_identically_on_actor() {
    check_replay("e4_epochs.csv", &e4_epochs::run(&actor_opts()).to_csv());
}

/// E10 (strategy × pipeline sweep + §IV-B hoard) through the actor
/// runtime — the strategic minting pipelines included.
#[test]
fn e10_replays_byte_identically_on_actor() {
    let tables = e10_adversaries::run(&actor_opts());
    check_replay("e10_adversaries.csv", &tables[0].to_csv());
    check_replay("e10_hoard.csv", &tables[1].to_csv());
}

/// E11 (frontier sweep over the full epoch-string protocol) through
/// the actor runtime: cells, frontier map, and heatmaps.
#[test]
fn e11_replays_byte_identically_on_actor() {
    let out = e11_frontier::run(&actor_opts());
    check_replay("e11_frontier.csv", &out.cells.to_csv());
    check_replay("e11_frontier_map.csv", &out.frontier.to_csv());
    check_replay("e11_frontier_heatmap.txt", &out.heatmaps);
}

/// E12 (adaptive refinement) through the actor runtime: the bisection
/// trajectory itself must not move.
#[test]
fn e12_replays_byte_identically_on_actor() {
    let out = e12_refine::run(&actor_opts());
    check_replay("e12_refine_cells.csv", &out.cells.to_csv());
    check_replay("e12_refine_map.csv", &out.frontier.to_csv());
    check_replay("e12_refine_cost.csv", &out.cost.to_csv());
}
