//! CLI contract of the `run_all` binary: `--list` prints the registry
//! and exits 0 without running anything; `--only` validates its names
//! against the same registry (exit 2 on an unknown name). Driven
//! through the real binary (`CARGO_BIN_EXE_run_all`), not a re-parse of
//! the flags, so drift between the registry and the CLI surfaces here.

use std::process::Command;
use tg_experiments::exp::REGISTRY;

fn run_all(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_run_all")).args(args).output().expect("spawn run_all")
}

#[test]
fn list_prints_the_registry_and_exits_zero() {
    let out = run_all(&["--list"]);
    assert!(out.status.success(), "--list must exit 0: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 listing");
    for e in REGISTRY {
        let line = stdout
            .lines()
            .find(|l| l.split_whitespace().next() == Some(e.name))
            .unwrap_or_else(|| panic!("--list is missing {}:\n{stdout}", e.name));
        assert!(line.contains(e.description), "{} line lacks its description: {line}", e.name);
    }
    assert_eq!(stdout.lines().count(), REGISTRY.len(), "one line per experiment");
}

#[test]
fn unknown_only_selection_exits_two_with_the_known_list() {
    let out = run_all(&["--only", "e99"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf-8 diagnostics");
    assert!(stderr.contains("e99"), "diagnostic names the offender: {stderr}");
    for e in REGISTRY {
        assert!(
            stderr.contains(&format!("\"{}\"", e.name)),
            "diagnostic must list every valid selection; missing {}: {stderr}",
            e.name
        );
    }
}

#[test]
fn empty_selection_exits_two() {
    // Valid name set, nothing selected is impossible through --only
    // (unknown names already exit 2), so the nothing-selected guard is
    // only reachable when the filter is empty after trimming — which the
    // parser rejects. Exercise the parser path.
    let out = run_all(&["--only", " , "]);
    assert_eq!(out.status.code(), Some(2));
}
