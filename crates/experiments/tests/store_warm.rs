//! Warm-start acceptance suite for the content-addressed result store
//! (the ISSUE 8 tentpole contract, run end to end through E12).
//!
//! A cold seed-42 refinement against an empty store must reproduce the
//! committed golden frontier map byte for byte — the store is a cache,
//! never an input. A second, warm run over the same store must then
//! reproduce the *same bytes* with **zero** live cell-runs (strictly
//! fewer than the cold pass), its cost ledger reporting every trial as
//! a store hit. This doubles as the tier-1 warm-start smoke: CI runs it
//! on every PR.

use tg_experiments::exp::e12_refine;
use tg_experiments::Options;

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {name} ({e}); run with GOLDEN_REGEN=1"))
}

fn opts(store_dir: &std::path::Path) -> Options {
    Options {
        seed: 42,
        full: false,
        out_dir: "/tmp".into(),
        quiet: true,
        only: None,
        list: false,
        kernel: Default::default(),
        runtime: Default::default(),
        transport: Default::default(),
        store: Some(store_dir.to_str().expect("utf-8 temp path").to_string()),
        check_invariants: false,
    }
}

/// Cold run fills the store and matches the committed goldens; warm run
/// replays byte-identically with strictly fewer (zero) live cell-runs.
#[test]
fn warm_refine_reproduces_golden_map_with_fewer_live_runs() {
    let dir = std::env::temp_dir().join(format!("tg-store-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = e12_refine::run(&opts(&dir));
    assert_eq!(
        cold.frontier.to_csv(),
        golden("e12_refine_map.csv"),
        "cold store-backed run must still match the committed golden map"
    );
    assert_eq!(
        cold.cells.to_csv(),
        golden("e12_refine_cells.csv"),
        "cold store-backed run must still match the committed golden cells"
    );
    assert!(cold.live_cell_runs > 0, "an empty store cannot serve any cell");
    assert_eq!(cold.live_cell_runs, cold.cell_runs, "every cold cell runs live");
    assert_eq!(cold.live_trial_runs, cold.trial_runs, "every cold trial runs live");

    let warm = e12_refine::run(&opts(&dir));
    assert_eq!(
        warm.frontier.to_csv(),
        golden("e12_refine_map.csv"),
        "warm run must reproduce the committed golden map byte for byte"
    );
    assert_eq!(warm.cells.to_csv(), cold.cells.to_csv());
    assert!(
        warm.live_cell_runs < cold.live_cell_runs,
        "warm run must take strictly fewer live cell-runs ({} vs {})",
        warm.live_cell_runs,
        cold.live_cell_runs
    );
    assert_eq!(warm.live_cell_runs, 0, "a fully warm store serves every cell");
    assert_eq!(warm.live_trial_runs, 0, "a fully warm store serves every trial");
    assert_eq!(warm.cell_runs, cold.cell_runs, "replay walks the same trajectory");
    assert_eq!(warm.trial_runs, cold.trial_runs);

    // The cost ledger reports the cache hits: same accounting columns,
    // live counts zeroed, every trial a store hit.
    let (cold_csv, warm_csv) = (cold.cost.to_csv(), warm.cost.to_csv());
    let cold_row: Vec<&str> = cold_csv.lines().nth(1).expect("cost row").split(',').collect();
    let warm_row: Vec<&str> = warm_csv.lines().nth(1).expect("cost row").split(',').collect();
    let header: Vec<&str> = warm_csv.lines().next().expect("header").split(',').collect();
    let col = |name: &str| header.iter().position(|h| *h == name).expect("cost column");
    assert_eq!(warm_row[col("live_cell_runs")], "0");
    assert_eq!(warm_row[col("live_trial_runs")], "0");
    assert_eq!(warm_row[col("store_trial_hits")], warm_row[col("trial_runs")]);
    assert_eq!(cold_row[col("store_trial_hits")], "0");

    let _ = std::fs::remove_dir_all(&dir);
}
