//! Arena-kernel conformance against the committed golden corpus: the
//! seed-42 snapshots under `tests/golden/` were produced by the legacy
//! per-group epoch kernel, and this suite replays the same experiments
//! with `--kernel arena` — every byte must reproduce.
//!
//! This is the strongest statement of the arena/SoA redesign's
//! contract: not merely "the kernels agree on random small specs" (the
//! equivalence proptests) but "the flat arena hot path regenerates the
//! exact corpus the legacy kernel committed", across the honest dynamic
//! layer (E4), the strategic no-PoW and minting pipelines (E10), and
//! the full frontier sweeps over the real epoch-string protocol
//! (E11/E12). E1 rides along as the static-layer control: its sweep
//! never steps an epoch kernel, so it pins that the kernel knob leaks
//! nowhere else.
//!
//! Unlike `golden.rs` this suite never regenerates: the point is byte
//! equality with snapshots the *other* kernel wrote, so a drift here is
//! always a bug in the arena kernel (or a kernel-dependent leak into
//! the measurement path), never a stale file.

use tg_core::scenario::KernelChoice;
use tg_experiments::exp::{e10_adversaries, e11_frontier, e12_refine, e1_robustness, e4_epochs};
use tg_experiments::Options;

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `actual` against the committed legacy-kernel snapshot.
fn check_replay(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {name} ({e}); regenerate via the legacy suite first")
    });
    assert_eq!(
        actual, expected,
        "{name}: the arena kernel drifted from the legacy-kernel snapshot — the kernels are \
         required to be observation-identical, fix the arena path (do not regenerate)"
    );
}

fn arena_opts() -> Options {
    Options {
        seed: 42,
        full: false,
        out_dir: "/tmp".into(),
        quiet: true,
        only: None,
        list: false,
        kernel: KernelChoice::Arena,
        runtime: Default::default(),
        transport: Default::default(),
        store: None,
        check_invariants: false,
    }
}

/// E1 (static robustness): the kernel knob must be inert off the epoch
/// path.
#[test]
fn e1_replays_byte_identically_on_arena() {
    check_replay("e1_robustness.csv", &e1_robustness::run(&arena_opts()).to_csv());
}

/// E4 (honest dynamic epochs + ablations) through the arena kernel.
#[test]
fn e4_replays_byte_identically_on_arena() {
    check_replay("e4_epochs.csv", &e4_epochs::run(&arena_opts()).to_csv());
}

/// E10 (strategy × pipeline sweep + §IV-B hoard) through the arena
/// kernel — the strategic minting pipelines included.
#[test]
fn e10_replays_byte_identically_on_arena() {
    let tables = e10_adversaries::run(&arena_opts());
    check_replay("e10_adversaries.csv", &tables[0].to_csv());
    check_replay("e10_hoard.csv", &tables[1].to_csv());
}

/// E11 (frontier sweep over the full epoch-string protocol) through
/// the arena kernel: cells, frontier map, and heatmaps.
#[test]
fn e11_replays_byte_identically_on_arena() {
    let out = e11_frontier::run(&arena_opts());
    check_replay("e11_frontier.csv", &out.cells.to_csv());
    check_replay("e11_frontier_map.csv", &out.frontier.to_csv());
    check_replay("e11_frontier_heatmap.txt", &out.heatmaps);
}

/// E12 (adaptive refinement) through the arena kernel: the bisection
/// trajectory itself must not move.
#[test]
fn e12_replays_byte_identically_on_arena() {
    let out = e12_refine::run(&arena_opts());
    check_replay("e12_refine_cells.csv", &out.cells.to_csv());
    check_replay("e12_refine_map.csv", &out.frontier.to_csv());
    check_replay("e12_refine_cost.csv", &out.cost.to_csv());
}
