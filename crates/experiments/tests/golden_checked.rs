//! Invariant-checked conformance against the committed golden corpus:
//! replay the seed-42 snapshots with `--check-invariants` across the
//! kernel × runtime matrix and require **two** things at once:
//!
//! 1. **zero violations** — every epoch of every committed scenario
//!    satisfies the `tg_verify` registry (the checked builds run
//!    strict, so a violation panics with its reproduction line), and
//! 2. **byte identity** — the checker is observation-transparent: its
//!    sampled probes draw from their own labelled RNG streams, so a
//!    checked run's CSV equals the committed snapshot exactly. If a
//!    byte moves here but not in the unchecked suites, the *checker*
//!    consumed kernel randomness — fix `tg_verify`, never regenerate.
//!
//! Coverage: the honest dynamic layer (E4) and the strategic
//! no-PoW + minting pipelines (E10) on all four kernel × runtime
//! combinations plus a loopback-TCP socket row — the two experiments
//! whose goldens exercise every per-step invariant (budget,
//! observation consistency, route probes) across both identity
//! pipelines and the transport axis.

use tg_core::runtime::RuntimeChoice;
use tg_core::scenario::{KernelChoice, TransportChoice};
use tg_experiments::exp::{e10_adversaries, e4_epochs};
use tg_experiments::Options;

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `actual` against the committed snapshot (regenerated only by
/// the sync suite — this suite never writes).
fn check_replay(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {name} ({e}); regenerate via the sync suite first")
    });
    assert_eq!(
        actual, expected,
        "{name}: the invariant-checked replay drifted from the committed snapshot — the \
         checker must be observation-transparent, fix tg_verify (do not regenerate)"
    );
}

fn checked_opts(
    kernel: KernelChoice,
    runtime: RuntimeChoice,
    transport: TransportChoice,
) -> Options {
    Options {
        seed: 42,
        full: false,
        out_dir: "/tmp".into(),
        quiet: true,
        only: None,
        list: false,
        kernel,
        runtime,
        transport,
        store: None,
        check_invariants: true,
    }
}

/// Every kernel × runtime pair over the in-memory transport, plus one
/// real-socket row (sockets require the actor runtime; the in-memory
/// actor rows already pin both kernels, so one loopback-TCP replay
/// covers the transport axis without doubling the suite).
fn matrix() -> [(KernelChoice, RuntimeChoice, TransportChoice); 5] {
    [
        (KernelChoice::Legacy, RuntimeChoice::Sync, TransportChoice::Mem),
        (KernelChoice::Arena, RuntimeChoice::Sync, TransportChoice::Mem),
        (KernelChoice::Legacy, RuntimeChoice::Actor, TransportChoice::Mem),
        (KernelChoice::Arena, RuntimeChoice::Actor, TransportChoice::Mem),
        (KernelChoice::Arena, RuntimeChoice::Actor, TransportChoice::Socket),
    ]
}

/// E4 (honest dynamic epochs + ablations), checked, on every kernel ×
/// runtime combination.
#[test]
fn e4_replays_byte_identically_under_invariant_checks() {
    for (kernel, runtime, transport) in matrix() {
        let opts = checked_opts(kernel, runtime, transport);
        check_replay("e4_epochs.csv", &e4_epochs::run(&opts).to_csv());
    }
}

/// E10 (strategy × pipeline sweep + §IV-B hoard), checked, on every
/// kernel × runtime combination — the minting pipelines and the
/// budget-exempt hoarder included.
#[test]
fn e10_replays_byte_identically_under_invariant_checks() {
    for (kernel, runtime, transport) in matrix() {
        let opts = checked_opts(kernel, runtime, transport);
        let tables = e10_adversaries::run(&opts);
        check_replay("e10_adversaries.csv", &tables[0].to_csv());
        check_replay("e10_hoard.csv", &tables[1].to_csv());
    }
}
