//! Smoke suite: every experiment harness runs end-to-end at the small
//! (non-`--full`) configuration and emits a non-empty CSV, so the
//! e1–e11 binaries cannot silently rot. Paper-scale runs stay behind
//! `--full` on the binaries themselves; the `#[ignore]`d tests cover
//! that path (run nightly in CI).

use tg_experiments::exp::*;
use tg_experiments::{Options, Table};

/// Options for a fast run: small parameters, CSV into a scratch dir.
fn smoke_opts(name: &str) -> Options {
    let out = std::env::temp_dir().join(format!("tg-smoke-{name}-{}", std::process::id()));
    Options {
        seed: 42,
        kernel: Default::default(),
        runtime: Default::default(),
        full: false,
        out_dir: out.to_str().expect("utf-8 temp path").to_string(),
        quiet: true,
        only: None,
        list: false,
        transport: Default::default(),
        store: None,
        check_invariants: false,
    }
}

/// Emit the table and check both the in-memory rows and the CSV on disk.
fn check(table: &Table, opts: &Options) {
    assert!(!table.rows.is_empty(), "{} produced no rows", table.name);
    for row in &table.rows {
        assert_eq!(row.len(), table.headers.len(), "ragged row in {}", table.name);
    }
    table.emit(opts);
    let csv = std::path::Path::new(&opts.out_dir).join(format!("{}.csv", table.name));
    let written = std::fs::read_to_string(&csv).expect("CSV written");
    assert_eq!(written.lines().count(), table.rows.len() + 1, "CSV rows + header");
    std::fs::remove_dir_all(&opts.out_dir).ok();
}

#[test]
fn e1_robustness_smoke() {
    let opts = smoke_opts("e1");
    check(&e1_robustness::run(&opts), &opts);
}

#[test]
fn e2_groupsize_smoke() {
    let opts = smoke_opts("e2");
    check(&e2_groupsize::run(&opts), &opts);
}

#[test]
fn e3_costs_smoke() {
    let opts = smoke_opts("e3");
    check(&e3_costs::run(&opts), &opts);
}

#[test]
fn e4_epochs_smoke() {
    let opts = smoke_opts("e4");
    check(&e4_epochs::run(&opts), &opts);
}

#[test]
fn e5_state_smoke() {
    let opts = smoke_opts("e5");
    check(&e5_state::run(&opts), &opts);
}

#[test]
fn e6_pow_smoke() {
    let opts = smoke_opts("e6");
    for table in e6_pow::run(&opts) {
        check(&table, &opts);
    }
}

#[test]
fn e7_strings_smoke() {
    let opts = smoke_opts("e7");
    check(&e7_strings::run(&opts), &opts);
}

#[test]
fn e8_cuckoo_smoke() {
    let opts = smoke_opts("e8");
    check(&e8_cuckoo::run(&opts), &opts);
}

#[test]
fn e9_precompute_smoke() {
    let opts = smoke_opts("e9");
    check(&e9_precompute::run(&opts), &opts);
}

#[test]
fn e10_adversaries_smoke() {
    let opts = smoke_opts("e10");
    let tables = e10_adversaries::run(&opts);
    assert_eq!(tables.len(), 2, "strategy sweep + hoard axis");
    // Full strategy × pipeline coverage, one row per epoch.
    let sweep = &tables[0];
    for strategy in e10_adversaries::STRATEGIES {
        for pipeline in e10_adversaries::PIPELINES {
            assert!(
                sweep.rows.iter().any(|r| r[0] == strategy && r[1] == pipeline),
                "missing cell {strategy} × {pipeline}"
            );
        }
    }
    for table in &tables {
        check(table, &opts);
    }
}

/// E11 acceptance shape: a full 3×3 (β × d₂) grid across 3 strategies ×
/// 4 defenses, swept over the real `FullSystem` protocol for every PoW
/// row (the engine constructs `FullSystem` for `Defense::Pow`; asserted
/// here through the defense labels present in the CSV), with the
/// early-exit bookkeeping visible in the status column. The frontier
/// contrasts themselves (f∘g strictly dominating no-PoW for the
/// adaptive strategies) are pinned by the unit tests in
/// `exp::e11_frontier` and the golden snapshot.
#[test]
fn e11_frontier_smoke() {
    let opts = smoke_opts("e11");
    let out = e11_frontier::run(&opts);
    let cfg = e11_frontier::config(&opts);
    assert!(cfg.betas.len() >= 3 && cfg.d2s.len() >= 3, "≥3×3 β × d₂ grid");
    assert!(cfg.strategies.len() >= 3 && cfg.defenses.len() >= 2, "≥3 strategies × ≥2 defenses");
    for strategy in e11_frontier::STRATEGIES {
        for defense in ["none", "single-hash", "f∘g", "f∘g-frozen"] {
            assert!(
                out.cells.rows.iter().any(|r| r[0] == strategy && r[1] == defense),
                "missing pane {strategy} × {defense}"
            );
        }
    }
    assert!(!out.heatmaps.is_empty(), "text frontier must render");
    for table in out.tables() {
        check(table, &opts);
    }
}

/// E12 acceptance shape: the adaptive refinement sweeps the full
/// strategy × defense × d₂ × churn × topology product (one map row per
/// combination, every evaluated cell in the cells table), locates a
/// frontier by bisection, and the cost ledger shows strictly fewer
/// cell-runs than the uniform grid it replaces. The engine-equivalence
/// and ≥2× saving claims are pinned by the unit tests in
/// `exp::e12_refine` and the golden snapshot.
#[test]
fn e12_refine_smoke() {
    let opts = smoke_opts("e12");
    let out = e12_refine::run(&opts);
    let cfg = e12_refine::config(&opts);
    assert!(cfg.grid.betas.len() >= 8, "a ladder worth bisecting");
    assert!(cfg.grid.churns.len() >= 2 && cfg.grid.kinds.len() >= 2, "the new axes are swept");
    for strategy in e12_refine::STRATEGIES {
        for defense in ["none", "f∘g"] {
            for churn in e12_refine::CHURNS {
                for kind in e12_refine::KINDS {
                    assert!(
                        out.frontier.rows.iter().any(|r| r[0] == strategy
                            && r[1] == defense
                            && r[3] == tg_experiments::table::f(churn)
                            && r[4] == kind.name()),
                        "missing row {strategy} × {defense} × {churn} × {}",
                        kind.name()
                    );
                }
            }
        }
    }
    assert!(
        out.cell_runs < cfg.grid.rows().len() * cfg.grid.betas.len(),
        "refinement must beat the full grid"
    );
    for table in out.tables() {
        check(table, &opts);
    }
}

/// E13 acceptance shape (quick rungs): both kernels appear, every rung
/// reports positive throughput, and the machine-readable trajectory
/// record lands next to the CSV with the shared comparator key.
#[test]
fn e13_scale_smoke() {
    let opts = smoke_opts("e13");
    let table = e13_scale::run(&opts);
    for kernel in ["legacy", "arena"] {
        assert!(table.rows.iter().any(|r| r[0] == kernel), "missing {kernel} rungs");
    }
    for row in &table.rows {
        let rate: f64 = row[7].parse().expect("identities_per_sec is numeric");
        assert!(rate > 0.0, "non-positive throughput in {row:?}");
    }
    let record = std::path::Path::new(&opts.out_dir).join("BENCH_kernel.json");
    let json = std::fs::read_to_string(&record).expect("BENCH_kernel.json written");
    assert!(json.contains("\"wall_ms_per_cell_run\""), "trajectory key missing: {json}");
    assert!(json.contains("\"kernel\": \"arena\""), "record pins the arena kernel: {json}");
    check(&table, &opts);
}

#[test]
fn figure1_smoke() {
    let opts = smoke_opts("fig1");
    check(&figure1::run(&opts), &opts);
}

/// Paper-scale configuration of the heaviest harness — minutes, not
/// seconds, so it only runs on request: `cargo test -- --ignored`
/// (locally, or via the nightly CI job).
#[test]
#[ignore = "paper-scale run; minutes of wall clock"]
fn e1_robustness_full_scale() {
    let mut opts = smoke_opts("e1-full");
    opts.full = true;
    check(&e1_robustness::run(&opts), &opts);
}

/// The full adversary-strategy sweep at paper scale (nightly CI).
#[test]
#[ignore = "paper-scale run; minutes of wall clock"]
fn e10_adversaries_full_scale() {
    let mut opts = smoke_opts("e10-full");
    opts.full = true;
    for table in e10_adversaries::run(&opts) {
        check(&table, &opts);
    }
}

/// The full 8×5 frontier grid with all five strategies (nightly CI).
#[test]
#[ignore = "paper-scale run; minutes of wall clock"]
fn e11_frontier_full_scale() {
    let mut opts = smoke_opts("e11-full");
    opts.full = true;
    for table in e11_frontier::run(&opts).tables() {
        check(table, &opts);
    }
}

/// The full refinement sweep — 16-rung ladder over four strategies ×
/// three d₂ × three churn rates × three topologies (nightly CI).
#[test]
#[ignore = "paper-scale run; minutes of wall clock"]
fn e12_refine_full_scale() {
    let mut opts = smoke_opts("e12-full");
    opts.full = true;
    for table in e12_refine::run(&opts).tables() {
        check(table, &opts);
    }
}
