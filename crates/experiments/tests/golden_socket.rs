//! Socket-transport conformance against the committed golden corpus:
//! the seed-42 snapshots under `tests/golden/` were produced by the
//! synchronous epoch drivers over no network at all, and this suite
//! replays the same experiments with `--runtime actor --transport
//! socket` — real length-prefixed frames over loopback TCP — and every
//! byte must still reproduce.
//!
//! This is the issue's acceptance criterion made executable. Two
//! properties carry it: the socket transport applies the same pure
//! fault fate as the in-memory transport (here: the perfect default,
//! so nothing is lost), and the latency-adaptive phase window sits at
//! its zero-latency fixpoint on a perfect network, so the spread ticks
//! and phase deadlines are identical to the in-memory run. A drift is
//! always a transport bug (a reordered frame, a lost lane, a stats
//! leak into the kernel streams), never a stale file — do not
//! regenerate the goldens from this suite.

use tg_core::runtime::RuntimeChoice;
use tg_core::scenario::TransportChoice;
use tg_experiments::exp::{e10_adversaries, e11_frontier, e12_refine, e1_robustness, e4_epochs};
use tg_experiments::Options;

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `actual` against the committed sync-runtime snapshot.
fn check_replay(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {name} ({e}); regenerate via the sync suite first")
    });
    assert_eq!(
        actual, expected,
        "{name}: the actor runtime over loopback TCP drifted from the synchronous snapshot — \
         the transports are required to be observation-identical on a perfect network, fix \
         the socket path (do not regenerate)"
    );
}

fn socket_opts() -> Options {
    Options {
        seed: 42,
        full: false,
        out_dir: "/tmp".into(),
        quiet: true,
        only: None,
        list: false,
        kernel: Default::default(),
        runtime: RuntimeChoice::Actor,
        transport: TransportChoice::Socket,
        store: None,
        check_invariants: false,
    }
}

/// E1 (static robustness): the transport knob must be inert off the
/// epoch path.
#[test]
fn e1_replays_byte_identically_on_socket() {
    check_replay("e1_robustness.csv", &e1_robustness::run(&socket_opts()).to_csv());
}

/// E4 (honest dynamic epochs + ablations) over loopback sockets.
#[test]
fn e4_replays_byte_identically_on_socket() {
    check_replay("e4_epochs.csv", &e4_epochs::run(&socket_opts()).to_csv());
}

/// E10 (strategy × pipeline sweep + §IV-B hoard) over loopback
/// sockets — cells run inside `parallel_map`, so this also pins that
/// concurrent socket scenarios cannot corrupt each other's frames.
#[test]
fn e10_replays_byte_identically_on_socket() {
    let tables = e10_adversaries::run(&socket_opts());
    check_replay("e10_adversaries.csv", &tables[0].to_csv());
    check_replay("e10_hoard.csv", &tables[1].to_csv());
}

/// E11 (frontier sweep over the full epoch-string protocol) over
/// loopback sockets: cells, frontier map, and heatmaps.
#[test]
fn e11_replays_byte_identically_on_socket() {
    let out = e11_frontier::run(&socket_opts());
    check_replay("e11_frontier.csv", &out.cells.to_csv());
    check_replay("e11_frontier_map.csv", &out.frontier.to_csv());
    check_replay("e11_frontier_heatmap.txt", &out.heatmaps);
}

/// E12 (adaptive refinement) over loopback sockets: the bisection
/// trajectory itself must not move.
#[test]
fn e12_replays_byte_identically_on_socket() {
    let out = e12_refine::run(&socket_opts());
    check_replay("e12_refine_cells.csv", &out.cells.to_csv());
    check_replay("e12_refine_map.csv", &out.frontier.to_csv());
    check_replay("e12_refine_cost.csv", &out.cost.to_csv());
}
