//! Property-based pin of the table float formatter: `table::f` must
//! never render a nonzero value as a string that parses back to zero.
//! Values in the fixed-point tiers round-trip to within half a cell of
//! their tier's decimal grid; values below the `{:.4}` threshold fall
//! back to `{:e}`, whose shortest-round-trip output parses back
//! bit-exactly.

use proptest::prelude::*;
use tg_experiments::table::f;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nonzero_values_never_format_to_zero(
        mantissa in 1u64..=u64::MAX,
        scale in 0u32..25,
        neg in any::<bool>(),
    ) {
        // Spread the magnitude over 25 decades straddling the 0.00005
        // fixed-point threshold, down into the {:e} fallback range.
        let sign = if neg { -1.0 } else { 1.0 };
        let v = sign * (mantissa as f64 / u64::MAX as f64) * 10f64.powi(12 - scale as i32);
        prop_assume!(v != 0.0 && v.is_finite());

        let s = f(v);
        let parsed: f64 = s.parse().expect("f() output parses as f64");
        prop_assert!(parsed != 0.0, "f({v}) rendered {s:?}, which parses to zero");
        prop_assert!((parsed < 0.0) == (v < 0.0), "f({v}) = {s:?} flipped the sign");

        if v.abs() >= 0.00005 {
            // Fixed-point branches: half a cell of whichever decimal
            // grid the magnitude tier rounds to ({:.0} / {:.2} / {:.4}).
            let tol = if v.abs() >= 1000.0 {
                0.5
            } else if v.abs() >= 1.0 {
                0.005
            } else {
                0.00005
            };
            prop_assert!(
                (parsed - v).abs() <= tol,
                "f({v}) = {s:?} parsed back to {parsed}, off by more than {tol}"
            );
        } else {
            // Scientific fallback: Display's shortest-round-trip
            // contract makes the parse bit-exact.
            prop_assert_eq!(parsed.to_bits(), v.to_bits(), "f({}) = {:?} is not exact", v, &s);
        }
    }
}
