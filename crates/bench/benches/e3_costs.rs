//! E3 kernel: secure routing cost — tiny vs Θ(log n) groups (Corollary 1
//! message accounting) and the message-level verified route.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tg_ba::AdversaryMode;
use tg_bench::{fixture, fixture_logn};
use tg_core::routing::secure_route_verified;
use tg_core::search_path;
use tg_idspace::Id;
use tg_overlay::GraphKind;
use tg_sim::Metrics;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_costs");
    g.sample_size(20);

    let (tiny, _) = fixture(4096, GraphKind::D2B, 3);
    let (classic, _) = fixture_logn(4096, GraphKind::D2B, 3);
    g.bench_function("search_tiny_groups_n4096", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Metrics::new();
        b.iter(|| {
            let from = rng.gen_range(0..tiny.len());
            search_path(&tiny, from, Id(rng.gen()), &mut m)
        });
    });
    g.bench_function("search_logn_groups_n4096", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Metrics::new();
        b.iter(|| {
            let from = rng.gen_range(0..classic.len());
            search_path(&classic, from, Id(rng.gen()), &mut m)
        });
    });
    g.bench_function("verified_route_tiny_n4096", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = Metrics::new();
        b.iter(|| {
            let from = rng.gen_range(0..tiny.len());
            secure_route_verified(
                &tiny,
                from,
                Id(rng.gen()),
                42,
                AdversaryMode::Equivocate { seed: 5 },
                &mut m,
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
