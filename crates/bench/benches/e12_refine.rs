//! E12 kernels: one row refined end-to-end (bracket probe, bisection,
//! confidence seeds) against the equivalent uniform row, so the
//! engine's overhead-vs-saving trade is visible as wall clock.
use criterion::{criterion_group, criterion_main, Criterion};
use tg_experiments::frontier::{run_frontier, Defense, FrontierConfig};
use tg_experiments::refine::{run_refine, RefineConfig};
use tg_overlay::GraphKind;
use tg_pow::MintScheme;

/// One no-PoW + one `f∘g` row over an 8-rung ladder — enough rungs for
/// the bisection to actually skip work.
fn grid() -> FrontierConfig {
    FrontierConfig {
        n_good: 260,
        betas: vec![0.02, 0.04, 0.06, 0.09, 0.13, 0.19, 0.28, 0.42],
        d2s: vec![4.0],
        churns: vec![0.2],
        kinds: vec![GraphKind::Chord],
        strategies: vec!["churn-timed"],
        defenses: vec![
            Defense::NoPow,
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
        ],
        epochs: 1,
        trials: 1,
        searches: 60,
        seed: 7,
        kernel: Default::default(),
        runtime: Default::default(),
        transport: Default::default(),
        store: None,
        check_invariants: false,
    }
}

fn bench_refine_vs_uniform(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_refine");
    g.sample_size(10);
    g.bench_function("refine_2rows_ladder8_churn_timed", |b| {
        b.iter(|| run_refine(&RefineConfig { grid: grid(), z: 1.645, max_extra_rounds: 1 }));
    });
    g.bench_function("uniform_2rows_ladder8_churn_timed", |b| {
        b.iter(|| run_frontier(&grid()));
    });
    g.finish();
}

criterion_group!(benches, bench_refine_vs_uniform);
criterion_main!(benches);
