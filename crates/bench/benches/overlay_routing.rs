//! Input-graph routing kernels (property P1 machinery for every
//! implemented topology).
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tg_idspace::{Id, SortedRing};
use tg_overlay::GraphKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlay_routing");
    let mut rng = StdRng::seed_from_u64(1);
    let ring = SortedRing::new((0..8192).map(|_| Id(rng.gen())).collect());
    for kind in GraphKind::ALL {
        let graph = kind.build(ring.clone());
        g.bench_function(format!("route_n8192_{}", kind.name()), |b| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let from = ring.at(rng.gen_range(0..ring.len()));
                graph.route(from, Id(rng.gen()))
            });
        });
        g.bench_function(format!("neighbors_n8192_{}", kind.name()), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let w = ring.at(rng.gen_range(0..ring.len()));
                graph.neighbors(w)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
