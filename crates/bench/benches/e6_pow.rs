//! E6 kernel: puzzle attempts (real SHA-256) and statistical minting
//! windows (Lemma 11 pipeline).
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tg_crypto::OracleFamily;
use tg_idspace::Id;
use tg_pow::puzzle::attempt;
use tg_pow::{MintingSim, PuzzleParams};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_pow");
    let fam = OracleFamily::new(1);
    let params = PuzzleParams { tau: Id::from_f64(1e-6), attempts_per_step: 1, t_epoch: 2 };
    g.bench_function("puzzle_attempt_sha256", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s = s.wrapping_add(1);
            attempt(&fam, &params, (s, !s), 0xABCD)
        });
    });
    let sim = MintingSim {
        params: PuzzleParams::calibrated(16, 4096),
        n_good: 10_000,
        adversary_units: 500.0,
        idealized_good: true,
    };
    g.bench_function("minting_window_n10000", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| sim.run_window(&mut rng));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
