//! SHA-256 substrate throughput (the random-oracle workhorse).
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tg_crypto::{sha256, OracleFamily};
use tg_idspace::Id;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto_sha256");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256_{size}B"), |b| {
            b.iter(|| sha256(&data));
        });
    }
    let fam = OracleFamily::new(1);
    g.bench_function("oracle_hash_id_index", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            fam.h1.hash_id_index(Id(0x1234_5678_9abc_def0), i)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
