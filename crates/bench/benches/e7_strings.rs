//! E7 kernel: one full string-propagation run (Lemma 12 pipeline).
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tg_bench::fixture;
use tg_overlay::GraphKind;
use tg_pow::{run_string_protocol, StringAdversary, StringParams};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_strings");
    g.sample_size(10);
    let (gg, _) = fixture(512, GraphKind::Chord, 4);
    let params = StringParams::default();
    g.bench_function("propagate_n512_clean", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| run_string_protocol(&gg, &params, StringAdversary::None, &mut rng));
    });
    g.bench_function("propagate_n512_delayed_release", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let adv = StringAdversary::DelayedRelease { strings: 5, release_frac: 0.49, units: 25.0 };
        b.iter(|| run_string_protocol(&gg, &params, adv, &mut rng));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
