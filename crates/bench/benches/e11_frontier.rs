//! E11 kernels: one full-protocol epoch under a strategic adversary
//! (string agreement + strategic minting + dynamic advance), and a
//! miniature frontier grid through the sweep engine itself.
use criterion::{criterion_group, criterion_main, Criterion};
use tg_core::dynamic::GapFilling;
use tg_core::Params;
use tg_experiments::frontier::{run_frontier, Defense, FrontierConfig};
use tg_overlay::GraphKind;
use tg_pow::{FullSystem, MintScheme, PuzzleParams, StrategicPowProvider, StringParams};

fn bench_strategic_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_full_system");
    g.sample_size(10);
    g.bench_function("strategic_epoch_n400_gap_filling_single_hash", |b| {
        b.iter(|| {
            let mut params = Params::paper_defaults();
            params.churn_rate = 0.1;
            params.attack_requests_per_id = 0;
            let mut sys = FullSystem::new(
                params,
                GraphKind::Chord,
                PuzzleParams::calibrated(16, 2048),
                StringParams::default(),
                400,
                20.0,
                true,
                5,
            )
            .with_adversary(StrategicPowProvider::boxed(
                400,
                20.0,
                MintScheme::SingleHash,
                Box::new(GapFilling),
            ));
            sys.dynamics.searches_per_epoch = 100;
            sys.run_epoch()
        });
    });
    g.finish();
}

fn bench_mini_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_frontier");
    g.sample_size(10);
    g.bench_function("grid_1x2_strategic_no_pow_vs_fog", |b| {
        b.iter(|| {
            run_frontier(&FrontierConfig {
                n_good: 260,
                betas: vec![0.06, 0.25],
                d2s: vec![4.0],
                churns: vec![0.1],
                kinds: vec![GraphKind::Chord],
                strategies: vec!["gap-filling"],
                defenses: vec![
                    Defense::NoPow,
                    Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
                ],
                epochs: 1,
                trials: 1,
                searches: 60,
                seed: 7,
            })
        });
    });
    g.finish();
}

criterion_group!(benches, bench_strategic_epoch, bench_mini_grid);
criterion_main!(benches);
