//! E11 kernels: one full-protocol epoch under a strategic adversary
//! (string agreement + strategic minting + dynamic advance), and a
//! miniature frontier grid through the sweep engine itself.
use criterion::{criterion_group, criterion_main, Criterion};
use tg_core::scenario::{ScenarioSpec, StrategySpec};
use tg_experiments::frontier::{run_frontier, Defense, FrontierConfig};
use tg_overlay::GraphKind;
use tg_pow::MintScheme;

fn bench_strategic_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_full_system");
    g.sample_size(10);
    let spec = ScenarioSpec::new(400, 5)
        .budget(20)
        .churn(0.1)
        .attack_requests(0)
        .strategy(StrategySpec::GapFilling)
        .defense(Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true })
        .searches(100);
    g.bench_function("strategic_epoch_n400_gap_filling_single_hash", |b| {
        b.iter(|| {
            let mut sys = tg_pow::scenario::build(&spec).expect("strategic PoW scenario");
            sys.step();
        });
    });
    g.finish();
}

fn bench_mini_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_frontier");
    g.sample_size(10);
    g.bench_function("grid_1x2_strategic_no_pow_vs_fog", |b| {
        b.iter(|| {
            run_frontier(&FrontierConfig {
                n_good: 260,
                betas: vec![0.06, 0.25],
                d2s: vec![4.0],
                churns: vec![0.1],
                kinds: vec![GraphKind::Chord],
                strategies: vec!["gap-filling"],
                defenses: vec![
                    Defense::NoPow,
                    Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
                ],
                epochs: 1,
                trials: 1,
                searches: 60,
                seed: 7,
                kernel: Default::default(),
                runtime: Default::default(),
                transport: Default::default(),
                store: None,
                check_invariants: false,
            })
        });
    });
    g.finish();
}

criterion_group!(benches, bench_strategic_epoch, bench_mini_grid);
criterion_main!(benches);
