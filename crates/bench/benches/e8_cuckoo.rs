//! E8 kernel: cuckoo-rule join/leave events (the \[47\] reproduction's
//! inner loop).
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tg_baselines::{CuckooParams, CuckooSim, CuckooStrategy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_cuckoo");
    g.sample_size(10);
    for group_size in [8usize, 64] {
        g.bench_function(format!("1000_events_n2048_g{group_size}"), |b| {
            b.iter(|| {
                let params = CuckooParams { n_good: 2007, n_bad: 41, group_size, k: 4 };
                let mut rng = StdRng::seed_from_u64(3);
                let mut sim = CuckooSim::new(params, &mut rng);
                sim.run(1000, CuckooStrategy::RandomRejoin, &mut rng)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
