//! E1 kernel: static group-graph construction and robustness sampling
//! (Theorem 3 / Lemma 4 pipeline).
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tg_bench::fixture;
use tg_core::{build_initial_graph, measure_robustness, Params, Population};
use tg_crypto::OracleFamily;
use tg_overlay::GraphKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_static_robustness");
    g.sample_size(10);

    for kind in [GraphKind::Chord, GraphKind::D2B] {
        g.bench_function(format!("build_n4096_{}", kind.name()), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            let pop = Population::uniform(3891, 205, &mut rng);
            let params = Params::paper_defaults();
            let fam = OracleFamily::new(7);
            b.iter_batched(
                || pop.clone(),
                |p| build_initial_graph(p, kind, fam.h1, &params),
                BatchSize::LargeInput,
            );
        });
    }

    let (gg, params) = fixture(4096, GraphKind::Chord, 2);
    g.bench_function("measure_500_searches_n4096", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            measure_robustness(&gg, &params, 500, &mut rng)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
