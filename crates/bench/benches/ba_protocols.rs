//! In-group agreement kernels: the group-communication costs behind
//! Corollary 1 (tiny |G| vs log-n |G|).
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tg_ba::{commit_reveal_coin, eig_agreement, phase_king, AdversaryMode};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ba_protocols");
    // |G| = 9 ≈ tiny group at n = 2^16; |G| = 17 ≈ ln n baseline.
    for m in [9usize, 17] {
        let inputs: Vec<u64> = (0..m as u64).map(|i| i % 2).collect();
        let bad: Vec<bool> = (0..m).map(|i| i == 0).collect();
        g.bench_function(format!("phase_king_m{m}_t1"), |b| {
            b.iter(|| phase_king(&inputs, &bad, AdversaryMode::Equivocate { seed: 1 }));
        });
        g.bench_function(format!("coin_m{m}"), |b| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| commit_reveal_coin(m, &bad, AdversaryMode::Collude { value: 1 }, &mut rng));
        });
    }
    let inputs = [1u64, 2, 1, 2, 1, 2, 1];
    let bad = [true, false, false, false, false, false, true];
    g.bench_function("eig_m7_t2", |b| {
        b.iter(|| eig_agreement(&inputs, &bad, AdversaryMode::Equivocate { seed: 3 }));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
