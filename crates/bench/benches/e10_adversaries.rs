//! E10 kernels: adversary-strategy placement over a good-ID census, and
//! a full dynamic epoch driven by a strategic (no-PoW) provider.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tg_core::dynamic::adversary::{
    AdaptiveMajorityFlipper, AdversaryStrategy, AdversaryView, GapFilling, IntervalTargeting,
    Uniform,
};
use tg_core::scenario::{ScenarioSpec, StrategySpec};
use tg_idspace::Id;
use tg_overlay::GraphKind;

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_placement");
    let mut census_rng = StdRng::seed_from_u64(1);
    let good: Vec<Id> = (0..20_000).map(|_| Id(census_rng.gen())).collect();
    let strategies: Vec<(&str, Box<dyn AdversaryStrategy>)> = vec![
        ("uniform", Box::new(Uniform)),
        ("gap_filling", Box::new(GapFilling)),
        ("interval", Box::new(IntervalTargeting { victim: Id::from_f64(0.4), width: 0.01 })),
        ("flipper", Box::new(AdaptiveMajorityFlipper::default())),
    ];
    for (label, mut s) in strategies {
        g.bench_function(format!("place_n20k_{label}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                s.place(&AdversaryView::genesis(0), &good, 1000, &mut rng)
            });
        });
    }
    g.finish();
}

fn bench_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_epochs");
    g.sample_size(10);
    let spec = ScenarioSpec::new(380, 5)
        .budget(20)
        .churn(0.1)
        .attack_requests(0)
        .topology(GraphKind::D2B)
        .strategy(StrategySpec::GapFilling)
        .searches(100);
    g.bench_function("advance_epoch_n400_gap_filling", |b| {
        b.iter(|| {
            let mut sys = spec.build().expect("strategic no-PoW scenario");
            sys.step();
        });
    });
    g.finish();
}

criterion_group!(benches, bench_placement, bench_epoch);
criterion_main!(benches);
