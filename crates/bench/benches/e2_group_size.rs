//! E2 kernel: search throughput as a function of group size (the
//! threshold sweep's inner loop).
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tg_core::{build_initial_graph, search_path, Params, Population};
use tg_crypto::OracleFamily;
use tg_idspace::Id;
use tg_overlay::GraphKind;
use tg_sim::Metrics;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_group_size");
    g.sample_size(20);
    for draws in [2usize, 8, 32] {
        let mut rng = StdRng::seed_from_u64(draws as u64);
        let pop = Population::uniform(1946, 102, &mut rng);
        let params = Params::paper_defaults().with_fixed_groups(draws);
        let gg = build_initial_graph(pop, GraphKind::Chord, OracleFamily::new(1).h1, &params);
        g.bench_function(format!("search_n2048_draws{draws}"), |b| {
            let mut rng = StdRng::seed_from_u64(9);
            let mut m = Metrics::new();
            b.iter(|| {
                let from = rng.gen_range(0..gg.len());
                search_path(&gg, from, Id(rng.gen()), &mut m)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
