//! E4 kernel: one full epoch of the dynamic construction (churn + dual
//! construction + measurement), built through the scenario API like the
//! experiment itself.
use criterion::{criterion_group, criterion_main, Criterion};
use tg_core::dynamic::BuildMode;
use tg_core::scenario::ScenarioSpec;
use tg_overlay::GraphKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_epochs");
    g.sample_size(10);
    for (label, mode) in [("dual", BuildMode::DualGraph), ("single", BuildMode::SingleGraph)] {
        let spec = ScenarioSpec::new(380, 5)
            .budget(20)
            .churn(0.2)
            .attack_requests(0)
            .topology(GraphKind::D2B)
            .build_mode(mode)
            .searches(100);
        g.bench_function(format!("advance_epoch_n400_{label}"), |b| {
            b.iter(|| {
                let mut sys = spec.build().expect("honest no-PoW scenario");
                sys.step();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
