//! E4 kernel: one full epoch of the dynamic construction (churn + dual
//! construction + measurement).
use criterion::{criterion_group, criterion_main, Criterion};
use tg_core::dynamic::{BuildMode, DynamicSystem, UniformProvider};
use tg_core::Params;
use tg_overlay::GraphKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_epochs");
    g.sample_size(10);
    for (label, mode) in [("dual", BuildMode::DualGraph), ("single", BuildMode::SingleGraph)] {
        g.bench_function(format!("advance_epoch_n400_{label}"), |b| {
            b.iter(|| {
                let mut params = Params::paper_defaults();
                params.churn_rate = 0.2;
                params.attack_requests_per_id = 0;
                let mut provider = UniformProvider { n_good: 380, n_bad: 20 };
                let mut sys = DynamicSystem::new(params, GraphKind::D2B, mode, &mut provider, 5);
                sys.searches_per_epoch = 100;
                sys.advance_epoch(&mut provider)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
