//! # tg-bench
//!
//! Criterion benchmarks, one target per reproduced table/figure family
//! (see DESIGN.md §5). The benches time the *generating kernels* of each
//! experiment — group-graph construction, secure search, epoch
//! construction, puzzle attempts, string propagation, cuckoo events —
//! so regressions in the reproduction pipeline are caught and the cost
//! claims of Corollary 1 are visible as wall-clock too.
//!
//! Run with `cargo bench --workspace`. Shared fixtures live here, plus
//! the machine-readable result record the `bench_trajectory` binary
//! writes (`BENCH_e11.json` / `BENCH_e12.json`): vendored criterion has
//! no machine-readable output, so the perf-trajectory CI step times the
//! same kernels the bench targets exercise and serializes a
//! [`BenchRecord`] per experiment.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tg_core::{build_initial_graph, GroupGraph, Params, Population};
use tg_crypto::OracleFamily;
use tg_overlay::GraphKind;

/// A standard benchmark fixture: a group graph with `n` total IDs at
/// β = 0.05 over the given topology.
pub fn fixture(n: usize, kind: GraphKind, seed: u64) -> (GroupGraph, Params) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_bad = n / 20;
    let pop = Population::uniform(n - n_bad, n_bad, &mut rng);
    let params = Params::paper_defaults();
    let gg = build_initial_graph(pop, kind, OracleFamily::new(seed).h1, &params);
    (gg, params)
}

/// The `Θ(log n)` baseline fixture over the same population shape.
pub fn fixture_logn(n: usize, kind: GraphKind, seed: u64) -> (GroupGraph, Params) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_bad = n / 20;
    let pop = Population::uniform(n - n_bad, n_bad, &mut rng);
    let params = Params::paper_defaults().with_classic_groups(1.5);
    let gg = build_initial_graph(pop, kind, OracleFamily::new(seed).h1, &params);
    (gg, params)
}

/// One machine-readable benchmark measurement: what one quick-mode run
/// of an experiment's sweep kernel cost, in the units the perf
/// trajectory tracks (cells swept, seeded trials, epochs simulated,
/// wall clock).
#[derive(Clone, Copy, Debug)]
pub struct BenchRecord {
    /// Experiment the kernel belongs to (`"e11_frontier"`, …).
    pub bench: &'static str,
    /// Configuration tag (`"quick"` for the CI trajectory runs).
    pub mode: &'static str,
    /// Cells simulated across the sweep.
    pub cells_swept: usize,
    /// Seeded trials simulated (≥ `cells_swept`; multi-seed cells and
    /// confidence extras land here).
    pub trial_runs: usize,
    /// Total epochs simulated across all trials.
    pub epochs_total: usize,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time: u64,
}

impl BenchRecord {
    /// Mean wall-clock per cell-run, the trajectory's headline number.
    pub fn wall_ms_per_cell_run(&self) -> f64 {
        self.wall_ms / self.cells_swept.max(1) as f64
    }

    /// Serialize as a single JSON object (hand-rolled: every field is a
    /// number or a bare ASCII tag, and the workspace vendors no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"{}\",\n",
                "  \"mode\": \"{}\",\n",
                "  \"cells_swept\": {},\n",
                "  \"trial_runs\": {},\n",
                "  \"epochs_total\": {},\n",
                "  \"wall_ms\": {:.3},\n",
                "  \"wall_ms_per_cell_run\": {:.3},\n",
                "  \"unix_time\": {}\n",
                "}}\n"
            ),
            self.bench,
            self.mode,
            self.cells_swept,
            self.trial_runs,
            self.epochs_total,
            self.wall_ms,
            self.wall_ms_per_cell_run(),
            self.unix_time,
        )
    }
}

/// Extract a numeric field from a flat JSON object of the
/// [`BenchRecord::to_json`] shape (no nesting, no escapes — the same
/// hand-rolled subset the workspace serializes).
pub fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = json[json.find(&needle)? + needle.len()..].trim_start();
    let end =
        rest.find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c))).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The fractional wall-ms-per-cell-run increase above which the CI
/// trajectory step warns (the ROADMAP "alert instead of only archiving"
/// threshold).
pub const REGRESSION_THRESHOLD: f64 = 0.25;

/// Compare a fresh trajectory record against the previous main
/// artifact's JSON. `Some(message)` when per-cell-run wall time
/// regressed by more than `threshold` (fractional); `None` when within
/// budget or when either record is unusable: JSON that does not parse,
/// a missing key, or a baseline/current value that is non-finite or
/// non-positive (a zero, NaN, or infinite baseline would make the
/// ratio meaningless, so it is skipped rather than divided by).
pub fn regression_warning(
    name: &str,
    baseline_json: &str,
    current_json: &str,
    threshold: f64,
) -> Option<String> {
    let old = json_number(baseline_json, "wall_ms_per_cell_run")?;
    let new = json_number(current_json, "wall_ms_per_cell_run")?;
    if !old.is_finite() || !new.is_finite() || old <= 0.0 {
        return None;
    }
    if new <= old * (1.0 + threshold) {
        return None;
    }
    Some(format!(
        "{name}: wall-ms per cell-run regressed {:.1}% ({old:.3} -> {new:.3} ms; threshold {}%)",
        100.0 * (new / old - 1.0),
        100.0 * threshold,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_reads_the_serialized_fields() {
        let r = BenchRecord {
            bench: "e11_frontier",
            mode: "quick",
            cells_swept: 10,
            trial_runs: 14,
            epochs_total: 28,
            wall_ms: 1234.5678,
            unix_time: 1_700_000_000,
        };
        let json = r.to_json();
        assert_eq!(json_number(&json, "cells_swept"), Some(10.0));
        assert_eq!(json_number(&json, "wall_ms"), Some(1234.568));
        assert_eq!(json_number(&json, "wall_ms_per_cell_run"), Some(123.457));
        assert_eq!(json_number(&json, "nonexistent"), None);
        assert_eq!(json_number(&json, "bench"), None, "strings are not numbers");
    }

    #[test]
    fn regression_warning_fires_only_above_threshold() {
        let record = |ms: f64| {
            BenchRecord {
                bench: "e11_frontier",
                mode: "quick",
                cells_swept: 1,
                trial_runs: 1,
                epochs_total: 1,
                wall_ms: ms,
                unix_time: 0,
            }
            .to_json()
        };
        let base = record(100.0);
        assert!(regression_warning("e11", &base, &record(124.0), 0.25).is_none());
        let msg = regression_warning("e11", &base, &record(130.0), 0.25);
        assert!(msg.as_deref().is_some_and(|m| m.contains("30.0%")), "{msg:?}");
        // Speedups and flat runs never warn; junk baselines are skipped.
        assert!(regression_warning("e11", &base, &record(80.0), 0.25).is_none());
        assert!(regression_warning("e11", "not json", &record(130.0), 0.25).is_none());
    }

    /// Degenerate records never produce a warning (and never divide by
    /// zero): a zero, NaN, or infinite `wall_ms_per_cell_run` on either
    /// side is warn-and-skip territory, not a "regressed NaN%" banner.
    #[test]
    fn regression_warning_skips_zero_and_non_finite_records() {
        let raw = |v: &str| format!("{{\n  \"wall_ms_per_cell_run\": {v}\n}}\n");
        let good = raw("100.0");
        // Zero baseline: the ratio is undefined, never a warning.
        assert!(regression_warning("k", &raw("0.0"), &good, 0.25).is_none());
        assert!(regression_warning("k", &raw("0"), &raw("1e9"), 0.25).is_none());
        // Negative baseline: corrupt, skipped.
        assert!(regression_warning("k", &raw("-5.0"), &good, 0.25).is_none());
        // NaN on either side: json_number already refuses the token,
        // and an overflowed literal (`1e999` -> inf) is caught by the
        // finiteness guard rather than compared.
        assert!(regression_warning("k", &raw("NaN"), &good, 0.25).is_none());
        assert!(regression_warning("k", &good, &raw("NaN"), 0.25).is_none());
        assert!(regression_warning("k", &raw("1e999"), &good, 0.25).is_none());
        assert!(regression_warning("k", &good, &raw("1e999"), 0.25).is_none());
        // A sane pair still warns.
        assert!(regression_warning("k", &good, &raw("200.0"), 0.25).is_some());
    }

    #[test]
    fn bench_record_serializes_all_fields() {
        let r = BenchRecord {
            bench: "e11_frontier",
            mode: "quick",
            cells_swept: 10,
            trial_runs: 14,
            epochs_total: 28,
            wall_ms: 1234.5678,
            unix_time: 1_700_000_000,
        };
        let json = r.to_json();
        for key in [
            "\"bench\": \"e11_frontier\"",
            "\"mode\": \"quick\"",
            "\"cells_swept\": 10",
            "\"trial_runs\": 14",
            "\"epochs_total\": 28",
            "\"wall_ms\": 1234.568",
            "\"wall_ms_per_cell_run\": 123.457",
            "\"unix_time\": 1700000000",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with("}\n"), "one JSON object");
    }

    #[test]
    fn per_cell_run_handles_empty_sweeps() {
        let r = BenchRecord {
            bench: "x",
            mode: "quick",
            cells_swept: 0,
            trial_runs: 0,
            epochs_total: 0,
            wall_ms: 5.0,
            unix_time: 0,
        };
        assert_eq!(r.wall_ms_per_cell_run(), 5.0);
    }
}
