//! # tg-bench
//!
//! Criterion benchmarks, one target per reproduced table/figure family
//! (see DESIGN.md §5). The benches time the *generating kernels* of each
//! experiment — group-graph construction, secure search, epoch
//! construction, puzzle attempts, string propagation, cuckoo events —
//! so regressions in the reproduction pipeline are caught and the cost
//! claims of Corollary 1 are visible as wall-clock too.
//!
//! Run with `cargo bench --workspace`. Shared fixtures live here.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tg_core::{build_initial_graph, GroupGraph, Params, Population};
use tg_crypto::OracleFamily;
use tg_overlay::GraphKind;

/// A standard benchmark fixture: a group graph with `n` total IDs at
/// β = 0.05 over the given topology.
pub fn fixture(n: usize, kind: GraphKind, seed: u64) -> (GroupGraph, Params) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_bad = n / 20;
    let pop = Population::uniform(n - n_bad, n_bad, &mut rng);
    let params = Params::paper_defaults();
    let gg = build_initial_graph(pop, kind, OracleFamily::new(seed).h1, &params);
    (gg, params)
}

/// The `Θ(log n)` baseline fixture over the same population shape.
pub fn fixture_logn(n: usize, kind: GraphKind, seed: u64) -> (GroupGraph, Params) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_bad = n / 20;
    let pop = Population::uniform(n - n_bad, n_bad, &mut rng);
    let params = Params::paper_defaults().with_classic_groups(1.5);
    let gg = build_initial_graph(pop, kind, OracleFamily::new(seed).h1, &params);
    (gg, params)
}
