//! # tg-bench
//!
//! Criterion benchmarks, one target per reproduced table/figure family
//! (see DESIGN.md §5). The benches time the *generating kernels* of each
//! experiment — group-graph construction, secure search, epoch
//! construction, puzzle attempts, string propagation, cuckoo events —
//! so regressions in the reproduction pipeline are caught and the cost
//! claims of Corollary 1 are visible as wall-clock too.
//!
//! Run with `cargo bench --workspace`. Shared fixtures live here, plus
//! the machine-readable result record the `bench_trajectory` binary
//! writes (`BENCH_e11.json` / `BENCH_e12.json`): vendored criterion has
//! no machine-readable output, so the perf-trajectory CI step times the
//! same kernels the bench targets exercise and serializes a
//! [`BenchRecord`] per experiment.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tg_core::{build_initial_graph, GroupGraph, Params, Population};
use tg_crypto::OracleFamily;
use tg_overlay::GraphKind;

/// A standard benchmark fixture: a group graph with `n` total IDs at
/// β = 0.05 over the given topology.
pub fn fixture(n: usize, kind: GraphKind, seed: u64) -> (GroupGraph, Params) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_bad = n / 20;
    let pop = Population::uniform(n - n_bad, n_bad, &mut rng);
    let params = Params::paper_defaults();
    let gg = build_initial_graph(pop, kind, OracleFamily::new(seed).h1, &params);
    (gg, params)
}

/// The `Θ(log n)` baseline fixture over the same population shape.
pub fn fixture_logn(n: usize, kind: GraphKind, seed: u64) -> (GroupGraph, Params) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_bad = n / 20;
    let pop = Population::uniform(n - n_bad, n_bad, &mut rng);
    let params = Params::paper_defaults().with_classic_groups(1.5);
    let gg = build_initial_graph(pop, kind, OracleFamily::new(seed).h1, &params);
    (gg, params)
}

/// One machine-readable benchmark measurement: what one quick-mode run
/// of an experiment's sweep kernel cost, in the units the perf
/// trajectory tracks (cells swept, seeded trials, epochs simulated,
/// wall clock).
#[derive(Clone, Copy, Debug)]
pub struct BenchRecord {
    /// Experiment the kernel belongs to (`"e11_frontier"`, …).
    pub bench: &'static str,
    /// Configuration tag (`"quick"` for the CI trajectory runs).
    pub mode: &'static str,
    /// Cells simulated across the sweep.
    pub cells_swept: usize,
    /// Seeded trials simulated (≥ `cells_swept`; multi-seed cells and
    /// confidence extras land here).
    pub trial_runs: usize,
    /// Total epochs simulated across all trials.
    pub epochs_total: usize,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time: u64,
}

impl BenchRecord {
    /// Mean wall-clock per cell-run, the trajectory's headline number.
    pub fn wall_ms_per_cell_run(&self) -> f64 {
        self.wall_ms / self.cells_swept.max(1) as f64
    }

    /// Serialize as a single JSON object (hand-rolled: every field is a
    /// number or a bare ASCII tag, and the workspace vendors no JSON
    /// dependency).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"{}\",\n",
                "  \"mode\": \"{}\",\n",
                "  \"cells_swept\": {},\n",
                "  \"trial_runs\": {},\n",
                "  \"epochs_total\": {},\n",
                "  \"wall_ms\": {:.3},\n",
                "  \"wall_ms_per_cell_run\": {:.3},\n",
                "  \"unix_time\": {}\n",
                "}}\n"
            ),
            self.bench,
            self.mode,
            self.cells_swept,
            self.trial_runs,
            self.epochs_total,
            self.wall_ms,
            self.wall_ms_per_cell_run(),
            self.unix_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_record_serializes_all_fields() {
        let r = BenchRecord {
            bench: "e11_frontier",
            mode: "quick",
            cells_swept: 10,
            trial_runs: 14,
            epochs_total: 28,
            wall_ms: 1234.5678,
            unix_time: 1_700_000_000,
        };
        let json = r.to_json();
        for key in [
            "\"bench\": \"e11_frontier\"",
            "\"mode\": \"quick\"",
            "\"cells_swept\": 10",
            "\"trial_runs\": 14",
            "\"epochs_total\": 28",
            "\"wall_ms\": 1234.568",
            "\"wall_ms_per_cell_run\": 123.457",
            "\"unix_time\": 1700000000",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with("}\n"), "one JSON object");
    }

    #[test]
    fn per_cell_run_handles_empty_sweeps() {
        let r = BenchRecord {
            bench: "x",
            mode: "quick",
            cells_swept: 0,
            trial_runs: 0,
            epochs_total: 0,
            wall_ms: 5.0,
            unix_time: 0,
        };
        assert_eq!(r.wall_ms_per_cell_run(), 5.0);
    }
}
