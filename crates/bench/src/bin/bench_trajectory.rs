//! The perf-trajectory probe: run the E11 and E12 sweep kernels in
//! quick mode and write `BENCH_e11.json` / `BENCH_e12.json` (one
//! [`BenchRecord`] each) into the current directory — the repo root
//! when invoked from CI, where the tier-1 workflow uploads them as
//! artifacts.
//!
//! This deliberately times the same kernels the criterion targets
//! (`benches/e11_frontier.rs`, `benches/e12_refine.rs`) exercise, but
//! through one timed release run instead of a criterion session: the
//! vendored criterion has no machine-readable output, and the
//! trajectory wants comparable absolute numbers (wall-time per
//! cell-run, cells swept, epochs simulated) rather than statistical
//! micro-benchmark precision.
//!
//! Usage: `cargo run --release -p tg-bench --bin bench_trajectory
//! [out_dir]`.

use std::time::{Instant, SystemTime, UNIX_EPOCH};
use tg_bench::BenchRecord;
use tg_experiments::frontier::{run_frontier, Defense, FrontierConfig};
use tg_experiments::refine::{run_refine, RefineConfig};
use tg_overlay::GraphKind;
use tg_pow::MintScheme;

/// The shared quick-mode grid: two strategies (the strongest placement
/// attacker and the timing attacker) against the undefended layer and
/// the paper's `f∘g`, on an 8-rung ladder — small enough for a CI step,
/// large enough that per-cell-run time is averaged over dozens of
/// cells.
fn quick_grid() -> FrontierConfig {
    FrontierConfig {
        n_good: 300,
        betas: vec![0.02, 0.04, 0.06, 0.09, 0.13, 0.19, 0.28, 0.42],
        d2s: vec![4.0],
        churns: vec![0.2],
        kinds: vec![GraphKind::Chord],
        strategies: vec!["gap-filling", "churn-timed"],
        defenses: vec![
            Defense::NoPow,
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
        ],
        epochs: 2,
        trials: 1,
        searches: 60,
        seed: 42,
    }
}

fn now_unix() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

fn write(out_dir: &str, name: &str, record: &BenchRecord) {
    let path = std::path::Path::new(out_dir).join(name);
    std::fs::write(&path, record.to_json()).unwrap_or_else(|e| {
        eprintln!("error: could not write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!(
        "{}: {} cells, {} trials, {} epochs, {:.1} ms ({:.2} ms/cell-run)",
        path.display(),
        record.cells_swept,
        record.trial_runs,
        record.epochs_total,
        record.wall_ms,
        record.wall_ms_per_cell_run()
    );
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let grid = quick_grid();

    // E11: the uniform sweep engine.
    let t0 = Instant::now();
    let uniform = run_frontier(&grid);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cells = uniform.cells.rows.iter().filter(|r| r[6] == "run").count();
    let trials = cells * grid.trials;
    let e11 = BenchRecord {
        bench: "e11_frontier",
        mode: "quick",
        cells_swept: cells,
        trial_runs: trials,
        epochs_total: trials * grid.epochs,
        wall_ms,
        unix_time: now_unix(),
    };
    write(&out_dir, "BENCH_e11.json", &e11);

    // E12: the adaptive refinement engine over the same grid.
    let t0 = Instant::now();
    let refined = run_refine(&RefineConfig { grid: grid.clone(), z: 1.645, max_extra_rounds: 1 });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let e12 = BenchRecord {
        bench: "e12_refine",
        mode: "quick",
        cells_swept: refined.cell_runs,
        trial_runs: refined.trial_runs,
        epochs_total: refined.trial_runs * grid.epochs,
        wall_ms,
        unix_time: now_unix(),
    };
    write(&out_dir, "BENCH_e12.json", &e12);
}
