//! The perf-trajectory probe: run the E11 and E12 sweep kernels in
//! quick mode and write `BENCH_e11.json` / `BENCH_e12.json` (one
//! [`BenchRecord`] each) into the current directory — the repo root
//! when invoked from CI, where the tier-1 workflow uploads them as
//! artifacts.
//!
//! This deliberately times the same kernels the criterion targets
//! (`benches/e11_frontier.rs`, `benches/e12_refine.rs`) exercise, but
//! through one timed release run instead of a criterion session: the
//! vendored criterion has no machine-readable output, and the
//! trajectory wants comparable absolute numbers (wall-time per
//! cell-run, cells swept, epochs simulated) rather than statistical
//! micro-benchmark precision.
//!
//! Usage:
//!
//! * `cargo run --release -p tg-bench --bin bench_trajectory [out_dir]`
//!   — run the probes and write the JSONs,
//! * `… --bin bench_trajectory -- --compare <baseline_dir> [new_dir]`
//!   — diff `new_dir`'s (default `.`) records against the previous main
//!   artifact in `baseline_dir` and emit a GitHub `::warning::` per
//!   record whose wall-ms-per-cell-run regressed by more than
//!   [`tg_bench::REGRESSION_THRESHOLD`]. Always exits 0: the trajectory
//!   alerts, it does not gate (quick-mode CI runners are noisy; a
//!   persistent warning across commits is the signal).

use std::time::{Instant, SystemTime, UNIX_EPOCH};
use tg_bench::{regression_warning, BenchRecord, REGRESSION_THRESHOLD};

/// The record files the trajectory tracks.
const RECORDS: [&str; 6] = [
    "BENCH_e11.json",
    "BENCH_e12.json",
    "BENCH_kernel.json",
    "BENCH_store.json",
    "BENCH_net.json",
    "BENCH_model.json",
];

/// Compare mode: read each record from both directories and warn on
/// regressions. Missing baseline files are reported and skipped (the
/// first run on a branch has nothing to compare against).
fn compare(baseline_dir: &str, new_dir: &str) {
    for name in RECORDS {
        let read = |dir: &str| std::fs::read_to_string(std::path::Path::new(dir).join(name));
        let (baseline, current) = match (read(baseline_dir), read(new_dir)) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) => {
                println!("{name}: no baseline in {baseline_dir} ({e}); skipping");
                continue;
            }
            (_, Err(e)) => {
                println!("{name}: no fresh record in {new_dir} ({e}); skipping");
                continue;
            }
        };
        match regression_warning(name, &baseline, &current, REGRESSION_THRESHOLD) {
            Some(msg) => println!("::warning title=bench-trajectory regression::{msg}"),
            None => {
                let per = |j: &str| tg_bench::json_number(j, "wall_ms_per_cell_run");
                match (per(&baseline), per(&current)) {
                    (Some(old), Some(new)) if old.is_finite() && new.is_finite() && old > 0.0 => {
                        println!("{name}: ok ({old:.3} -> {new:.3} ms per cell-run)");
                    }
                    (old, new) => println!(
                        "{name}: unusable wall_ms_per_cell_run (baseline {old:?}, fresh \
                         {new:?}); skipping comparison"
                    ),
                }
            }
        }
    }
}
use tg_experiments::exp::e13_scale;
use tg_experiments::frontier::{run_frontier, Defense, FrontierConfig};
use tg_experiments::refine::{run_refine, RefineConfig};
use tg_overlay::GraphKind;
use tg_pow::MintScheme;

/// The shared quick-mode grid: two strategies (the strongest placement
/// attacker and the timing attacker) against the undefended layer and
/// the paper's `f∘g`, on an 8-rung ladder — small enough for a CI step,
/// large enough that per-cell-run time is averaged over dozens of
/// cells.
fn quick_grid() -> FrontierConfig {
    FrontierConfig {
        n_good: 300,
        betas: vec![0.02, 0.04, 0.06, 0.09, 0.13, 0.19, 0.28, 0.42],
        d2s: vec![4.0],
        churns: vec![0.2],
        kinds: vec![GraphKind::Chord],
        strategies: vec!["gap-filling", "churn-timed"],
        defenses: vec![
            Defense::NoPow,
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
        ],
        epochs: 2,
        trials: 1,
        searches: 60,
        seed: 42,
        kernel: Default::default(),
        runtime: Default::default(),
        transport: Default::default(),
        store: None,
        check_invariants: false,
    }
}

fn now_unix() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

fn write(out_dir: &str, name: &str, record: &BenchRecord) {
    let path = std::path::Path::new(out_dir).join(name);
    std::fs::write(&path, record.to_json()).unwrap_or_else(|e| {
        eprintln!("error: could not write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!(
        "{}: {} cells, {} trials, {} epochs, {:.1} ms ({:.2} ms/cell-run)",
        path.display(),
        record.cells_swept,
        record.trial_runs,
        record.epochs_total,
        record.wall_ms,
        record.wall_ms_per_cell_run()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--compare") {
        let Some(baseline_dir) = args.get(1) else {
            eprintln!("usage: bench_trajectory --compare <baseline_dir> [new_dir]");
            std::process::exit(2);
        };
        let new_dir = args.get(2).map(String::as_str).unwrap_or(".");
        compare(baseline_dir, new_dir);
        return;
    }
    let out_dir = args.first().cloned().unwrap_or_else(|| ".".to_string());
    let grid = quick_grid();

    // E11: the uniform sweep engine.
    let t0 = Instant::now();
    let uniform = run_frontier(&grid);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cells = uniform.cells.rows.iter().filter(|r| r[6] == "run").count();
    let trials = cells * grid.trials;
    let e11 = BenchRecord {
        bench: "e11_frontier",
        mode: "quick",
        cells_swept: cells,
        trial_runs: trials,
        epochs_total: trials * grid.epochs,
        wall_ms,
        unix_time: now_unix(),
    };
    write(&out_dir, "BENCH_e11.json", &e11);

    // E12: the adaptive refinement engine over the same grid.
    let t0 = Instant::now();
    let refined = run_refine(&RefineConfig { grid: grid.clone(), z: 1.645, max_extra_rounds: 1 });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let e12 = BenchRecord {
        bench: "e12_refine",
        mode: "quick",
        cells_swept: refined.cell_runs,
        trial_runs: refined.trial_runs,
        epochs_total: refined.trial_runs * grid.epochs,
        wall_ms,
        unix_time: now_unix(),
    };
    write(&out_dir, "BENCH_e12.json", &e12);

    // Store: warm-replay throughput of the content-addressed result
    // store. A cold pass over the same quick grid fills a temp store;
    // the timed pass then replays every cell from its hash-chained
    // streams — the number says what a fully warm resume costs per
    // cell-run (decode + chain verification, no simulation).
    let store_dir = std::env::temp_dir().join(format!("tg-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut stored_grid = quick_grid();
    stored_grid.store = tg_sim::ResultStore::open(&store_dir).ok();
    run_frontier(&stored_grid); // cold fill
    let t0 = Instant::now();
    let warm = run_frontier(&stored_grid);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cells = warm.cells.rows.iter().filter(|r| r[6] == "run").count();
    let trials = cells * stored_grid.trials;
    let store_rec = BenchRecord {
        bench: "store_warm_replay",
        mode: "quick",
        cells_swept: cells,
        trial_runs: trials,
        epochs_total: trials * stored_grid.epochs,
        wall_ms,
        unix_time: now_unix(),
    };
    write(&out_dir, "BENCH_store.json", &store_rec);
    let _ = std::fs::remove_dir_all(&store_dir);

    // Net: the same uniform sweep with every protocol phase carried
    // over loopback TCP through the actor runtime. Compared against
    // `BENCH_e11.json` this prices the real socket path (framing,
    // syscalls, lane pumping) relative to the in-memory transport; its
    // own trajectory catches regressions in the transport itself.
    let mut net_grid = quick_grid();
    net_grid.runtime = tg_core::runtime::RuntimeChoice::Actor;
    net_grid.transport = tg_core::scenario::TransportChoice::Socket;
    let t0 = Instant::now();
    let socketed = run_frontier(&net_grid);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cells = socketed.cells.rows.iter().filter(|r| r[6] == "run").count();
    let trials = cells * net_grid.trials;
    let net_rec = BenchRecord {
        bench: "net_socket_sweep",
        mode: "quick",
        cells_swept: cells,
        trial_runs: trials,
        epochs_total: trials * net_grid.epochs,
        wall_ms,
        unix_time: now_unix(),
    };
    write(&out_dir, "BENCH_net.json", &net_rec);

    // Model: the tg-verify exhaustive tiny-universe check — every
    // adversary placement × defense × budget, with exhaustive route
    // probing per placement. Here a "cell" is one (defense, budget)
    // enumeration cell, a "trial" one realized placement, and the
    // epochs column counts the exhaustive route checks (the dominant
    // per-placement cost). The checker runs on every tier-1 commit via
    // `e15_model`; this record prices it so a slowdown in the
    // enumeration or the route prover shows up in the trajectory.
    let cfg = tg_verify::ModelConfig::tiny();
    let t0 = Instant::now();
    let report = tg_verify::run_model(&cfg);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let model_rec = BenchRecord {
        bench: "model_check",
        mode: "quick",
        cells_swept: report.cells.len(),
        trial_runs: report.cells.iter().map(|c| c.placements as usize).sum(),
        epochs_total: report.cells.iter().map(|c| c.route_checks as usize).sum(),
        wall_ms,
        unix_time: now_unix(),
    };
    write(&out_dir, "BENCH_model.json", &model_rec);

    // E13: the arena epoch kernel's throughput record, serialized by
    // the experiment's own writer so this probe and the tier-1
    // `e13_scale` run emit byte-compatible JSON (the comparator reads
    // the shared `wall_ms_per_cell_run` key from either).
    let quick = tg_experiments::Options { quiet: true, ..Default::default() };
    let results = e13_scale::measure(&e13_scale::rungs(&quick), quick.seed);
    let best = e13_scale::record_rung(&results).expect("the quick ladder has arena rungs");
    let json = e13_scale::kernel_record_json("quick", best, now_unix());
    let path = std::path::Path::new(&out_dir).join("BENCH_kernel.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| {
        eprintln!("error: could not write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!(
        "{}: {} kernel, {} identities x {} epochs, {:.1} ms ({:.0} ids/sec)",
        path.display(),
        best.rung.kernel.label(),
        best.rung.n_total(),
        best.rung.epochs,
        best.wall_ms,
        best.identities_per_sec(),
    );
}
