//! Property-based tests for the input-graph overlays: P1/P3 invariants
//! on adversarially-shaped rings.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tg_idspace::{Id, SortedRing};
use tg_overlay::GraphKind;

fn ring_from(ids: std::collections::BTreeSet<u64>) -> SortedRing {
    SortedRing::new(ids.into_iter().map(Id).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// P1 on arbitrary rings: every topology resolves every key from
    /// every start, within its hop bound.
    #[test]
    fn resolution_on_arbitrary_rings(
        ids in prop::collection::btree_set(any::<u64>(), 2..150),
        start_sel in any::<u16>(),
        key in any::<u64>(),
    ) {
        let ring = ring_from(ids);
        let from = ring.at(start_sel as usize % ring.len());
        for kind in GraphKind::ALL {
            let g = kind.build(ring.clone());
            let r = g.route(from, Id(key));
            prop_assert_eq!(r.resolver(), ring.successor(Id(key)), "{}", kind.name());
            prop_assert!(r.len() <= g.route_len_bound(), "{}: {} hops", kind.name(), r.len());
        }
    }

    /// P1 on clustered rings (every ID inside a tiny arc) — the shape an
    /// unconstrained Sybil adversary would produce.
    #[test]
    fn resolution_on_clustered_rings(
        seed in any::<u64>(),
        n in 4usize..100,
        width_exp in 8u32..48,
        key in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = 1u64 << (64 - width_exp);
        let base: u64 = rng.gen();
        let ids: std::collections::BTreeSet<u64> =
            (0..n).map(|_| base.wrapping_add(rng.gen::<u64>() % width)).collect();
        prop_assume!(ids.len() >= 2);
        let ring = ring_from(ids);
        let from = ring.at(0);
        for kind in GraphKind::ALL {
            let g = kind.build(ring.clone());
            let r = g.route(from, Id(key));
            prop_assert_eq!(r.resolver(), ring.successor(Id(key)), "{}", kind.name());
        }
    }

    /// P3: `is_link` agrees with `neighbors` (the verification predicate
    /// matches the linking rules) for random rings and nodes.
    #[test]
    fn is_link_matches_neighbors(
        ids in prop::collection::btree_set(any::<u64>(), 3..60),
        w_sel in any::<u16>(),
    ) {
        let ring = ring_from(ids);
        let w = ring.at(w_sel as usize % ring.len());
        for kind in GraphKind::ALL {
            let g = kind.build(ring.clone());
            let nb = g.neighbors(w);
            for i in 0..ring.len() {
                let u = ring.at(i);
                prop_assert_eq!(
                    g.is_link(w, u),
                    nb.contains(&u) && u != w,
                    "{}: w={:?} u={:?}",
                    kind.name(),
                    w,
                    u
                );
            }
        }
    }

    /// Routes never visit IDs outside the ring and always start at the
    /// initiator.
    #[test]
    fn routes_stay_on_ring(
        ids in prop::collection::btree_set(any::<u64>(), 2..80),
        start_sel in any::<u16>(),
        key in any::<u64>(),
    ) {
        let ring = ring_from(ids);
        let from = ring.at(start_sel as usize % ring.len());
        for kind in GraphKind::ALL {
            let g = kind.build(ring.clone());
            let r = g.route(from, Id(key));
            prop_assert_eq!(r.hops[0], from);
            for &h in &r.hops {
                prop_assert!(ring.contains(h), "{}: off-ring hop", kind.name());
            }
        }
    }
}
