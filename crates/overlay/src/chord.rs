//! Chord \[48\]: logarithmic-degree ring with finger shortcuts.
//!
//! Node `w` links to its ring predecessor and successor and to the
//! *fingers* `suc(w + Δ(i))` where `Δ(i) = 2^{-i}` for `i = 1..⌈log2 n⌉`
//! (the paper's footnote 11 describes exactly this rule and how any ID can
//! verify a claimed link by searching for `w + Δ(i)`).
//!
//! Routing is greedy: forward to the neighbor that makes the most
//! clockwise progress without overshooting the key. Route length is
//! `O(log n)` w.h.p., and congestion is `O(log n / n)` (P4 with `c = 1`).

use crate::graph::{InputGraph, Route};
use tg_idspace::{Id, SortedRing};

/// The Chord overlay over a fixed ring.
///
/// Finger tables span all 64 bit-scales of the ID space (as in deployed
/// Chord, where `m` is the hash width): offsets below the minimum ring gap
/// all resolve to the same successor and are deduplicated, so the
/// *distinct* degree is `O(log n)` w.h.p. while greedy routing stays
/// robust even on non-uniform rings.
#[derive(Clone, Debug)]
pub struct Chord {
    ring: SortedRing,
    /// Number of finger levels (bit-width of the ID space).
    levels: u32,
    /// Precomputed neighbor table, indexed by ring position. Routing does
    /// one `neighbors` scan per hop; the dynamic-epoch builder issues
    /// hundreds of searches per joining ID, so the table pays for itself
    /// within the first few hundred searches.
    adj: Vec<Vec<Id>>,
}

impl Chord {
    /// Build Chord over `ring`, precomputing the finger tables.
    ///
    /// # Panics
    /// Panics if the ring is empty.
    pub fn new(ring: SortedRing) -> Self {
        assert!(!ring.is_empty(), "Chord over an empty ring");
        let mut g = Chord { ring, levels: 64, adj: Vec::new() };
        let n = g.ring.len();
        let mut adj = Vec::with_capacity(n);
        for i in 0..n {
            adj.push(g.compute_neighbors(g.ring.at(i)));
        }
        g.adj = adj;
        g
    }

    fn compute_neighbors(&self, w: Id) -> Vec<Id> {
        let mut out = Vec::with_capacity(self.levels as usize + 2);
        if self.ring.len() == 1 {
            return out;
        }
        out.push(self.ring.predecessor(w));
        out.push(self.ring.successor(w.add(tg_idspace::RingDistance(1))));
        for p in self.finger_points(w) {
            out.push(self.ring.successor(p));
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&u| u != w);
        out
    }

    /// Borrow the cached neighbor list of the ID at ring index `i`.
    #[inline]
    fn neighbors_at(&self, i: usize) -> &[Id] {
        &self.adj[i]
    }

    /// The finger targets of `w`: the points `w + 2^{-i}`.
    fn finger_points(&self, w: Id) -> impl Iterator<Item = Id> + '_ {
        (1..=self.levels).map(move |i| w.add_pow2_fraction(i))
    }

    /// Greedy step: the neighbor of `current` making the most clockwise
    /// progress while staying strictly before `key`' s responsible zone.
    fn closest_preceding(&self, current: Id, key: Id) -> Option<Id> {
        let idx = self.ring.index_of(current).expect("routing through ring IDs");
        let mut best: Option<Id> = None;
        let mut best_dist = tg_idspace::RingDistance::ZERO;
        for &u in self.neighbors_at(idx) {
            // u must lie strictly inside the clockwise arc (current, key)
            // — i.e. make progress but not jump past the key.
            if u != key && u.in_arc_open_closed(current, key) {
                let d = current.distance_cw(u);
                if d > best_dist {
                    best_dist = d;
                    best = Some(u);
                }
            }
        }
        best
    }
}

impl InputGraph for Chord {
    fn ring(&self) -> &SortedRing {
        &self.ring
    }

    fn name(&self) -> &'static str {
        "chord"
    }

    fn neighbors(&self, w: Id) -> Vec<Id> {
        let i = self.ring.index_of(w).expect("neighbors of an ID not on the ring");
        self.adj[i].clone()
    }

    fn route(&self, from: Id, key: Id) -> Route {
        debug_assert!(self.ring.contains(from));
        let target = self.ring.successor(key);
        let mut hops = vec![from];
        let mut current = from;
        // Greedy progress strictly decreases clockwise distance to the
        // key, so the loop terminates; the bound is a safety net.
        let bound = self.route_len_bound();
        while current != target {
            // If the key lies between current and its ring successor, the
            // successor resolves it.
            let next = match self.closest_preceding(current, key) {
                Some(u) => u,
                // No neighbor strictly precedes the key: the successor of
                // current is responsible.
                None => self.ring.successor(current.add(tg_idspace::RingDistance(1))),
            };
            hops.push(next);
            current = next;
            assert!(
                hops.len() <= bound,
                "chord routing exceeded its hop bound (n={}, {} hops)",
                self.ring.len(),
                hops.len()
            );
        }
        Route { hops }
    }

    fn is_link(&self, w: Id, u: Id) -> bool {
        if w == u || self.ring.len() == 1 {
            return false;
        }
        if u == self.ring.predecessor(w)
            || u == self.ring.successor(w.add(tg_idspace::RingDistance(1)))
        {
            return true;
        }
        self.finger_points(w).any(|p| self.ring.successor(p) == u)
    }

    fn route_len_bound(&self) -> usize {
        // With fingers at every bit-scale, each greedy hop at least halves
        // the remaining clockwise distance, so 64 halvings reach any key on
        // any ring; the slack covers the final successor corrections.
        2 * 64 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_ring(n: usize, seed: u64) -> SortedRing {
        let mut rng = StdRng::seed_from_u64(seed);
        SortedRing::new((0..n).map(|_| Id(rng.gen())).collect())
    }

    #[test]
    fn neighbors_contain_ring_edges() {
        let ring = random_ring(64, 1);
        let g = Chord::new(ring.clone());
        for i in (0..64).step_by(7) {
            let w = ring.at(i);
            let nb = g.neighbors(w);
            assert!(nb.contains(&ring.predecessor(w)));
            assert!(nb.contains(&ring.successor(w.add(tg_idspace::RingDistance(1)))));
            assert!(!nb.contains(&w), "no self-loop");
        }
    }

    #[test]
    fn degree_is_logarithmic_after_dedup() {
        let ring = random_ring(1024, 2);
        let g = Chord::new(ring.clone());
        for i in (0..1024).step_by(111) {
            let d = g.neighbors(ring.at(i)).len();
            // 64 raw fingers collapse to O(log n) distinct neighbors:
            // offsets below the local gap all hit the same successor.
            assert!(d <= 2 * 10 + 4, "degree {d} not O(log2 1024)");
            assert!(d >= 3, "degree {d} suspiciously small");
        }
    }

    #[test]
    fn routes_terminate_on_clustered_ring() {
        // All IDs crammed into [0, 1e-6): full-scale fingers keep greedy
        // routing short even though the ring is wildly non-uniform.
        let mut rng = StdRng::seed_from_u64(10);
        let ring =
            SortedRing::new((0..512).map(|_| Id::from_f64(rng.gen::<f64>() * 1e-6)).collect());
        let g = Chord::new(ring.clone());
        for _ in 0..50 {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            let r = g.route(from, key);
            assert_eq!(r.resolver(), ring.successor(key));
            assert!(r.len() <= g.route_len_bound());
        }
    }

    #[test]
    fn routes_resolve_to_successor() {
        let ring = random_ring(256, 3);
        let g = Chord::new(ring.clone());
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            let r = g.route(from, key);
            assert_eq!(r.hops[0], from);
            assert_eq!(r.resolver(), ring.successor(key));
        }
    }

    #[test]
    fn routes_follow_edges() {
        let ring = random_ring(128, 4);
        let g = Chord::new(ring.clone());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            let r = g.route(from, key);
            for pair in r.hops.windows(2) {
                assert!(
                    g.is_link(pair[0], pair[1]),
                    "hop {:?} -> {:?} is not a chord link",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn routes_are_logarithmic() {
        let ring = random_ring(4096, 6);
        let g = Chord::new(ring.clone());
        let mut rng = StdRng::seed_from_u64(7);
        let mut total = 0usize;
        let trials = 300;
        for _ in 0..trials {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            let r = g.route(from, key);
            assert!(r.len() <= g.route_len_bound());
            total += r.len();
        }
        let mean = total as f64 / trials as f64;
        // Expected ~ (1/2)·log2 n + O(1) ≈ 7; allow slack.
        assert!(mean < 14.0, "mean chord route length {mean:.1} too large");
        assert!(mean > 3.0, "mean chord route length {mean:.1} implausibly small");
    }

    #[test]
    fn is_link_matches_neighbors() {
        let ring = random_ring(100, 8);
        let g = Chord::new(ring.clone());
        for i in (0..100).step_by(13) {
            let w = ring.at(i);
            let nb = g.neighbors(w);
            for j in 0..100 {
                let u = ring.at(j);
                assert_eq!(g.is_link(w, u), nb.contains(&u) && u != w, "w={w:?} u={u:?}");
            }
        }
    }

    #[test]
    fn route_to_own_key_is_trivial() {
        let ring = random_ring(32, 9);
        let g = Chord::new(ring.clone());
        let w = ring.at(5);
        let r = g.route(w, w);
        assert_eq!(r.hops, vec![w], "an ID resolves its own key locally");
    }

    #[test]
    fn two_node_ring_routes() {
        let ring = SortedRing::new(vec![Id::from_f64(0.25), Id::from_f64(0.75)]);
        let g = Chord::new(ring.clone());
        let a = Id::from_f64(0.25);
        let b = Id::from_f64(0.75);
        assert_eq!(g.route(a, Id::from_f64(0.5)).resolver(), b);
        assert_eq!(g.route(a, Id::from_f64(0.9)).resolver(), a);
        assert_eq!(g.route(b, Id::from_f64(0.1)).resolver(), a);
    }
}
