//! D2B \[19\]: a de Bruijn content-addressable network with constant
//! expected degree.
//!
//! Following the continuous-discrete approach, node `w` *covers* the
//! segment `[w, next(w))`. The continuous de Bruijn graph has edges
//! `x → x/2` and `x → x/2 + 1/2` (the two preimages of doubling); the
//! discrete graph links `w` to every node covering an image of its
//! segment — both the halved images (out-edges used for routing) and the
//! doubled image (the reverse direction, needed so `is_link` is symmetric
//! in usefulness and matches D2B's parent/child structure) — plus its ring
//! predecessor and successor.
//!
//! **Routing** injects the key's bits: from point `p`, the step
//! `p ← p/2 + b/2` with `b` the next key bit (taken least-significant
//! first over a `k = ⌈log2 n⌉ + 3` bit prefix) lands, after `k` steps, at
//! `prefix_k(key) + s/2^k` — within `2^{1-k}` of the key. A short ring
//! walk then reaches `suc(key)`. Route length is `k + O(1)` expected,
//! i.e. `O(log N)` (property P1); degree is `O(1)` in expectation.

use crate::graph::{ceil_log2, covering_nodes, InputGraph, Route};
use tg_idspace::{Id, RingDistance, SortedRing};

/// The D2B overlay over a fixed ring.
#[derive(Clone, Debug)]
pub struct D2B {
    ring: SortedRing,
    /// Bit-walk length `k`.
    k: u32,
}

impl D2B {
    /// Build D2B over `ring`.
    ///
    /// # Panics
    /// Panics if the ring is empty.
    pub fn new(ring: SortedRing) -> Self {
        assert!(!ring.is_empty(), "D2B over an empty ring");
        let k = (ceil_log2(ring.len()) + 3).min(60);
        D2B { ring, k }
    }

    /// Walk the ring from the node at sorted index `a` to the node at
    /// sorted index `b`, appending hops, taking the shorter direction.
    fn ring_walk(&self, hops: &mut Vec<Id>, a: usize, b: usize) {
        let n = self.ring.len();
        let fwd = (b + n - a) % n;
        let back = (a + n - b) % n;
        if fwd <= back {
            for s in 1..=fwd {
                hops.push(self.ring.at((a + s) % n));
            }
        } else {
            for s in 1..=back {
                hops.push(self.ring.at((a + n - s) % n));
            }
        }
    }
}

impl InputGraph for D2B {
    fn ring(&self) -> &SortedRing {
        &self.ring
    }

    fn name(&self) -> &'static str {
        "d2b"
    }

    fn neighbors(&self, w: Id) -> Vec<Id> {
        let i = self.ring.index_of(w).expect("neighbors of an ID not on the ring");
        let mut out = Vec::with_capacity(8);
        if self.ring.len() == 1 {
            return out;
        }
        let seg = self.ring.segment_after(i);
        covering_nodes(&self.ring, &seg.half_left(), &mut out);
        covering_nodes(&self.ring, &seg.half_right(), &mut out);
        covering_nodes(&self.ring, &seg.double(), &mut out);
        out.push(self.ring.predecessor(w));
        out.push(self.ring.successor(w.add(RingDistance(1))));
        out.sort_unstable();
        out.dedup();
        out.retain(|&u| u != w);
        out
    }

    fn route(&self, from: Id, key: Id) -> Route {
        debug_assert!(self.ring.contains(from));
        let mut hops = vec![from];
        if self.ring.len() == 1 {
            return Route { hops };
        }
        // Bit-injection walk: feed the k-bit key prefix, least significant
        // bit first, so the final point is prefix_k(key) + from/2^k.
        let mut p = from;
        for j in (0..self.k).rev() {
            p = if key.bit(j) { p.half_right() } else { p.half_left() };
            let node = self.ring.covering(p);
            if *hops.last().expect("non-empty") != node {
                hops.push(node);
            }
        }
        // Final ring correction to the successor of the key.
        let here = self.ring.covering_index(p);
        let target = self.ring.successor_index(key);
        self.ring_walk(&mut hops, here, target);
        debug_assert_eq!(*hops.last().expect("non-empty"), self.ring.successor(key));
        Route { hops }
    }

    fn is_link(&self, w: Id, u: Id) -> bool {
        if w == u || self.ring.len() == 1 {
            return false;
        }
        let i = self.ring.index_of(w).expect("is_link on an ID not on the ring");
        let j = self.ring.index_of(u).expect("is_link target not on the ring");
        if u == self.ring.predecessor(w) || u == self.ring.successor(w.add(RingDistance(1))) {
            return true;
        }
        let seg_w = self.ring.segment_after(i);
        let seg_u = self.ring.segment_after(j);
        seg_u.intersects(&seg_w.half_left())
            || seg_u.intersects(&seg_w.half_right())
            || seg_u.intersects(&seg_w.double())
    }

    fn route_len_bound(&self) -> usize {
        // k bit-steps plus the ring correction; the correction window
        // holds O(log n) IDs w.h.p. on u.a.r. rings, but is bounded by n
        // in the worst case. Use a generous cap for the assert-style uses.
        self.k as usize + self.ring.len().min(4 * (self.k as usize + 8)) + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_ring(n: usize, seed: u64) -> SortedRing {
        let mut rng = StdRng::seed_from_u64(seed);
        SortedRing::new((0..n).map(|_| Id(rng.gen())).collect())
    }

    #[test]
    fn routes_resolve_to_successor() {
        let ring = random_ring(512, 21);
        let g = D2B::new(ring.clone());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            let r = g.route(from, key);
            assert_eq!(r.hops[0], from);
            assert_eq!(r.resolver(), ring.successor(key));
        }
    }

    #[test]
    fn routes_follow_edges() {
        let ring = random_ring(256, 22);
        let g = D2B::new(ring.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..60 {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            let r = g.route(from, key);
            for pair in r.hops.windows(2) {
                assert!(
                    g.is_link(pair[0], pair[1]),
                    "hop {:?} -> {:?} is not a d2b link",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn routes_are_logarithmic() {
        let ring = random_ring(4096, 23);
        let g = D2B::new(ring.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 300;
        let mut total = 0usize;
        for _ in 0..trials {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            let r = g.route(from, key);
            total += r.len();
            assert!(r.len() <= g.route_len_bound());
        }
        let mean = total as f64 / trials as f64;
        // k = log2(4096) + 3 = 15 bit-steps, some merged, plus O(1) walk.
        assert!(mean < 22.0, "mean d2b route length {mean:.1} too large");
        assert!(mean > 6.0, "mean d2b route length {mean:.1} implausibly small");
    }

    #[test]
    fn expected_degree_is_constant() {
        let ring = random_ring(4096, 24);
        let g = D2B::new(ring.clone());
        let mut total = 0usize;
        let mut maxd = 0usize;
        let sample: Vec<usize> = (0..ring.len()).step_by(17).collect();
        for &i in &sample {
            let d = g.neighbors(ring.at(i)).len();
            total += d;
            maxd = maxd.max(d);
        }
        let mean = total as f64 / sample.len() as f64;
        assert!(mean < 12.0, "mean d2b degree {mean:.1} not O(1)");
        assert!(mean >= 3.0, "mean d2b degree {mean:.1} too small to be connected");
        // Max degree is O(log n / log log n)-ish (balls in bins on gaps).
        assert!(maxd < 40, "max d2b degree {maxd} too large");
    }

    #[test]
    fn is_link_matches_neighbors() {
        let ring = random_ring(80, 25);
        let g = D2B::new(ring.clone());
        for i in (0..80).step_by(9) {
            let w = ring.at(i);
            let nb = g.neighbors(w);
            for j in 0..80 {
                let u = ring.at(j);
                assert_eq!(g.is_link(w, u), nb.contains(&u) && u != w, "w={w:?} u={u:?}");
            }
        }
    }

    #[test]
    fn neighbors_symmetric_in_coverage() {
        // If u covers a halved image of w's segment then w covers a doubled
        // image of u's segment — the edge is visible from both endpoints.
        let ring = random_ring(64, 26);
        let g = D2B::new(ring.clone());
        for i in 0..64 {
            let w = ring.at(i);
            for u in g.neighbors(w) {
                assert!(
                    g.is_link(u, w) || g.is_link(w, u),
                    "edge invisible from both endpoints: {w:?} {u:?}"
                );
            }
        }
    }

    #[test]
    fn two_node_ring_routes() {
        let ring = SortedRing::new(vec![Id::from_f64(0.2), Id::from_f64(0.6)]);
        let g = D2B::new(ring.clone());
        for (from_f, key_f) in [(0.2, 0.5), (0.2, 0.9), (0.6, 0.3), (0.6, 0.61)] {
            let r = g.route(Id::from_f64(from_f), Id::from_f64(key_f));
            assert_eq!(r.resolver(), ring.successor(Id::from_f64(key_f)));
        }
    }

    #[test]
    fn single_node_ring() {
        let ring = SortedRing::new(vec![Id::from_f64(0.5)]);
        let g = D2B::new(ring.clone());
        let r = g.route(Id::from_f64(0.5), Id::from_f64(0.123));
        assert_eq!(r.hops, vec![Id::from_f64(0.5)]);
        assert!(g.neighbors(Id::from_f64(0.5)).is_empty());
    }
}
