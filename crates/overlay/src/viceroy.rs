//! Viceroy \[32\]: a constant-degree butterfly emulation.
//!
//! The third input graph Corollary 1 names. Every node draws a **level**
//! `ℓ ∈ 1..=L` with `L = ⌈log2 n⌉` (derived here by hashing the ID, so
//! any node can recompute — and verify — anyone's level, keeping P3's
//! verifiability). Edges per node are O(1):
//!
//! * ring predecessor/successor,
//! * level-ring: the previous/next node of the *same* level,
//! * an **up** edge (`ℓ > 1`): the nearest level-`ℓ−1` node clockwise,
//! * two **down** edges (`ℓ < L`): the nearest level-`ℓ+1` node
//!   clockwise of the node itself ("down-left") and of the point
//!   `w + 2^{-ℓ}` ("down-right") — the butterfly's distance-halving
//!   shortcuts.
//!
//! Routing climbs to level 1, then descends: at level `ℓ`, take the
//! down-right edge when the clockwise distance to the key is at least
//! `2^{-ℓ}`, else down-left; each descent level halves the scale, and a
//! short ring walk finishes. Total `O(log n)` hops with a constant
//! *worst-case* degree — the strongest state profile of the three
//! implemented graphs.

use crate::graph::{ceil_log2, mix64, InputGraph, Route};
use tg_idspace::{Id, RingDistance, SortedRing};

/// The Viceroy-style butterfly over a fixed ring.
#[derive(Clone, Debug)]
pub struct Viceroy {
    ring: SortedRing,
    /// Number of levels `L`.
    levels: u32,
    /// Level of each node, indexed by ring position.
    level_of: Vec<u32>,
    /// Ring indices of each level's members (sorted by ring position),
    /// indexed by level − 1.
    level_members: Vec<Vec<u32>>,
}

impl Viceroy {
    /// Build the butterfly over `ring`.
    ///
    /// # Panics
    /// Panics if the ring is empty.
    pub fn new(ring: SortedRing) -> Self {
        assert!(!ring.is_empty(), "Viceroy over an empty ring");
        let n = ring.len();
        let levels = ceil_log2(n).max(1);
        let level_of: Vec<u32> =
            (0..n).map(|i| (mix64(ring.at(i).raw()) % levels as u64) as u32 + 1).collect();
        let mut level_members = vec![Vec::new(); levels as usize];
        for (i, &l) in level_of.iter().enumerate() {
            level_members[(l - 1) as usize].push(i as u32);
        }
        // Guarantee every level is inhabited (tiny rings may miss one):
        // an empty level would strand the descent, so fall back by
        // reassigning the lowest-index node of the fullest level.
        for l in 0..levels as usize {
            if level_members[l].is_empty() {
                let donor = (0..levels as usize)
                    .max_by_key(|&k| level_members[k].len())
                    .expect("levels exist");
                let moved = level_members[donor].remove(0);
                level_members[l].push(moved);
            }
        }
        let mut level_of = level_of;
        for (l, members) in level_members.iter().enumerate() {
            for &m in members {
                level_of[m as usize] = l as u32 + 1;
            }
        }
        for members in level_members.iter_mut() {
            members.sort_unstable();
        }
        Viceroy { ring, levels, level_of, level_members }
    }

    /// The level of `w` (1-based).
    pub fn level(&self, w: Id) -> u32 {
        self.level_of[self.ring.index_of(w).expect("level of an ID not on the ring")]
    }

    /// Nearest node of `level` at or clockwise of point `x`.
    fn nearest_at_level(&self, level: u32, x: Id) -> u32 {
        let members = &self.level_members[(level - 1) as usize];
        debug_assert!(!members.is_empty());
        // Members are sorted by ring index, hence by ID value.
        let pos = members.partition_point(|&m| self.ring.at(m as usize) < x);
        members[pos % members.len()]
    }

    /// Ring walk between sorted indices (shorter direction), appending
    /// hops.
    fn ring_walk(&self, hops: &mut Vec<Id>, a: usize, b: usize) {
        let n = self.ring.len();
        let fwd = (b + n - a) % n;
        let back = (a + n - b) % n;
        if fwd <= back {
            for s in 1..=fwd {
                hops.push(self.ring.at((a + s) % n));
            }
        } else {
            for s in 1..=back {
                hops.push(self.ring.at((a + n - s) % n));
            }
        }
    }

    fn push(&self, hops: &mut Vec<Id>, idx: u32) {
        let id = self.ring.at(idx as usize);
        if *hops.last().expect("non-empty route") != id {
            hops.push(id);
        }
    }
}

impl InputGraph for Viceroy {
    fn ring(&self) -> &SortedRing {
        &self.ring
    }

    fn name(&self) -> &'static str {
        "viceroy"
    }

    fn neighbors(&self, w: Id) -> Vec<Id> {
        let i = self.ring.index_of(w).expect("neighbors of an ID not on the ring");
        let mut out = Vec::with_capacity(7);
        if self.ring.len() == 1 {
            return out;
        }
        out.push(self.ring.predecessor(w));
        out.push(self.ring.successor(w.add(RingDistance(1))));
        let l = self.level_of[i];
        // Level ring: next same-level node clockwise (and it links back,
        // so the previous one appears via its own edge set; include both
        // for symmetric maintenance).
        let members = &self.level_members[(l - 1) as usize];
        if members.len() > 1 {
            let pos = members.binary_search(&(i as u32)).expect("node in its level list");
            out.push(self.ring.at(members[(pos + 1) % members.len()] as usize));
            out.push(self.ring.at(members[(pos + members.len() - 1) % members.len()] as usize));
        }
        if l > 1 {
            out.push(self.ring.at(self.nearest_at_level(l - 1, w) as usize));
        }
        if l < self.levels {
            out.push(self.ring.at(self.nearest_at_level(l + 1, w) as usize));
            let far = w.add_pow2_fraction(l);
            out.push(self.ring.at(self.nearest_at_level(l + 1, far) as usize));
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&u| u != w);
        out
    }

    fn route(&self, from: Id, key: Id) -> Route {
        debug_assert!(self.ring.contains(from));
        let mut hops = vec![from];
        if self.ring.len() == 1 {
            return Route { hops };
        }
        // Ascend to level 1.
        let mut cur = self.ring.index_of(from).expect("route from ring ID") as u32;
        while self.level_of[cur as usize] > 1 {
            let next =
                self.nearest_at_level(self.level_of[cur as usize] - 1, self.ring.at(cur as usize));
            self.push(&mut hops, next);
            cur = next;
        }
        // Descend, halving the clockwise distance scale per level. Each
        // down hop lands at the nearest level-member clockwise of its
        // ideal point, overshooting by an expected inter-member gap
        // (≈ L/n), so the descent accumulates ≈ L²/n of forward drift;
        // stop on wrap-around (we passed the key) and let the level-ring
        // correction below absorb the drift.
        while self.level_of[cur as usize] < self.levels {
            let v = self.ring.at(cur as usize);
            let dist = v.distance_cw(key);
            if dist.0 > 1 << 63 {
                break; // overshot the key
            }
            let l = self.level_of[cur as usize];
            let scale = if l >= 64 { RingDistance(1) } else { RingDistance(1u64 << (64 - l)) };
            let target_point = if dist >= scale { v.add(scale) } else { v };
            let next = self.nearest_at_level(l + 1, target_point);
            if next == cur {
                break;
            }
            self.push(&mut hops, next);
            cur = next;
        }

        // Coarse correction along the current level's ring: each hop
        // skips ≈ L ring positions, turning the ≈ L² position drift into
        // O(L) hops. Hop while it strictly shrinks the index distance.
        let n = self.ring.len();
        let target = self.ring.successor_index(key);
        let idx_dist = |a: usize| -> usize {
            let fwd = (target + n - a) % n;
            let back = (a + n - target) % n;
            fwd.min(back)
        };
        let lvl = self.level_of[cur as usize] as usize;
        let members = &self.level_members[lvl - 1];
        if members.len() > 1 {
            let mut pos =
                members.binary_search(&cur).expect("current node belongs to its level list");
            let mut guard = members.len();
            loop {
                guard -= 1;
                let here = idx_dist(cur as usize);
                let fwd_m = members[(pos + 1) % members.len()];
                let back_m = members[(pos + members.len() - 1) % members.len()];
                let (best_m, best_pos) = if idx_dist(fwd_m as usize) <= idx_dist(back_m as usize) {
                    (fwd_m, (pos + 1) % members.len())
                } else {
                    (back_m, (pos + members.len() - 1) % members.len())
                };
                if guard == 0 || idx_dist(best_m as usize) >= here {
                    break;
                }
                self.push(&mut hops, best_m);
                cur = best_m;
                pos = best_pos;
            }
        }

        // Fine ring walk to the responsible ID.
        self.ring_walk(&mut hops, cur as usize, target);
        debug_assert_eq!(*hops.last().expect("non-empty"), self.ring.successor(key));
        Route { hops }
    }

    fn route_len_bound(&self) -> usize {
        // Ascent ≤ L, descent ≤ L, ring walk O(L) expected; allow a
        // generous constant plus the worst-case ring fallback for tiny
        // rings.
        (4 * self.levels as usize + 32) + self.ring.len().min(16 * self.levels as usize + 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_ring(n: usize, seed: u64) -> SortedRing {
        let mut rng = StdRng::seed_from_u64(seed);
        SortedRing::new((0..n).map(|_| Id(rng.gen())).collect())
    }

    #[test]
    fn levels_cover_and_are_deterministic() {
        let ring = random_ring(512, 1);
        let g = Viceroy::new(ring.clone());
        let g2 = Viceroy::new(ring.clone());
        for i in 0..ring.len() {
            let w = ring.at(i);
            assert_eq!(g.level(w), g2.level(w), "levels must be recomputable");
            assert!((1..=g.levels).contains(&g.level(w)));
        }
        // Every level inhabited.
        for l in 0..g.levels as usize {
            assert!(!g.level_members[l].is_empty(), "level {} empty", l + 1);
        }
    }

    #[test]
    fn routes_resolve_to_successor() {
        let ring = random_ring(512, 2);
        let g = Viceroy::new(ring.clone());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            let r = g.route(from, key);
            assert_eq!(r.hops[0], from);
            assert_eq!(r.resolver(), ring.successor(key));
            assert!(r.len() <= g.route_len_bound(), "route {} hops", r.len());
        }
    }

    #[test]
    fn routes_follow_edges() {
        let ring = random_ring(256, 4);
        let g = Viceroy::new(ring.clone());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..60 {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            let r = g.route(from, key);
            for pair in r.hops.windows(2) {
                assert!(
                    g.is_link(pair[0], pair[1]) || g.is_link(pair[1], pair[0]),
                    "hop {:?} -> {:?} is not a viceroy link",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn degree_is_constant_worst_case() {
        let ring = random_ring(4096, 6);
        let g = Viceroy::new(ring.clone());
        for i in (0..ring.len()).step_by(37) {
            let d = g.neighbors(ring.at(i)).len();
            assert!(d <= 7, "viceroy degree {d} exceeds the constant bound");
            assert!(d >= 2);
        }
    }

    #[test]
    fn routes_are_logarithmic() {
        let ring = random_ring(4096, 7);
        let g = Viceroy::new(ring.clone());
        let mut rng = StdRng::seed_from_u64(8);
        let trials = 300;
        let mut total = 0usize;
        for _ in 0..trials {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            total += g.route(from, key).len();
        }
        let mean = total as f64 / trials as f64;
        // Ascent + descent + walk: a few × log2 n.
        assert!(mean < 5.0 * 12.0, "mean viceroy route {mean:.1} too long");
        assert!(mean > 4.0, "mean viceroy route {mean:.1} implausibly short");
    }

    #[test]
    fn small_rings_route_correctly() {
        for n in [2usize, 3, 5, 9] {
            let ring = random_ring(n, 9 + n as u64);
            let g = Viceroy::new(ring.clone());
            let mut rng = StdRng::seed_from_u64(n as u64);
            for _ in 0..30 {
                let from = ring.at(rng.gen_range(0..n));
                let key = Id(rng.gen());
                assert_eq!(g.route(from, key).resolver(), ring.successor(key), "n={n}");
            }
        }
    }
}
