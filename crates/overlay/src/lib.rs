//! # tg-overlay
//!
//! Input graphs `H` for the tiny-groups construction.
//!
//! The paper's result is parameterized by *any* overlay satisfying four
//! properties (§I-C):
//!
//! * **P1 — search**: routing from any ID to `suc(key)` in
//!   `D = O(log N)` traversed IDs,
//! * **P2 — load balancing**: a random ID owns at most a `(1+δ'')/N`
//!   fraction of the key space,
//! * **P3 — linking rules**: the neighbor set `S_w` is recomputable and
//!   *verifiable* by any ID via searches,
//! * **P4 — congestion**: the maximum probability any ID is traversed by a
//!   random search is `C = O(log^c n / n)`.
//!
//! We implement three of the constructions the paper names:
//!
//! * [`chord::Chord`] — Chord \[48\]: `Θ(log n)` degree, greedy finger
//!   routing (`c = 1` congestion),
//! * [`debruijn::D2B`] — D2B \[19\]: constant *expected* degree de Bruijn
//!   continuous-discrete construction,
//! * [`halving::DistanceHalving`] — the Naor–Wieder continuous-discrete
//!   distance-halving construction \[39\], also constant expected degree,
//! * [`viceroy::Viceroy`] — the Viceroy butterfly \[32\]: constant
//!   *worst-case* degree.
//!
//! \[19\], \[32\], \[39\] are exactly the constructions Corollary 1 names for
//! its `O(poly(log log n))` state bound; Chord is included both as the
//! familiar default and to show the construction is topology-agnostic.
//!
//! The paper stresses that `H` provides **no security by itself** — these
//! graphs assume all IDs follow the protocol. Security comes from the
//! group layer in `tg-core` built on top.

pub mod chord;
pub mod debruijn;
pub mod graph;
pub mod halving;
pub mod properties;
pub mod viceroy;

pub use chord::Chord;
pub use debruijn::D2B;
pub use graph::{GraphKind, InputGraph, Route};
pub use halving::DistanceHalving;
pub use properties::{measure_congestion, measure_route_lengths, PropertyReport};
pub use viceroy::Viceroy;
