//! The Naor–Wieder continuous-discrete **distance-halving** construction
//! \[39\].
//!
//! The continuous graph on `[0,1)` has edge functions `ℓ(x) = x/2` and
//! `r(x) = x/2 + 1/2`; node `w` covers the segment `[w, next(w))` and the
//! discrete graph links `w` to every node covering `ℓ(seg)`, `r(seg)`, or
//! the doubled segment (the backward direction), plus ring edges — the
//! same discretization rule as de Bruijn, which is no accident (both
//! realize the de Bruijn shift on the continuum).
//!
//! What distinguishes the construction is **distance-halving routing**:
//! a shared bit string `σ` drives *both* endpoints. Applying the same
//! `σ_j ∈ {ℓ, r}` to the current source image `x_j` and target image
//! `y_j` halves their distance each step:
//! `|x_{j+1} − y_{j+1}| = |x_j − y_j| / 2`. After `k = ⌈log2 n⌉ + 3`
//! steps the images are within `2^{-k}` — the same or adjacent nodes.
//! The message path is: the `x`-walk forward (halving edges), a short
//! ring walk, then the `y`-walk *in reverse* (doubling edges) down to the
//! node covering the key. With `σ` random, congestion is `O(log n / n)`;
//! we derive `σ` deterministically from `(source, key)` via splitmix so
//! simulations replay exactly.

use crate::graph::{ceil_log2, covering_nodes, mix64, InputGraph, Route};
use tg_idspace::{Id, RingDistance, SortedRing};

/// The distance-halving overlay over a fixed ring.
#[derive(Clone, Debug)]
pub struct DistanceHalving {
    ring: SortedRing,
    /// Halving-walk length `k`.
    k: u32,
}

impl DistanceHalving {
    /// Build the overlay over `ring`.
    ///
    /// # Panics
    /// Panics if the ring is empty.
    pub fn new(ring: SortedRing) -> Self {
        assert!(!ring.is_empty(), "distance-halving over an empty ring");
        let k = (ceil_log2(ring.len()) + 3).min(60);
        DistanceHalving { ring, k }
    }

    /// The deterministic `σ` bits for a `(from, key)` pair.
    fn sigma(&self, from: Id, key: Id) -> u64 {
        mix64(from.raw() ^ mix64(key.raw()))
    }

    fn apply(p: Id, bit: bool) -> Id {
        if bit {
            p.half_right()
        } else {
            p.half_left()
        }
    }

    /// Append the covering node of `p` if it differs from the last hop.
    fn push_cover(&self, hops: &mut Vec<Id>, p: Id) {
        let node = self.ring.covering(p);
        if *hops.last().expect("non-empty route") != node {
            hops.push(node);
        }
    }

    /// Ring walk between sorted indices, shorter direction.
    fn ring_walk(&self, hops: &mut Vec<Id>, a: usize, b: usize) {
        let n = self.ring.len();
        let fwd = (b + n - a) % n;
        let back = (a + n - b) % n;
        if fwd <= back {
            for s in 1..=fwd {
                hops.push(self.ring.at((a + s) % n));
            }
        } else {
            for s in 1..=back {
                hops.push(self.ring.at((a + n - s) % n));
            }
        }
    }
}

impl InputGraph for DistanceHalving {
    fn ring(&self) -> &SortedRing {
        &self.ring
    }

    fn name(&self) -> &'static str {
        "distance-halving"
    }

    fn neighbors(&self, w: Id) -> Vec<Id> {
        let i = self.ring.index_of(w).expect("neighbors of an ID not on the ring");
        let mut out = Vec::with_capacity(8);
        if self.ring.len() == 1 {
            return out;
        }
        let seg = self.ring.segment_after(i);
        covering_nodes(&self.ring, &seg.half_left(), &mut out);
        covering_nodes(&self.ring, &seg.half_right(), &mut out);
        covering_nodes(&self.ring, &seg.double(), &mut out);
        out.push(self.ring.predecessor(w));
        out.push(self.ring.successor(w.add(RingDistance(1))));
        out.sort_unstable();
        out.dedup();
        out.retain(|&u| u != w);
        out
    }

    fn route(&self, from: Id, key: Id) -> Route {
        debug_assert!(self.ring.contains(from));
        let mut hops = vec![from];
        if self.ring.len() == 1 {
            return Route { hops };
        }
        let sigma = self.sigma(from, key);

        // Forward σ-walk on the source image (halving edges), recording
        // the target images along the way for the reverse leg.
        let mut x = from;
        let mut y = key;
        let mut y_images = Vec::with_capacity(self.k as usize + 1);
        y_images.push(y);
        for j in 0..self.k {
            let bit = (sigma >> j) & 1 == 1;
            x = Self::apply(x, bit);
            y = Self::apply(y, bit);
            y_images.push(y);
            self.push_cover(&mut hops, x);
        }

        // Bridge the (now ≤ 2^{-k}) gap between the two images on the ring.
        let here = self.ring.covering_index(x);
        let there = self.ring.covering_index(y);
        self.ring_walk(&mut hops, here, there);

        // Reverse σ-walk down the target images (doubling edges) until the
        // node covering the key itself.
        for &img in y_images.iter().rev().skip(1) {
            self.push_cover(&mut hops, img);
        }

        // The covering node of the key is its predecessor; the responsible
        // ID is the successor. One final ring hop if they differ.
        let cover_idx = self.ring.covering_index(key);
        let target_idx = self.ring.successor_index(key);
        self.ring_walk(&mut hops, cover_idx, target_idx);
        debug_assert_eq!(*hops.last().expect("non-empty"), self.ring.successor(key));
        Route { hops }
    }

    fn is_link(&self, w: Id, u: Id) -> bool {
        if w == u || self.ring.len() == 1 {
            return false;
        }
        let i = self.ring.index_of(w).expect("is_link on an ID not on the ring");
        let j = self.ring.index_of(u).expect("is_link target not on the ring");
        if u == self.ring.predecessor(w) || u == self.ring.successor(w.add(RingDistance(1))) {
            return true;
        }
        let seg_w = self.ring.segment_after(i);
        let seg_u = self.ring.segment_after(j);
        seg_u.intersects(&seg_w.half_left())
            || seg_u.intersects(&seg_w.half_right())
            || seg_u.intersects(&seg_w.double())
    }

    fn route_len_bound(&self) -> usize {
        // Two k-step walks plus two ring corrections.
        2 * self.k as usize + self.ring.len().min(4 * (self.k as usize + 8)) + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_ring(n: usize, seed: u64) -> SortedRing {
        let mut rng = StdRng::seed_from_u64(seed);
        SortedRing::new((0..n).map(|_| Id(rng.gen())).collect())
    }

    #[test]
    fn routes_resolve_to_successor() {
        let ring = random_ring(512, 31);
        let g = DistanceHalving::new(ring.clone());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            let r = g.route(from, key);
            assert_eq!(r.hops[0], from);
            assert_eq!(r.resolver(), ring.successor(key));
        }
    }

    #[test]
    fn routes_follow_edges() {
        let ring = random_ring(256, 32);
        let g = DistanceHalving::new(ring.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..60 {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            let r = g.route(from, key);
            for pair in r.hops.windows(2) {
                assert!(
                    g.is_link(pair[0], pair[1]) || g.is_link(pair[1], pair[0]),
                    "hop {:?} -> {:?} is not a distance-halving link",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn distance_actually_halves() {
        // The defining invariant (Naor–Wieder analyze the *real-line*
        // distance |x − y| on [0,1), which upper-bounds ring distance):
        // images of source and key approach each other by a factor of 2
        // per σ-step.
        let from = Id::from_f64(0.9);
        let key = Id::from_f64(0.1);
        let mut x = from;
        let mut y = key;
        let mut dist = (x.as_f64() - y.as_f64()).abs();
        for bit in [true, false, true, true, false] {
            x = DistanceHalving::apply(x, bit);
            y = DistanceHalving::apply(y, bit);
            let nd = (x.as_f64() - y.as_f64()).abs();
            assert!((nd - dist / 2.0).abs() < 1e-12, "distance must halve: {dist} -> {nd}");
            dist = nd;
        }
        // After enough steps the images land on the same or adjacent
        // nodes of any ring whose gaps exceed the final distance.
        assert!(dist < 0.8 / 32.0 + 1e-12, "real distance 0.8 halved 5 times");
    }

    #[test]
    fn routes_are_logarithmic() {
        let ring = random_ring(4096, 33);
        let g = DistanceHalving::new(ring.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 300;
        let mut total = 0usize;
        for _ in 0..trials {
            let from = ring.at(rng.gen_range(0..ring.len()));
            let key = Id(rng.gen());
            let r = g.route(from, key);
            total += r.len();
            assert!(r.len() <= g.route_len_bound());
        }
        let mean = total as f64 / trials as f64;
        // Two 15-step walks with merges: roughly 2k hops.
        assert!(mean < 40.0, "mean dh route length {mean:.1} too large");
        assert!(mean > 10.0, "mean dh route length {mean:.1} implausibly small");
    }

    #[test]
    fn expected_degree_is_constant() {
        let ring = random_ring(4096, 34);
        let g = DistanceHalving::new(ring.clone());
        let sample: Vec<usize> = (0..ring.len()).step_by(17).collect();
        let mut total = 0usize;
        for &i in &sample {
            total += g.neighbors(ring.at(i)).len();
        }
        let mean = total as f64 / sample.len() as f64;
        assert!(mean < 12.0, "mean dh degree {mean:.1} not O(1)");
    }

    #[test]
    fn deterministic_routes() {
        let ring = random_ring(128, 35);
        let g = DistanceHalving::new(ring.clone());
        let from = ring.at(7);
        let key = Id::from_f64(0.777);
        assert_eq!(g.route(from, key), g.route(from, key));
    }

    #[test]
    fn two_node_ring_routes() {
        let ring = SortedRing::new(vec![Id::from_f64(0.2), Id::from_f64(0.6)]);
        let g = DistanceHalving::new(ring.clone());
        for (from_f, key_f) in [(0.2, 0.5), (0.2, 0.9), (0.6, 0.3)] {
            let r = g.route(Id::from_f64(from_f), Id::from_f64(key_f));
            assert_eq!(r.resolver(), ring.successor(Id::from_f64(key_f)));
        }
    }
}
