//! The [`InputGraph`] abstraction: what the group layer needs from `H`.

use tg_idspace::{Id, SortedRing};

/// The path taken by one search (property P1).
///
/// `hops\[0\]` is the initiator and the final element is the ID responsible
/// for the key (`suc(key)`). Every consecutive pair is an edge of the
/// graph. An ID is "traversed" by the search iff it appears in `hops`
/// (matching the paper's Appendix VI definition, which counts the
/// initiator, all forwarders, and the resolver).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// Traversed IDs in order, initiator first, resolver last.
    pub hops: Vec<Id>,
}

impl Route {
    /// Number of traversed IDs.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the route is empty (never produced by a valid graph).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The ID that resolved the search.
    pub fn resolver(&self) -> Id {
        *self.hops.last().expect("routes are never empty")
    }
}

/// An input graph `H` over a fixed ID population.
///
/// Implementations are pure functions of the ID ring: `neighbors` and
/// `route` are recomputable by anybody from the ring alone, which is what
/// makes property P3's *verifiability* possible — an ID asked to accept a
/// link can re-derive whether that link should exist.
pub trait InputGraph: Send + Sync {
    /// The ID population.
    fn ring(&self) -> &SortedRing;

    /// Short human-readable topology name.
    fn name(&self) -> &'static str;

    /// The neighbor set `S_w` (property P3). `w` must be on the ring.
    fn neighbors(&self, w: Id) -> Vec<Id>;

    /// Route from `from` to the ID responsible for `key` (property P1).
    /// Both the initiator and resolver appear in the route.
    fn route(&self, from: Id, key: Id) -> Route;

    /// Whether `u ∈ S_w` under the linking rules — the verification
    /// predicate of property P3.
    fn is_link(&self, w: Id, u: Id) -> bool {
        self.neighbors(w).contains(&u)
    }

    /// An a-priori bound on route length for this topology and ring size,
    /// used by tests and by the harness to size message buffers.
    fn route_len_bound(&self) -> usize;
}

/// Factory enum so experiments can sweep topologies by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphKind {
    /// Chord \[48\] — `Θ(log n)` degree.
    Chord,
    /// D2B \[19\] — de Bruijn, `O(1)` expected degree.
    D2B,
    /// Naor–Wieder distance halving \[39\] — `O(1)` expected degree.
    DistanceHalving,
    /// Viceroy \[32\] — butterfly, `O(1)` worst-case degree.
    Viceroy,
}

impl GraphKind {
    /// All implemented topologies.
    pub const ALL: [GraphKind; 4] =
        [GraphKind::Chord, GraphKind::D2B, GraphKind::DistanceHalving, GraphKind::Viceroy];

    /// Construct the graph over `ring`.
    pub fn build(self, ring: SortedRing) -> Box<dyn InputGraph> {
        match self {
            GraphKind::Chord => Box::new(crate::chord::Chord::new(ring)),
            GraphKind::D2B => Box::new(crate::debruijn::D2B::new(ring)),
            GraphKind::DistanceHalving => Box::new(crate::halving::DistanceHalving::new(ring)),
            GraphKind::Viceroy => Box::new(crate::viceroy::Viceroy::new(ring)),
        }
    }

    /// Topology name (stable, used in CSV output).
    pub fn name(self) -> &'static str {
        match self {
            GraphKind::Chord => "chord",
            GraphKind::D2B => "d2b",
            GraphKind::DistanceHalving => "distance-halving",
            GraphKind::Viceroy => "viceroy",
        }
    }

    /// Parse a topology name as produced by [`GraphKind::name`].
    pub fn parse(s: &str) -> Option<GraphKind> {
        match s {
            "chord" => Some(GraphKind::Chord),
            "d2b" => Some(GraphKind::D2B),
            "distance-halving" => Some(GraphKind::DistanceHalving),
            "viceroy" => Some(GraphKind::Viceroy),
            _ => None,
        }
    }
}

/// `⌈log2 n⌉`, used by all topologies to size fingers/bit-walks.
pub(crate) fn ceil_log2(n: usize) -> u32 {
    assert!(n >= 1);
    usize::BITS - (n - 1).leading_zeros()
}

/// The nodes whose covering segments intersect `interval`: the node
/// covering the interval start plus every node whose ID lies inside it.
/// This is the discretization step of the continuous-discrete approach
/// \[39\]: a continuous edge set maps to links with every node covering it.
pub(crate) fn covering_nodes(
    ring: &tg_idspace::SortedRing,
    interval: &tg_idspace::RingInterval,
    out: &mut Vec<Id>,
) {
    if interval.is_empty() {
        return;
    }
    out.push(ring.covering(interval.start()));
    out.extend(ring.ids_in(interval));
}

/// Tiny splitmix64 chain for deterministic per-(source, key) route bits.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn graph_kind_roundtrip() {
        for k in GraphKind::ALL {
            assert_eq!(GraphKind::parse(k.name()), Some(k));
        }
        assert_eq!(GraphKind::parse("nonsense"), None);
    }
}
