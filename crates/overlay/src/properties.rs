//! Empirical verification of properties P1–P4 (§I-C).
//!
//! The group-layer guarantees are conditional on the input graph
//! satisfying P1 (logarithmic search), P2 (load balance), P3 (verifiable
//! links — exercised directly by `is_link`), and P4 (congestion
//! `O(log^c n / n)`). These measurements also feed experiment E1, where
//! the congestion constant `c` calibrates the predicted failure rate
//! `O(pf · log^c n)` of Lemma 2.

use crate::graph::InputGraph;
use rand::rngs::StdRng;
use rand::Rng;
use tg_idspace::Id;

/// Measured P1/P2/P4 quantities for one graph instance.
#[derive(Clone, Copy, Debug)]
pub struct PropertyReport {
    /// Ring size `N`.
    pub n: usize,
    /// Mean traversed IDs per search (P1).
    pub mean_route_len: f64,
    /// Maximum traversed IDs over the sample (P1).
    pub max_route_len: usize,
    /// Maximum key-space fraction owned by any ID, times `N` (P2 —
    /// `O(log n)` for u.a.r. rings; the paper's per-random-ID bound is 1).
    pub max_load_times_n: f64,
    /// Empirical congestion `C` times `N`: the maximum, over IDs, of the
    /// fraction of sampled searches traversing that ID, scaled by `N`
    /// (P4 — should be `O(log^c n)`).
    pub congestion_times_n: f64,
}

/// Sample `samples` random searches and report route-length statistics.
pub fn measure_route_lengths(
    graph: &dyn InputGraph,
    samples: usize,
    rng: &mut StdRng,
) -> (f64, usize) {
    let ring = graph.ring();
    let mut total = 0usize;
    let mut max = 0usize;
    for _ in 0..samples {
        let from = ring.at(rng.gen_range(0..ring.len()));
        let key = Id(rng.gen());
        let r = graph.route(from, key);
        total += r.len();
        max = max.max(r.len());
    }
    (total as f64 / samples as f64, max)
}

/// Estimate the congestion `C` (P4): the maximum over IDs of the
/// probability of being traversed by a search from a random initiator for
/// a random key. Returns `C` (not scaled).
pub fn measure_congestion(graph: &dyn InputGraph, samples: usize, rng: &mut StdRng) -> f64 {
    let ring = graph.ring();
    let mut traversals = vec![0u32; ring.len()];
    for _ in 0..samples {
        let from = ring.at(rng.gen_range(0..ring.len()));
        let key = Id(rng.gen());
        let r = graph.route(from, key);
        // Count each traversed ID once per search (multiplicity within a
        // single search does not change whether it was traversed).
        let mut idx: Vec<usize> =
            r.hops.iter().map(|&h| ring.index_of(h).expect("hops are ring IDs")).collect();
        idx.sort_unstable();
        idx.dedup();
        for i in idx {
            traversals[i] += 1;
        }
    }
    let max = traversals.iter().copied().max().unwrap_or(0);
    max as f64 / samples as f64
}

/// Full P1/P2/P4 report for one graph.
pub fn measure_properties(
    graph: &dyn InputGraph,
    samples: usize,
    rng: &mut StdRng,
) -> PropertyReport {
    let n = graph.ring().len();
    let (mean_route_len, max_route_len) = measure_route_lengths(graph, samples, rng);
    let congestion = measure_congestion(graph, samples, rng);
    PropertyReport {
        n,
        mean_route_len,
        max_route_len,
        max_load_times_n: graph.ring().max_load_fraction() * n as f64,
        congestion_times_n: congestion * n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphKind;
    use rand::SeedableRng;
    use tg_idspace::SortedRing;

    fn random_ring(n: usize, seed: u64) -> SortedRing {
        let mut rng = StdRng::seed_from_u64(seed);
        SortedRing::new((0..n).map(|_| Id(rng.gen())).collect())
    }

    /// P1, P2, P4 hold (with sane constants) for every implemented
    /// topology at n = 2048.
    #[test]
    fn all_graphs_satisfy_p1_p2_p4() {
        let n = 2048usize;
        let logn = (n as f64).ln();
        let log2n = (n as f64).log2();
        for kind in GraphKind::ALL {
            let g = kind.build(random_ring(n, 0xA5));
            let mut rng = StdRng::seed_from_u64(1);
            let rep = measure_properties(g.as_ref(), 2000, &mut rng);
            // P1: routes are O(log n); allow constant 4.
            assert!(
                rep.mean_route_len <= 4.0 * log2n,
                "{}: mean route {:.1} vs 4·log2 n {:.1}",
                kind.name(),
                rep.mean_route_len,
                4.0 * log2n
            );
            // P2: max load is O(log n / n) for u.a.r. rings.
            assert!(
                rep.max_load_times_n <= 4.0 * logn,
                "{}: max load ×n = {:.1} vs 4·ln n {:.1}",
                kind.name(),
                rep.max_load_times_n,
                4.0 * logn
            );
            // P4: congestion is O(log^c n / n) with c ≤ 2: the hottest ID
            // covers an O(log n / n) arc and O(log n)-hop walks land in it
            // O(log²n / n) of the time. Allow a generous constant.
            assert!(
                rep.congestion_times_n <= 8.0 * logn * logn,
                "{}: congestion ×n = {:.1} vs 8·ln²n {:.1}",
                kind.name(),
                rep.congestion_times_n,
                8.0 * logn * logn
            );
        }
    }

    /// Congestion must not be degenerate (some ID is traversed by every
    /// search only in a star topology — none of ours).
    #[test]
    fn congestion_is_sublinear() {
        for kind in GraphKind::ALL {
            let g = kind.build(random_ring(1024, 7));
            let mut rng = StdRng::seed_from_u64(2);
            let c = measure_congestion(g.as_ref(), 1500, &mut rng);
            assert!(c < 0.25, "{}: congestion {c:.3} suspiciously high", kind.name());
        }
    }
}
