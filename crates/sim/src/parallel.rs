//! Deterministic parallel parameter sweeps.
//!
//! Experiment harnesses sweep `(n, β, seed, …)` grids whose cells are
//! independent simulations. [`parallel_map`] fans the cells out over OS
//! threads with `std::thread::scope` and returns results **in input
//! order**, so parallel and serial runs produce byte-identical output —
//! the reproducibility contract of the whole workspace.
//!
//! Work is distributed by an atomic cursor (work stealing at item
//! granularity) rather than pre-chunking, so heterogeneous cell costs
//! (e.g. `n = 2^10` next to `n = 2^17`) still balance.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item, in parallel, returning results in input order.
///
/// `f` must be `Sync` (it is shared across threads) and the items are
/// consumed by value. The number of worker threads defaults to available
/// parallelism, capped by the number of items.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Items move into per-index cells; results come back the same way.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item =
                    work[i].lock().expect("unpoisoned").take().expect("each cell claimed once");
                let r = f(item);
                *results[i].lock().expect("unpoisoned") = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().expect("unpoisoned").expect("all cells computed"))
        .collect()
}

/// Like [`parallel_map`], but work is claimed in **chunks of consecutive
/// items** instead of one item at a time.
///
/// The item→chunk assignment is a pure function of `(items.len(),
/// chunk)` — chunk `c` owns items `[c·chunk, (c+1)·chunk)` — so the
/// work-split is deterministic and identical on every run; only *which
/// thread* executes a chunk varies, and results still come back in input
/// order. Use this when per-item work is small but skewed (e.g. one
/// search per group, where captured groups truncate early): item-level
/// stealing would spend more time on the atomic cursor than on the
/// items, while fixed pre-chunking (`len / threads`) can leave one
/// thread holding all the expensive items. Chunked stealing bounds the
/// imbalance by one chunk's worth of work.
///
/// `chunk == 0` is treated as `1`. A `chunk ≥ items.len()` degenerates
/// to the serial path (one chunk, zero coordination).
pub fn parallel_map_chunked<T, R, F>(items: Vec<T>, chunk: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let chunk = chunk.max(1);
    if n == 0 {
        return Vec::new();
    }
    let n_chunks = n.div_ceil(chunk);
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n_chunks);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let lo = c * chunk;
                let hi = (lo + chunk).min(n);
                for i in lo..hi {
                    let item =
                        work[i].lock().expect("unpoisoned").take().expect("each cell claimed once");
                    let r = f(item);
                    *results[i].lock().expect("unpoisoned") = Some(r);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().expect("unpoisoned").expect("all cells computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..1000).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(vec![41], |x: i32| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn heterogeneous_costs_balance() {
        // Mix trivial and busy items; correctness is order preservation.
        let items: Vec<u64> = (0..64).map(|i| if i % 7 == 0 { 20_000 } else { 10 }).collect();
        let expect: Vec<u64> = items.iter().map(|&k| (0..k).sum::<u64>()).collect();
        let out = parallel_map(items, |k: u64| (0..k).sum::<u64>());
        assert_eq!(out, expect);
    }

    #[test]
    fn chunked_matches_sequential_exactly() {
        // Regression for the load-imbalance fix: the chunked variant must
        // return the same results, in the same order, as the sequential
        // map — for every chunk size including degenerate ones.
        let items: Vec<u64> = (0..537).map(|i| i * 3 + 1).collect();
        let expect: Vec<u64> = items.iter().map(|&k| k.wrapping_mul(k) ^ 0xA5).collect();
        for chunk in [0usize, 1, 2, 7, 64, 537, 10_000] {
            let out = parallel_map_chunked(items.clone(), chunk, |k: u64| k.wrapping_mul(k) ^ 0xA5);
            assert_eq!(out, expect, "chunk={chunk}");
        }
    }

    #[test]
    fn chunked_balances_skewed_costs() {
        // Skewed per-item work (every 13th item is ~2000× heavier, like a
        // group whose search runs long): correctness is order-preserving
        // equality with the serial result under chunked stealing.
        let items: Vec<u64> = (0..256).map(|i| if i % 13 == 0 { 40_000 } else { 20 }).collect();
        let expect: Vec<u64> = items.iter().map(|&k| (0..k).sum::<u64>()).collect();
        let out = parallel_map_chunked(items, 8, |k: u64| (0..k).sum::<u64>());
        assert_eq!(out, expect);
    }

    #[test]
    fn chunked_empty_and_single() {
        let out: Vec<i32> = parallel_map_chunked(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
        let out = parallel_map_chunked(vec![41], 4, |x: i32| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn matches_serial_for_stateful_closures() {
        // The closure captures immutable state only; identical results in
        // any schedule.
        let table: Vec<u64> = (0..256).map(|i| i * i).collect();
        let out = parallel_map((0..256usize).collect(), |i| table[i] + 1);
        assert_eq!(out, (0..256u64).map(|i| i * i + 1).collect::<Vec<_>>());
    }
}
