//! Exhaustive enumeration helpers for small-configuration model
//! checking: iterate **every** `k`-subset of `0..n` in lexicographic
//! order. The invariant layer (`tg_verify`) drives these over adversary
//! placements — tiny universes, so the counts stay comfortably in the
//! thousands, but the point is completeness: a sampled sweep can miss
//! the one placement that breaks a guarantee, an enumeration cannot.

/// Call `f` once per `k`-subset of `{0, …, n-1}`, in lexicographic
/// order, passing the chosen indices (ascending). `k = 0` yields the
/// single empty subset; `k > n` yields nothing.
pub fn for_each_combination(n: usize, k: usize, mut f: impl FnMut(&[usize])) {
    if k > n {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        f(&idx);
        // Advance to the next combination: find the rightmost index that
        // can still move right, bump it, and reset everything after it.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// The number of `k`-subsets of an `n`-universe (`n choose k`),
/// saturating at `u64::MAX`. Used to size enumeration reports.
pub fn combination_count(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(n: usize, k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for_each_combination(n, k, |c| out.push(c.to_vec()));
        out
    }

    #[test]
    fn enumerates_all_subsets_in_lex_order() {
        let all = collect(4, 2);
        assert_eq!(
            all,
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3], vec![2, 3],]
        );
    }

    #[test]
    fn counts_match_enumeration() {
        for n in 0..=9 {
            for k in 0..=n + 1 {
                assert_eq!(collect(n, k).len() as u64, combination_count(n, k), "n={n} k={k}");
            }
        }
        assert_eq!(combination_count(5, 0), 1, "one empty subset");
        assert_eq!(combination_count(14, 7), 3432);
        assert_eq!(combination_count(64, 32), 1_832_624_140_942_590_534, "fits exactly");
        assert_eq!(combination_count(70, 35), u64::MAX, "saturates, not panics");
    }

    #[test]
    fn subsets_are_ascending_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for_each_combination(7, 3, |c| {
            assert!(c.windows(2).all(|w| w[0] < w[1]), "ascending: {c:?}");
            assert!(seen.insert(c.to_vec()), "duplicate subset {c:?}");
        });
        assert_eq!(seen.len(), 35);
    }
}
