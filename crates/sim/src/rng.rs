//! Seed discipline: labelled, independent randomness streams.
//!
//! Every simulated component (adversary, churn, good-ID placement, search
//! workload, …) draws from its own `StdRng` derived from the experiment's
//! master seed plus a label. Two properties follow:
//!
//! 1. **Reproducibility** — the same master seed replays the entire
//!    experiment bit-for-bit, regardless of thread scheduling (each
//!    component owns its stream; nothing shares a global RNG).
//! 2. **Independence across trials** — trial `i` uses `index = i`, giving
//!    statistically independent streams without manual seed bookkeeping.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step — the standard seed-expansion permutation.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// FNV-1a over the label bytes, used to fold the label into the seed.
#[inline]
fn fnv1a(label: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Derive a child seed from `(master, label, index)`.
///
/// Distinct labels or indices give (computationally) independent seeds.
pub fn derive_seed(master: u64, label: &str, index: u64) -> u64 {
    let mut s = splitmix64(master);
    s = splitmix64(s ^ fnv1a(label));
    splitmix64(s ^ index.wrapping_mul(0x9e3779b97f4a7c15))
}

/// A `StdRng` for the labelled stream `(master, label, index)`.
pub fn stream_rng(master: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label, index))
}

/// Derive a child seed from an **N-D grid coordinate**.
///
/// Parameter sweeps index their cells by several coordinates (a β-rung
/// index, a trial index, extra axis indices …). Each coordinate is
/// folded through its own splitmix round — rather than hand-packed into
/// one index — so the mapping stays a bijection along every axis and
/// cross-coordinate streams are independent in the same computational
/// sense as [`derive_seed`]'s labels (64-bit hashes, so collisions are
/// possible in principle but never from a packing artifact like `r + c`
/// aliasing). The fold is sequential: the 1-D prefix of a coordinate is
/// `derive_seed` itself, and the 2-D prefix is [`derive_seed_grid`], so
/// extending a sweep with new trailing axes never disturbs the streams
/// of existing lower-dimensional cells.
///
/// # Panics
/// Panics on an empty coordinate — a cell must have at least one axis.
pub fn derive_seed_nd(master: u64, label: &str, coords: &[u64]) -> u64 {
    let (&first, rest) = coords.split_first().expect("at least one grid coordinate");
    let mut s = derive_seed(master, label, first);
    for &c in rest {
        s = splitmix64(s ^ c.wrapping_mul(0xd1b54a32d192ed03));
    }
    s
}

/// Derive a child seed from a **2-D grid coordinate** `(row, col)` —
/// the [`derive_seed_nd`] special case frontier sweeps use for their
/// (β index, trial) cell streams.
pub fn derive_seed_grid(master: u64, label: &str, row: u64, col: u64) -> u64 {
    derive_seed_nd(master, label, &[row, col])
}

/// A `StdRng` for the labelled grid stream `(master, label, row, col)`.
pub fn stream_rng_grid(master: u64, label: &str, row: u64, col: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_grid(master, label, row, col))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        let a: u64 = stream_rng(1, "churn", 0).gen();
        let b: u64 = stream_rng(1, "churn", 0).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn labels_separate_streams() {
        let a: u64 = stream_rng(1, "churn", 0).gen();
        let b: u64 = stream_rng(1, "adversary", 0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indices_separate_streams() {
        let a: u64 = stream_rng(1, "trial", 0).gen();
        let b: u64 = stream_rng(1, "trial", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn masters_separate_streams() {
        let a: u64 = stream_rng(1, "trial", 0).gen();
        let b: u64 = stream_rng(2, "trial", 0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn grid_coordinates_are_independent_streams() {
        // No collisions across a rectangle, including the axes-swapped
        // coordinates that a naive `row + col`-style fold would alias.
        let mut seen = std::collections::HashSet::new();
        for r in 0..32u64 {
            for c in 0..32u64 {
                assert!(seen.insert(derive_seed_grid(9, "grid", r, c)), "collision at ({r},{c})");
            }
        }
        assert_ne!(derive_seed_grid(9, "grid", 1, 2), derive_seed_grid(9, "grid", 2, 1));
        // col 0 must not collapse onto the 1-D stream of the same row.
        assert_ne!(derive_seed_grid(9, "grid", 3, 0), derive_seed(9, "grid", 3));
    }

    #[test]
    fn grid_rng_is_deterministic() {
        let a: u64 = stream_rng_grid(4, "cell", 5, 6).gen();
        let b: u64 = stream_rng_grid(4, "cell", 5, 6).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn nd_extends_grid_compatibly() {
        // The 1-D and 2-D prefixes of the N-D fold are exactly the
        // existing helpers: extending a sweep to more axes must not move
        // any seed an existing experiment already drew.
        for r in 0..8u64 {
            assert_eq!(derive_seed_nd(3, "cell", &[r]), derive_seed(3, "cell", r));
            for c in 0..8u64 {
                assert_eq!(derive_seed_nd(3, "cell", &[r, c]), derive_seed_grid(3, "cell", r, c));
            }
        }
    }

    #[test]
    fn nd_coordinates_are_independent_streams() {
        // No collisions across a 3-D box, and trailing zeros do not
        // collapse a higher-dimensional cell onto its prefix stream.
        let mut seen = std::collections::HashSet::new();
        for a in 0..12u64 {
            for b in 0..12u64 {
                for c in 0..12u64 {
                    assert!(
                        seen.insert(derive_seed_nd(5, "nd", &[a, b, c])),
                        "collision at ({a},{b},{c})"
                    );
                }
            }
        }
        assert_ne!(derive_seed_nd(5, "nd", &[1, 2, 0]), derive_seed_nd(5, "nd", &[1, 2]));
        assert_ne!(derive_seed_nd(5, "nd", &[1, 2, 3]), derive_seed_nd(5, "nd", &[3, 2, 1]));
    }

    #[test]
    #[should_panic(expected = "at least one grid coordinate")]
    fn nd_rejects_empty_coordinates() {
        derive_seed_nd(1, "empty", &[]);
    }

    #[test]
    fn derive_seed_spreads_bits() {
        // Consecutive indices must not give correlated seeds; check that
        // the low and high 32 bits both vary.
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(7, "x", i)).collect();
        let lows: std::collections::HashSet<u32> = seeds.iter().map(|&s| s as u32).collect();
        let highs: std::collections::HashSet<u32> =
            seeds.iter().map(|&s| (s >> 32) as u32).collect();
        assert_eq!(lows.len(), 64);
        assert_eq!(highs.len(), 64);
    }
}
