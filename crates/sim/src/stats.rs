//! Summary statistics and distribution tests for the experiment harness.

/// Summary statistics over a sample of `f64` observations.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased, `n-1` denominator).
    pub std: f64,
    /// Minimum observation.
    pub min: f64,
    /// Median (lower median for even `n`).
    pub median: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns the zero summary for an empty sample.
    pub fn of(sample: &[f64]) -> Summary {
        if sample.is_empty() {
            return Summary::default();
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            median: sorted[(n - 1) / 2],
            max: sorted[n - 1],
        }
    }

    /// The `q`-quantile of a sample (nearest-rank), `q ∈ \[0,1\]`.
    pub fn quantile(sample: &[f64], q: f64) -> f64 {
        assert!(!sample.is_empty(), "quantile of empty sample");
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[rank]
    }
}

/// Pearson's chi-square statistic for uniformity over `bins` equal cells.
///
/// Returns `(statistic, degrees_of_freedom)`. Used by experiment E6 to test
/// that adversarially minted IDs are uniform on the ring (Lemma 11): under
/// uniformity the statistic concentrates around `bins - 1` with standard
/// deviation `√(2(bins-1))`; a targeted-interval attack inflates it by
/// orders of magnitude.
pub fn chi_square_uniform(values: &[f64], bins: usize) -> (f64, usize) {
    assert!(bins >= 2, "need at least two bins");
    assert!(!values.is_empty(), "chi-square of empty sample");
    let mut counts = vec![0u64; bins];
    for &v in values {
        assert!((0.0..1.0).contains(&v), "values must lie in [0,1)");
        let b = ((v * bins as f64) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let expected = values.len() as f64 / bins as f64;
    let stat = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    (stat, bins - 1)
}

/// Whether a chi-square statistic is consistent with uniformity at roughly
/// the 3-sigma level (the normal approximation to the chi-square tail —
/// adequate for the ≥32-bin, ≥1000-sample uses in this workspace).
pub fn chi_square_accepts_uniform(stat: f64, dof: usize) -> bool {
    let dof = dof as f64;
    stat <= dof + 3.0 * (2.0 * dof).sqrt()
}

/// The Wilson score interval for a binomial proportion: the `z`-score
/// confidence band on the success rate after `successes` out of `n`
/// Bernoulli trials.
///
/// Unlike the naive normal interval (`p̂ ± z·√(p̂(1−p̂)/n)`), Wilson stays
/// inside `[0, 1]` and gives sensible non-degenerate bands at the
/// extremes (`0/n`, `n/n`) and at the tiny `n` a frontier-refinement
/// sweep starts from — exactly where adaptive seed allocation has to
/// decide whether two sides of a capture threshold are separated yet.
/// Returns `(0, 1)` — total ignorance — for `n = 0`.
///
/// # Panics
/// Panics when `successes > n` or `z` is not positive and finite.
pub fn binomial_wilson(successes: usize, n: usize, z: f64) -> (f64, f64) {
    assert!(successes <= n, "more successes ({successes}) than trials ({n})");
    assert!(z.is_finite() && z > 0.0, "z-score must be positive and finite");
    if n == 0 {
        return (0.0, 1.0);
    }
    let (nf, p) = (n as f64, successes as f64 / n as f64);
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = p + z2 / (2.0 * nf);
    let half = z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    // The interval can only clip at an edge the observations sit on;
    // pin those exactly so `0/n` and `n/n` round-trip through the
    // arithmetic without an ulp of drift.
    let lo = if successes == 0 { 0.0 } else { ((center - half) / denom).max(0.0) };
    let hi = if successes == n { 1.0 } else { ((center + half) / denom).min(1.0) };
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0, "lower median");
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_empty_and_single() {
        assert_eq!(Summary::of(&[]).n, 0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn quantiles() {
        let v: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert_eq!(Summary::quantile(&v, 0.0), 0.0);
        assert_eq!(Summary::quantile(&v, 0.5), 50.0);
        assert_eq!(Summary::quantile(&v, 1.0), 100.0);
        assert_eq!(Summary::quantile(&v, 0.9), 90.0);
    }

    #[test]
    fn wilson_contains_point_estimate_and_stays_in_unit_interval() {
        for n in 1..40usize {
            for s in 0..=n {
                let (lo, hi) = binomial_wilson(s, n, 1.96);
                let p = s as f64 / n as f64;
                assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
                assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "({s}/{n}): [{lo},{hi}] vs {p}");
                assert!(lo < hi, "({s}/{n}): degenerate interval");
            }
        }
    }

    #[test]
    fn wilson_narrows_with_more_trials_and_widens_with_z() {
        let (lo4, hi4) = binomial_wilson(2, 4, 1.96);
        let (lo64, hi64) = binomial_wilson(32, 64, 1.96);
        assert!(hi64 - lo64 < hi4 - lo4, "more trials must narrow the band");
        let (lo_z1, hi_z1) = binomial_wilson(2, 4, 1.0);
        assert!(hi4 - lo4 > hi_z1 - lo_z1, "bigger z must widen the band");
    }

    #[test]
    fn wilson_edges_are_informative() {
        // 0/n must pin the lower edge to 0 but keep a real upper bound;
        // n/n mirrors it. This is the separation test the refinement
        // engine runs at bracket cells.
        let (lo, hi) = binomial_wilson(0, 6, 1.645);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.5, "0/6 upper bound {hi}");
        let (lo1, hi1) = binomial_wilson(6, 6, 1.645);
        assert_eq!(hi1, 1.0);
        assert!(lo1 > 0.5, "6/6 lower bound {lo1}");
        assert_eq!(binomial_wilson(0, 0, 1.0), (0.0, 1.0), "no data, no information");
    }

    #[test]
    fn chi_square_accepts_uniform_sample() {
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        let (stat, dof) = chi_square_uniform(&values, 64);
        assert!(chi_square_accepts_uniform(stat, dof), "stat={stat:.1} dof={dof}");
    }

    #[test]
    fn chi_square_rejects_clustered_sample() {
        let mut rng = StdRng::seed_from_u64(5);
        // Half the mass crammed into [0, 0.1): a targeted-interval attack.
        let values: Vec<f64> = (0..10_000)
            .map(|i| if i % 2 == 0 { rng.gen::<f64>() * 0.1 } else { rng.gen::<f64>() })
            .collect();
        let (stat, dof) = chi_square_uniform(&values, 64);
        assert!(!chi_square_accepts_uniform(stat, dof), "stat={stat:.1} dof={dof}");
    }
}
