//! Summary statistics and distribution tests for the experiment harness.

/// Summary statistics over a sample of `f64` observations.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased, `n-1` denominator).
    pub std: f64,
    /// Minimum observation.
    pub min: f64,
    /// Median (lower median for even `n`).
    pub median: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns the zero summary for an empty sample.
    pub fn of(sample: &[f64]) -> Summary {
        if sample.is_empty() {
            return Summary::default();
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            median: sorted[(n - 1) / 2],
            max: sorted[n - 1],
        }
    }

    /// The `q`-quantile of a sample (nearest-rank), `q ∈ \[0,1\]`.
    pub fn quantile(sample: &[f64], q: f64) -> f64 {
        assert!(!sample.is_empty(), "quantile of empty sample");
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[rank]
    }
}

/// Pearson's chi-square statistic for uniformity over `bins` equal cells.
///
/// Returns `(statistic, degrees_of_freedom)`. Used by experiment E6 to test
/// that adversarially minted IDs are uniform on the ring (Lemma 11): under
/// uniformity the statistic concentrates around `bins - 1` with standard
/// deviation `√(2(bins-1))`; a targeted-interval attack inflates it by
/// orders of magnitude.
pub fn chi_square_uniform(values: &[f64], bins: usize) -> (f64, usize) {
    assert!(bins >= 2, "need at least two bins");
    assert!(!values.is_empty(), "chi-square of empty sample");
    let mut counts = vec![0u64; bins];
    for &v in values {
        assert!((0.0..1.0).contains(&v), "values must lie in [0,1)");
        let b = ((v * bins as f64) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let expected = values.len() as f64 / bins as f64;
    let stat = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    (stat, bins - 1)
}

/// Whether a chi-square statistic is consistent with uniformity at roughly
/// the 3-sigma level (the normal approximation to the chi-square tail —
/// adequate for the ≥32-bin, ≥1000-sample uses in this workspace).
pub fn chi_square_accepts_uniform(stat: f64, dof: usize) -> bool {
    let dof = dof as f64;
    stat <= dof + 3.0 * (2.0 * dof).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0, "lower median");
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_empty_and_single() {
        assert_eq!(Summary::of(&[]).n, 0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn quantiles() {
        let v: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert_eq!(Summary::quantile(&v, 0.0), 0.0);
        assert_eq!(Summary::quantile(&v, 0.5), 50.0);
        assert_eq!(Summary::quantile(&v, 1.0), 100.0);
        assert_eq!(Summary::quantile(&v, 0.9), 90.0);
    }

    #[test]
    fn chi_square_accepts_uniform_sample() {
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        let (stat, dof) = chi_square_uniform(&values, 64);
        assert!(chi_square_accepts_uniform(stat, dof), "stat={stat:.1} dof={dof}");
    }

    #[test]
    fn chi_square_rejects_clustered_sample() {
        let mut rng = StdRng::seed_from_u64(5);
        // Half the mass crammed into [0, 0.1): a targeted-interval attack.
        let values: Vec<f64> = (0..10_000)
            .map(|i| if i % 2 == 0 { rng.gen::<f64>() * 0.1 } else { rng.gen::<f64>() })
            .collect();
        let (stat, dof) = chi_square_uniform(&values, 64);
        assert!(!chi_square_accepts_uniform(stat, dof), "stat={stat:.1} dof={dof}");
    }
}
