//! The epoch/step time structure of §III and §IV.
//!
//! Time is divided into disjoint consecutive **epochs** of `T` steps,
//! indexed from 1. Two boundaries matter to the protocols:
//!
//! * the **half-epoch point** `T/2`: IDs that want to participate in the
//!   next epoch must begin puzzle generation by this step (§III-A), and the
//!   string-propagation protocol runs its three phases in the first half of
//!   an epoch (Appendix VIII);
//! * the **epoch boundary**: the two new group graphs become the two old
//!   ones, and expired IDs enter their passive grace epoch.
//!
//! All participants know step 0 and `T` (both are fixed system parameters;
//! the paper points at NTP for the modest synchronization required), so an
//! `EpochClock` is pure bookkeeping — no distributed clock sync is modelled.

/// Epoch/step bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochClock {
    /// Epoch length `T` in steps.
    t: u64,
    /// Global step counter, starting at 0.
    step: u64,
}

impl EpochClock {
    /// A clock at step 0 with epochs of `t` steps.
    ///
    /// # Panics
    /// Panics if `t == 0` or `t` is odd (the protocols need an exact
    /// half-epoch boundary).
    pub fn new(t: u64) -> Self {
        assert!(t > 0, "epoch length must be positive");
        assert!(t.is_multiple_of(2), "epoch length must be even for the half-epoch boundary");
        EpochClock { t, step: 0 }
    }

    /// Epoch length `T`.
    pub fn epoch_len(&self) -> u64 {
        self.t
    }

    /// The global step counter.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The current epoch, indexed from 1 (the paper indexes epochs
    /// `j ≥ 1`).
    pub fn epoch(&self) -> u64 {
        self.step / self.t + 1
    }

    /// Step within the current epoch, in `0..T`.
    pub fn step_in_epoch(&self) -> u64 {
        self.step % self.t
    }

    /// Whether the current step is in the second half of its epoch (at or
    /// past the `T/2` boundary), i.e. the window in which IDs mint
    /// identities for the *next* epoch.
    pub fn in_minting_window(&self) -> bool {
        self.step_in_epoch() >= self.t / 2
    }

    /// Whether this step begins a new epoch.
    pub fn at_epoch_start(&self) -> bool {
        self.step_in_epoch() == 0
    }

    /// Advance one step.
    pub fn tick(&mut self) {
        self.step += 1;
    }

    /// Advance `k` steps.
    pub fn advance(&mut self, k: u64) {
        self.step += k;
    }

    /// Jump to the start of the next epoch.
    pub fn next_epoch(&mut self) {
        self.step = (self.step / self.t + 1) * self.t;
    }
}

/// Latency-adaptive phase-window sizing for the actor runtime.
///
/// A protocol phase gives the transport a tick **deadline** (the
/// `window` argument of `Transport::begin_phase`): messages whose
/// delivery tick lands past it are late and lost. A fixed deadline
/// wastes budget on fast networks and starves slow ones, so the
/// runtime sizes it adaptively: after each phase it feeds the observed
/// delivery latency back through [`PhaseWindow::observe`], and the next
/// deadline becomes `base + 4 × mean_latency`, clamped to
/// `[base, max]`.
///
/// Two properties matter for reproducibility:
///
/// * **zero-latency fixpoint** — on a perfect network the observed mean
///   is 0, so the window stays exactly `base` forever; golden replays
///   over loopback sockets are byte-identical to the fixed-window
///   runs they were recorded under;
/// * **pinning** — a spec-level `window=` knob constructs a
///   [`PhaseWindow::pinned`] window that ignores observations, so
///   sweeps can hold the deadline constant across an axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseWindow {
    /// Floor (and zero-latency fixpoint) of the deadline, in ticks.
    base: u64,
    /// Ceiling of the deadline, in ticks.
    max: u64,
    /// The deadline currently in force.
    current: u64,
    /// Pinned windows ignore [`PhaseWindow::observe`].
    pinned: bool,
}

impl PhaseWindow {
    /// An adaptive window starting at (and floored by) `base`, capped
    /// at `max`.
    ///
    /// # Panics
    /// Panics if `base == 0` or `base > max` — a phase needs at least
    /// one tick, and the clamp range must be non-empty.
    pub fn adaptive(base: u64, max: u64) -> Self {
        assert!(base > 0, "phase window base must be positive");
        assert!(base <= max, "phase window base must not exceed max");
        PhaseWindow { base, max, current: base, pinned: false }
    }

    /// A window pinned to exactly `ticks`, never adapting.
    ///
    /// # Panics
    /// Panics if `ticks == 0`.
    pub fn pinned(ticks: u64) -> Self {
        assert!(ticks > 0, "phase window must be positive");
        PhaseWindow { base: ticks, max: ticks, current: ticks, pinned: true }
    }

    /// The deadline currently in force, in ticks.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Whether this window ignores observations.
    pub fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// Feed back one phase's delivery observation: `delivered` messages
    /// with `lat_ticks` total latency (as accumulated by
    /// `NetStats::lat_ticks`). The next deadline becomes
    /// `base + 4 × ⌈mean latency⌉`, clamped to `[base, max]`. A phase
    /// that delivered nothing leaves the window unchanged — there is no
    /// signal, and in particular no division by zero.
    pub fn observe(&mut self, delivered: u64, lat_ticks: u64) {
        if self.pinned || delivered == 0 {
            return;
        }
        let mean = lat_ticks.div_ceil(delivered);
        self.current = (self.base + 4 * mean).clamp(self.base, self.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_index_from_one() {
        let mut c = EpochClock::new(10);
        assert_eq!(c.epoch(), 1);
        c.advance(9);
        assert_eq!(c.epoch(), 1);
        c.tick();
        assert_eq!(c.epoch(), 2);
        assert!(c.at_epoch_start());
    }

    #[test]
    fn minting_window_is_second_half() {
        let mut c = EpochClock::new(10);
        assert!(!c.in_minting_window());
        c.advance(4);
        assert!(!c.in_minting_window());
        c.tick(); // step 5 = T/2
        assert!(c.in_minting_window());
        c.advance(4); // step 9
        assert!(c.in_minting_window());
        c.tick(); // step 10: next epoch, first half again
        assert!(!c.in_minting_window());
    }

    #[test]
    fn next_epoch_jumps_to_boundary() {
        let mut c = EpochClock::new(8);
        c.advance(3);
        c.next_epoch();
        assert_eq!(c.step(), 8);
        assert!(c.at_epoch_start());
        c.next_epoch();
        assert_eq!(c.step(), 16);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_epoch_length_rejected() {
        let _ = EpochClock::new(7);
    }

    #[test]
    fn adaptive_window_tracks_latency_within_bounds() {
        let mut w = PhaseWindow::adaptive(64, 4096);
        assert_eq!(w.current(), 64, "starts at base");
        // Zero observed latency is a fixpoint: the window never moves.
        w.observe(100, 0);
        assert_eq!(w.current(), 64);
        // Mean latency 3 → 64 + 12.
        w.observe(10, 30);
        assert_eq!(w.current(), 76);
        // Huge latency clamps at max.
        w.observe(2, 1_000_000);
        assert_eq!(w.current(), 4096);
        // Recovery: latency subsides, window falls back toward base.
        w.observe(10, 0);
        assert_eq!(w.current(), 64);
    }

    #[test]
    fn empty_phase_leaves_window_unchanged() {
        let mut w = PhaseWindow::adaptive(64, 4096);
        w.observe(10, 40);
        let before = w.current();
        w.observe(0, 0);
        assert_eq!(w.current(), before, "no deliveries, no signal, no change");
    }

    #[test]
    fn pinned_window_ignores_observations() {
        let mut w = PhaseWindow::pinned(128);
        assert!(w.is_pinned());
        w.observe(10, 10_000);
        assert_eq!(w.current(), 128);
    }

    #[test]
    fn mean_rounds_up() {
        // 3 deliveries, 4 total ticks → mean ⌈4/3⌉ = 2 → 64 + 8.
        let mut w = PhaseWindow::adaptive(64, 4096);
        w.observe(3, 4);
        assert_eq!(w.current(), 72);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pinned_window_rejected() {
        let _ = PhaseWindow::pinned(0);
    }
}
