//! The epoch/step time structure of §III and §IV.
//!
//! Time is divided into disjoint consecutive **epochs** of `T` steps,
//! indexed from 1. Two boundaries matter to the protocols:
//!
//! * the **half-epoch point** `T/2`: IDs that want to participate in the
//!   next epoch must begin puzzle generation by this step (§III-A), and the
//!   string-propagation protocol runs its three phases in the first half of
//!   an epoch (Appendix VIII);
//! * the **epoch boundary**: the two new group graphs become the two old
//!   ones, and expired IDs enter their passive grace epoch.
//!
//! All participants know step 0 and `T` (both are fixed system parameters;
//! the paper points at NTP for the modest synchronization required), so an
//! `EpochClock` is pure bookkeeping — no distributed clock sync is modelled.

/// Epoch/step bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochClock {
    /// Epoch length `T` in steps.
    t: u64,
    /// Global step counter, starting at 0.
    step: u64,
}

impl EpochClock {
    /// A clock at step 0 with epochs of `t` steps.
    ///
    /// # Panics
    /// Panics if `t == 0` or `t` is odd (the protocols need an exact
    /// half-epoch boundary).
    pub fn new(t: u64) -> Self {
        assert!(t > 0, "epoch length must be positive");
        assert!(t.is_multiple_of(2), "epoch length must be even for the half-epoch boundary");
        EpochClock { t, step: 0 }
    }

    /// Epoch length `T`.
    pub fn epoch_len(&self) -> u64 {
        self.t
    }

    /// The global step counter.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The current epoch, indexed from 1 (the paper indexes epochs
    /// `j ≥ 1`).
    pub fn epoch(&self) -> u64 {
        self.step / self.t + 1
    }

    /// Step within the current epoch, in `0..T`.
    pub fn step_in_epoch(&self) -> u64 {
        self.step % self.t
    }

    /// Whether the current step is in the second half of its epoch (at or
    /// past the `T/2` boundary), i.e. the window in which IDs mint
    /// identities for the *next* epoch.
    pub fn in_minting_window(&self) -> bool {
        self.step_in_epoch() >= self.t / 2
    }

    /// Whether this step begins a new epoch.
    pub fn at_epoch_start(&self) -> bool {
        self.step_in_epoch() == 0
    }

    /// Advance one step.
    pub fn tick(&mut self) {
        self.step += 1;
    }

    /// Advance `k` steps.
    pub fn advance(&mut self, k: u64) {
        self.step += k;
    }

    /// Jump to the start of the next epoch.
    pub fn next_epoch(&mut self) {
        self.step = (self.step / self.t + 1) * self.t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_index_from_one() {
        let mut c = EpochClock::new(10);
        assert_eq!(c.epoch(), 1);
        c.advance(9);
        assert_eq!(c.epoch(), 1);
        c.tick();
        assert_eq!(c.epoch(), 2);
        assert!(c.at_epoch_start());
    }

    #[test]
    fn minting_window_is_second_half() {
        let mut c = EpochClock::new(10);
        assert!(!c.in_minting_window());
        c.advance(4);
        assert!(!c.in_minting_window());
        c.tick(); // step 5 = T/2
        assert!(c.in_minting_window());
        c.advance(4); // step 9
        assert!(c.in_minting_window());
        c.tick(); // step 10: next epoch, first half again
        assert!(!c.in_minting_window());
    }

    #[test]
    fn next_epoch_jumps_to_boundary() {
        let mut c = EpochClock::new(8);
        c.advance(3);
        c.next_epoch();
        assert_eq!(c.step(), 8);
        assert!(c.at_epoch_start());
        c.next_epoch();
        assert_eq!(c.step(), 16);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_epoch_length_rejected() {
        let _ = EpochClock::new(7);
    }
}
