//! # tg-sim
//!
//! The deterministic simulation substrate for the tiny-groups workspace.
//!
//! All of the paper's claims are probabilistic statements about message
//! counts, state sizes, and failure fractions — not wall-clock latency —
//! so the faithful substrate is a **seeded, synchronous-round simulator**
//! with exact accounting, rather than an async network runtime (see
//! DESIGN.md §3 for the substitution rationale). This crate provides:
//!
//! * [`rng`] — disciplined seed derivation: every component draws its
//!   randomness from a labelled stream of a single master seed, so whole
//!   experiments replay bit-for-bit,
//! * [`metrics`] — mergeable message/state counters used to reproduce the
//!   cost claims of Corollary 1,
//! * [`clock`] — the epoch/step structure of §III (epochs of `T` steps,
//!   half-epoch boundaries for PoW minting),
//! * [`stats`] — summary statistics and uniformity tests shared by the
//!   experiment harness,
//! * [`parallel`] — a scoped-thread deterministic parallel map for
//!   parameter sweeps (results are ordered, so parallelism never changes
//!   output),
//! * [`net`] — an injectable message [`Transport`] with a
//!   deterministic in-memory implementation supporting seeded fault
//!   injection (latency, reordering, drops, partitions) for the actor
//!   epoch runtime, plus a real-TCP loopback implementation
//!   ([`SocketTransport`]) sharing the same fault fate function,
//! * [`store`] — a content-addressed, hash-chained result store with
//!   atomic publish, so sweeps can skip cells whose observation
//!   streams are already on disk and long runs resume mid-ladder.

pub mod clock;
pub mod enumerate;
pub mod metrics;
pub mod net;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod store;

pub use clock::{EpochClock, PhaseWindow};
pub use enumerate::{combination_count, for_each_combination};
pub use metrics::{CostReport, Metrics};
pub use net::{
    Envelope, Fate, FaultPlan, InMemoryTransport, NetStats, NodeId, RetryPolicy, SocketTransport,
    Transport, TransportChoice, Wire, NO_DEADLINE,
};
pub use parallel::{parallel_map, parallel_map_chunked};
pub use rng::{derive_seed, derive_seed_grid, derive_seed_nd, stream_rng, stream_rng_grid};
pub use stats::{binomial_wilson, Summary};
pub use store::{write_atomic, ResultStore, StoreError};
