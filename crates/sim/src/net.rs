//! Injectable message transport with deterministic fault injection.
//!
//! The actor runtime (`tg_core::runtime`) splits an epoch into per-node
//! actors that exchange typed protocol messages instead of advancing as
//! one synchronous in-process step. This module provides the network
//! those actors talk over:
//!
//! * [`Transport`] — the injectable trait,
//! * [`InMemoryTransport`] — a deterministic in-memory network with
//!   seeded fault injection: per-link latency, reordering (a consequence
//!   of unequal latency), drops, and epoch-scoped partitions,
//! * [`SocketTransport`] — the same contract
//!   served over real localhost TCP sockets with length-prefixed
//!   framing and retry/backoff (see [`socket`]),
//! * [`FaultPlan`] — the fault knobs, all derived from a seed via
//!   [`crate::rng::derive_seed_nd`] so runs are reproducible,
//! * [`NetStats`] — delivery counters for observability.
//!
//! ## Determinism contract
//!
//! The transport draws **no RNG state**: every per-message fault
//! decision (drop, latency, partition side) is a pure hash of
//! `(seed, epoch, phase, src, dst, link_seq)` through
//! [`crate::rng::derive_seed_nd`], centralized in [`FaultPlan::fate`]
//! so every implementation — in-memory or socket — drops, delays, and
//! cuts exactly the same frames. Identical seeds therefore yield
//! identical message schedules regardless of thread count or call
//! interleaving, and — crucially — the simulation kernels' own RNG
//! streams (`"epoch"`, `"churn"`, `"measure"`, …) are untouched, which
//! is what lets the actor runtime over a *perfect* transport reproduce
//! the synchronous driver's observations byte-identically.
//!
//! ## Delivery order and phase deadlines
//!
//! Messages are delivered in ascending `(deliver_tick, send_seq)`
//! order. A perfect transport (zero latency, no drops, no partition)
//! with monotone send ticks therefore delivers in exact send order.
//!
//! Each phase carries a **tick deadline** (the `window` argument of
//! [`Transport::begin_phase`]): a message whose hash-drawn delivery
//! tick lands past the deadline is *late* and surfaces exactly like an
//! injected fault — never delivered, counted in [`NetStats::late`].
//! The actor runtime sizes the deadline adaptively from the observed
//! per-phase delivery latency (see `tg_sim::clock::PhaseWindow`); pass
//! [`NO_DEADLINE`] to opt out.

use crate::rng::derive_seed_nd;
use std::collections::BinaryHeap;

pub mod socket;

pub use socket::{RetryPolicy, SocketTransport, Wire};

/// A virtual network endpoint. The actor runtime maps protocol
/// participants (IDs, aggregators) onto a small set of nodes.
pub type NodeId = u64;

/// A phase deadline that never declares a message late.
pub const NO_DEADLINE: u64 = u64::MAX;

/// Fault knobs for a transport. All zeros ([`FaultPlan::perfect`],
/// also `Default`) is the perfect network: zero latency, lossless, never
/// partitioned.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Per-message independent drop probability in `[0, 1]`.
    pub drop_rate: f64,
    /// Per-message latency is hash-drawn uniformly from `0..=latency_max`
    /// ticks. Unequal latency on different messages reorders them.
    pub latency_max: u64,
    /// For the first `partition_ticks` ticks of every phase the node set
    /// is split into two halves (a hash-derived bisection, re-drawn each
    /// epoch); messages sent across the cut during the window are
    /// dropped. The partition heals for the remainder of the phase.
    pub partition_ticks: u64,
}

/// The fate of one message under a [`FaultPlan`] — the pure hash
/// decision every [`Transport`] implementation shares, so the in-memory
/// and socket transports lose exactly the same frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Delivered at the given tick (`sent_tick` + hash-drawn latency).
    Deliver {
        /// The delivery tick.
        deliver_tick: u64,
    },
    /// Lost to the random-loss knob.
    Dropped,
    /// Lost crossing the active partition cut.
    Cut,
}

impl FaultPlan {
    /// The fault-free plan: zero latency, no drops, no partitions.
    pub fn perfect() -> Self {
        FaultPlan { drop_rate: 0.0, latency_max: 0, partition_ticks: 0 }
    }

    /// True iff this plan injects no faults at all.
    pub fn is_perfect(&self) -> bool {
        self.drop_rate == 0.0 && self.latency_max == 0 && self.partition_ticks == 0
    }

    /// Which side of the epoch's partition bisection `node` is on.
    pub fn partition_side(&self, seed: u64, epoch: u64, node: NodeId) -> u64 {
        derive_seed_nd(seed, "net-part", &[epoch, node]) & 1
    }

    /// Decide the fate of the message with the given coordinates: cut by
    /// the partition, dropped by random loss, or delivered at
    /// `sent_tick` + hash-drawn latency. Pure — no RNG stream is
    /// consumed, and the decision depends only on the coordinates.
    pub fn fate(
        &self,
        seed: u64,
        epoch: u64,
        phase: u64,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        sent_tick: u64,
    ) -> Fate {
        // Partition: during the first `partition_ticks` ticks of the
        // phase, messages crossing the hash-derived bisection are lost.
        if self.partition_ticks > 0
            && sent_tick < self.partition_ticks
            && src != dst
            && self.partition_side(seed, epoch, src) != self.partition_side(seed, epoch, dst)
        {
            return Fate::Cut;
        }
        // Random loss: a pure hash of the message coordinates.
        if self.drop_rate > 0.0 {
            let h = derive_seed_nd(seed, "net-drop", &[epoch, phase, src, dst, seq]);
            if unit_f64(h) < self.drop_rate {
                return Fate::Dropped;
            }
        }
        // Latency: uniform in 0..=latency_max, again hash-derived.
        let latency = if self.latency_max > 0 {
            let h = derive_seed_nd(seed, "net-lat", &[epoch, phase, src, dst, seq]);
            h % (self.latency_max + 1)
        } else {
            0
        };
        Fate::Deliver { deliver_tick: sent_tick.saturating_add(latency) }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::perfect()
    }
}

/// Which [`Transport`] implementation carries a scenario's protocol
/// messages. Orthogonal to the fault plan: both transports apply the
/// same hash-derived [`Fate`]s, so the choice moves bytes differently
/// but never moves an observation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportChoice {
    /// The deterministic in-memory network (the default).
    #[default]
    Mem,
    /// Real localhost TCP sockets with length-prefixed framing
    /// ([`socket::SocketTransport`]).
    Socket,
}

impl TransportChoice {
    /// Stable codec token (`mem` / `socket`).
    pub fn label(self) -> &'static str {
        match self {
            TransportChoice::Mem => "mem",
            TransportChoice::Socket => "socket",
        }
    }

    /// Parse a codec token.
    pub fn parse(s: &str) -> Option<TransportChoice> {
        match s {
            "mem" => Some(TransportChoice::Mem),
            "socket" => Some(TransportChoice::Socket),
            _ => None,
        }
    }
}

/// A delivered message with its envelope metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Tick at which the message was sent.
    pub sent_tick: u64,
    /// Tick at which the message was delivered (`sent_tick` + latency).
    pub deliver_tick: u64,
    /// The payload.
    pub msg: M,
}

/// Delivery counters. Monotone over the transport's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to [`Transport::send`].
    pub sent: u64,
    /// Messages returned from [`Transport::recv`].
    pub delivered: u64,
    /// Messages dropped by the random-loss knob — plus, on a real
    /// transport, frames lost to the wire itself (write failure after
    /// retries, an undecodable frame, a receive timeout): graceful
    /// degradation makes a wire fault surface exactly like an injected
    /// one.
    pub dropped: u64,
    /// Messages dropped because they crossed an active partition cut.
    pub partition_cut: u64,
    /// Messages whose delivery tick fell past the phase deadline (the
    /// `window` argument of [`Transport::begin_phase`]).
    pub late: u64,
    /// Sum of per-message delivery latency (`deliver_tick − sent_tick`)
    /// over all delivered messages — the observation the adaptive phase
    /// window feeds on.
    pub lat_ticks: u64,
}

impl NetStats {
    /// Fraction of sent messages that were (or will be) delivered.
    /// `1.0` when nothing has been sent — a zero-message phase must
    /// never turn into `NaN` downstream.
    pub fn delivery_fraction(&self) -> f64 {
        if self.sent == 0 {
            return 1.0;
        }
        (self.sent - self.dropped - self.partition_cut - self.late) as f64 / self.sent as f64
    }

    /// Mean delivery latency in ticks over delivered messages. `0.0`
    /// when nothing has been delivered (same no-`NaN` guard as
    /// [`NetStats::delivery_fraction`]).
    pub fn mean_latency_ticks(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.lat_ticks as f64 / self.delivered as f64
    }
}

/// An injectable message-passing network.
///
/// The actor runtime drives one `Transport` per scenario: each protocol
/// phase calls [`begin_phase`](Transport::begin_phase), enqueues its
/// sends, then pumps [`recv`](Transport::recv) to quiescence,
/// dispatching each delivery to the destination actor (which may send
/// follow-up messages at its delivery tick).
pub trait Transport<M> {
    /// Start a new `(epoch, phase)` tick space with the given tick
    /// deadline. Ticks restart at zero; undelivered messages from the
    /// previous phase are discarded (a phase is a synchronization
    /// barrier, mirroring the paper's round structure). Messages whose
    /// delivery tick lands past `window` are late — never delivered,
    /// counted in [`NetStats::late`]. Pass [`NO_DEADLINE`] for an
    /// unbounded phase.
    fn begin_phase(&mut self, epoch: u64, phase: u64, window: u64);
    /// Enqueue a message sent at `sent_tick` of the current phase.
    fn send(&mut self, src: NodeId, dst: NodeId, sent_tick: u64, msg: M);
    /// Deliver the next message in `(deliver_tick, send_seq)` order, or
    /// `None` when the network is quiescent.
    fn recv(&mut self) -> Option<Envelope<M>>;
    /// Lifetime delivery counters.
    fn stats(&self) -> NetStats;
}

/// Heap entry ordered by `(deliver_tick, seq)`, smallest first (stored
/// through `std::cmp::Reverse` in a max-heap). The payload does not
/// participate in the ordering, so `M` needs no `Ord`.
pub(crate) struct Queued<M> {
    pub(crate) deliver_tick: u64,
    pub(crate) seq: u64,
    pub(crate) env: Envelope<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_tick == other.deliver_tick && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_tick, self.seq).cmp(&(other.deliver_tick, other.seq))
    }
}

/// Deterministic in-memory transport with seeded fault injection.
///
/// See the [module docs](self) for the determinism contract. All fault
/// decisions derive from `seed` and the message coordinates; the
/// transport holds no RNG.
pub struct InMemoryTransport<M> {
    plan: FaultPlan,
    seed: u64,
    epoch: u64,
    phase: u64,
    window: u64,
    /// Per-phase send sequence number; the total-order tiebreak.
    seq: u64,
    queue: BinaryHeap<std::cmp::Reverse<Queued<M>>>,
    stats: NetStats,
}

/// Map a derived 64-bit hash onto `[0, 1)` with 53 bits of precision.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl<M> InMemoryTransport<M> {
    /// A transport with the given fault plan, all faults derived from
    /// `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        InMemoryTransport {
            plan,
            seed,
            epoch: 0,
            phase: 0,
            window: NO_DEADLINE,
            seq: 0,
            queue: BinaryHeap::new(),
            stats: NetStats::default(),
        }
    }

    /// A perfect (fault-free) transport; the seed is irrelevant but kept
    /// for uniform construction.
    pub fn perfect(seed: u64) -> Self {
        InMemoryTransport::new(FaultPlan::perfect(), seed)
    }

    /// The fault plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<M> Transport<M> for InMemoryTransport<M> {
    fn begin_phase(&mut self, epoch: u64, phase: u64, window: u64) {
        self.epoch = epoch;
        self.phase = phase;
        self.window = window;
        self.seq = 0;
        self.queue.clear();
    }

    fn send(&mut self, src: NodeId, dst: NodeId, sent_tick: u64, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        self.stats.sent += 1;
        match self.plan.fate(self.seed, self.epoch, self.phase, src, dst, seq, sent_tick) {
            Fate::Cut => self.stats.partition_cut += 1,
            Fate::Dropped => self.stats.dropped += 1,
            Fate::Deliver { deliver_tick } => {
                if deliver_tick > self.window {
                    self.stats.late += 1;
                    return;
                }
                self.queue.push(std::cmp::Reverse(Queued {
                    deliver_tick,
                    seq,
                    env: Envelope { src, dst, sent_tick, deliver_tick, msg },
                }));
            }
        }
    }

    fn recv(&mut self) -> Option<Envelope<M>> {
        let q = self.queue.pop()?.0;
        self.stats.delivered += 1;
        self.stats.lat_ticks += q.env.deliver_tick - q.env.sent_tick;
        Some(q.env)
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(t: &mut InMemoryTransport<u32>) -> Vec<Envelope<u32>> {
        let mut out = Vec::new();
        while let Some(env) = t.recv() {
            out.push(env);
        }
        out
    }

    #[test]
    fn perfect_transport_delivers_all_in_send_order() {
        let mut t = InMemoryTransport::perfect(42);
        t.begin_phase(3, 1, NO_DEADLINE);
        for i in 0..100u32 {
            // Monotone non-decreasing send ticks, as the runtime uses.
            t.send(i as u64 % 7, 0, i as u64 / 10, i);
        }
        let got: Vec<u32> = drain(&mut t).into_iter().map(|e| e.msg).collect();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
        let s = t.stats();
        assert_eq!((s.sent, s.delivered, s.dropped, s.partition_cut), (100, 100, 0, 0));
        assert_eq!((s.late, s.lat_ticks), (0, 0));
        assert_eq!(s.delivery_fraction(), 1.0);
        assert_eq!(s.mean_latency_ticks(), 0.0);
    }

    #[test]
    fn drops_are_deterministic_and_seed_sensitive() {
        let run = |seed: u64| {
            let mut t =
                InMemoryTransport::new(FaultPlan { drop_rate: 0.5, ..FaultPlan::perfect() }, seed);
            t.begin_phase(0, 0, NO_DEADLINE);
            for i in 0..200u32 {
                t.send(1, 2, i as u64, i);
            }
            drain(&mut t).into_iter().map(|e| e.msg).collect::<Vec<u32>>()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "identical seeds give identical schedules");
        assert!(!a.is_empty() && a.len() < 200, "rate 0.5 drops some but not all");
        let c = run(8);
        assert_ne!(a, c, "different seeds give different drop patterns");
    }

    #[test]
    fn drop_rate_one_drops_everything() {
        let mut t = InMemoryTransport::new(FaultPlan { drop_rate: 1.0, ..FaultPlan::perfect() }, 1);
        t.begin_phase(0, 0, NO_DEADLINE);
        for i in 0..50u32 {
            t.send(0, 1, 0, i);
        }
        assert!(drain(&mut t).is_empty());
        assert_eq!(t.stats().dropped, 50);
    }

    #[test]
    fn partition_cuts_cross_messages_only_during_window() {
        let plan = FaultPlan { partition_ticks: 10, ..FaultPlan::perfect() };
        let mut t = InMemoryTransport::<u32>::new(plan, 42);
        t.begin_phase(0, 0, NO_DEADLINE);
        // Find two nodes on opposite sides of the epoch-0 bisection.
        let side0 = plan.partition_side(42, 0, 0);
        let other = (1..64)
            .find(|&n| plan.partition_side(42, 0, n) != side0)
            .expect("both sides inhabited");
        // Same-side traffic always goes through.
        t.send(0, 0, 0, 1);
        // Cross-cut during the window: lost.
        t.send(0, other, 5, 2);
        // Cross-cut after the partition heals: delivered.
        t.send(0, other, 10, 3);
        let got: Vec<u32> = drain(&mut t).into_iter().map(|e| e.msg).collect();
        assert_eq!(got, vec![1, 3]);
        assert_eq!(t.stats().partition_cut, 1);
    }

    #[test]
    fn latency_reorders_but_keeps_total_order_deterministic() {
        let plan = FaultPlan { latency_max: 16, ..FaultPlan::perfect() };
        let run = || {
            let mut t = InMemoryTransport::new(plan, 99);
            t.begin_phase(2, 1, NO_DEADLINE);
            for i in 0..64u32 {
                t.send(i as u64 % 5, 0, 0, i);
            }
            drain(&mut t)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "schedule is a pure function of the seed");
        let order: Vec<u32> = a.iter().map(|e| e.msg).collect();
        assert_ne!(order, (0..64).collect::<Vec<u32>>(), "latency reorders");
        // Delivery ticks are non-decreasing and all messages arrive.
        assert!(a.windows(2).all(|w| w[0].deliver_tick <= w[1].deliver_tick));
        assert_eq!(a.len(), 64);
    }

    /// A finite phase deadline declares exactly the past-deadline
    /// messages late; tightening the deadline can only grow the late
    /// set, and the delivery fraction accounts for it.
    #[test]
    fn deadline_declares_past_window_messages_late() {
        let plan = FaultPlan { latency_max: 32, ..FaultPlan::perfect() };
        let late_at = |window: u64| {
            let mut t = InMemoryTransport::<u32>::new(plan, 11);
            t.begin_phase(4, 1, window);
            for i in 0..128u32 {
                t.send(i as u64 % 9, 0, 0, i);
            }
            let delivered = drain(&mut t);
            assert!(delivered.iter().all(|e| e.deliver_tick <= window));
            let s = t.stats();
            assert_eq!(s.delivered + s.late, s.sent, "every message is delivered or late");
            let expect = (s.sent - s.late) as f64 / s.sent as f64;
            assert_eq!(s.delivery_fraction(), expect);
            s.late
        };
        let generous = late_at(NO_DEADLINE);
        let tight = late_at(8);
        assert_eq!(generous, 0, "an unbounded phase has no late messages");
        assert!(tight > 0, "a tick-8 deadline under latency 32 loses messages");
    }

    /// The NaN/inf bugfix contract: a phase in which nothing was sent
    /// (or nothing delivered) reports finite, well-defined fractions.
    #[test]
    fn zero_message_phase_reports_finite_fractions() {
        let s = NetStats::default();
        assert_eq!(s.delivery_fraction(), 1.0);
        assert_eq!(s.mean_latency_ticks(), 0.0);
        assert!(s.delivery_fraction().is_finite());
        assert!(s.mean_latency_ticks().is_finite());
        // All-dropped phase: delivered == 0 but sent > 0.
        let s = NetStats { sent: 10, dropped: 10, ..NetStats::default() };
        assert_eq!(s.delivery_fraction(), 0.0);
        assert_eq!(s.mean_latency_ticks(), 0.0);
    }

    #[test]
    fn begin_phase_resets_tick_space_and_discards_stragglers() {
        let mut t = InMemoryTransport::perfect(0);
        t.begin_phase(0, 0, NO_DEADLINE);
        t.send(1, 2, 0, 10u32);
        t.begin_phase(0, 1, NO_DEADLINE);
        assert!(t.recv().is_none(), "phase barrier discards undelivered messages");
        t.send(1, 2, 0, 11);
        assert_eq!(t.recv().expect("delivered").msg, 11);
    }

    #[test]
    fn fault_decisions_are_coordinate_local() {
        // Dropping message k does not change the fate of message k+1:
        // decisions depend on (epoch, phase, src, dst, seq) only, not on
        // queue state. Send the same stream twice with one extra prefix
        // message the second time — suffix fates must coincide once seqs
        // align.
        let plan = FaultPlan { drop_rate: 0.4, ..FaultPlan::perfect() };
        let fate = |seq: u64| {
            let mut t = InMemoryTransport::<u32>::new(plan, 5);
            t.begin_phase(1, 0, NO_DEADLINE);
            for _ in 0..seq {
                t.send(3, 4, 0, 0);
            }
            let before = t.stats().dropped;
            t.send(3, 4, 0, 1);
            t.stats().dropped == before
        };
        for seq in 0..32 {
            assert_eq!(fate(seq), fate(seq), "fate of seq {seq} is stable");
        }
    }

    /// The extracted [`FaultPlan::fate`] is exactly what the transport
    /// applies: replaying the coordinates through the pure function
    /// predicts every counter.
    #[test]
    fn fate_function_predicts_transport_counters() {
        let plan = FaultPlan { drop_rate: 0.3, latency_max: 8, partition_ticks: 6 };
        let mut t = InMemoryTransport::<u32>::new(plan, 77);
        t.begin_phase(2, 1, NO_DEADLINE);
        let (mut cut, mut dropped) = (0u64, 0u64);
        for i in 0..256u64 {
            let (src, dst, tick) = (i % 11, (i * 7) % 13, i / 4);
            match plan.fate(77, 2, 1, src, dst, i, tick) {
                Fate::Cut => cut += 1,
                Fate::Dropped => dropped += 1,
                Fate::Deliver { .. } => {}
            }
            t.send(src, dst, tick, i as u32);
        }
        let s = t.stats();
        assert_eq!((s.partition_cut, s.dropped), (cut, dropped));
        assert_eq!(s.sent, 256);
    }

    #[test]
    fn transport_choice_round_trips() {
        for c in [TransportChoice::Mem, TransportChoice::Socket] {
            assert_eq!(TransportChoice::parse(c.label()), Some(c));
        }
        assert_eq!(TransportChoice::parse("tcp"), None);
        assert_eq!(TransportChoice::default(), TransportChoice::Mem);
    }
}
