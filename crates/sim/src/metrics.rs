//! Message and state accounting.
//!
//! The costs the paper quantifies (§I and Corollary 1) are all counts:
//!
//! * **group communication** — `Θ(|G|²)` messages per intra-group protocol,
//! * **secure routing** — `O(D·|G|²)` messages per search,
//! * **state maintenance** — group-membership and neighbor-link entries
//!   each ID must track.
//!
//! [`Metrics`] is a plain mergeable struct (no atomics: each simulation
//! component owns its instance and merges on join, which keeps parallel
//! sweeps deterministic and cheap, per the HPC guide's "share by merging"
//! idiom).

/// Mergeable counters for one simulation (or one component of one).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages exchanged inside groups (BA rounds, coin flips, …).
    pub group_msgs: u64,
    /// Messages exchanged between groups during secure routing
    /// (all-to-all per hop).
    pub routing_msgs: u64,
    /// Messages for protocol control (membership/neighbor requests,
    /// verification searches, string propagation).
    pub control_msgs: u64,
    /// Searches initiated.
    pub searches: u64,
    /// Searches that failed (search path hit a red group).
    pub failed_searches: u64,
    /// Total hops traversed by search paths (truncated at first red group).
    pub hops: u64,
    /// Group-membership state entries held by good IDs.
    pub membership_state: u64,
    /// Neighbor-link state entries held by good IDs.
    pub link_state: u64,
}

impl Metrics {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge another component's counters into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.group_msgs += other.group_msgs;
        self.routing_msgs += other.routing_msgs;
        self.control_msgs += other.control_msgs;
        self.searches += other.searches;
        self.failed_searches += other.failed_searches;
        self.hops += other.hops;
        self.membership_state += other.membership_state;
        self.link_state += other.link_state;
    }

    /// All messages, of any category.
    pub fn total_msgs(&self) -> u64 {
        self.group_msgs + self.routing_msgs + self.control_msgs
    }

    /// Fraction of initiated searches that failed (0 if none initiated).
    pub fn failure_rate(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.failed_searches as f64 / self.searches as f64
        }
    }

    /// Mean routing messages per search (0 if none initiated).
    pub fn routing_msgs_per_search(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.routing_msgs as f64 / self.searches as f64
        }
    }

    /// Mean hops per search (0 if none initiated).
    pub fn hops_per_search(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.hops as f64 / self.searches as f64
        }
    }
}

/// A per-ID cost report: the quantities of Corollary 1 normalized per
/// participant, produced by the cost experiments (E3/E5).
#[derive(Clone, Copy, Debug, Default)]
pub struct CostReport {
    /// Messages for one group-communication round, per group.
    pub group_comm_msgs: f64,
    /// Messages per secure search.
    pub routing_msgs_per_search: f64,
    /// Hops per search.
    pub hops_per_search: f64,
    /// Membership-state entries per good ID.
    pub membership_state_per_id: f64,
    /// Link-state entries per good ID.
    pub link_state_per_id: f64,
}

impl CostReport {
    /// Total state entries per good ID.
    pub fn state_per_id(&self) -> f64 {
        self.membership_state_per_id + self.link_state_per_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Metrics { group_msgs: 1, routing_msgs: 2, searches: 3, ..Default::default() };
        let b = Metrics { group_msgs: 10, failed_searches: 2, searches: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.group_msgs, 11);
        assert_eq!(a.routing_msgs, 2);
        assert_eq!(a.searches, 7);
        assert_eq!(a.failed_searches, 2);
    }

    #[test]
    fn rates() {
        let m = Metrics {
            searches: 8,
            failed_searches: 2,
            routing_msgs: 80,
            hops: 24,
            ..Default::default()
        };
        assert!((m.failure_rate() - 0.25).abs() < 1e-12);
        assert!((m.routing_msgs_per_search() - 10.0).abs() < 1e-12);
        assert!((m.hops_per_search() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let m = Metrics::new();
        assert_eq!(m.failure_rate(), 0.0);
        assert_eq!(m.routing_msgs_per_search(), 0.0);
        assert_eq!(m.hops_per_search(), 0.0);
        assert_eq!(m.total_msgs(), 0);
    }
}
