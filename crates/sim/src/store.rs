//! Content-addressed, append-only result store with hash-chained
//! records and atomic publish.
//!
//! Sweeps address their per-cell observation streams by a stable text
//! **key** (in practice a [`tg_core` scenario] label plus the epoch
//! count — anything that uniquely determines the bytes that will be
//! stored). Each key maps to one stream file under the store
//! directory, named by the SHA-256 of the key, holding one **record**
//! per line. Records are hash-chained in the style of an epoch log:
//! record *i* commits to the hash of record *i−1* (and record 0 to the
//! header, which commits to the key), and a final seal line commits to
//! the record count and the last hash. A reader re-derives the whole
//! chain, so a flipped byte, a dropped record, or a truncated tail is
//! detected — not silently replayed as valid-but-short data.
//!
//! Stream file layout (text, one record per line):
//!
//! ```text
//! tgstore1;<key>                 header: format version + key
//! r;0;<hash0>;<payload0>         hash0 = H(H(header) ";" 0 ";" payload0)
//! r;1;<hash1>;<payload1>         hash1 = H(hash0 ";" 1 ";" payload1)
//! ...
//! s;<count>;<last-hash>          seal: record count + final chain hash
//! ```
//!
//! Writes are **atomic**: a stream is always written in full to a
//! unique temp file in the same directory, fsynced, then renamed over
//! the destination ([`write_atomic`]). `append` is read-verify-extend-
//! republish, so the chain stays valid under crash at any point — a
//! reader sees either the old sealed stream or the new one, never a
//! torn middle.
//!
//! [`tg_core` scenario]: https://docs.rs/tg-core

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tg_crypto::Sha256;

/// Format version tag, first field of every stream header.
pub const STORE_VERSION: &str = "tgstore1";

/// Extension of stream files inside the store directory.
const STREAM_EXT: &str = "tgs";

/// Name of the derived, human-readable index file.
pub const INDEX_FILE: &str = "index.tsv";

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error while touching the stream for `key`.
    Io {
        /// The stream key involved.
        key: String,
        /// The operation that failed ("read", "publish", …).
        op: &'static str,
        /// The originating I/O error.
        source: io::Error,
    },
    /// The stream bytes for `key` fail chain verification.
    Corrupt {
        /// The stream key (cell label) whose stream is damaged.
        key: String,
        /// Index of the first record that fails verification (the
        /// record count for a damaged or missing seal).
        record: usize,
        /// What exactly went wrong.
        detail: String,
    },
    /// A record handed to `put`/`append` cannot be stored faithfully.
    BadPayload {
        /// The stream key involved.
        key: String,
        /// What is wrong with the payload.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { key, op, source } => {
                write!(f, "store {op} failed for key `{key}`: {source}")
            }
            StoreError::Corrupt { key, record, detail } => {
                write!(f, "store stream for key `{key}` is corrupt at record {record}: {detail}")
            }
            StoreError::BadPayload { key, detail } => {
                write!(f, "record rejected for key `{key}`: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A content-addressed result store rooted at one directory.
///
/// Cloning is cheap and clones address the same directory, so a store
/// handle can be captured by parallel sweep closures.
#[derive(Clone, Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<ResultStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stream file path for `key` (content address: SHA-256 of the
    /// key, truncated to 128 bits of hex — collision-safe for any
    /// realistic sweep census and short enough for every filesystem).
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{}.{STREAM_EXT}", stream_stem(key)))
    }

    /// Fetch the record payloads stored under `key`, verifying the
    /// whole hash chain. `Ok(None)` means the key has no stream yet;
    /// any existing-but-damaged stream is an error, never silently
    /// treated as absent.
    pub fn get(&self, key: &str) -> Result<Option<Vec<String>>, StoreError> {
        let path = self.path_for(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io { key: key.to_string(), op: "read", source: e }),
        };
        let text = String::from_utf8(bytes).map_err(|e| StoreError::Corrupt {
            key: key.to_string(),
            record: 0,
            detail: format!("stream is not UTF-8: {e}"),
        })?;
        decode_stream(key, &text).map(Some)
    }

    /// Publish `records` as the complete stream for `key`, atomically
    /// replacing any previous stream.
    pub fn put(&self, key: &str, records: &[String]) -> Result<(), StoreError> {
        let text = encode_stream(key, records)?;
        write_atomic(&self.path_for(key), text.as_bytes()).map_err(|e| StoreError::Io {
            key: key.to_string(),
            op: "publish",
            source: e,
        })
    }

    /// Extend the stream for `key` with `records`, verifying the
    /// existing chain first and republishing atomically. Equivalent to
    /// `put` when the key has no stream yet.
    pub fn append(&self, key: &str, records: &[String]) -> Result<(), StoreError> {
        let mut all = self.get(key)?.unwrap_or_default();
        all.extend(records.iter().cloned());
        self.put(key, &all)
    }

    /// All keys currently stored, sorted.
    pub fn keys(&self) -> io::Result<Vec<String>> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(STREAM_EXT) {
                continue;
            }
            let text = fs::read_to_string(&path)?;
            if let Some(header) = text.lines().next() {
                if let Some(key) = header.strip_prefix(&format!("{STORE_VERSION};")) {
                    keys.push(key.to_string());
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    /// Rebuild the human-readable `index.tsv` (one `stem<TAB>records
    /// <TAB>key` line per verified stream, sorted by key) and return
    /// its path. The index is derived data — it is regenerated rather
    /// than incrementally maintained, so concurrent writers never race
    /// on it.
    pub fn write_index(&self) -> io::Result<PathBuf> {
        let mut rows = Vec::new();
        for key in self.keys()? {
            let records = match self.get(&key) {
                Ok(Some(r)) => r.len().to_string(),
                Ok(None) => "0".to_string(),
                Err(e) => format!("CORRUPT ({e})"),
            };
            rows.push(format!("{}\t{}\t{}\n", stream_stem(&key), records, key));
        }
        let path = self.dir.join(INDEX_FILE);
        write_atomic(&path, rows.concat().as_bytes())?;
        Ok(path)
    }
}

/// 128-bit hex content address of a key.
fn stream_stem(key: &str) -> String {
    hex(&tg_crypto::sha256(key.as_bytes())[..16])
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Chain step: the hash committing to record `seq` with `payload`,
/// given the previous link's hash (the header hash for record 0).
fn chain_hash(prev: &str, seq: usize, payload: &str) -> String {
    let mut h = Sha256::new();
    h.update(prev.as_bytes());
    h.update(b";");
    h.update(seq.to_string().as_bytes());
    h.update(b";");
    h.update(payload.as_bytes());
    hex(&h.finalize())
}

/// Render the full sealed stream text for `key` + `records`.
fn encode_stream(key: &str, records: &[String]) -> Result<String, StoreError> {
    if key.contains('\n') || key.contains('\r') {
        return Err(StoreError::BadPayload {
            key: key.to_string(),
            detail: "key must be a single line".to_string(),
        });
    }
    let header = format!("{STORE_VERSION};{key}");
    let mut prev = hex(&tg_crypto::sha256(header.as_bytes()));
    let mut out = String::new();
    out.push_str(&header);
    out.push('\n');
    for (seq, payload) in records.iter().enumerate() {
        if payload.contains('\n') || payload.contains('\r') {
            return Err(StoreError::BadPayload {
                key: key.to_string(),
                detail: format!("record {seq} contains a line break"),
            });
        }
        prev = chain_hash(&prev, seq, payload);
        out.push_str(&format!("r;{seq};{prev};{payload}\n"));
    }
    out.push_str(&format!("s;{};{prev}\n", records.len()));
    Ok(out)
}

/// Verify and decode a sealed stream, returning the record payloads.
fn decode_stream(key: &str, text: &str) -> Result<Vec<String>, StoreError> {
    let corrupt = |record: usize, detail: String| StoreError::Corrupt {
        key: key.to_string(),
        record,
        detail,
    };
    let mut lines = text.lines();
    let header =
        lines.next().ok_or_else(|| corrupt(0, "empty stream (missing header)".to_string()))?;
    let stored_key = header.strip_prefix(&format!("{STORE_VERSION};")).ok_or_else(|| {
        corrupt(0, format!("bad header `{header}` (want `{STORE_VERSION};<key>`)"))
    })?;
    if stored_key != key {
        return Err(corrupt(
            0,
            format!("stream belongs to key `{stored_key}` (content-address collision?)"),
        ));
    }
    let mut prev = hex(&tg_crypto::sha256(header.as_bytes()));
    let mut records = Vec::new();
    let mut sealed = false;
    for line in lines {
        if sealed {
            return Err(corrupt(records.len(), "data after the seal line".to_string()));
        }
        if let Some(rest) = line.strip_prefix("r;") {
            let seq = records.len();
            let (seq_s, rest) = rest
                .split_once(';')
                .ok_or_else(|| corrupt(seq, format!("malformed record line `{line}`")))?;
            let (hash, payload) = rest
                .split_once(';')
                .ok_or_else(|| corrupt(seq, format!("malformed record line `{line}`")))?;
            if seq_s != seq.to_string() {
                return Err(corrupt(
                    seq,
                    format!("record sequence gap: found {seq_s}, expected {seq}"),
                ));
            }
            let want = chain_hash(&prev, seq, payload);
            if hash != want {
                return Err(corrupt(
                    seq,
                    format!("chain hash mismatch (stored {hash}, derived {want})"),
                ));
            }
            prev = want;
            records.push(payload.to_string());
        } else if let Some(rest) = line.strip_prefix("s;") {
            let (count_s, hash) = rest
                .split_once(';')
                .ok_or_else(|| corrupt(records.len(), format!("malformed seal line `{line}`")))?;
            if count_s != records.len().to_string() {
                return Err(corrupt(
                    records.len(),
                    format!("seal count {count_s} != {} records present", records.len()),
                ));
            }
            if hash != prev {
                return Err(corrupt(
                    records.len(),
                    format!("seal hash mismatch (stored {hash}, derived {prev})"),
                ));
            }
            sealed = true;
        } else {
            return Err(corrupt(records.len(), format!("unrecognized line `{line}`")));
        }
    }
    if !sealed {
        return Err(corrupt(records.len(), "stream is truncated (missing seal)".to_string()));
    }
    Ok(records)
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` atomically: the bytes land in a unique temp
/// file in the same directory, are fsynced, and are renamed over the
/// destination, so readers see either the old file or the new one —
/// never a torn, half-written middle. Shared by the store and every
/// CSV/JSON artifact writer in the workspace.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let stem = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("bad target path {path:?}"))
    })?;
    let tmp = dir.join(format!(
        ".{stem}.tmp.{}.{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!(
            "tg-store-unit-{tag}-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::open(&dir).expect("open temp store")
    }

    fn recs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn put_get_round_trip() {
        let store = temp_store("roundtrip");
        let key = "tg1;n=10;demo=1;epochs=3";
        assert_eq!(store.get(key).unwrap(), None);
        let records = recs(&["o1,0,1,2", "o1,1,3,4", ""]);
        store.put(key, &records).unwrap();
        assert_eq!(store.get(key).unwrap(), Some(records));
    }

    #[test]
    fn append_extends_a_sealed_stream() {
        let store = temp_store("append");
        store.append("k", &recs(&["a"])).unwrap();
        store.append("k", &recs(&["b", "c"])).unwrap();
        assert_eq!(store.get("k").unwrap(), Some(recs(&["a", "b", "c"])));
    }

    #[test]
    fn empty_stream_is_valid() {
        let store = temp_store("empty");
        store.put("k", &[]).unwrap();
        assert_eq!(store.get("k").unwrap(), Some(vec![]));
    }

    #[test]
    fn put_replaces_previous_stream() {
        let store = temp_store("replace");
        store.put("k", &recs(&["old"])).unwrap();
        store.put("k", &recs(&["new"])).unwrap();
        assert_eq!(store.get("k").unwrap(), Some(recs(&["new"])));
    }

    #[test]
    fn rejects_multiline_payloads() {
        let store = temp_store("multiline");
        let err = store.put("k", &recs(&["a\nb"])).unwrap_err();
        assert!(matches!(err, StoreError::BadPayload { .. }), "{err}");
    }

    #[test]
    fn distinct_keys_get_distinct_streams() {
        let store = temp_store("distinct");
        store.put("k1", &recs(&["one"])).unwrap();
        store.put("k2", &recs(&["two"])).unwrap();
        assert_eq!(store.get("k1").unwrap(), Some(recs(&["one"])));
        assert_eq!(store.get("k2").unwrap(), Some(recs(&["two"])));
        assert_eq!(store.keys().unwrap(), vec!["k1".to_string(), "k2".to_string()]);
    }

    #[test]
    fn index_lists_every_stream() {
        let store = temp_store("index");
        store.put("beta", &recs(&["1", "2"])).unwrap();
        store.put("alpha", &recs(&["1"])).unwrap();
        let path = store.write_index().unwrap();
        let index = fs::read_to_string(path).unwrap();
        let lines: Vec<&str> = index.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("\t1\talpha"), "{index}");
        assert!(lines[1].ends_with("\t2\tbeta"), "{index}");
    }

    #[test]
    fn write_atomic_replaces_contents() {
        let store = temp_store("atomic");
        let path = store.dir().join("x.csv");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No temp droppings left behind.
        let stray = fs::read_dir(store.dir())
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(stray, 0);
    }
}
