//! [`SocketTransport`] — the [`Transport`] contract
//! served over real localhost TCP sockets.
//!
//! ## Wire format
//!
//! Every message travels as one length-prefixed frame:
//!
//! ```text
//! [len: u32 LE] [header: 7 × u64 LE = 56 bytes] [payload: len − 56 bytes]
//!               epoch phase src dst sent_tick deliver_tick seq
//! ```
//!
//! The payload is the typed protocol message serialized through the
//! [`Wire`] trait. The header carries the full envelope plus the
//! `(epoch, phase)` the frame belongs to, so a receiver can discard
//! stragglers from an already-closed phase without any handshake: TCP
//! preserves per-lane order, so stale frames always precede fresh ones.
//!
//! ## Fault semantics — graceful degradation
//!
//! The socket transport applies exactly the same hash-derived
//! [`FaultPlan::fate`](super::FaultPlan::fate) as the in-memory
//! transport, *before* a frame touches the wire: cut and dropped
//! messages are counted and never sent, and the delivery tick is
//! stamped into the header at send time. The wire therefore carries
//! only deliverable frames, and both transports lose the identical
//! message set by construction.
//!
//! Real wire faults degrade into the same counters instead of erroring:
//! a write that still fails after [`RetryPolicy::max_retries`] attempts
//! with capped exponential backoff, an undecodable or oversized frame,
//! and a receive that exceeds [`RetryPolicy::io_timeout`] all count the
//! affected messages as `dropped` in [`NetStats`] —
//! a lost frame surfaces exactly like an injected fault, which is what
//! keeps the observation layer transport-agnostic.
//!
//! ## Ordering
//!
//! [`recv`](super::Transport::recv) first pumps the sockets until every
//! outstanding frame has arrived (or timed out), then pops the same
//! `(deliver_tick, seq)` heap the in-memory transport uses. Delivery
//! order over a healthy loopback is therefore byte-identical to
//! [`InMemoryTransport`](super::InMemoryTransport) — the property the
//! golden-replay suites pin.

use super::{Envelope, Fate, FaultPlan, NetStats, NodeId, Queued, Transport, NO_DEADLINE};
use std::collections::BinaryHeap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Serialization contract for messages carried by [`SocketTransport`].
///
/// Implementations must round-trip: `decode(encode(m)) == Some(m)`.
/// `decode` returns `None` on malformed bytes — the transport counts
/// such frames as dropped rather than failing.
pub trait Wire: Sized {
    /// Append this message's byte representation to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Parse a message from exactly `bytes`, or `None` if malformed.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

/// Connect/send retry contract for [`SocketTransport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts beyond the first for connects and frame writes.
    pub max_retries: u32,
    /// First backoff between attempts; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling for the exponential schedule.
    pub backoff_cap: Duration,
    /// Socket write timeout, and the receive-pump deadline after which
    /// still-missing frames are declared lost.
    pub io_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(64),
            io_timeout: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry attempt `attempt` (0-based): base × 2^attempt,
    /// capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.backoff_base.saturating_mul(1u32 << attempt.min(16));
        exp.min(self.backoff_cap)
    }
}

/// Plain scalar payloads round-trip as fixed-width LE bytes — handy
/// for harness tests that push opaque tokens through the wire.
impl Wire for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

/// Frame header length: epoch, phase, src, dst, sent_tick,
/// deliver_tick, seq — seven `u64`s.
const HEADER_LEN: usize = 56;

/// Ceiling on a single frame (header + payload). Anything larger on
/// the wire is treated as corruption.
const MAX_FRAME: usize = 1 << 20;

/// Number of TCP connections fanned out; frames for node `dst` travel
/// lane `dst % LANES`. Per-lane TCP ordering plus the receive-side
/// heap reconstruct the global `(deliver_tick, seq)` order.
const LANES: usize = 4;

struct ReadLane {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// TCP (localhost) implementation of [`Transport`].
///
/// The transport is self-connected: it binds an ephemeral loopback
/// listener, dials it over a small fixed number of lane connections
/// (`LANES`) with
/// retry/backoff, and accepts the peers — real sockets, real framing,
/// real backpressure, no external process required. See the [module
/// docs](self) for wire format and fault semantics.
pub struct SocketTransport<M: Wire> {
    plan: FaultPlan,
    seed: u64,
    policy: RetryPolicy,
    epoch: u64,
    phase: u64,
    window: u64,
    seq: u64,
    writers: Vec<TcpStream>,
    readers: Vec<ReadLane>,
    /// Frames written to the wire but not yet parsed back out.
    outstanding: u64,
    queue: BinaryHeap<std::cmp::Reverse<Queued<M>>>,
    stats: NetStats,
}

impl<M: Wire> SocketTransport<M> {
    /// Bind a loopback listener and establish the lane connections,
    /// retrying refused connects per the default [`RetryPolicy`].
    pub fn connect(plan: FaultPlan, seed: u64) -> std::io::Result<Self> {
        Self::connect_with(plan, seed, RetryPolicy::default())
    }

    /// [`SocketTransport::connect`] with an explicit retry policy.
    pub fn connect_with(plan: FaultPlan, seed: u64, policy: RetryPolicy) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let mut writers = Vec::with_capacity(LANES);
        let mut readers = Vec::with_capacity(LANES);
        for _ in 0..LANES {
            let w = connect_with_retry(addr, &policy)?;
            w.set_nodelay(true)?;
            w.set_write_timeout(Some(policy.io_timeout))?;
            writers.push(w);
            let (r, _) = listener.accept()?;
            r.set_nonblocking(true)?;
            readers.push(ReadLane { stream: r, buf: Vec::new() });
        }
        Ok(SocketTransport {
            plan,
            seed,
            policy,
            epoch: 0,
            phase: 0,
            window: NO_DEADLINE,
            seq: 0,
            writers,
            readers,
            outstanding: 0,
            queue: BinaryHeap::new(),
            stats: NetStats::default(),
        })
    }

    /// The fault plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Read every byte currently available on every lane and parse
    /// complete frames into the delivery heap. Non-blocking; also the
    /// backpressure valve — called after each write so the kernel
    /// buffers can never fill while the sender holds unread inbound
    /// data.
    fn drain_ready(&mut self) {
        for lane in 0..self.readers.len() {
            let mut tmp = [0u8; 4096];
            loop {
                match self.readers[lane].stream.read(&mut tmp) {
                    Ok(0) => break,
                    Ok(n) => self.readers[lane].buf.extend_from_slice(&tmp[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
            self.parse_lane(lane);
        }
    }

    /// Parse complete frames out of one lane's buffer.
    fn parse_lane(&mut self, lane: usize) {
        loop {
            let buf = &self.readers[lane].buf;
            if buf.len() < 4 {
                return;
            }
            let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if !(HEADER_LEN..=MAX_FRAME).contains(&len) {
                // Corrupt framing: the stream can no longer be trusted.
                // Degrade every in-flight frame to dropped and abandon
                // the buffered bytes.
                self.stats.dropped += self.outstanding;
                self.outstanding = 0;
                self.readers[lane].buf.clear();
                return;
            }
            if buf.len() < 4 + len {
                return;
            }
            let frame: Vec<u8> = self.readers[lane].buf.drain(..4 + len).skip(4).collect();
            self.accept_frame(&frame);
        }
    }

    /// Decode one complete frame (header + payload) into the heap.
    fn accept_frame(&mut self, frame: &[u8]) {
        let word = |i: usize| {
            u64::from_le_bytes(frame[i * 8..i * 8 + 8].try_into().expect("HEADER_LEN checked"))
        };
        let (epoch, phase) = (word(0), word(1));
        if epoch != self.epoch || phase != self.phase {
            // Straggler from a closed phase: the phase barrier already
            // discarded it, silently, exactly like the in-memory queue
            // clear. It does not touch the current phase's accounting.
            return;
        }
        self.outstanding = self.outstanding.saturating_sub(1);
        let (src, dst) = (word(2), word(3));
        let (sent_tick, deliver_tick, seq) = (word(4), word(5), word(6));
        match M::decode(&frame[HEADER_LEN..]) {
            Some(msg) => self.queue.push(std::cmp::Reverse(Queued {
                deliver_tick,
                seq,
                env: Envelope { src, dst, sent_tick, deliver_tick, msg },
            })),
            None => self.stats.dropped += 1,
        }
    }

    /// Block until every outstanding frame has been parsed or the
    /// [`RetryPolicy::io_timeout`] expires; expired frames degrade to
    /// dropped.
    fn pump(&mut self) {
        if self.outstanding == 0 {
            return;
        }
        let start = Instant::now();
        let mut spins = 0u32;
        loop {
            self.drain_ready();
            if self.outstanding == 0 {
                return;
            }
            if start.elapsed() > self.policy.io_timeout {
                self.stats.dropped += self.outstanding;
                self.outstanding = 0;
                return;
            }
            if spins < 256 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }

    /// Write one frame with retry/backoff, draining inbound data
    /// between attempts so backpressure cannot deadlock the
    /// self-connected pair. Returns whether the frame made it out.
    fn write_frame(&mut self, lane: usize, frame: &[u8]) -> bool {
        for attempt in 0..=self.policy.max_retries {
            match self.writers[lane].write_all(frame) {
                Ok(()) => {
                    let _ = self.writers[lane].flush();
                    return true;
                }
                Err(_) if attempt < self.policy.max_retries => {
                    self.drain_ready();
                    std::thread::sleep(self.policy.backoff(attempt));
                }
                Err(_) => return false,
            }
        }
        false
    }
}

/// Dial `addr` with capped exponential backoff per `policy`.
fn connect_with_retry(addr: SocketAddr, policy: &RetryPolicy) -> std::io::Result<TcpStream> {
    let mut attempt = 0;
    loop {
        match TcpStream::connect_timeout(&addr, policy.io_timeout) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if attempt >= policy.max_retries {
                    return Err(e);
                }
                std::thread::sleep(policy.backoff(attempt));
                attempt += 1;
            }
        }
    }
}

impl<M: Wire> Transport<M> for SocketTransport<M> {
    fn begin_phase(&mut self, epoch: u64, phase: u64, window: u64) {
        // Stragglers still on the wire carry their old (epoch, phase)
        // header and will be discarded at parse time; they are no
        // longer outstanding for anyone.
        self.epoch = epoch;
        self.phase = phase;
        self.window = window;
        self.seq = 0;
        self.outstanding = 0;
        self.queue.clear();
    }

    fn send(&mut self, src: NodeId, dst: NodeId, sent_tick: u64, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        self.stats.sent += 1;
        let deliver_tick =
            match self.plan.fate(self.seed, self.epoch, self.phase, src, dst, seq, sent_tick) {
                Fate::Cut => {
                    self.stats.partition_cut += 1;
                    return;
                }
                Fate::Dropped => {
                    self.stats.dropped += 1;
                    return;
                }
                Fate::Deliver { deliver_tick } => deliver_tick,
            };
        if deliver_tick > self.window {
            self.stats.late += 1;
            return;
        }
        let mut frame = Vec::with_capacity(4 + HEADER_LEN + 16);
        frame.extend_from_slice(&[0u8; 4]); // length backpatched below
        for w in [self.epoch, self.phase, src, dst, sent_tick, deliver_tick, seq] {
            frame.extend_from_slice(&w.to_le_bytes());
        }
        msg.encode(&mut frame);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        if frame.len() - 4 > MAX_FRAME {
            // Unencodable payload degrades to a drop, like any other
            // wire fault.
            self.stats.dropped += 1;
            return;
        }
        let lane = (dst as usize) % self.writers.len();
        if self.write_frame(lane, &frame) {
            self.outstanding += 1;
            self.drain_ready();
        } else {
            self.stats.dropped += 1;
        }
    }

    fn recv(&mut self) -> Option<Envelope<M>> {
        // Quiescence barrier: every outstanding frame must land before
        // the next pop, so the heap's (deliver_tick, seq) order is
        // total — identical to the in-memory transport's.
        self.pump();
        let q = self.queue.pop()?.0;
        self.stats.delivered += 1;
        self.stats.lat_ticks += q.env.deliver_tick - q.env.sent_tick;
        Some(q.env)
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::super::InMemoryTransport;
    use super::*;

    fn drain<T: Transport<u32>>(t: &mut T) -> Vec<Envelope<u32>> {
        let mut out = Vec::new();
        while let Some(env) = t.recv() {
            out.push(env);
        }
        out
    }

    #[test]
    fn loopback_delivers_in_send_order_when_perfect() {
        let mut t = SocketTransport::<u32>::connect(FaultPlan::perfect(), 42).expect("loopback");
        t.begin_phase(3, 1, NO_DEADLINE);
        for i in 0..100u32 {
            t.send(i as u64 % 7, 0, i as u64 / 10, i);
        }
        let got: Vec<u32> = drain(&mut t).into_iter().map(|e| e.msg).collect();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
        let s = t.stats();
        assert_eq!((s.sent, s.delivered, s.dropped, s.late), (100, 100, 0, 0));
    }

    /// The core equivalence: over any fault plan, the socket transport
    /// delivers the exact same envelope sequence as the in-memory
    /// transport with the same plan and seed.
    #[test]
    fn socket_matches_memory_under_faults() {
        let plans = [
            FaultPlan::perfect(),
            FaultPlan { drop_rate: 0.4, ..FaultPlan::perfect() },
            FaultPlan { drop_rate: 0.2, latency_max: 12, partition_ticks: 8 },
        ];
        for plan in plans {
            let mut mem = InMemoryTransport::<u32>::new(plan, 7);
            let mut sock = SocketTransport::<u32>::connect(plan, 7).expect("loopback");
            for phase in 0..3u64 {
                mem.begin_phase(1, phase, 40);
                sock.begin_phase(1, phase, 40);
                for i in 0..64u32 {
                    mem.send(i as u64 % 9, (i as u64 * 3) % 11, i as u64 / 8, i);
                    sock.send(i as u64 % 9, (i as u64 * 3) % 11, i as u64 / 8, i);
                }
                assert_eq!(drain(&mut mem), drain(&mut sock), "plan {plan:?} phase {phase}");
            }
            assert_eq!(mem.stats(), sock.stats(), "stats agree for {plan:?}");
        }
    }

    #[test]
    fn stale_phase_frames_are_discarded() {
        let mut t = SocketTransport::<u32>::connect(FaultPlan::perfect(), 0).expect("loopback");
        t.begin_phase(0, 0, NO_DEADLINE);
        t.send(1, 2, 0, 10);
        // Abandon the phase while the frame is still on the wire.
        t.begin_phase(0, 1, NO_DEADLINE);
        t.send(1, 2, 0, 11);
        let got: Vec<u32> = drain(&mut t).into_iter().map(|e| e.msg).collect();
        assert_eq!(got, vec![11], "the straggler from phase 0 never surfaces");
    }

    #[test]
    fn backoff_schedule_is_capped_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), Duration::from_millis(1));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(20), p.backoff_cap, "schedule saturates at the cap");
    }

    /// Backpressure: far more traffic than one kernel socket buffer
    /// holds must not deadlock the self-connected pair, and nothing may
    /// be lost on a healthy loopback.
    #[test]
    fn heavy_traffic_does_not_deadlock_or_lose_frames() {
        let mut t = SocketTransport::<u32>::connect(FaultPlan::perfect(), 9).expect("loopback");
        t.begin_phase(0, 0, NO_DEADLINE);
        let n = 20_000u32;
        for i in 0..n {
            t.send(i as u64 % 64, (i as u64 * 5) % 64, 0, i);
        }
        assert_eq!(drain(&mut t).len(), n as usize);
        let s = t.stats();
        assert_eq!((s.sent, s.delivered, s.dropped), (n as u64, n as u64, 0));
    }
}
