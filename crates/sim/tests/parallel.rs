//! Regression tests for the ordering contract of [`tg_sim::parallel_map`]
//! — the property every deterministic sweep in the workspace (and E11's
//! frontier rows in particular) stands on: **results come back in input
//! order**, no matter how unevenly the work is distributed or how many
//! worker threads the machine offers.

use std::sync::atomic::{AtomicUsize, Ordering};
use tg_sim::parallel_map;

/// Strongly non-uniform per-item workloads: late items finish long
/// before early ones, so any implementation that collected results in
/// *completion* order would interleave. Results must still match input
/// order exactly.
#[test]
fn order_preserved_under_non_uniform_workloads() {
    // Item 0 busy-works the longest; the tail is nearly free.
    let items: Vec<u64> = (0..64).map(|i| (64 - i) * 2_000).collect();
    let expect: Vec<u64> = items.iter().map(|&k| (0..k).fold(0u64, |a, x| a ^ x)).collect();
    let out = parallel_map(items, |k| (0..k).fold(0u64, |a, x| a ^ x));
    assert_eq!(out, expect);
}

/// Same, with explicit sleeps so completion order is reliably inverted
/// from input order even on a single-core machine's scheduler.
#[test]
fn order_preserved_when_completion_order_inverts() {
    let items: Vec<u64> = vec![30, 20, 10, 5, 1];
    let out = parallel_map(items, |ms| {
        std::thread::sleep(std::time::Duration::from_millis(ms));
        ms
    });
    assert_eq!(out, vec![30, 20, 10, 5, 1]);
}

#[test]
fn empty_input_yields_empty_output() {
    let out: Vec<u8> = parallel_map(Vec::<u8>::new(), |x| x);
    assert!(out.is_empty());
}

#[test]
fn single_item_runs_inline() {
    assert_eq!(parallel_map(vec![7usize], |x| x * 6), vec![42]);
}

/// Fewer items than worker threads: every item still computed exactly
/// once, in order (the cursor must not hand one item to two workers or
/// leave a worker spinning past the end).
#[test]
fn fewer_items_than_threads() {
    let calls = AtomicUsize::new(0);
    let out = parallel_map(vec![1usize, 2, 3], |x| {
        calls.fetch_add(1, Ordering::Relaxed);
        x * 10
    });
    assert_eq!(out, vec![10, 20, 30]);
    assert_eq!(calls.load(Ordering::Relaxed), 3, "each item computed exactly once");
}

/// Items that are not `Clone`/`Copy` move through by value, once each.
#[test]
fn moves_items_by_value() {
    struct NotClone(String);
    let items = vec![NotClone("a".into()), NotClone("b".into()), NotClone("c".into())];
    let out = parallel_map(items, |NotClone(s)| s + "!");
    assert_eq!(out, vec!["a!", "b!", "c!"]);
}

/// Nested use (a parallel row whose cells also call `parallel_map`)
/// keeps both levels' ordering — the pattern E11 would hit if a cell
/// ever fanned its trials out too.
#[test]
fn nested_parallel_maps_preserve_order() {
    let out = parallel_map((0..6u64).collect(), |row| {
        parallel_map((0..4u64).collect(), move |col| row * 10 + col)
    });
    let expect: Vec<Vec<u64>> =
        (0..6).map(|row| (0..4).map(|col| row * 10 + col).collect()).collect();
    assert_eq!(out, expect);
}
