//! Corruption suite for the hash-chained result store: every class of
//! on-disk damage — a flipped byte, a truncated record, a dropped
//! seal, a re-addressed stream — must be rejected on read with an
//! error naming the cell key and the failing record index, never
//! replayed as valid-but-short data.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use tg_sim::store::{ResultStore, StoreError};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

const KEY: &str = "tg1;n=380;d2=4;beta=0.12;churn=0.1;strategy=gap-filling;epochs=2";

fn temp_store(tag: &str) -> (ResultStore, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "tg-store-corrupt-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    (ResultStore::open(&dir).expect("open temp store"), dir)
}

/// A populated stream to damage: five observation-ish records.
fn seeded_store(tag: &str) -> (ResultStore, PathBuf) {
    let (store, _dir) = temp_store(tag);
    let records: Vec<String> =
        (0..5).map(|e| format!("o1,{e},0.5,0.25,0.1,{e},12,3,0.2,1.5,NaN,NaN")).collect();
    store.put(KEY, &records).unwrap();
    let stream = store.path_for(KEY);
    (store, stream)
}

fn expect_corrupt(err: StoreError, want_record: usize) {
    match &err {
        StoreError::Corrupt { key, record, .. } => {
            assert_eq!(key, KEY, "error must name the cell key: {err}");
            assert_eq!(*record, want_record, "error must name the failing record: {err}");
            let msg = err.to_string();
            assert!(msg.contains(KEY), "message must include the key: {msg}");
            assert!(
                msg.contains(&format!("record {want_record}")),
                "message must include the record index: {msg}"
            );
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn intact_stream_reads_back() {
    let (store, _) = seeded_store("intact");
    assert_eq!(store.get(KEY).unwrap().unwrap().len(), 5);
}

#[test]
fn flipped_payload_byte_is_rejected_at_that_record() {
    let (store, stream) = seeded_store("flip");
    let text = fs::read_to_string(&stream).unwrap();
    // Flip one digit inside record 2's payload (epoch column "2" → "7").
    let damaged = text.replacen("o1,2,", "o1,7,", 1);
    assert_ne!(text, damaged, "the edit must land");
    fs::write(&stream, damaged).unwrap();
    expect_corrupt(store.get(KEY).unwrap_err(), 2);
}

#[test]
fn flipped_hash_byte_is_rejected_at_that_record() {
    let (store, stream) = seeded_store("fliphash");
    let text = fs::read_to_string(&stream).unwrap();
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    // Record 3 is line 4 (after the header): r;3;<hash>;<payload>.
    let mut fields: Vec<String> = lines[4].splitn(4, ';').map(str::to_string).collect();
    let hash = fields[2].clone();
    let tail = &hash[1..];
    fields[2] = if hash.starts_with('0') { format!("1{tail}") } else { format!("0{tail}") };
    let mut damaged = lines.clone();
    damaged[4] = fields.join(";");
    fs::write(&stream, damaged.join("\n") + "\n").unwrap();
    expect_corrupt(store.get(KEY).unwrap_err(), 3);
}

#[test]
fn truncating_the_tail_is_rejected() {
    let (store, stream) = seeded_store("truncate");
    let text = fs::read_to_string(&stream).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // Drop the last record and the seal — a crash mid-rewrite.
    let truncated = lines[..lines.len() - 2].join("\n") + "\n";
    fs::write(&stream, truncated).unwrap();
    expect_corrupt(store.get(KEY).unwrap_err(), 4);
}

#[test]
fn deleting_a_middle_record_is_rejected() {
    let (store, stream) = seeded_store("drop-middle");
    let text = fs::read_to_string(&stream).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // Remove record 1 (line 2); the chain breaks where record 2's
    // sequence number no longer matches its position.
    let mut damaged: Vec<&str> = lines.clone();
    damaged.remove(2);
    fs::write(&stream, damaged.join("\n") + "\n").unwrap();
    expect_corrupt(store.get(KEY).unwrap_err(), 1);
}

#[test]
fn missing_seal_is_rejected() {
    let (store, stream) = seeded_store("no-seal");
    let text = fs::read_to_string(&stream).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let sealless = lines[..lines.len() - 1].join("\n") + "\n";
    fs::write(&stream, sealless).unwrap();
    expect_corrupt(store.get(KEY).unwrap_err(), 5);
}

#[test]
fn wrong_seal_count_is_rejected() {
    let (store, stream) = seeded_store("seal-count");
    let text = fs::read_to_string(&stream).unwrap();
    let damaged = text.replace("s;5;", "s;6;");
    assert_ne!(text, damaged);
    fs::write(&stream, damaged).unwrap();
    expect_corrupt(store.get(KEY).unwrap_err(), 5);
}

#[test]
fn stream_for_a_different_key_is_rejected() {
    let (store, stream) = seeded_store("rekey");
    // Simulate a mis-filed stream: the file at KEY's content address
    // holds a stream sealed under another key.
    let other = "tg1;n=9;other=1;epochs=1";
    let (donor, _) = temp_store("rekey-donor");
    donor.put(other, &["o1,0,1".to_string()]).unwrap();
    fs::copy(donor.path_for(other), &stream).unwrap();
    expect_corrupt(store.get(KEY).unwrap_err(), 0);
}

#[test]
fn garbage_file_is_rejected_not_treated_as_absent() {
    let (store, stream) = seeded_store("garbage");
    fs::write(&stream, b"\xff\xfe not a stream").unwrap();
    assert!(
        matches!(store.get(KEY), Err(StoreError::Corrupt { .. })),
        "binary garbage must surface as corruption"
    );
}
