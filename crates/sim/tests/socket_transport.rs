//! Transport fault-equivalence suite: the loopback-TCP transport must
//! report the same `NetStats` shape and deliver the same envelope
//! stream as the in-memory transport under any matching [`FaultPlan`],
//! and it must do so *at any thread count* — every worker of a
//! `parallel_map` fan-out owns its own socket pair, so concurrent
//! transports cannot interfere with each other's counters.
//!
//! Both transports consult the same pure `FaultPlan::fate` hash, so the
//! equivalence is by construction; these tests pin it from outside the
//! crate, through the public API only, the way the actor runtime uses
//! it.

use tg_sim::{
    parallel_map, Envelope, FaultPlan, InMemoryTransport, NetStats, SocketTransport, Transport,
    NO_DEADLINE,
};

const NODES: u64 = 48;

/// The fault axes the e14 sweep exercises, plus the perfect plan.
fn plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::perfect(),
        FaultPlan { drop_rate: 0.25, latency_max: 0, partition_ticks: 0 },
        FaultPlan { drop_rate: 0.0, latency_max: 9, partition_ticks: 0 },
        FaultPlan { drop_rate: 0.4, latency_max: 7, partition_ticks: 5 },
    ]
}

/// Drive one transport through three phases of all-to-aggregator plus
/// scatter traffic and collect (deliveries, stats).
fn drive<T: Transport<u64>>(t: &mut T, window: u64) -> (Vec<Envelope<u64>>, NetStats) {
    let mut out = Vec::new();
    for epoch in 0..2 {
        for phase in 0..3 {
            t.begin_phase(epoch, phase, window);
            for src in 0..NODES {
                t.send(src, 0, src % 11, epoch << 32 | phase << 16 | src);
                t.send(0, src, (src * 3) % 11, src);
            }
            while let Some(env) = t.recv() {
                out.push(env);
            }
        }
    }
    (out, t.stats())
}

/// One (plan, seed, window) cell compared mem-vs-socket.
fn assert_equivalent(plan: FaultPlan, seed: u64, window: u64) {
    let (mem_env, mem_stats) = drive(&mut InMemoryTransport::new(plan, seed), window);
    let mut socket =
        SocketTransport::connect(plan, seed).expect("loopback lanes connect in the test net");
    let (sock_env, sock_stats) = drive(&mut socket, window);
    assert_eq!(mem_stats, sock_stats, "NetStats diverged for {plan:?} seed {seed}");
    assert_eq!(mem_env.len(), sock_env.len(), "delivery count diverged for {plan:?}");
    for (m, s) in mem_env.iter().zip(&sock_env) {
        assert_eq!(
            (m.src, m.dst, m.sent_tick, m.deliver_tick, m.msg),
            (s.src, s.dst, s.sent_tick, s.deliver_tick, s.msg),
            "envelope stream diverged for {plan:?}"
        );
    }
}

/// Single-threaded equivalence across every fault plan, with both an
/// unbounded phase and a tight deadline that forces late-drops.
#[test]
fn socket_reports_in_memory_stats_under_all_fault_plans() {
    for (i, plan) in plans().into_iter().enumerate() {
        assert_equivalent(plan, 42 + i as u64, NO_DEADLINE);
        assert_equivalent(plan, 42 + i as u64, 6);
    }
}

/// The same cells fanned out across worker threads: `parallel_map`
/// spawns one thread per cell, so several socket transports run their
/// loopback lanes concurrently. Stats must match the single-threaded
/// in-memory run for every cell regardless of interleaving.
#[test]
fn equivalence_holds_across_concurrent_transports() {
    let cells: Vec<(FaultPlan, u64)> =
        plans().into_iter().enumerate().map(|(i, p)| (p, 100 + i as u64)).collect();
    let expected: Vec<NetStats> =
        cells.iter().map(|&(p, s)| drive(&mut InMemoryTransport::new(p, s), 9).1).collect();
    // Two socket transports per plan, racing each other and the other
    // plans' lanes.
    let doubled: Vec<(FaultPlan, u64)> = cells.iter().chain(cells.iter()).copied().collect();
    let got = parallel_map(doubled, |(plan, seed)| {
        let mut t = SocketTransport::connect(plan, seed).expect("loopback lanes connect");
        drive(&mut t, 9).1
    });
    for (i, stats) in got.iter().enumerate() {
        assert_eq!(*stats, expected[i % expected.len()], "cell {i} diverged under concurrency");
    }
}

/// Capture-relevant monotonicity at the stats level: raising the drop
/// rate with everything else fixed never delivers more messages on
/// either transport, and the two transports agree on the count.
#[test]
fn delivery_falls_monotonically_with_drop_rate_on_both_transports() {
    let mut last_mem = u64::MAX;
    let mut last_sock = u64::MAX;
    for (i, drop) in [0.0, 0.2, 0.5, 0.8].into_iter().enumerate() {
        let plan = FaultPlan { drop_rate: drop, latency_max: 3, partition_ticks: 2 };
        let mem = drive(&mut InMemoryTransport::new(plan, 7), NO_DEADLINE).1;
        let mut socket = SocketTransport::connect(plan, 7).expect("loopback lanes connect");
        let sock = drive(&mut socket, NO_DEADLINE).1;
        assert_eq!(mem, sock, "rung {i}: transports disagree");
        assert!(mem.delivered <= last_mem, "mem delivery rose with drop rate");
        assert!(sock.delivered <= last_sock, "socket delivery rose with drop rate");
        last_mem = mem.delivered;
        last_sock = sock.delivered;
    }
}
