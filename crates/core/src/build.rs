//! Building group graphs by hashing (§III-A, applied statically).
//!
//! The member rule: the `i`-th member of `G_w` is `suc(h(w, i))` for
//! `i = 1..d2·ln ln n`. Under the random-oracle assumption the points
//! `h(w, i)` are u.a.r., so each draw lands on a bad ID with probability
//! `≈ β` (Lemma 6) and group goodness follows from concentration.
//!
//! This module builds *initial* graphs (`G⁰₁, G⁰₂`), where leaders and
//! member pool are the same generation and neighbor sets are correct by
//! construction — exactly the paper's Appendix X assumption that the
//! system starts from a correctly initialized state (e.g. via the
//! heavyweight one-shot procedure of \[21\]). Epoch-by-epoch construction
//! through searches in old graphs lives in [`crate::dynamic`].

use crate::graph::GroupGraph;
use crate::group::Group;
use crate::params::Params;
use crate::population::Population;
use tg_crypto::Oracle;
use tg_overlay::GraphKind;

/// Build an initial (trusted-bootstrap) group graph: leaders = pool,
/// membership via `suc(oracle(w, i))`, neighbor sets correct.
pub fn build_initial_graph(
    pop: Population,
    kind: GraphKind,
    oracle: Oracle,
    params: &Params,
) -> GroupGraph {
    let n = pop.len();
    let draws = params.draws(n);
    let ring = pop.ring();
    let mut groups = Vec::with_capacity(n);
    for w in 0..n {
        let wid = ring.at(w);
        let mut members = Vec::with_capacity(draws + 1);
        // The leader belongs to its own group ("each ID w has its own
        // group G_w"; §I-C) — here leaders and pool share a ring.
        members.push(w as u32);
        for i in 0..draws {
            let p = oracle.hash_id_index(wid, i as u32);
            members.push(ring.successor_index(p) as u32);
        }
        groups.push(Group::new(w as u32, members, 0));
    }
    let topology = kind.build(ring.clone());
    let confused = vec![false; n];
    GroupGraph::new(pop.clone(), pop, groups, confused, topology)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tg_crypto::OracleFamily;

    fn build(n_good: usize, n_bad: usize, seed: u64) -> (GroupGraph, Params) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::uniform(n_good, n_bad, &mut rng);
        let params = Params::paper_defaults();
        let fam = OracleFamily::new(seed);
        (build_initial_graph(pop, GraphKind::Chord, fam.h1, &params), params)
    }

    #[test]
    fn one_group_per_id() {
        let (gg, _) = build(500, 25, 1);
        assert_eq!(gg.len(), 525);
        for (i, g) in gg.groups.iter().enumerate() {
            assert_eq!(g.leader as usize, i);
            assert!(g.members.contains(&(i as u32)), "leader belongs to its group");
        }
    }

    #[test]
    fn group_sizes_near_draws() {
        let (gg, params) = build(2000, 100, 2);
        let draws = params.draws(gg.len());
        let mean = gg.mean_group_size();
        // Dedup and the leader slot put size in [draws/2, draws+1] here.
        assert!(
            mean > draws as f64 * 0.8 && mean <= draws as f64 + 1.0,
            "mean size {mean:.1} vs draws {draws}"
        );
    }

    #[test]
    fn membership_is_deterministic() {
        let (g1, _) = build(300, 15, 3);
        let (g2, _) = build(300, 15, 3);
        assert_eq!(g1.groups, g2.groups);
    }

    #[test]
    fn different_oracles_give_different_groups() {
        let mut rng = StdRng::seed_from_u64(4);
        let pop = Population::uniform(300, 15, &mut rng);
        let params = Params::paper_defaults();
        let fam = OracleFamily::new(4);
        let a = build_initial_graph(pop.clone(), GraphKind::Chord, fam.h1, &params);
        let b = build_initial_graph(pop, GraphKind::Chord, fam.h2, &params);
        assert_ne!(a.groups, b.groups, "h1 and h2 must induce different memberships");
    }

    #[test]
    fn bad_fraction_in_groups_tracks_beta() {
        let (gg, _) = build(4000, 200, 5); // β ≈ 0.048
        let mut bad = 0usize;
        let mut total = 0usize;
        for g in &gg.groups {
            bad += g.bad_count(&gg.pool);
            total += g.size(&gg.pool);
        }
        let frac = bad as f64 / total as f64;
        assert!((0.02..0.09).contains(&frac), "member bad fraction {frac:.3} vs β≈0.048");
    }

    #[test]
    fn most_groups_have_good_majority_at_small_beta() {
        let (gg, _) = build(4000, 200, 6);
        assert!(
            gg.frac_good_majority() > 0.99,
            "β=0.048 with ~11 members: ≥99% good majorities, got {:.4}",
            gg.frac_good_majority()
        );
        assert!(gg.frac_red() < 0.01);
    }
}
