//! Rendering the group graph — reproduces Figure 1.
//!
//! The paper's only figure shows an input graph `H` with a search
//! `w → u → v → y` next to the corresponding group graph with groups
//! `G_w, G_u, G_v, G_y`, red groups marked "B", and dashed all-to-all
//! links between good members of neighboring groups. [`render_figure1`]
//! emits Graphviz DOT for both panels; `examples/figure1_groupgraph.rs`
//! drives it.

use crate::graph::{Color, GroupGraph};
use std::fmt::Write as _;
use tg_idspace::Id;

/// DOT for the input graph `H` (left panel of Figure 1), highlighting a
/// search path.
pub fn render_input_graph(gg: &GroupGraph, path: &[Id]) -> String {
    let ring = gg.leaders.ring();
    let mut out = String::new();
    out.push_str("digraph H {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n");
    for i in 0..ring.len() {
        let id = ring.at(i);
        let on_path = path.contains(&id);
        let _ = writeln!(
            out,
            "  n{i} [label=\"{}\"{}];",
            short(id),
            if on_path { ", style=filled, fillcolor=lightblue" } else { "" }
        );
    }
    // Topology edges (deduplicated, undirected rendering).
    let mut seen = std::collections::HashSet::new();
    for i in 0..ring.len() {
        let w = ring.at(i);
        for u in gg.topology.neighbors(w) {
            let j = ring.index_of(u).expect("neighbor on ring");
            let key = (i.min(j), i.max(j));
            if seen.insert(key) {
                let _ = writeln!(out, "  n{i} -> n{j} [dir=none, color=gray];");
            }
        }
    }
    // The search path on top.
    for pair in path.windows(2) {
        let i = ring.index_of(pair[0]).expect("path on ring");
        let j = ring.index_of(pair[1]).expect("path on ring");
        let _ = writeln!(out, "  n{i} -> n{j} [color=blue, penwidth=2];");
    }
    out.push_str("}\n");
    out
}

/// DOT for the group graph `G` (right panel of Figure 1): one node per
/// group, red groups marked "B" as in the paper, dashed edges for the
/// all-to-all member links.
pub fn render_group_graph(gg: &GroupGraph, path: &[Id]) -> String {
    let ring = gg.leaders.ring();
    let mut out = String::new();
    out.push_str("digraph G {\n  rankdir=LR;\n  node [shape=doublecircle, fontsize=10];\n");
    for i in 0..gg.len() {
        let id = ring.at(i);
        let red = gg.color(i) == Color::Red;
        let size = gg.group_size(i);
        let _ = writeln!(
            out,
            "  g{i} [label=\"G_{}{}|{}|\"{}];",
            short(id),
            if red { " B" } else { "" },
            size,
            if red {
                ", style=filled, fillcolor=salmon"
            } else if path.contains(&id) {
                ", style=filled, fillcolor=lightblue"
            } else {
                ""
            }
        );
    }
    let mut seen = std::collections::HashSet::new();
    for i in 0..ring.len() {
        let w = ring.at(i);
        for u in gg.topology.neighbors(w) {
            let j = ring.index_of(u).expect("neighbor on ring");
            let key = (i.min(j), i.max(j));
            if seen.insert(key) {
                // Dashed arrows: all-to-all links between (at least) the
                // good members of the two groups.
                let _ = writeln!(out, "  g{i} -> g{j} [dir=none, style=dashed, color=gray];");
            }
        }
    }
    for pair in path.windows(2) {
        let i = ring.index_of(pair[0]).expect("path on ring");
        let j = ring.index_of(pair[1]).expect("path on ring");
        let _ = writeln!(out, "  g{i} -> g{j} [color=blue, penwidth=2];");
    }
    out.push_str("}\n");
    out
}

/// Both panels of Figure 1 for the search `(from, key)`.
pub fn render_figure1(gg: &GroupGraph, from: usize, key: Id) -> (String, String) {
    let from_id = gg.leaders.ring().at(from);
    let route = gg.topology.route(from_id, key);
    (render_input_graph(gg, &route.hops), render_group_graph(gg, &route.hops))
}

fn short(id: Id) -> String {
    format!("{:.3}", id.as_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_initial_graph;
    use crate::params::Params;
    use crate::population::Population;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tg_crypto::OracleFamily;
    use tg_overlay::GraphKind;

    fn tiny() -> GroupGraph {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = Population::uniform(12, 2, &mut rng);
        build_initial_graph(
            pop,
            GraphKind::Chord,
            OracleFamily::new(1).h1,
            &Params::paper_defaults(),
        )
    }

    #[test]
    fn renders_contain_all_nodes_and_path() {
        let gg = tiny();
        let (h, g) = render_figure1(&gg, 0, Id::from_f64(0.5));
        for i in 0..gg.len() {
            assert!(h.contains(&format!("n{i} ")), "H panel missing node {i}");
            assert!(g.contains(&format!("g{i} ")), "G panel missing group {i}");
        }
        assert!(h.contains("penwidth=2"), "search path highlighted in H");
        assert!(g.contains("penwidth=2"), "search path highlighted in G");
        assert!(g.contains("style=dashed"), "all-to-all links dashed in G");
    }

    #[test]
    fn red_groups_marked_b() {
        let mut gg = tiny();
        gg.confused[3] = true;
        gg.recolor();
        let (_, g) = render_figure1(&gg, 0, Id::from_f64(0.9));
        assert!(g.contains(" B"), "red group must carry the paper's B marker");
        assert!(g.contains("salmon"));
    }

    #[test]
    fn dot_is_well_formed() {
        let gg = tiny();
        let (h, g) = render_figure1(&gg, 2, Id::from_f64(0.25));
        for s in [&h, &g] {
            assert!(s.starts_with("digraph"));
            assert!(s.trim_end().ends_with('}'));
            // Balanced braces.
            assert_eq!(s.matches('{').count(), s.matches('}').count());
        }
    }
}
