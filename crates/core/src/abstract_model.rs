//! The idealized S1–S3 model of §II-A, for validating Lemmas 1–4
//! directly.
//!
//! In the abstract model each group is red **independently** with
//! probability `pf` (S2); everything else about membership is abstracted
//! away. Lemma 2/3 then say the failure probability `X` of a random
//! search is `O(pf · log^c n)` w.h.p. — the congestion bound `C` of the
//! input graph (P4) converts a red *fraction* into a failed-search
//! *fraction* with only a `log^c n` blow-up. Experiment E1 uses this
//! module to check the formula's shape before layering on the concrete
//! membership machinery.

use rand::rngs::StdRng;
use rand::Rng;
use tg_idspace::Id;
use tg_overlay::InputGraph;

/// A group graph in the abstract S1–S3 sense: a topology plus an i.i.d.
/// red marking.
pub struct AbstractGroupGraph {
    topology: Box<dyn InputGraph>,
    red: Vec<bool>,
    pf: f64,
}

impl AbstractGroupGraph {
    /// Mark each group red independently with probability `pf`.
    pub fn new(topology: Box<dyn InputGraph>, pf: f64, rng: &mut StdRng) -> Self {
        assert!((0.0..=1.0).contains(&pf), "pf out of range");
        let n = topology.ring().len();
        let red = (0..n).map(|_| rng.gen::<f64>() < pf).collect();
        AbstractGroupGraph { topology, red, pf }
    }

    /// The configured red probability.
    pub fn pf(&self) -> f64 {
        self.pf
    }

    /// The realized red fraction.
    pub fn frac_red(&self) -> f64 {
        self.red.iter().filter(|&&r| r).count() as f64 / self.red.len().max(1) as f64
    }

    /// Whether a search from `from` (ring index) for `key` fails — i.e.
    /// its search path meets a red group.
    pub fn search_fails(&self, from: usize, key: Id) -> bool {
        let ring = self.topology.ring();
        let route = self.topology.route(ring.at(from), key);
        route.hops.iter().any(|&h| self.red[ring.index_of(h).expect("route hops on ring")])
    }

    /// Estimate `X`: the probability that a search from a random group
    /// for a random key fails (the Lemma 2/3 quantity).
    pub fn measure_failure_prob(&self, samples: usize, rng: &mut StdRng) -> f64 {
        let n = self.topology.ring().len();
        let mut fails = 0usize;
        for _ in 0..samples {
            let from = rng.gen_range(0..n);
            let key = Id(rng.gen());
            if self.search_fails(from, key) {
                fails += 1;
            }
        }
        fails as f64 / samples.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tg_idspace::SortedRing;
    use tg_overlay::GraphKind;

    fn random_ring(n: usize, seed: u64) -> SortedRing {
        let mut rng = StdRng::seed_from_u64(seed);
        SortedRing::new((0..n).map(|_| Id(rng.gen())).collect())
    }

    #[test]
    fn zero_pf_never_fails() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = AbstractGroupGraph::new(GraphKind::Chord.build(random_ring(256, 1)), 0.0, &mut rng);
        assert_eq!(g.measure_failure_prob(200, &mut rng), 0.0);
    }

    #[test]
    fn full_pf_always_fails() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = AbstractGroupGraph::new(GraphKind::Chord.build(random_ring(256, 2)), 1.0, &mut rng);
        assert_eq!(g.measure_failure_prob(200, &mut rng), 1.0);
    }

    /// Lemma 2/3 shape: X ≈ pf × (mean path length) for small pf — well
    /// below the naive union bound over all groups and within the
    /// O(pf·log^c n) envelope.
    #[test]
    fn failure_prob_tracks_pf_times_pathlen() {
        let n = 2048;
        let mut rng = StdRng::seed_from_u64(3);
        for &pf in &[0.005, 0.02] {
            let g =
                AbstractGroupGraph::new(GraphKind::Chord.build(random_ring(n, 3)), pf, &mut rng);
            let x = g.measure_failure_prob(4000, &mut rng);
            // Mean Chord path ≈ (1/2)log2 n + 1 ≈ 6.5 groups.
            let predict = pf * 7.0;
            assert!(
                x > 0.3 * predict && x < 3.0 * predict,
                "pf={pf}: X={x:.4} vs predicted ~{predict:.4}"
            );
            // And the Lemma-4 envelope with c = 1 (Chord).
            let envelope = 4.0 * pf * (n as f64).ln();
            assert!(x <= envelope, "pf={pf}: X={x:.4} beyond envelope {envelope:.4}");
        }
    }

    /// E[X] scales linearly in pf (doubling pf roughly doubles it) — the
    /// linearity at the heart of Lemma 2. A single red-marking draw has
    /// high variance at this n (which groups go red matters), so average
    /// over independent markings to estimate the expectation.
    #[test]
    fn failure_prob_is_linear_in_pf() {
        let n = 1024;
        let mut rng = StdRng::seed_from_u64(4);
        let mean_x = |pf: f64, rng: &mut StdRng| {
            let trials = 12;
            (0..trials)
                .map(|_| {
                    AbstractGroupGraph::new(GraphKind::Chord.build(random_ring(n, 5)), pf, rng)
                        .measure_failure_prob(1500, rng)
                })
                .sum::<f64>()
                / trials as f64
        };
        let x1 = mean_x(0.01, &mut rng);
        let x2 = mean_x(0.02, &mut rng);
        let ratio = x2 / x1.max(1e-9);
        assert!((1.5..2.6).contains(&ratio), "E[X](2pf)/E[X](pf) = {ratio:.2}, expected ≈2");
    }
}
