//! The unified **scenario API**: one declarative spec and one driving
//! trait behind every system the repo can simulate.
//!
//! The paper's claims are all statements about *one* epoch process under
//! different defenses — §III's dynamic layer alone, or §IV's minting
//! pipeline in force. Before this module that process was reachable only
//! through two unrelated constructor stacks (`DynamicSystem::new` + an
//! [`IdentityProvider`] vs `tg-pow`'s `FullSystem::new` builder chain),
//! and every consumer re-implemented the branching. The scenario API
//! collapses the split:
//!
//! ```text
//!        ScenarioSpec ──build()──▶ Box<dyn EpochDriver> ──step()──▶ &EpochObservation
//!        (declarative,             (erases the no-PoW /              (EpochReport ∪
//!         round-trips via           PoW split)                        FullEpochReport;
//!         label / JSON)                                               PoW fields Option)
//! ```
//!
//! * [`ScenarioSpec`] — everything that defines a run: construction
//!   [`Params`], topology ([`GraphKind`]), [`BuildMode`], the defense in
//!   force ([`Defense`]: none, single-hash, `f∘g`, each optionally with
//!   the §IV-B fresh-string defense disabled), the adversary's placement
//!   policy and budget ([`StrategySpec`]), and the master seed. The spec
//!   is declarative data: it round-trips through a stable, hand-rolled
//!   string label ([`ScenarioSpec::label`] / [`ScenarioSpec::parse`])
//!   and a flat JSON object ([`ScenarioSpec::to_json`] /
//!   [`ScenarioSpec::from_json`]) with no serde dependency.
//! * [`EpochDriver`] — the one verb every system understands:
//!   [`EpochDriver::step`] advances one epoch and returns a borrowed
//!   [`EpochObservation`]; [`EpochDriver::run`] batches `n` epochs
//!   through the same driver-owned observation buffers, so the hot sweep
//!   path (thousands of cells × epochs) re-allocates nothing per epoch.
//! * [`EpochObservation`] — the union of the §III `EpochReport` and the
//!   §IV `FullEpochReport`, with the PoW-only fields as `Option`s, plus
//!   the adversary census (`bad_ids`, `bad_share`) and captured-group
//!   counts that every sweep previously recomputed through ad-hoc
//!   provider wrappers.
//!
//! ## Who builds what
//!
//! Crate dependencies point upward (`tg-pow` depends on `tg-core`), so
//! this module's [`ScenarioSpec::build`] constructs every scenario the
//! core layer can express — [`Defense::NoPow`] with any non-PoW strategy
//! — and returns [`ScenarioError::NeedsPowLayer`] for specs that require
//! the minting pipeline. `tg_pow::scenario::build` is the **total**
//! builder: it accepts every spec, delegating the core-only ones here.
//! Consumers that link `tg-pow` (the experiments, benches, examples)
//! should always use the total builder.
//!
//! ## Relation to the frontier cell key
//!
//! The frontier engines address their seed streams through
//! `RowKey::label`, a format frozen before this module existed (the
//! committed golden corpus replays through it byte-for-byte). That label
//! is the legacy *projection* of a spec's categorical axes; new axes and
//! new consumers should key on [`ScenarioSpec::label`], which encodes
//! the complete scenario.

use crate::dynamic::adversary::{
    AdaptiveMajorityFlipper, AdversaryStrategy, ChurnTimed, GapFilling, IntervalTargeting,
    StrategicProvider, Uniform,
};
use crate::dynamic::build::{BuildMode, BuildStats};
use crate::dynamic::provider::{IdentityProvider, UniformProvider};
use crate::dynamic::system::EpochReport;
use crate::graph::{GraphsView, GroupGraphView};
use crate::params::{GroupSizeRule, Params};
use rand::rngs::StdRng;
use tg_idspace::Id;
use tg_overlay::GraphKind;
use tg_sim::Metrics;

pub use crate::dynamic::kernel::{EpochKernel, KernelChoice};
pub use crate::runtime::RuntimeChoice;
pub use tg_sim::net::{FaultPlan, TransportChoice};

/// Which minting scheme a PoW pipeline runs (§IV-A). Lives here (rather
/// than in `tg-pow`, which re-exports it) so the defense axis of a
/// [`ScenarioSpec`] is expressible without the minting crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MintScheme {
    /// The paper's two-hash composition: minted IDs are u.a.r.
    /// regardless of the solver's σ choice (Lemma 11).
    TwoHash,
    /// The single-hash variant (`ID = σ` when `g(σ) ≤ τ`): the solver
    /// chooses the ID's location, so placement strategies go through.
    SingleHash,
}

impl MintScheme {
    /// Stable label for tables.
    pub fn name(&self) -> &'static str {
        match self {
            MintScheme::TwoHash => "f∘g",
            MintScheme::SingleHash => "single-hash",
        }
    }
}

/// The identity-pipeline defense of a scenario (the frontier's defense
/// column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Defense {
    /// No PoW: chosen ID values go straight into the dynamic layer.
    NoPow,
    /// Puzzle minting under the given scheme. `fresh_strings: false`
    /// freezes minting to the genesis string — the §IV-B defense
    /// disabled.
    Pow {
        /// Minting scheme (placement realized vs discarded).
        scheme: MintScheme,
        /// Whether minting binds to a freshly agreed string each epoch.
        fresh_strings: bool,
    },
}

impl Defense {
    /// Stable column label for tables, CSVs, and the scenario codec.
    pub fn label(&self) -> &'static str {
        match self {
            Defense::NoPow => "none",
            Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true } => "single-hash",
            Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: false } => {
                "single-hash-frozen"
            }
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true } => "f∘g",
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: false } => "f∘g-frozen",
        }
    }

    /// Parse a label produced by [`Defense::label`].
    pub fn parse(s: &str) -> Option<Defense> {
        Some(match s {
            "none" => Defense::NoPow,
            "single-hash" => Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true },
            "single-hash-frozen" => {
                Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: false }
            }
            "f∘g" => Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
            "f∘g-frozen" => Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: false },
            _ => return None,
        })
    }
}

/// Where a PoW scenario's epoch strings come from. Irrelevant (and
/// ignored) under [`Defense::NoPow`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StringMode {
    /// The real Appendix VIII protocol runs over the operational graphs
    /// each epoch and minting binds to the agreed string (`tg-pow`'s
    /// `FullSystem`).
    Protocol,
    /// A synthesized per-epoch string stands in for the protocol (the
    /// provider-level shortcut the E10 sweep uses: same fresh-vs-frozen
    /// policy, no string-agreement simulation).
    Synthesized,
}

impl StringMode {
    /// Stable label for the scenario codec.
    pub fn label(&self) -> &'static str {
        match self {
            StringMode::Protocol => "protocol",
            StringMode::Synthesized => "synthesized",
        }
    }

    /// Parse a label produced by [`StringMode::label`].
    pub fn parse(s: &str) -> Option<StringMode> {
        Some(match s {
            "protocol" => StringMode::Protocol,
            "synthesized" => StringMode::Synthesized,
            _ => return None,
        })
    }
}

/// The adversary's placement policy, as declarative data (the runtime
/// [`AdversaryStrategy`] objects are built from this).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StrategySpec {
    /// No adversary strategy at all: the whole population (good and bad)
    /// follows the honest minting model ([`UniformProvider`] — distinct
    /// from [`StrategySpec::Uniform`], whose bad IDs go through the
    /// strategy engine's dedup path and therefore draw differently).
    Honest,
    /// The paper's standing assumption: bad IDs u.a.r.
    Uniform,
    /// Midpoints of the widest good-ID gaps.
    GapFilling,
    /// Concentrate on the arc ending at a victim key.
    IntervalTargeting {
        /// The victim key, as a ring fraction in `[0, 1)`.
        victim: f64,
        /// Width of the claimed arc, as a ring fraction.
        width: f64,
    },
    /// End-on gap claims whenever near-tied groups are observed.
    AdaptiveMajorityFlipper {
        /// Near-tie margin (members short of losing a good majority).
        margin: usize,
    },
    /// Camouflage in quiet epochs, full-budget end-on strike right
    /// after heavy good-ID departure.
    ChurnTimed {
        /// Observed departure fraction that triggers the strike.
        trigger: f64,
        /// Budget fraction spent uniformly in quiet epochs.
        retainer: f64,
    },
    /// Grind real puzzles each epoch and present the whole hoard
    /// (§IV-B). Needs the PoW layer — buildable only through
    /// `tg_pow::scenario::build`.
    PrecomputeHoarder {
        /// Seed of the oracle family the hoarder grinds with.
        fam_seed: u64,
        /// Grinding budget per epoch, in puzzle attempts.
        attempts: u64,
    },
}

impl StrategySpec {
    /// Stable strategy name for tables (the E10/E11/E12 sweep labels).
    pub fn name(&self) -> &'static str {
        match self {
            StrategySpec::Honest => "honest",
            StrategySpec::Uniform => "uniform",
            StrategySpec::GapFilling => "gap-filling",
            StrategySpec::IntervalTargeting { .. } => "interval-targeting",
            StrategySpec::AdaptiveMajorityFlipper { .. } => "adaptive-majority-flipper",
            StrategySpec::ChurnTimed { .. } => "churn-timed",
            StrategySpec::PrecomputeHoarder { .. } => "precompute-hoarder",
        }
    }

    /// Codec form: the name plus `:`-separated parameters.
    pub fn encode(&self) -> String {
        match *self {
            StrategySpec::IntervalTargeting { victim, width } => {
                format!("interval-targeting:{victim}:{width}")
            }
            StrategySpec::AdaptiveMajorityFlipper { margin } => {
                format!("adaptive-majority-flipper:{margin}")
            }
            StrategySpec::ChurnTimed { trigger, retainer } => {
                format!("churn-timed:{trigger}:{retainer}")
            }
            StrategySpec::PrecomputeHoarder { fam_seed, attempts } => {
                format!("precompute-hoarder:{fam_seed}:{attempts}")
            }
            _ => self.name().to_string(),
        }
    }

    /// Parse the form produced by [`StrategySpec::encode`].
    pub fn decode(s: &str) -> Option<StrategySpec> {
        let mut parts = s.split(':');
        let name = parts.next()?;
        let mut arg = || parts.next();
        Some(match name {
            "honest" => StrategySpec::Honest,
            "uniform" => StrategySpec::Uniform,
            "gap-filling" => StrategySpec::GapFilling,
            "interval-targeting" => StrategySpec::IntervalTargeting {
                victim: arg()?.parse().ok()?,
                width: arg()?.parse().ok()?,
            },
            "adaptive-majority-flipper" => {
                StrategySpec::AdaptiveMajorityFlipper { margin: arg()?.parse().ok()? }
            }
            "churn-timed" => StrategySpec::ChurnTimed {
                trigger: arg()?.parse().ok()?,
                retainer: arg()?.parse().ok()?,
            },
            "precompute-hoarder" => StrategySpec::PrecomputeHoarder {
                fam_seed: arg()?.parse().ok()?,
                attempts: arg()?.parse().ok()?,
            },
            _ => return None,
        })
    }

    /// Build the runtime strategy object, or `None` for the variants the
    /// core layer cannot construct ([`StrategySpec::Honest`] is a
    /// provider, not a strategy; the hoarder needs `tg-pow`).
    pub fn build_strategy(&self) -> Option<Box<dyn AdversaryStrategy>> {
        Some(match *self {
            StrategySpec::Honest | StrategySpec::PrecomputeHoarder { .. } => return None,
            StrategySpec::Uniform => Box::new(Uniform),
            StrategySpec::GapFilling => Box::new(GapFilling),
            StrategySpec::IntervalTargeting { victim, width } => {
                Box::new(IntervalTargeting { victim: Id::from_f64(victim), width })
            }
            StrategySpec::AdaptiveMajorityFlipper { margin } => {
                Box::new(AdaptiveMajorityFlipper { margin })
            }
            StrategySpec::ChurnTimed { trigger, retainer } => {
                Box::new(ChurnTimed { trigger, retainer })
            }
        })
    }
}

/// The string-layer adversary of a PoW scenario, as declarative data
/// (the spec-level mirror of `tg_pow::strings::StringAdversary`, which
/// `tg_pow::scenario::build` constructs from this). Folding it into the
/// spec makes the §IV-B hoarding attacks addressable through the codec
/// — sweepable, storable, and round-trippable like every other axis.
///
/// Codec key: `stradv=` (the natural name `strings=` is taken by
/// [`StringMode`], the string-*source* axis; the two are orthogonal —
/// source says where epoch strings come from, adversary says who
/// tampers with their release).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum StringAdversarySpec {
    /// No string-layer interference (the default).
    #[default]
    None,
    /// Withhold a fraction of agreed strings, releasing them late so
    /// minting windows shrink (§IV-B's delayed-release attack).
    DelayedRelease {
        /// How many recent strings the adversary hoards.
        strings: usize,
        /// Fraction of each minting window the release is delayed by.
        release_frac: f64,
        /// Adversarial compute, in the same units as the minting budget.
        units: f64,
    },
    /// Force stale string records into circulation so verifiers must
    /// track extra candidates (§IV-B's forced-records attack).
    ForcedRecords {
        /// How many stale strings the adversary keeps alive.
        strings: usize,
        /// Fraction of verifiers exposed to the stale records.
        release_frac: f64,
    },
}

impl StringAdversarySpec {
    /// Codec form: `none`, `delayed:{strings}:{release_frac}:{units}`,
    /// or `records:{strings}:{release_frac}`.
    pub fn encode(&self) -> String {
        match *self {
            StringAdversarySpec::None => "none".to_string(),
            StringAdversarySpec::DelayedRelease { strings, release_frac, units } => {
                format!("delayed:{strings}:{release_frac}:{units}")
            }
            StringAdversarySpec::ForcedRecords { strings, release_frac } => {
                format!("records:{strings}:{release_frac}")
            }
        }
    }

    /// Parse the form produced by [`StringAdversarySpec::encode`].
    pub fn decode(s: &str) -> Option<StringAdversarySpec> {
        let mut parts = s.split(':');
        let name = parts.next()?;
        let mut arg = || parts.next();
        let spec = match name {
            "none" => StringAdversarySpec::None,
            "delayed" => StringAdversarySpec::DelayedRelease {
                strings: arg()?.parse().ok()?,
                release_frac: arg()?.parse().ok()?,
                units: arg()?.parse().ok()?,
            },
            "records" => StringAdversarySpec::ForcedRecords {
                strings: arg()?.parse().ok()?,
                release_frac: arg()?.parse().ok()?,
            },
            _ => return None,
        };
        if arg().is_some() {
            return None;
        }
        Some(spec)
    }
}

/// Everything that defines one simulated scenario. See the module docs
/// for the shape of the API; see [`ScenarioSpec::new`] for defaults.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Construction constants (β, δ, d₁/d₂, size rule, churn, the
    /// join-request attack intensity, link retries).
    pub params: Params,
    /// Input-graph topology family.
    pub kind: GraphKind,
    /// Dual-graph (paper) or single-graph (ablation) construction.
    pub mode: BuildMode,
    /// Identity-pipeline defense in force.
    pub defense: Defense,
    /// Epoch-string source under PoW (ignored for [`Defense::NoPow`]).
    pub strings: StringMode,
    /// The adversary's placement policy.
    pub strategy: StrategySpec,
    /// Good IDs per epoch.
    pub n_good: usize,
    /// The adversary's identity budget per epoch (`≈ βn`; under PoW this
    /// is its compute in units, one expected solution per unit per
    /// window).
    pub n_bad: usize,
    /// Idealized good minting (paper assumption) vs realistic
    /// missed-window losses — PoW statistical pipeline only.
    pub idealized_good: bool,
    /// Robustness searches sampled per epoch.
    pub searches: usize,
    /// Master seed; every labelled RNG stream of the run derives from
    /// it.
    pub seed: u64,
    /// Which epoch kernel runs the scenario. Both kernels produce
    /// identical observations for identical specs — [`KernelChoice::
    /// Arena`] is the throughput choice for `n` far above paper scale.
    /// Codec-optional: omitted from labels/JSON when left at the
    /// default, so every pre-existing label parses unchanged.
    pub kernel: KernelChoice,
    /// Arena member-column capacity hint (pre-sizes the hot allocation;
    /// ignored by the legacy kernel). Codec-optional like `kernel`.
    pub capacity: Option<usize>,
    /// Which execution model advances the epochs: one synchronous
    /// in-process step ([`RuntimeChoice::Sync`], the conformance
    /// oracle) or per-node actors over an injectable transport
    /// ([`RuntimeChoice::Actor`]). Codec-optional like `kernel`: over a
    /// perfect transport both runtimes produce identical observations.
    pub runtime: RuntimeChoice,
    /// Fault plan for the actor runtime's transport (drops, latency,
    /// partitions — all seeded, see `tg_sim::net`). Ignored under
    /// [`RuntimeChoice::Sync`]. Codec-optional: each knob is emitted
    /// only when non-zero (`drop=`, `lat=`, `part=`).
    pub faults: FaultPlan,
    /// Which transport implementation carries the actor runtime's
    /// messages: the deterministic in-memory network or real loopback
    /// TCP sockets. `transport=socket` requires
    /// [`RuntimeChoice::Actor`] — the combination with `runtime=sync`
    /// is rejected at parse/build time
    /// ([`ScenarioError::NeedsActorRuntime`]). Codec-optional
    /// (`transport=`, emitted only when non-default).
    pub transport: TransportChoice,
    /// Pin the actor runtime's phase-window deadline to exactly this
    /// many ticks instead of adapting it to observed latency. `None`
    /// (the default) selects the adaptive window. Codec-optional
    /// (`window=`).
    pub window: Option<u64>,
    /// The string-layer adversary (§IV-B hoarding attacks). Applied by
    /// `tg_pow::scenario::build` when the spec runs the real string
    /// protocol; inert under [`Defense::NoPow`]. Codec-optional
    /// (`stradv=`, emitted only when non-default).
    pub string_adversary: StringAdversarySpec,
}

impl ScenarioSpec {
    /// A scenario with the paper's defaults: honest identities, no PoW,
    /// Chord topology, dual-graph construction, `Params::paper_defaults`
    /// (β = 0.05 — `n_bad` is derived as `round(β/(1−β)·n_good)`), 400
    /// searches per epoch.
    pub fn new(n_good: usize, seed: u64) -> ScenarioSpec {
        let params = Params::paper_defaults();
        ScenarioSpec {
            params,
            kind: GraphKind::Chord,
            mode: BuildMode::DualGraph,
            defense: Defense::NoPow,
            strings: StringMode::Protocol,
            strategy: StrategySpec::Honest,
            n_good,
            n_bad: budget_for(params.beta, n_good),
            idealized_good: true,
            searches: 400,
            seed,
            kernel: KernelChoice::default(),
            capacity: None,
            runtime: RuntimeChoice::default(),
            faults: FaultPlan::default(),
            transport: TransportChoice::default(),
            window: None,
            string_adversary: StringAdversarySpec::default(),
        }
    }

    /// Set β and re-derive the adversary budget from it.
    pub fn beta(mut self, beta: f64) -> Self {
        self.params.beta = beta;
        self.n_bad = budget_for(beta, self.n_good);
        self
    }

    /// Set the adversary budget explicitly (overrides the β-derived
    /// count).
    pub fn budget(mut self, n_bad: usize) -> Self {
        self.n_bad = n_bad;
        self
    }

    /// Set the group-size factor `d₂` (and `d₁ = d₂/2`, the sweep
    /// convention).
    pub fn group_factor(mut self, d2: f64) -> Self {
        self.params.d2 = d2;
        self.params.d1 = d2 / 2.0;
        self
    }

    /// Set the per-epoch good-departure fraction.
    pub fn churn(mut self, churn: f64) -> Self {
        self.params.churn_rate = churn;
        self
    }

    /// Set the join-request attack intensity (Lemma 10's state attack).
    pub fn attack_requests(mut self, per_id: usize) -> Self {
        self.params.attack_requests_per_id = per_id;
        self
    }

    /// Set the link-update retry budget (E4's ablation knob).
    pub fn link_retries(mut self, retries: usize) -> Self {
        self.params.link_retries = retries;
        self
    }

    /// Replace the construction parameters wholesale.
    pub fn params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// Set the input-graph topology family.
    pub fn topology(mut self, kind: GraphKind) -> Self {
        self.kind = kind;
        self
    }

    /// Set dual-graph vs single-graph construction.
    pub fn build_mode(mut self, mode: BuildMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the identity-pipeline defense.
    pub fn defense(mut self, defense: Defense) -> Self {
        self.defense = defense;
        self
    }

    /// Set the epoch-string source under PoW.
    pub fn strings(mut self, strings: StringMode) -> Self {
        self.strings = strings;
        self
    }

    /// Set the adversary's placement policy.
    pub fn strategy(mut self, strategy: StrategySpec) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the robustness searches sampled per epoch.
    pub fn searches(mut self, searches: usize) -> Self {
        self.searches = searches;
        self
    }

    /// Set idealized vs realistic good minting (PoW statistical
    /// pipeline).
    pub fn idealized(mut self, idealized_good: bool) -> Self {
        self.idealized_good = idealized_good;
        self
    }

    /// Select the epoch kernel (legacy per-group storage vs the arena
    /// SoA hot path).
    pub fn kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = kernel;
        self
    }

    /// Set the arena member-column capacity hint.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Select the epoch runtime (synchronous in-process vs per-node
    /// actors over a transport).
    pub fn runtime(mut self, runtime: RuntimeChoice) -> Self {
        self.runtime = runtime;
        self
    }

    /// Replace the transport fault plan wholesale.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Set the transport's per-message drop probability.
    pub fn drop_rate(mut self, drop_rate: f64) -> Self {
        self.faults.drop_rate = drop_rate;
        self
    }

    /// Set the transport's maximum per-message latency (ticks).
    pub fn latency(mut self, latency_max: u64) -> Self {
        self.faults.latency_max = latency_max;
        self
    }

    /// Set the per-phase partition window (ticks).
    pub fn partition(mut self, partition_ticks: u64) -> Self {
        self.faults.partition_ticks = partition_ticks;
        self
    }

    /// Select the transport implementation (in-memory vs loopback TCP).
    /// `transport=socket` needs [`RuntimeChoice::Actor`]; the build
    /// rejects the sync combination.
    pub fn transport(mut self, transport: TransportChoice) -> Self {
        self.transport = transport;
        self
    }

    /// Pin the actor runtime's phase-window deadline (ticks) instead of
    /// adapting it to observed latency.
    pub fn window(mut self, ticks: u64) -> Self {
        self.window = Some(ticks);
        self
    }

    /// Set the string-layer adversary (§IV-B hoarding attacks).
    pub fn string_adversary(mut self, adversary: StringAdversarySpec) -> Self {
        self.string_adversary = adversary;
        self
    }

    /// Build the scenario's driver, for every spec the core layer can
    /// express ([`Defense::NoPow`] with a non-PoW strategy).
    ///
    /// Specs that need the minting pipeline return
    /// [`ScenarioError::NeedsPowLayer`]; build those through the total
    /// builder, `tg_pow::scenario::build`.
    pub fn build(&self) -> Result<Box<dyn EpochDriver>, ScenarioError> {
        self.check_transport()?;
        if self.defense != Defense::NoPow {
            return Err(ScenarioError::NeedsPowLayer("the defense mints through puzzles"));
        }
        let inner: Box<dyn IdentityProvider> = match self.strategy {
            StrategySpec::Honest => {
                Box::new(UniformProvider { n_good: self.n_good, n_bad: self.n_bad })
            }
            StrategySpec::PrecomputeHoarder { .. } => {
                return Err(ScenarioError::NeedsPowLayer("the hoarder grinds real puzzles"));
            }
            _ => {
                let strategy = self.strategy.build_strategy().expect("non-PoW strategy");
                Box::new(StrategicProvider::boxed(self.n_good, self.n_bad, strategy))
            }
        };
        Ok(driver_with_provider(self, inner))
    }

    /// Reject axis combinations no transport can serve: a socket
    /// transport without an actor runtime has nobody to move bytes for.
    /// Called by every builder (core and `tg_pow`) *and* by the codec,
    /// so the invalid combination is unrepresentable from any entry
    /// point.
    pub fn check_transport(&self) -> Result<(), ScenarioError> {
        if self.transport == TransportChoice::Socket && self.runtime != RuntimeChoice::Actor {
            return Err(ScenarioError::NeedsActorRuntime(
                "transport=socket moves actor protocol messages; pair it with runtime=actor",
            ));
        }
        Ok(())
    }
}

/// The kernel-over-provider driver for `spec`'s runtime choice: the
/// synchronous [`DynamicDriver`] or the actor-runtime
/// [`ActorDriver`](crate::runtime::ActorDriver). Used by both
/// [`ScenarioSpec::build`] and the `tg_pow` total builder's
/// provider-composed arms.
pub fn driver_with_provider(
    spec: &ScenarioSpec,
    inner: Box<dyn IdentityProvider>,
) -> Box<dyn EpochDriver> {
    match spec.runtime {
        RuntimeChoice::Sync => Box::new(DynamicDriver::with_provider(spec, inner)),
        RuntimeChoice::Actor => Box::new(crate::runtime::ActorDriver::with_provider(spec, inner)),
    }
}

/// `round(β/(1−β) · n_good)` — the adversary budget every sweep derives
/// from β (bad IDs are a β-fraction of the *total* population).
pub fn budget_for(beta: f64, n_good: usize) -> usize {
    (beta / (1.0 - beta) * n_good as f64).round() as usize
}

/// Why a scenario could not be built or parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The spec needs `tg-pow` (use `tg_pow::scenario::build`).
    NeedsPowLayer(&'static str),
    /// The spec selects a transport that only the actor runtime can
    /// drive (`transport=socket` with `runtime=sync`). Caught at
    /// parse/build time so no run ever starts on an unserviceable
    /// network.
    NeedsActorRuntime(&'static str),
    /// The spec combines axes no driver implements (e.g. the real
    /// string protocol over a single-graph construction).
    Unsupported(&'static str),
    /// A label/JSON form did not decode.
    Parse(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::NeedsPowLayer(why) => {
                write!(f, "scenario needs the PoW layer ({why}); build it via tg_pow::scenario")
            }
            ScenarioError::NeedsActorRuntime(why) => {
                write!(f, "scenario needs the actor runtime ({why})")
            }
            ScenarioError::Unsupported(why) => write!(f, "unsupported scenario: {why}"),
            ScenarioError::Parse(msg) => write!(f, "scenario parse error: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

// --- codec -----------------------------------------------------------

/// Codec version tag leading every label (and stored in the JSON form):
/// parsing rejects anything else, so the format can evolve without
/// silently misreading old keys.
const CODEC_VERSION: &str = "tg1";

fn encode_rule(rule: GroupSizeRule) -> String {
    match rule {
        GroupSizeRule::TinyLogLog => "loglog".to_string(),
        GroupSizeRule::ClassicLog { c } => format!("log:{c}"),
        GroupSizeRule::Fixed(k) => format!("fixed:{k}"),
    }
}

fn decode_rule(s: &str) -> Option<GroupSizeRule> {
    if s == "loglog" {
        return Some(GroupSizeRule::TinyLogLog);
    }
    if let Some(c) = s.strip_prefix("log:") {
        return Some(GroupSizeRule::ClassicLog { c: c.parse().ok()? });
    }
    if let Some(k) = s.strip_prefix("fixed:") {
        return Some(GroupSizeRule::Fixed(k.parse().ok()?));
    }
    None
}

fn encode_mode(mode: BuildMode) -> &'static str {
    match mode {
        BuildMode::DualGraph => "dual",
        BuildMode::SingleGraph => "single",
    }
}

fn decode_mode(s: &str) -> Option<BuildMode> {
    match s {
        "dual" => Some(BuildMode::DualGraph),
        "single" => Some(BuildMode::SingleGraph),
        _ => None,
    }
}

/// Whether a codec value is numeric or boolean (emitted bare in JSON)
/// rather than a string (quoted).
fn bare_json_value(v: &str) -> bool {
    v == "true" || v == "false" || v.parse::<f64>().is_ok()
}

/// The codec's field names, in emission order — the one list both
/// directions share: [`ScenarioSpec::fields`] zips values against it
/// and [`ScenarioSpec::from_fields`] validates keys with it, so a new
/// axis is added in exactly one place (plus its value/assignment).
const KEYS: [&str; 18] = [
    "n",
    "bad",
    "seed",
    "searches",
    "kind",
    "mode",
    "defense",
    "strings",
    "strategy",
    "idealized",
    "beta",
    "delta",
    "d1",
    "d2",
    "rule",
    "churn",
    "attack",
    "retries",
];

/// Codec fields added after `tg1` froze: emitted only when they differ
/// from their defaults, accepted (at most once) whether present or not.
/// Every label or JSON form written before these keys existed therefore
/// parses to a spec with the defaults — byte-compatible both ways.
const OPTIONAL_KEYS: [&str; 9] =
    ["kernel", "cap", "runtime", "drop", "lat", "part", "transport", "window", "stradv"];

impl ScenarioSpec {
    /// The spec as ordered `(key, value)` codec fields — the single
    /// source both serialized forms are generated from.
    fn fields(&self) -> Vec<(&'static str, String)> {
        let p = &self.params;
        let values = vec![
            self.n_good.to_string(),
            self.n_bad.to_string(),
            self.seed.to_string(),
            self.searches.to_string(),
            self.kind.name().to_string(),
            encode_mode(self.mode).to_string(),
            self.defense.label().to_string(),
            self.strings.label().to_string(),
            self.strategy.encode(),
            self.idealized_good.to_string(),
            p.beta.to_string(),
            p.delta.to_string(),
            p.d1.to_string(),
            p.d2.to_string(),
            encode_rule(p.size_rule),
            p.churn_rate.to_string(),
            p.attack_requests_per_id.to_string(),
            p.link_retries.to_string(),
        ];
        debug_assert_eq!(values.len(), KEYS.len());
        let mut fields: Vec<(&'static str, String)> = KEYS.into_iter().zip(values).collect();
        if self.kernel != KernelChoice::default() {
            fields.push(("kernel", self.kernel.label().to_string()));
        }
        if let Some(cap) = self.capacity {
            fields.push(("cap", cap.to_string()));
        }
        if self.runtime != RuntimeChoice::default() {
            fields.push(("runtime", self.runtime.label().to_string()));
        }
        if self.faults.drop_rate != 0.0 {
            fields.push(("drop", self.faults.drop_rate.to_string()));
        }
        if self.faults.latency_max != 0 {
            fields.push(("lat", self.faults.latency_max.to_string()));
        }
        if self.faults.partition_ticks != 0 {
            fields.push(("part", self.faults.partition_ticks.to_string()));
        }
        if self.transport != TransportChoice::default() {
            fields.push(("transport", self.transport.label().to_string()));
        }
        if let Some(window) = self.window {
            fields.push(("window", window.to_string()));
        }
        if self.string_adversary != StringAdversarySpec::default() {
            fields.push(("stradv", self.string_adversary.encode()));
        }
        fields
    }

    /// Rebuild a spec from codec fields (order-insensitive; every field
    /// required exactly once).
    fn from_fields(pairs: &[(String, String)]) -> Result<ScenarioSpec, ScenarioError> {
        let err = |msg: &str| ScenarioError::Parse(msg.to_string());
        let get = |key: &str| -> Result<&str, ScenarioError> {
            let mut found = pairs.iter().filter(|(k, _)| k == key);
            let first = found.next().ok_or_else(|| err(&format!("missing field `{key}`")))?;
            if found.next().is_some() {
                return Err(err(&format!("duplicate field `{key}`")));
            }
            Ok(&first.1)
        };
        let num = |key: &str| -> Result<f64, ScenarioError> {
            get(key)?.parse().map_err(|_| err(&format!("field `{key}` is not a number")))
        };
        let int = |key: &str| -> Result<u64, ScenarioError> {
            get(key)?.parse().map_err(|_| err(&format!("field `{key}` is not an integer")))
        };
        for (k, _) in pairs {
            if !KEYS.contains(&k.as_str()) && !OPTIONAL_KEYS.contains(&k.as_str()) {
                return Err(err(&format!("unknown field `{k}`")));
            }
        }
        // Optional fields: absent means default, present at most once.
        let opt = |key: &str| -> Result<Option<&str>, ScenarioError> {
            let mut found = pairs.iter().filter(|(k, _)| k == key);
            let first = found.next();
            if found.next().is_some() {
                return Err(err(&format!("duplicate field `{key}`")));
            }
            Ok(first.map(|(_, v)| v.as_str()))
        };
        let kernel = match opt("kernel")? {
            None => KernelChoice::default(),
            Some(v) => KernelChoice::parse(v).ok_or_else(|| err("bad `kernel`"))?,
        };
        let capacity = match opt("cap")? {
            None => None,
            Some(v) => {
                Some(v.parse::<u64>().map_err(|_| err("field `cap` is not an integer"))? as usize)
            }
        };
        let runtime = match opt("runtime")? {
            None => RuntimeChoice::default(),
            Some(v) => RuntimeChoice::parse(v).ok_or_else(|| err("bad `runtime`"))?,
        };
        let mut faults = FaultPlan::default();
        if let Some(v) = opt("drop")? {
            faults.drop_rate = v.parse().map_err(|_| err("field `drop` is not a number"))?;
            if !(0.0..=1.0).contains(&faults.drop_rate) {
                return Err(err("field `drop` is not a probability"));
            }
        }
        if let Some(v) = opt("lat")? {
            faults.latency_max = v.parse().map_err(|_| err("field `lat` is not an integer"))?;
        }
        if let Some(v) = opt("part")? {
            faults.partition_ticks =
                v.parse().map_err(|_| err("field `part` is not an integer"))?;
        }
        let transport = match opt("transport")? {
            None => TransportChoice::default(),
            Some(v) => TransportChoice::parse(v).ok_or_else(|| err("bad `transport`"))?,
        };
        let window = match opt("window")? {
            None => None,
            Some(v) => {
                let ticks: u64 = v.parse().map_err(|_| err("field `window` is not an integer"))?;
                if ticks == 0 {
                    return Err(err("field `window` must be positive"));
                }
                Some(ticks)
            }
        };
        let string_adversary = match opt("stradv")? {
            None => StringAdversarySpec::default(),
            Some(v) => StringAdversarySpec::decode(v).ok_or_else(|| err("bad `stradv`"))?,
        };
        let mut params = Params::paper_defaults();
        params.beta = num("beta")?;
        params.delta = num("delta")?;
        params.d1 = num("d1")?;
        params.d2 = num("d2")?;
        params.size_rule = decode_rule(get("rule")?).ok_or_else(|| err("bad `rule`"))?;
        params.churn_rate = num("churn")?;
        params.attack_requests_per_id = int("attack")? as usize;
        params.link_retries = int("retries")? as usize;
        let spec = ScenarioSpec {
            params,
            kind: GraphKind::parse(get("kind")?).ok_or_else(|| err("bad `kind`"))?,
            mode: decode_mode(get("mode")?).ok_or_else(|| err("bad `mode`"))?,
            defense: Defense::parse(get("defense")?).ok_or_else(|| err("bad `defense`"))?,
            strings: StringMode::parse(get("strings")?).ok_or_else(|| err("bad `strings`"))?,
            strategy: StrategySpec::decode(get("strategy")?)
                .ok_or_else(|| err("bad `strategy`"))?,
            n_good: int("n")? as usize,
            n_bad: int("bad")? as usize,
            idealized_good: get("idealized")?
                .parse()
                .map_err(|_| err("field `idealized` is not a bool"))?,
            searches: int("searches")? as usize,
            seed: int("seed")?,
            kernel,
            capacity,
            runtime,
            faults,
            transport,
            window,
            string_adversary,
        };
        spec.check_transport()?;
        Ok(spec)
    }

    /// The canonical one-line label: `tg1;key=value;…`. Stable across
    /// releases (versioned by the leading tag) and exactly invertible by
    /// [`ScenarioSpec::parse`] — fit for file names, cache keys, and
    /// seed-stream labels.
    pub fn label(&self) -> String {
        let mut out = String::from(CODEC_VERSION);
        for (k, v) in self.fields() {
            out.push(';');
            out.push_str(k);
            out.push('=');
            out.push_str(&v);
        }
        out
    }

    /// Parse a label produced by [`ScenarioSpec::label`].
    pub fn parse(label: &str) -> Result<ScenarioSpec, ScenarioError> {
        let err = |msg: &str| ScenarioError::Parse(msg.to_string());
        let mut parts = label.split(';');
        if parts.next() != Some(CODEC_VERSION) {
            return Err(err(&format!("label must start with `{CODEC_VERSION};`")));
        }
        let pairs: Vec<(String, String)> = parts
            .map(|p| {
                let (k, v) =
                    p.split_once('=').ok_or_else(|| err(&format!("field `{p}` has no `=`")))?;
                Ok((k.to_string(), v.to_string()))
            })
            .collect::<Result<_, ScenarioError>>()?;
        ScenarioSpec::from_fields(&pairs)
    }

    /// The spec as a flat JSON object (hand-rolled; the workspace
    /// vendors no serde). Numbers and booleans are bare, everything else
    /// is a quoted string; a `"codec"` field carries the version tag.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"codec\": \"{CODEC_VERSION}\""));
        for (k, v) in self.fields() {
            out.push_str(",\n");
            if bare_json_value(&v) {
                out.push_str(&format!("  \"{k}\": {v}"));
            } else {
                out.push_str(&format!("  \"{k}\": \"{v}\""));
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Parse the flat JSON form produced by [`ScenarioSpec::to_json`].
    ///
    /// This is a scanner for exactly that shape — one object of
    /// string/number/boolean fields, no nesting, no escapes (no codec
    /// value contains `"`, `,`, or `\`) — not a general JSON parser.
    pub fn from_json(json: &str) -> Result<ScenarioSpec, ScenarioError> {
        let err = |msg: &str| ScenarioError::Parse(msg.to_string());
        let body = json
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| err("not a JSON object"))?;
        let mut pairs = Vec::new();
        for field in body.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (k, v) = field.split_once(':').ok_or_else(|| err("field without `:`"))?;
            let k = k.trim().strip_prefix('"').and_then(|s| s.strip_suffix('"'));
            let k = k.ok_or_else(|| err("key is not a string"))?;
            let v = v.trim();
            let v = v.strip_prefix('"').and_then(|s| s.strip_suffix('"')).unwrap_or(v);
            pairs.push((k.to_string(), v.to_string()));
        }
        let codec = pairs.iter().position(|(k, _)| k == "codec");
        match codec {
            Some(i) if pairs[i].1 == CODEC_VERSION => {
                pairs.remove(i);
            }
            _ => return Err(err(&format!("JSON form must carry codec `{CODEC_VERSION}`"))),
        }
        ScenarioSpec::from_fields(&pairs)
    }
}

// --- the driver ------------------------------------------------------

/// Everything one epoch produced, across both system layers: the §III
/// dynamic measurements (always present) and the §IV string/minting
/// measurements (`None` when the scenario runs without the PoW layer or
/// with synthesized strings).
#[derive(Clone, Debug, Default)]
pub struct EpochObservation {
    /// Epoch index the freshly built graphs serve.
    pub epoch: u64,
    /// Red fraction per side.
    pub frac_red: Vec<f64>,
    /// Good-majority fraction per side.
    pub frac_good_majority: Vec<f64>,
    /// Confused fraction per side.
    pub frac_confused: Vec<f64>,
    /// Paper-invariant fraction per side.
    pub frac_paper_invariant: Vec<f64>,
    /// Search success using a single side (the `q_f` realization).
    pub search_success_single: f64,
    /// Search success using both sides (what the protocol achieves).
    pub search_success_dual: f64,
    /// Construction counters.
    pub build: BuildStats,
    /// Per-good-pool-ID group memberships (Lemma 10): mean.
    pub mean_memberships: f64,
    /// Maximum memberships held by one good pool ID.
    pub max_memberships: usize,
    /// Messages spent on construction searches this epoch.
    pub metrics: Metrics,
    /// Adversarial IDs that entered the dynamic layer this epoch (under
    /// PoW: the minted bad count).
    pub bad_ids: usize,
    /// Key-space fraction those IDs own under the successor rule.
    pub bad_share: f64,
    /// Groups without a good majority, summed over all sides, measured
    /// on the freshly built graphs.
    pub captured_groups: usize,
    /// Total groups across all sides.
    pub total_groups: usize,
    /// The epoch string minting bound to (PoW only).
    pub epoch_string: Option<u64>,
    /// Whether the string protocol reached Lemma 12 agreement
    /// ([`StringMode::Protocol`] only).
    pub strings_agreement: Option<bool>,
    /// Fraction of good giant-component pairs able to verify each
    /// other's signing strings ([`StringMode::Protocol`] only).
    pub verification_coverage: Option<f64>,
    /// Good IDs minted for the epoch (PoW only).
    pub minted_good: Option<usize>,
    /// Good participants who missed the minting window (PoW statistical
    /// pipeline only).
    pub good_misses: Option<usize>,
    /// Protocol messages whose delivery tick fell past the phase-window
    /// deadline this epoch (`tg_sim::net::NetStats::late`, as a
    /// per-epoch delta). Always `0` under [`RuntimeChoice::Sync`] — the
    /// synchronous drivers have no network — and under the actor
    /// runtime's perfect transport, which keeps the sync/actor
    /// observation equivalence exact.
    pub late: u64,
}

impl EpochObservation {
    /// Captured groups as a fraction of all groups (the frontier
    /// engines' cell metric).
    pub fn captured_frac(&self) -> f64 {
        self.captured_groups as f64 / self.total_groups.max(1) as f64
    }

    /// Refill the dynamic-layer fields from an [`EpochReport`] and the
    /// post-swap operational graphs, reusing this observation's buffers
    /// (the batched-driver hot path re-allocates nothing per epoch).
    /// PoW fields are reset to `None`; drivers with a minting layer fill
    /// them afterwards.
    pub fn fill_dynamic(&mut self, r: &EpochReport, graphs: GraphsView<'_>) {
        self.epoch = r.epoch;
        for (dst, src) in [
            (&mut self.frac_red, &r.frac_red),
            (&mut self.frac_good_majority, &r.frac_good_majority),
            (&mut self.frac_confused, &r.frac_confused),
            (&mut self.frac_paper_invariant, &r.frac_paper_invariant),
        ] {
            dst.clear();
            dst.extend_from_slice(src);
        }
        self.search_success_single = r.search_success_single;
        self.search_success_dual = r.search_success_dual;
        self.build = r.build;
        self.mean_memberships = r.mean_memberships;
        self.max_memberships = r.max_memberships;
        self.metrics = r.metrics;
        let (mut captured, mut total) = (0usize, 0usize);
        for g in graphs.iter() {
            total += g.len();
            captured += (0..g.len()).filter(|&i| !g.has_good_majority(i)).count();
        }
        self.captured_groups = captured;
        self.total_groups = total;
        self.epoch_string = None;
        self.strings_agreement = None;
        self.verification_coverage = None;
        self.minted_good = None;
        self.good_misses = None;
        self.late = 0;
    }
}

/// The scalar projection of one [`EpochObservation`] — the `Copy` row a
/// batched run appends to its [`ObservationBatch`]. Optional PoW counts
/// are encoded as `f64::NAN` when the scenario has no minting layer,
/// keeping every column a plain numeric slice.
#[derive(Clone, Copy, Debug)]
pub struct ObsRow {
    /// Epoch index the freshly built graphs serve.
    pub epoch: u64,
    /// Search success using a single side.
    pub search_success_single: f64,
    /// Search success using both sides.
    pub search_success_dual: f64,
    /// Side-0 red fraction.
    pub frac_red_s0: f64,
    /// Groups without a good majority, all sides.
    pub captured_groups: u32,
    /// Total groups, all sides.
    pub total_groups: u32,
    /// Adversarial IDs that entered the dynamic layer.
    pub bad_ids: u32,
    /// Key-space fraction those IDs own.
    pub bad_share: f64,
    /// Mean per-good-pool-ID memberships.
    pub mean_memberships: f64,
    /// Good IDs minted (PoW only; `NAN` otherwise).
    pub minted_good: f64,
    /// Good minting-window misses (PoW statistical pipeline; `NAN`
    /// otherwise).
    pub good_misses: f64,
    /// Messages past the phase-window deadline this epoch (`0` outside
    /// the actor runtime).
    pub late: u64,
}

impl ObsRow {
    /// Project an observation onto the batch columns.
    pub fn of(o: &EpochObservation) -> ObsRow {
        ObsRow {
            epoch: o.epoch,
            search_success_single: o.search_success_single,
            search_success_dual: o.search_success_dual,
            frac_red_s0: o.frac_red.first().copied().unwrap_or(0.0),
            captured_groups: o.captured_groups as u32,
            total_groups: o.total_groups as u32,
            bad_ids: o.bad_ids as u32,
            bad_share: o.bad_share,
            mean_memberships: o.mean_memberships,
            minted_good: o.minted_good.map(|v| v as f64).unwrap_or(f64::NAN),
            good_misses: o.good_misses.map(|v| v as f64).unwrap_or(f64::NAN),
            late: o.late,
        }
    }

    /// Version tag leading every encoded row line. `o2` appended the
    /// `late` column; `o1` streams in old stores no longer decode (the
    /// store is a local cache, so a stale stream re-simulates).
    pub const LINE_VERSION: &'static str = "o2";

    /// Encode the row as one versioned, comma-separated text line, the
    /// record payload the result store keeps per epoch. Floats are
    /// rendered with `Display`, whose shortest-round-trip guarantee
    /// makes [`ObsRow::decode_line`] bit-exact — a warm sweep recomputes
    /// the same statistics as the live run that wrote the stream.
    pub fn encode_line(&self) -> String {
        format!(
            "{};{},{},{},{},{},{},{},{},{},{},{},{}",
            Self::LINE_VERSION,
            self.epoch,
            self.search_success_single,
            self.search_success_dual,
            self.frac_red_s0,
            self.captured_groups,
            self.total_groups,
            self.bad_ids,
            self.bad_share,
            self.mean_memberships,
            self.minted_good,
            self.good_misses,
            self.late,
        )
    }

    /// Decode one [`ObsRow::encode_line`] line; rejects unknown
    /// versions and malformed fields with a description.
    pub fn decode_line(line: &str) -> Result<ObsRow, String> {
        let (version, body) =
            line.split_once(';').ok_or_else(|| format!("missing version tag in `{line}`"))?;
        if version != Self::LINE_VERSION {
            return Err(format!(
                "unsupported row version `{version}` (want {})",
                Self::LINE_VERSION
            ));
        }
        let fields: Vec<&str> = body.split(',').collect();
        if fields.len() != 12 {
            return Err(format!("expected 12 fields, found {} in `{line}`", fields.len()));
        }
        let f = |i: usize| -> Result<f64, String> {
            fields[i].parse().map_err(|e| format!("field {i} `{}`: {e}", fields[i]))
        };
        let u = |i: usize| -> Result<u32, String> {
            fields[i].parse().map_err(|e| format!("field {i} `{}`: {e}", fields[i]))
        };
        Ok(ObsRow {
            epoch: fields[0].parse().map_err(|e| format!("field 0 `{}`: {e}", fields[0]))?,
            search_success_single: f(1)?,
            search_success_dual: f(2)?,
            frac_red_s0: f(3)?,
            captured_groups: u(4)?,
            total_groups: u(5)?,
            bad_ids: u(6)?,
            bad_share: f(7)?,
            mean_memberships: f(8)?,
            minted_good: f(9)?,
            good_misses: f(10)?,
            late: fields[11].parse().map_err(|e| format!("field 11 `{}`: {e}", fields[11]))?,
        })
    }
}

/// Driver-owned SoA columns over a batched run: one entry per stepped
/// epoch, read back as plain slices. [`EpochDriver::run`] clears and
/// refills the same batch (capacity is retained), so sweeping thousands
/// of cells re-allocates nothing once the columns have grown to the
/// epoch count.
#[derive(Clone, Debug, Default)]
pub struct ObservationBatch {
    epoch: Vec<u64>,
    search_success_single: Vec<f64>,
    search_success_dual: Vec<f64>,
    frac_red_s0: Vec<f64>,
    captured_groups: Vec<u32>,
    total_groups: Vec<u32>,
    bad_ids: Vec<u32>,
    bad_share: Vec<f64>,
    mean_memberships: Vec<f64>,
    minted_good: Vec<f64>,
    good_misses: Vec<f64>,
    late: Vec<u64>,
}

impl ObservationBatch {
    /// An empty batch.
    pub fn new() -> ObservationBatch {
        ObservationBatch::default()
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.epoch.len()
    }

    /// Whether no epochs are recorded.
    pub fn is_empty(&self) -> bool {
        self.epoch.is_empty()
    }

    /// Drop the rows, keep the column capacity.
    pub fn clear(&mut self) {
        self.epoch.clear();
        self.search_success_single.clear();
        self.search_success_dual.clear();
        self.frac_red_s0.clear();
        self.captured_groups.clear();
        self.total_groups.clear();
        self.bad_ids.clear();
        self.bad_share.clear();
        self.mean_memberships.clear();
        self.minted_good.clear();
        self.good_misses.clear();
        self.late.clear();
    }

    /// Append one epoch's row.
    pub fn push(&mut self, r: ObsRow) {
        self.epoch.push(r.epoch);
        self.search_success_single.push(r.search_success_single);
        self.search_success_dual.push(r.search_success_dual);
        self.frac_red_s0.push(r.frac_red_s0);
        self.captured_groups.push(r.captured_groups);
        self.total_groups.push(r.total_groups);
        self.bad_ids.push(r.bad_ids);
        self.bad_share.push(r.bad_share);
        self.mean_memberships.push(r.mean_memberships);
        self.minted_good.push(r.minted_good);
        self.good_misses.push(r.good_misses);
        self.late.push(r.late);
    }

    /// Epoch indices.
    pub fn epochs(&self) -> &[u64] {
        &self.epoch
    }

    /// Single-side search success per epoch.
    pub fn search_success_single(&self) -> &[f64] {
        &self.search_success_single
    }

    /// Dual-side search success per epoch.
    pub fn search_success_dual(&self) -> &[f64] {
        &self.search_success_dual
    }

    /// Side-0 red fraction per epoch.
    pub fn frac_red_s0(&self) -> &[f64] {
        &self.frac_red_s0
    }

    /// Captured-group counts per epoch (all sides).
    pub fn captured_groups(&self) -> &[u32] {
        &self.captured_groups
    }

    /// Total group counts per epoch (all sides).
    pub fn total_groups(&self) -> &[u32] {
        &self.total_groups
    }

    /// Adversarial IDs entering the dynamic layer per epoch.
    pub fn bad_ids(&self) -> &[u32] {
        &self.bad_ids
    }

    /// Adversarial key-space share per epoch.
    pub fn bad_share(&self) -> &[f64] {
        &self.bad_share
    }

    /// Mean per-good-pool-ID memberships per epoch.
    pub fn mean_memberships(&self) -> &[f64] {
        &self.mean_memberships
    }

    /// Good IDs minted per epoch (`NAN` without a PoW layer).
    pub fn minted_good(&self) -> &[f64] {
        &self.minted_good
    }

    /// Good minting-window misses per epoch (`NAN` outside the PoW
    /// statistical pipeline).
    pub fn good_misses(&self) -> &[f64] {
        &self.good_misses
    }

    /// Late-window messages per epoch (`0` outside the actor runtime).
    pub fn late(&self) -> &[u64] {
        &self.late
    }

    /// Re-extract row `i` (the inverse of [`ObservationBatch::push`]),
    /// used to encode a finished batch into store records.
    pub fn row_at(&self, i: usize) -> ObsRow {
        ObsRow {
            epoch: self.epoch[i],
            search_success_single: self.search_success_single[i],
            search_success_dual: self.search_success_dual[i],
            frac_red_s0: self.frac_red_s0[i],
            captured_groups: self.captured_groups[i],
            total_groups: self.total_groups[i],
            bad_ids: self.bad_ids[i],
            bad_share: self.bad_share[i],
            mean_memberships: self.mean_memberships[i],
            minted_good: self.minted_good[i],
            good_misses: self.good_misses[i],
            late: self.late[i],
        }
    }

    /// Captured fraction at epoch `i`.
    pub fn captured_frac_at(&self, i: usize) -> f64 {
        self.captured_groups[i] as f64 / self.total_groups[i].max(1) as f64
    }

    fn mean(col: &[f64]) -> f64 {
        col.iter().sum::<f64>() / col.len().max(1) as f64
    }

    /// Mean captured-group fraction over the batch.
    pub fn mean_captured_frac(&self) -> f64 {
        (0..self.len()).map(|i| self.captured_frac_at(i)).sum::<f64>() / self.len().max(1) as f64
    }

    /// Mean adversarial IDs per epoch.
    pub fn mean_bad_ids(&self) -> f64 {
        self.bad_ids.iter().map(|&b| b as f64).sum::<f64>() / self.len().max(1) as f64
    }

    /// Mean adversarial key-space share.
    pub fn mean_bad_share(&self) -> f64 {
        Self::mean(&self.bad_share)
    }

    /// Mean side-0 red fraction.
    pub fn mean_frac_red_s0(&self) -> f64 {
        Self::mean(&self.frac_red_s0)
    }

    /// Mean dual-search success.
    pub fn mean_success_dual(&self) -> f64 {
        Self::mean(&self.search_success_dual)
    }

    /// Mean late-window messages per epoch.
    pub fn mean_late(&self) -> f64 {
        self.late.iter().map(|&l| l as f64).sum::<f64>() / self.len().max(1) as f64
    }
}

/// The one verb every simulated system understands: advance one epoch,
/// observe it. `ScenarioSpec::build` (or `tg_pow::scenario::build`)
/// erases which concrete system sits behind the trait.
pub trait EpochDriver {
    /// Advance one epoch. The returned observation borrows the driver's
    /// reusable buffer and is valid until the next call.
    fn step(&mut self) -> &EpochObservation;

    /// The last observation (all-zero before the first
    /// [`EpochDriver::step`]).
    fn observation(&self) -> &EpochObservation;

    /// The operational group graphs (for measurements the observation
    /// does not pre-aggregate, e.g. victim-arc probes).
    fn graphs(&self) -> GraphsView<'_>;

    /// The epoch the operational graphs serve.
    fn epoch(&self) -> u64;

    /// The driver-owned columnar record of the last [`EpochDriver::run`]
    /// (empty before the first batched run).
    fn batch(&self) -> &ObservationBatch;

    /// Mutable access to the batch columns (how the provided
    /// [`EpochDriver::run`] fills them).
    fn batch_mut(&mut self) -> &mut ObservationBatch;

    /// Advance `epochs` epochs, appending one [`ObsRow`] per epoch to
    /// the driver-owned [`ObservationBatch`], and return it — the
    /// batched sweep-loop entry point. Columns are cleared first but
    /// keep their capacity, so repeated runs re-allocate nothing.
    fn run(&mut self, epochs: usize) -> &ObservationBatch {
        self.batch_mut().clear();
        for _ in 0..epochs {
            self.step();
            let row = ObsRow::of(self.observation());
            self.batch_mut().push(row);
        }
        self.batch()
    }
}

/// Records each epoch's adversary census on the way into the dynamic
/// layer (the system consumes the IDs, so they are measured in
/// transit). No RNG is drawn, so wrapping changes no byte of any run.
pub(crate) struct RecordingProvider {
    pub(crate) inner: Box<dyn IdentityProvider>,
    pub(crate) last_bad: usize,
    pub(crate) last_share: f64,
}

impl IdentityProvider for RecordingProvider {
    fn ids_for_epoch(
        &mut self,
        epoch: u64,
        view: &crate::dynamic::adversary::AdversaryView<'_>,
        rng: &mut StdRng,
    ) -> crate::dynamic::provider::EpochIds {
        let ids = self.inner.ids_for_epoch(epoch, view, rng);
        self.last_bad = ids.bad.len();
        self.last_share = ids.bad_ring_share();
        ids
    }
}

/// The [`EpochDriver`] over the §III dynamic layer alone
/// ([`Defense::NoPow`]).
pub struct DynamicDriver {
    sys: EpochKernel,
    provider: RecordingProvider,
    obs: EpochObservation,
    batch: ObservationBatch,
}

impl DynamicDriver {
    /// Build the driver for `spec` around an explicit identity provider
    /// (how `tg_pow::scenario` composes minting providers with this
    /// driver; core-only callers should use [`ScenarioSpec::build`]).
    /// The spec's `kernel` knob picks the legacy per-group or the
    /// arena/SoA epoch kernel; both produce identical observations.
    pub fn with_provider(spec: &ScenarioSpec, inner: Box<dyn IdentityProvider>) -> DynamicDriver {
        let mut provider = RecordingProvider { inner, last_bad: 0, last_share: 0.0 };
        let mut sys = EpochKernel::new(
            spec.kernel,
            spec.params,
            spec.kind,
            spec.mode,
            &mut provider,
            spec.seed,
            spec.capacity,
        );
        sys.set_searches_per_epoch(spec.searches);
        DynamicDriver {
            sys,
            provider,
            obs: EpochObservation::default(),
            batch: ObservationBatch::new(),
        }
    }
}

impl EpochDriver for DynamicDriver {
    fn step(&mut self) -> &EpochObservation {
        let r = self.sys.advance_epoch(&mut self.provider);
        self.obs.fill_dynamic(&r, self.sys.graphs());
        self.obs.bad_ids = self.provider.last_bad;
        self.obs.bad_share = self.provider.last_share;
        &self.obs
    }

    fn observation(&self) -> &EpochObservation {
        &self.obs
    }

    fn graphs(&self) -> GraphsView<'_> {
        self.sys.graphs()
    }

    fn epoch(&self) -> u64 {
        self.sys.epoch()
    }

    fn batch(&self) -> &ObservationBatch {
        &self.batch
    }

    fn batch_mut(&mut self) -> &mut ObservationBatch {
        &mut self.batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::provider::UniformProvider;
    use crate::dynamic::system::DynamicSystem;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new(380, 7).churn(0.1).attack_requests(1).searches(200)
    }

    #[test]
    fn label_round_trips() {
        let specs = [
            spec(),
            spec()
                .beta(0.12)
                .group_factor(6.0)
                .topology(GraphKind::D2B)
                .build_mode(BuildMode::SingleGraph)
                .strategy(StrategySpec::ChurnTimed { trigger: 0.12, retainer: 0.2 }),
            spec()
                .defense(Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: false })
                .strings(StringMode::Synthesized)
                .strategy(StrategySpec::PrecomputeHoarder { fam_seed: 99, attempts: 2000 }),
            spec().kernel(KernelChoice::Arena).capacity(1 << 16),
            spec().kernel(KernelChoice::Arena),
        ];
        for s in specs {
            let label = s.label();
            assert_eq!(ScenarioSpec::parse(&label).unwrap(), s, "label: {label}");
            let json = s.to_json();
            assert_eq!(ScenarioSpec::from_json(&json).unwrap(), s, "json: {json}");
        }
    }

    #[test]
    fn parse_rejects_malformed_labels() {
        for bad in [
            "",
            "tg0;n=1",
            "tg1;n=1",                              // missing fields
            &format!("{};extra=1", spec().label()), // unknown field
            &format!("{};n=380", spec().label()),   // duplicate field
            &spec().label().replace("kind=chord", "kind=moebius"),
            &spec().label().replace("strategy=honest", "strategy=quantum"),
            &format!("{};kernel=ring", spec().label()), // bad kernel token
            &format!("{};cap=big", spec().label()),     // bad capacity
            &format!("{};kernel=arena;kernel=arena", spec().label()), // dup optional
        ] {
            assert!(ScenarioSpec::parse(bad).is_err(), "must reject: {bad}");
        }
        assert!(ScenarioSpec::from_json("{}").is_err());
        assert!(ScenarioSpec::from_json("not json").is_err());
    }

    #[test]
    fn core_build_rejects_pow_specs() {
        let pow = spec().defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true });
        assert!(matches!(pow.build(), Err(ScenarioError::NeedsPowLayer(_))));
        let hoarder =
            spec().strategy(StrategySpec::PrecomputeHoarder { fam_seed: 1, attempts: 10 });
        assert!(matches!(hoarder.build(), Err(ScenarioError::NeedsPowLayer(_))));
    }

    /// The conformance contract at the core layer: a spec-built driver
    /// reproduces a hand-constructed `DynamicSystem` run byte-for-byte,
    /// honest and strategic alike.
    #[test]
    fn driver_matches_direct_dynamic_system() {
        for strategy in [StrategySpec::Honest, StrategySpec::GapFilling] {
            let s = spec().strategy(strategy);
            let mut driver = s.build().unwrap();

            let mut direct: Box<dyn IdentityProvider> = match strategy {
                StrategySpec::Honest => {
                    Box::new(UniformProvider { n_good: s.n_good, n_bad: s.n_bad })
                }
                _ => Box::new(StrategicProvider::boxed(
                    s.n_good,
                    s.n_bad,
                    strategy.build_strategy().unwrap(),
                )),
            };
            let mut sys = DynamicSystem::new(s.params, s.kind, s.mode, &mut *direct, s.seed);
            sys.searches_per_epoch = s.searches;

            for _ in 0..3 {
                let r = sys.advance_epoch(&mut *direct);
                let o = driver.step();
                assert_eq!(o.epoch, r.epoch);
                assert_eq!(o.frac_red, r.frac_red);
                assert_eq!(o.search_success_single, r.search_success_single);
                assert_eq!(o.search_success_dual, r.search_success_dual);
                assert_eq!(o.build.captured_slots, r.build.captured_slots);
                assert_eq!(o.mean_memberships, r.mean_memberships);
                assert_eq!(o.metrics, r.metrics);
                assert!(o.epoch_string.is_none() && o.minted_good.is_none());
            }
            assert_eq!(driver.epoch(), sys.epoch);
            assert_eq!(driver.graphs().sides(), sys.graphs.len());
        }
    }

    /// `run(n)` is `n` steps recorded into one driver-owned columnar
    /// batch: per-epoch rows match step-by-step observations, and the
    /// column storage is reused (not re-grown) across batched runs.
    #[test]
    fn batched_run_fills_columns_and_reuses_buffers() {
        let s = spec();
        let mut stepped = s.build().unwrap();
        let mut rows = Vec::new();
        for _ in 0..3 {
            rows.push(ObsRow::of(stepped.step()));
        }

        let mut batched = s.build().unwrap();
        let b = batched.run(3);
        assert_eq!(b.len(), 3);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(b.epochs()[i], row.epoch);
            assert_eq!(b.frac_red_s0()[i], row.frac_red_s0);
            assert_eq!(b.search_success_dual()[i], row.search_success_dual);
            assert_eq!(b.captured_groups()[i], row.captured_groups);
            assert_eq!(b.bad_ids()[i], row.bad_ids);
            assert_eq!(b.mean_memberships()[i], row.mean_memberships);
            assert!(b.minted_good()[i].is_nan(), "no PoW layer: minted column is NAN");
        }
        let first_ptr = b.frac_red_s0().as_ptr();
        let b = batched.run(2);
        assert_eq!(b.len(), 2, "run clears the previous batch");
        assert_eq!(b.frac_red_s0().as_ptr(), first_ptr, "columns are reused, not re-grown");
    }

    /// The legacy and arena kernels agree observation-for-observation
    /// when driven through the scenario layer.
    #[test]
    fn arena_kernel_spec_matches_legacy_spec() {
        let base = spec().topology(GraphKind::D2B);
        let mut legacy = base.build().unwrap();
        let mut arena = base.kernel(KernelChoice::Arena).build().unwrap();
        for _ in 0..3 {
            let a = legacy.step().clone();
            let b = arena.step();
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn budget_matches_sweep_convention() {
        assert_eq!(budget_for(0.05, 380), 20);
        assert_eq!(budget_for(0.06, 1200), 77);
        assert_eq!(budget_for(0.05, 2000), 105);
    }
}
