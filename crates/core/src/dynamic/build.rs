//! Building the new group graphs from the old ones (§III-A).
//!
//! For every new leader `w` and each side `s ∈ {1,2}` of the epoch:
//!
//! * **membership**: slot `i` targets the point `h_s(w, i)`; a
//!   bootstrapping group searches for its successor in *both* old graphs.
//!   If both search paths fail, the adversary controls the result and
//!   captures the slot (Lemma 7, first failure mode). If a search
//!   succeeds, the slot gets the true successor — which is itself bad
//!   with probability `≈ β` (Lemma 6, the second failure mode). The
//!   solicited ID then *verifies* with its own dual searches and may
//!   erroneously reject if both fail.
//! * **neighbors**: each topology link of `G_w` is located and verified
//!   with dual searches; if a required link cannot be established, `G_w`
//!   is *confused* (Lemma 8) and therefore red.
//!
//! The single-graph ablation ([`BuildMode::SingleGraph`]) replaces every
//! dual search with one search in one old graph — per-slot failure `q_f`
//! instead of `q_f²` — which is exactly the compounding-error design the
//! paper warns against; experiment E4 shows it diverge.

use crate::graph::{GroupGraph, GroupGraphView};
use crate::group::Group;
use crate::params::Params;
use crate::population::Population;
use crate::routing::search_path;
use rand::rngs::StdRng;
use rand::Rng;
use tg_crypto::OracleFamily;
use tg_idspace::Id;
use tg_overlay::GraphKind;
use tg_sim::Metrics;

/// Whether construction uses the paper's two-graph dual searches or the
/// naive single-graph hand-off (ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildMode {
    /// The paper: two old graphs, every protocol search done in both.
    DualGraph,
    /// Ablation: one old graph, single searches.
    SingleGraph,
}

impl BuildMode {
    /// Number of group graphs per epoch under this mode.
    pub fn sides(&self) -> usize {
        match self {
            BuildMode::DualGraph => 2,
            BuildMode::SingleGraph => 1,
        }
    }
}

/// Counters from one epoch's construction (the Lemma 6/7/8/10 events).
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Membership slots attempted.
    pub member_slots: u64,
    /// Slots captured by the adversary (all construction searches failed).
    pub captured_slots: u64,
    /// Slots whose (honest) successor was a bad ID (Lemma 6).
    pub bad_member_draws: u64,
    /// Slots lost to erroneous verification rejection.
    pub rejected_slots: u64,
    /// Topology links required.
    pub links_required: u64,
    /// Links that could not be established (group confused).
    pub links_failed: u64,
    /// Spurious adversarial requests accepted by good IDs (Lemma 10).
    pub spurious_accepted: u64,
    /// Spurious adversarial requests issued.
    pub spurious_issued: u64,
}

impl BuildStats {
    /// Merge counters from another build.
    pub fn merge(&mut self, o: &BuildStats) {
        self.member_slots += o.member_slots;
        self.captured_slots += o.captured_slots;
        self.bad_member_draws += o.bad_member_draws;
        self.rejected_slots += o.rejected_slots;
        self.links_required += o.links_required;
        self.links_failed += o.links_failed;
        self.spurious_accepted += o.spurious_accepted;
        self.spurious_issued += o.spurious_issued;
    }
}

/// Pick a bootstrapping group: a u.a.r. *blue* group of the given old
/// graph (the paper assumes joiners know a good bootstrap group,
/// Appendix IX). Returns `None` when the graph has no blue group left.
///
/// Generic over the storage layout so the arena kernel draws the exact
/// same bootstrap sequence as the legacy path (the draw count depends
/// only on the RNG stream and the old graph's colors).
pub(crate) fn pick_boot<G: GroupGraphView>(old: &G, rng: &mut StdRng) -> Option<usize> {
    // Rejection sampling: expected O(1) tries while most groups are blue;
    // fall back to a scan when the graph is badly degraded.
    for _ in 0..32 {
        let i = rng.gen_range(0..old.len());
        if !old.is_red(i) {
            return Some(i);
        }
    }
    let blues = old.blue_indices();
    if blues.is_empty() {
        None
    } else {
        Some(blues[rng.gen_range(0..blues.len())])
    }
}

/// One protocol search for `point` in old graph `old`, initiated from a
/// bootstrap (or the verifier's own group). Success means the search path
/// stayed blue.
pub(crate) fn protocol_search<G: GroupGraphView>(
    old: &G,
    from: Option<usize>,
    point: Id,
    metrics: &mut Metrics,
) -> bool {
    match from {
        None => false,
        Some(idx) => search_path(old, idx, point, metrics).is_success(),
    }
}

/// Dual (or single, per mode) search across the old graphs. `from[s]` is
/// the initiating group index in old graph `s`. Short-circuits after the
/// first success (`any`), which both kernels must preserve — the skipped
/// second search never reaches [`Metrics`].
pub(crate) fn construction_search<G: GroupGraphView>(
    olds: &[G],
    from: &[Option<usize>],
    point: Id,
    metrics: &mut Metrics,
) -> bool {
    olds.iter().zip(from.iter()).any(|(g, &f)| protocol_search(g, f, point, metrics))
}

/// Build the new group graphs for the next epoch.
///
/// * `olds` — the operational graphs of the current epoch (2 for
///   [`BuildMode::DualGraph`], 1 for the ablation). Their *leader*
///   generation becomes the member pool of the new graphs.
/// * `new_leaders` — the next epoch's ID population.
///
/// Returns the new graphs (one per side) and the construction counters.
#[allow(clippy::too_many_arguments)] // the protocol's full parameter surface
pub fn build_new_graphs(
    olds: &[GroupGraph],
    new_leaders: &Population,
    kind: GraphKind,
    fam: &OracleFamily,
    params: &Params,
    mode: BuildMode,
    rng: &mut StdRng,
    metrics: &mut Metrics,
) -> (Vec<GroupGraph>, BuildStats) {
    assert_eq!(olds.len(), mode.sides(), "old-graph count must match the build mode");
    let n_new = new_leaders.len();
    let pool = olds[0].leaders.clone();
    let pool_bad: Vec<usize> = pool.bad_indices();
    let draws = params.draws(n_new);
    let mut stats = BuildStats::default();

    let mut sides: Vec<(Vec<Group>, Vec<bool>)> = Vec::with_capacity(mode.sides());

    for side in 0..mode.sides() {
        let oracle = match mode {
            BuildMode::DualGraph => fam.membership(side),
            BuildMode::SingleGraph => fam.h1,
        };
        let topology = kind.build(new_leaders.ring().clone());
        let mut groups: Vec<Group> = Vec::with_capacity(n_new);
        let mut confused = vec![false; n_new];

        #[allow(clippy::needless_range_loop)] // w indexes several parallel structures
        for w in 0..n_new {
            let wid = new_leaders.ring().at(w);

            // --- Membership (Lemma 6/7) ---
            // Fresh bootstrap groups per search: the bootstrap performs
            // each search anyway, and initiating-point diversity keeps
            // failures of different slots from coupling through a shared
            // early route.
            let mut members: Vec<u32> = Vec::with_capacity(draws);
            let mut captured = 0u32;
            for i in 0..draws {
                stats.member_slots += 1;
                let boots: Vec<Option<usize>> = olds.iter().map(|g| pick_boot(g, rng)).collect();
                let point = oracle.hash_id_index(wid, i as u32);
                if !construction_search(olds, &boots, point, metrics) {
                    // Both searches failed: the adversary answers and
                    // plants one of its pool IDs (or the slot is simply
                    // lost if it has none).
                    stats.captured_slots += 1;
                    if !pool_bad.is_empty() {
                        captured += 1;
                    }
                    continue;
                }
                let cand = pool.ring().successor_index(point);
                if pool.is_bad(cand) {
                    // An honest resolution that happens to be a bad ID —
                    // it gladly accepts membership.
                    stats.bad_member_draws += 1;
                    members.push(cand as u32);
                    continue;
                }
                // Verification by the good candidate: its own searches,
                // initiated from its own groups in the old graphs.
                let own: Vec<Option<usize>> = (0..olds.len()).map(|_| Some(cand)).collect();
                if construction_search(olds, &own, point, metrics) {
                    members.push(cand as u32);
                } else {
                    stats.rejected_slots += 1;
                }
            }
            groups.push(Group::new(w as u32, members, captured));

            // --- Neighbor links (Lemma 8) ---
            // "Updating Links" re-runs the update whenever a better match
            // joins; only the final selection matters for confusion, so a
            // link gets `1 + link_retries` independent chances.
            let attempts = 1 + params.link_retries;
            for u in topology.neighbors(wid) {
                stats.links_required += 1;
                let mut established = false;
                for _ in 0..attempts {
                    // Locate the neighbor through the old graphs...
                    let boots_try: Vec<Option<usize>> =
                        olds.iter().map(|g| pick_boot(g, rng)).collect();
                    if !construction_search(olds, &boots_try, u, metrics) {
                        continue;
                    }
                    // ...and let the (good) neighbor verify the request.
                    let u_idx = new_leaders.ring().index_of(u).expect("neighbor is a new leader");
                    let verified = if new_leaders.is_bad(u_idx) {
                        // A bad neighbor may accept or ignore; ignoring
                        // only hurts itself (the link to a red group is
                        // irrelevant), accepting matches the topology.
                        true
                    } else {
                        let u_boots: Vec<Option<usize>> =
                            olds.iter().map(|g| pick_boot(g, rng)).collect();
                        construction_search(olds, &u_boots, u, metrics)
                    };
                    if verified {
                        established = true;
                        break;
                    }
                }
                if !established {
                    stats.links_failed += 1;
                    confused[w] = true;
                }
            }
        }
        sides.push((groups, confused));
    }

    // --- The Lemma 10 state attack: spurious membership requests ---
    // The adversary sends fake "you are suc(h(w,i))" requests to good pool
    // IDs; a good ID accepts only if *both* of its verification searches
    // fail (in which case the adversary controlled the answers).
    let good_pool = pool.good_indices();
    if params.attack_requests_per_id > 0 && !good_pool.is_empty() {
        for &u in &good_pool {
            for _ in 0..params.attack_requests_per_id {
                stats.spurious_issued += 1;
                let fake_point = Id(rng.gen());
                let own: Vec<Option<usize>> = (0..olds.len()).map(|_| Some(u)).collect();
                if !construction_search(olds, &own, fake_point, metrics) {
                    stats.spurious_accepted += 1;
                }
            }
        }
    }

    let graphs = sides
        .into_iter()
        .map(|(groups, confused)| {
            GroupGraph::new(
                new_leaders.clone(),
                pool.clone(),
                groups,
                confused,
                kind.build(new_leaders.ring().clone()),
            )
        })
        .collect();
    (graphs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_initial_graph;
    use rand::SeedableRng;

    fn initial_pair(n_good: usize, n_bad: usize, seed: u64) -> (Vec<GroupGraph>, Params) {
        let params = Params::paper_defaults();
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::uniform(n_good, n_bad, &mut rng);
        let fam = OracleFamily::new(seed);
        let a = build_initial_graph(pop.clone(), GraphKind::D2B, fam.h1, &params);
        let b = build_initial_graph(pop, GraphKind::D2B, fam.h2, &params);
        (vec![a, b], params)
    }

    #[test]
    fn builds_one_group_per_new_leader() {
        let (olds, params) = initial_pair(400, 20, 1);
        let fam = OracleFamily::new(1);
        let mut rng = StdRng::seed_from_u64(2);
        let new_pop = Population::uniform(400, 20, &mut rng);
        let mut m = Metrics::new();
        let (news, stats) = build_new_graphs(
            &olds,
            &new_pop,
            GraphKind::D2B,
            &fam,
            &params,
            BuildMode::DualGraph,
            &mut rng,
            &mut m,
        );
        assert_eq!(news.len(), 2);
        for g in &news {
            assert_eq!(g.len(), 420);
        }
        assert_eq!(stats.member_slots, 2 * 420 * params.draws(420) as u64);
        assert!(m.searches > 0, "construction must go through searches");
    }

    #[test]
    fn clean_old_graphs_build_clean_new_graphs() {
        // No adversary anywhere: nothing can be captured, rejected, or
        // confused.
        let (olds, params) = initial_pair(300, 0, 3);
        let fam = OracleFamily::new(3);
        let mut rng = StdRng::seed_from_u64(4);
        let new_pop = Population::uniform(300, 0, &mut rng);
        let mut m = Metrics::new();
        let (news, stats) = build_new_graphs(
            &olds,
            &new_pop,
            GraphKind::D2B,
            &fam,
            &params,
            BuildMode::DualGraph,
            &mut rng,
            &mut m,
        );
        assert_eq!(stats.captured_slots, 0);
        assert_eq!(stats.rejected_slots, 0);
        assert_eq!(stats.bad_member_draws, 0);
        assert_eq!(stats.links_failed, 0);
        assert_eq!(stats.spurious_accepted, 0);
        for g in &news {
            assert_eq!(g.frac_red(), 0.0);
        }
    }

    #[test]
    fn bad_member_rate_tracks_beta() {
        let (olds, params) = initial_pair(1000, 50, 5); // β ≈ 0.048
        let fam = OracleFamily::new(5);
        let mut rng = StdRng::seed_from_u64(6);
        let new_pop = Population::uniform(1000, 50, &mut rng);
        let mut m = Metrics::new();
        let (_, stats) = build_new_graphs(
            &olds,
            &new_pop,
            GraphKind::D2B,
            &fam,
            &params,
            BuildMode::DualGraph,
            &mut rng,
            &mut m,
        );
        let rate = stats.bad_member_draws as f64 / stats.member_slots as f64;
        assert!((0.02..0.09).contains(&rate), "bad-draw rate {rate:.3} vs β ≈ 0.048");
    }

    #[test]
    fn single_mode_builds_one_side() {
        let (olds, params) = initial_pair(200, 10, 7);
        let fam = OracleFamily::new(7);
        let mut rng = StdRng::seed_from_u64(8);
        let new_pop = Population::uniform(200, 10, &mut rng);
        let mut m = Metrics::new();
        let (news, _) = build_new_graphs(
            &olds[..1],
            &new_pop,
            GraphKind::D2B,
            &fam,
            &params,
            BuildMode::SingleGraph,
            &mut rng,
            &mut m,
        );
        assert_eq!(news.len(), 1);
    }

    #[test]
    fn degraded_old_graphs_capture_slots() {
        // Force every old group red: every construction search fails, so
        // every slot is captured and every link fails.
        let (mut olds, params) = initial_pair(150, 10, 9);
        for g in olds.iter_mut() {
            for i in 0..g.len() {
                g.confused[i] = true;
            }
            g.recolor();
        }
        let fam = OracleFamily::new(9);
        let mut rng = StdRng::seed_from_u64(10);
        let new_pop = Population::uniform(150, 10, &mut rng);
        let mut m = Metrics::new();
        let (news, stats) = build_new_graphs(
            &olds,
            &new_pop,
            GraphKind::D2B,
            &fam,
            &params,
            BuildMode::DualGraph,
            &mut rng,
            &mut m,
        );
        assert_eq!(stats.captured_slots, stats.member_slots);
        assert_eq!(stats.links_failed, stats.links_required);
        for g in &news {
            assert_eq!(g.frac_red(), 1.0, "wholly adversarial construction");
        }
    }
}
