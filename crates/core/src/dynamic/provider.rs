//! Where each epoch's IDs come from.
//!
//! §II–III *assume* the adversary holds at most `βn` IDs distributed
//! u.a.r. ([`UniformProvider`]; justified by Lemma 5 + Lemma 11). §IV
//! *enforces* this with proof-of-work; the `tg-pow` crate implements a
//! provider backed by the actual puzzle pipeline. [`TargetedProvider`]
//! models the world the paper is defending against — an adversary that
//! can *choose* its ID values (no PoW): it concentrates them in an
//! interval and captures every group whose members are drawn there.

use rand::rngs::StdRng;
use rand::Rng;
use tg_idspace::Id;

/// The IDs that will be active in one epoch.
#[derive(Clone, Debug)]
pub struct EpochIds {
    /// Good IDs (u.a.r. — good participants follow the minting protocol).
    pub good: Vec<Id>,
    /// The adversary's IDs.
    pub bad: Vec<Id>,
}

/// A source of per-epoch ID populations.
pub trait IdentityProvider {
    /// The IDs for epoch `epoch` (called once per epoch, in order).
    fn ids_for_epoch(&mut self, epoch: u64, rng: &mut StdRng) -> EpochIds;
}

/// The §II–III standing assumption: `n_good` good and `n_bad` bad IDs,
/// all u.a.r. in `[0,1)`.
#[derive(Clone, Debug)]
pub struct UniformProvider {
    /// Good IDs per epoch.
    pub n_good: usize,
    /// Bad IDs per epoch (≈ `βn`).
    pub n_bad: usize,
}

impl IdentityProvider for UniformProvider {
    fn ids_for_epoch(&mut self, _epoch: u64, rng: &mut StdRng) -> EpochIds {
        EpochIds {
            good: (0..self.n_good).map(|_| Id(rng.gen())).collect(),
            bad: (0..self.n_bad).map(|_| Id(rng.gen())).collect(),
        }
    }
}

/// A no-PoW adversary that fills the **largest gaps** between good IDs
/// with its own, maximizing the key-space responsibility of its IDs.
///
/// Membership draws select `suc(h(w,i))` for u.a.r. points, so an ID's
/// chance of being recruited equals its responsibility arc. Good IDs
/// placed u.a.r. leave largest gaps of width `≈ ln n / n`; an adversary
/// that may *choose* values (no PoW) claims them and amplifies its
/// recruitment share from `β` to `≈ β·ln n / 2` — enough to flip group
/// majorities that uniform placement never threatens. This is the
/// placement attack that motivates §IV.
#[derive(Clone, Debug)]
pub struct GapFillingProvider {
    /// Good IDs per epoch.
    pub n_good: usize,
    /// Bad IDs per epoch.
    pub n_bad: usize,
}

impl IdentityProvider for GapFillingProvider {
    fn ids_for_epoch(&mut self, _epoch: u64, rng: &mut StdRng) -> EpochIds {
        let mut good: Vec<Id> = (0..self.n_good).map(|_| Id(rng.gen())).collect();
        good.sort_unstable();
        good.dedup();
        // Rank gaps by width; claim the midpoint of the widest n_bad.
        let mut gaps: Vec<(u64, usize)> = (0..good.len())
            .map(|i| {
                let a = good[i];
                let b = good[(i + 1) % good.len()];
                (a.distance_cw(b).0, i)
            })
            .collect();
        gaps.sort_unstable_by_key(|&(width, _)| std::cmp::Reverse(width));
        let bad: Vec<Id> = gaps
            .iter()
            .take(self.n_bad)
            .map(|&(width, i)| good[i].add(tg_idspace::RingDistance(width / 2)))
            .collect();
        EpochIds { good, bad }
    }
}

/// A no-PoW adversary that *chooses* its ID values, concentrating them in
/// a target interval `[start, start+width)` — the **censorship** attack:
/// every resource whose key falls in the interval resolves to an
/// adversarial owner, so the adversary picks *which* `ε`-fraction of the
/// data dies instead of a random one.
#[derive(Clone, Debug)]
pub struct TargetedProvider {
    /// Good IDs per epoch.
    pub n_good: usize,
    /// Bad IDs per epoch.
    pub n_bad: usize,
    /// Interval start for the concentration attack.
    pub target_start: f64,
    /// Interval width (fraction of the ring).
    pub target_width: f64,
}

impl IdentityProvider for TargetedProvider {
    fn ids_for_epoch(&mut self, _epoch: u64, rng: &mut StdRng) -> EpochIds {
        EpochIds {
            good: (0..self.n_good).map(|_| Id(rng.gen())).collect(),
            bad: (0..self.n_bad)
                .map(|_| Id::from_f64(self.target_start + rng.gen::<f64>() * self.target_width))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_counts() {
        let mut p = UniformProvider { n_good: 100, n_bad: 7 };
        let mut rng = StdRng::seed_from_u64(1);
        let ids = p.ids_for_epoch(1, &mut rng);
        assert_eq!(ids.good.len(), 100);
        assert_eq!(ids.bad.len(), 7);
    }

    #[test]
    fn epochs_differ() {
        let mut p = UniformProvider { n_good: 10, n_bad: 0 };
        let mut rng = StdRng::seed_from_u64(2);
        let a = p.ids_for_epoch(1, &mut rng);
        let b = p.ids_for_epoch(2, &mut rng);
        assert_ne!(a.good, b.good, "fresh IDs every epoch");
    }

    #[test]
    fn gap_filling_amplifies_responsibility() {
        use tg_idspace::SortedRing;
        let mut p = GapFillingProvider { n_good: 2000, n_bad: 100 };
        let mut rng = StdRng::seed_from_u64(5);
        let ids = p.ids_for_epoch(1, &mut rng);
        // Total responsibility of bad IDs: each owns the arc from its
        // predecessor; gap-filling should hold far more than β of the
        // key space.
        let all: Vec<Id> = ids.good.iter().chain(ids.bad.iter()).copied().collect();
        let ring = SortedRing::new(all);
        let bad_set: std::collections::HashSet<Id> = ids.bad.iter().copied().collect();
        let mut bad_share = 0.0;
        for i in 0..ring.len() {
            if bad_set.contains(&ring.at(i)) {
                bad_share += ring.responsibility_of(i).len().as_f64();
            }
        }
        let beta = ids.bad.len() as f64 / ring.len() as f64;
        assert!(
            bad_share > 2.0 * beta,
            "gap filling must amplify: share {bad_share:.4} vs β {beta:.4}"
        );
    }

    #[test]
    fn targeted_ids_land_in_interval() {
        let mut p =
            TargetedProvider { n_good: 10, n_bad: 50, target_start: 0.25, target_width: 0.01 };
        let mut rng = StdRng::seed_from_u64(3);
        let ids = p.ids_for_epoch(1, &mut rng);
        for id in &ids.bad {
            let f = id.as_f64();
            assert!((0.25..0.26).contains(&f), "bad ID {f} outside target interval");
        }
    }
}
