//! Where each epoch's IDs come from.
//!
//! §II–III *assume* the adversary holds at most `βn` IDs distributed
//! u.a.r. ([`UniformProvider`]; justified by Lemma 5 + Lemma 11). §IV
//! *enforces* this with proof-of-work; the `tg-pow` crate implements
//! providers backed by the actual puzzle pipeline. Adversaries that can
//! *choose* their ID values (no PoW) are modelled by
//! [`crate::dynamic::adversary::StrategicProvider`] composed with an
//! [`crate::dynamic::adversary::AdversaryStrategy`] — the pluggable
//! placement engine experiment E10 sweeps.

use crate::dynamic::adversary::AdversaryView;
use rand::rngs::StdRng;
use rand::Rng;
use tg_idspace::{Id, SortedRing};

/// The IDs that will be active in one epoch.
#[derive(Clone, Debug)]
pub struct EpochIds {
    /// Good IDs (u.a.r. — good participants follow the minting protocol).
    pub good: Vec<Id>,
    /// The adversary's IDs.
    pub bad: Vec<Id>,
}

impl EpochIds {
    /// The fraction of the key space owned by bad IDs under the
    /// successor rule — the adversary's recruitment probability per
    /// membership draw. Uniform placement gives `≈ β`; placement
    /// strategies amplify it (E10's `bad_share` column).
    pub fn bad_ring_share(&self) -> f64 {
        if self.bad.is_empty() {
            return 0.0;
        }
        let all: Vec<Id> = self.good.iter().chain(self.bad.iter()).copied().collect();
        let ring = SortedRing::new(all);
        let bad_set: std::collections::HashSet<Id> = self.bad.iter().copied().collect();
        (0..ring.len())
            .filter(|&i| bad_set.contains(&ring.at(i)))
            .map(|i| ring.responsibility_of(i).len().as_f64())
            .sum()
    }
}

/// A source of per-epoch ID populations.
///
/// `view` is what a state-observing adversary inside the provider may
/// inspect before committing its placement: the previous epoch's
/// operational graphs and (under PoW) the current epoch string. Honest
/// providers ignore it.
pub trait IdentityProvider {
    /// The IDs for epoch `epoch` (called once per epoch, in order).
    fn ids_for_epoch(&mut self, epoch: u64, view: &AdversaryView<'_>, rng: &mut StdRng)
        -> EpochIds;
}

/// A provider behind a mutable reference forwards as itself (lets
/// wrappers like [`WithEpochString`] borrow a provider they do not
/// own).
impl<P: IdentityProvider + ?Sized> IdentityProvider for &mut P {
    fn ids_for_epoch(
        &mut self,
        epoch: u64,
        view: &AdversaryView<'_>,
        rng: &mut StdRng,
    ) -> EpochIds {
        (**self).ids_for_epoch(epoch, view, rng)
    }
}

/// Injects a PoW epoch string into the [`AdversaryView`] the inner
/// provider observes.
///
/// The dynamic layer itself never carries an epoch string — it hands
/// its providers a view with `epoch_string: None` (strings belong to
/// §IV's minting pipeline). A composed system that agrees on a string
/// *before* minting — `tg-pow`'s `FullSystem`, whose per-epoch
/// counting wrapper composes this type — sets
/// [`WithEpochString::epoch_string`] each epoch and the inner provider
/// (and any strategy inside it) sees the string in force.
#[derive(Debug)]
pub struct WithEpochString<P> {
    /// The wrapped provider.
    pub inner: P,
    /// The string minting is currently bound to (`None` before the
    /// first agreement).
    pub epoch_string: Option<u64>,
}

impl<P: IdentityProvider> IdentityProvider for WithEpochString<P> {
    fn ids_for_epoch(
        &mut self,
        epoch: u64,
        view: &AdversaryView<'_>,
        rng: &mut StdRng,
    ) -> EpochIds {
        let view = AdversaryView {
            epoch: view.epoch,
            graphs: view.graphs,
            epoch_string: self.epoch_string.or(view.epoch_string),
        };
        self.inner.ids_for_epoch(epoch, &view, rng)
    }
}

/// The §II–III standing assumption: `n_good` good and `n_bad` bad IDs,
/// all u.a.r. in `[0,1)`.
#[derive(Clone, Debug)]
pub struct UniformProvider {
    /// Good IDs per epoch.
    pub n_good: usize,
    /// Bad IDs per epoch (≈ `βn`).
    pub n_bad: usize,
}

impl IdentityProvider for UniformProvider {
    fn ids_for_epoch(
        &mut self,
        _epoch: u64,
        _view: &AdversaryView<'_>,
        rng: &mut StdRng,
    ) -> EpochIds {
        EpochIds {
            good: (0..self.n_good).map(|_| Id(rng.gen())).collect(),
            bad: (0..self.n_bad).map(|_| Id(rng.gen())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::adversary::{GapFilling, IntervalTargeting, StrategicProvider};
    use rand::SeedableRng;

    #[test]
    fn uniform_counts() {
        let mut p = UniformProvider { n_good: 100, n_bad: 7 };
        let mut rng = StdRng::seed_from_u64(1);
        let ids = p.ids_for_epoch(1, &AdversaryView::genesis(1), &mut rng);
        assert_eq!(ids.good.len(), 100);
        assert_eq!(ids.bad.len(), 7);
    }

    #[test]
    fn epochs_differ() {
        let mut p = UniformProvider { n_good: 10, n_bad: 0 };
        let mut rng = StdRng::seed_from_u64(2);
        let a = p.ids_for_epoch(1, &AdversaryView::genesis(1), &mut rng);
        let b = p.ids_for_epoch(2, &AdversaryView::genesis(2), &mut rng);
        assert_ne!(a.good, b.good, "fresh IDs every epoch");
    }

    #[test]
    fn gap_filling_amplifies_responsibility() {
        let mut p = StrategicProvider::new(2000, 100, GapFilling);
        let mut rng = StdRng::seed_from_u64(5);
        let ids = p.ids_for_epoch(1, &AdversaryView::genesis(1), &mut rng);
        // Total responsibility of bad IDs: each owns the arc from its
        // predecessor; gap-filling should hold far more than β of the
        // key space.
        let beta = ids.bad.len() as f64 / (ids.good.len() + ids.bad.len()) as f64;
        let bad_share = ids.bad_ring_share();
        assert!(
            bad_share > 2.0 * beta,
            "gap filling must amplify: share {bad_share:.4} vs β {beta:.4}"
        );
    }

    #[test]
    fn targeted_ids_land_in_interval() {
        let mut p = StrategicProvider::new(
            10,
            50,
            IntervalTargeting { victim: Id::from_f64(0.26), width: 0.01 },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let ids = p.ids_for_epoch(1, &AdversaryView::genesis(1), &mut rng);
        for id in &ids.bad {
            let f = id.as_f64();
            assert!((0.25..0.26).contains(&f), "bad ID {f} outside target interval");
        }
    }

    #[test]
    fn uniform_bad_share_tracks_beta() {
        let mut p = UniformProvider { n_good: 1900, n_bad: 100 };
        let mut rng = StdRng::seed_from_u64(9);
        let ids = p.ids_for_epoch(1, &AdversaryView::genesis(1), &mut rng);
        let share = ids.bad_ring_share();
        assert!((0.025..0.10).contains(&share), "uniform share {share:.4} vs β = 0.05");
    }
}
