//! Pluggable adversary strategies: *where* the `βn` bad IDs go.
//!
//! §II–III prove their guarantees against an adversary whose IDs are
//! u.a.r. on the ring, and §IV's proof-of-work is precisely the
//! mechanism that *forces* a rational adversary into that model. This
//! module makes the space on the other side of that boundary
//! explorable: an [`AdversaryStrategy`] observes the previous epoch's
//! operational group graphs ([`AdversaryView`]) and the current good-ID
//! census, and chooses the placement of its identity budget. Strategies
//! compose with both identity pipelines:
//!
//! * **no PoW** — [`StrategicProvider`] hands the strategy's chosen
//!   values straight to the dynamic layer (the world the paper defends
//!   against),
//! * **PoW** — `tg-pow`'s `StrategicPowProvider` pushes the same
//!   strategy through the minting pipeline, where the `f∘g` composition
//!   discards the chosen placement (Lemma 11) and the single-hash
//!   ablation honors it.
//!
//! What placement can and cannot buy in this construction: membership
//! draws select `suc(h(w,i))` for random-oracle points, so a bad ID's
//! recruitment probability equals its *responsibility arc* — placement
//! controls the adversary's total recruitment share (and which keys it
//! owns on the ring), but it cannot aim at one specific group, because
//! the draw points of a future group are oracle outputs it does not
//! control. The strategies below span that spectrum: uniform (the
//! paper's model), share maximization ([`GapFilling`],
//! [`AdaptiveMajorityFlipper`]), key-space censorship
//! ([`IntervalTargeting`]), and *timing* — [`ChurnTimed`] holds its
//! placement power in reserve and spends the full budget only in the
//! epochs immediately after heavy good-ID departure, when group margins
//! are thinnest (the adaptive-adversary lens of Dufoulon–Pandurangan:
//! an adversary that times its moves to the protocol's weakest rounds).

use crate::dynamic::provider::{EpochIds, IdentityProvider};
use crate::graph::{GraphsView, GroupGraphView};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;
use tg_idspace::{Id, RingDistance};

/// What the adversary gets to observe before placing this epoch's IDs:
/// the previous epoch's operational group graphs (empty at genesis) and,
/// when a PoW pipeline is in effect, the epoch string its solutions must
/// be bound to.
pub struct AdversaryView<'a> {
    /// The epoch whose IDs are being placed.
    pub epoch: u64,
    /// The previous epoch's operational graphs (what a state-observing
    /// adversary has watched serve traffic), behind the layout-agnostic
    /// [`GraphsView`] so strategies observe the legacy and arena kernels
    /// identically. Empty at initialization.
    pub graphs: GraphsView<'a>,
    /// The current epoch string when identities are minted through PoW
    /// (`None` on the no-PoW pipeline — there is nothing to grind).
    pub epoch_string: Option<u64>,
}

impl AdversaryView<'_> {
    /// The view at system initialization: no history to observe.
    pub fn genesis(epoch: u64) -> AdversaryView<'static> {
        AdversaryView { epoch, graphs: GraphsView::empty(), epoch_string: None }
    }
}

/// A placement policy for the adversary's per-epoch identity budget.
///
/// `place` is called once per epoch, in order, with the good-ID census
/// of that epoch (the rushing assumption: the adversary sees the honest
/// minting before committing its own) and a budget of `≈ βn`
/// identities. It returns the chosen ID values. Implementations should
/// stay within `budget` — the one sanctioned exception is a hoarding
/// strategy releasing pre-computed solutions when the fresh-string
/// defense is disabled, which is exactly the overrun §IV-B exists to
/// prevent.
pub trait AdversaryStrategy {
    /// Stable label for tables and reports.
    fn name(&self) -> &'static str;

    /// Choose this epoch's bad-ID values.
    fn place(
        &mut self,
        view: &AdversaryView<'_>,
        good: &[Id],
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<Id>;
}

/// Ensure the chosen values collide neither with the good census nor
/// with each other (the population builder rejects duplicates); any
/// collision is re-drawn uniformly, which can only weaken a strategy.
pub fn dedup_against(ids: Vec<Id>, good: &[Id], rng: &mut StdRng) -> Vec<Id> {
    let mut taken: HashSet<Id> = good.iter().copied().collect();
    ids.into_iter()
        .map(|mut id| {
            while !taken.insert(id) {
                id = Id(rng.gen());
            }
            id
        })
        .collect()
}

/// The paper's standing assumption (and what `f∘g` minting enforces):
/// bad IDs u.a.r. on the ring.
#[derive(Clone, Copy, Debug, Default)]
pub struct Uniform;

impl AdversaryStrategy for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn place(
        &mut self,
        _view: &AdversaryView<'_>,
        good: &[Id],
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<Id> {
        dedup_against((0..budget).map(|_| Id(rng.gen())).collect(), good, rng)
    }
}

/// The clockwise gaps between consecutive good IDs, widest first, as
/// `(gap_start, width)` pairs.
fn gaps_widest_first(good_sorted: &[Id]) -> Vec<(Id, RingDistance)> {
    let n = good_sorted.len();
    let mut gaps: Vec<(Id, RingDistance)> = (0..n)
        .map(|i| {
            let a = good_sorted[i];
            let b = good_sorted[(i + 1) % n];
            (a, a.distance_cw(b))
        })
        .collect();
    gaps.sort_unstable_by_key(|&(start, width)| (std::cmp::Reverse(width), start));
    gaps
}

/// Claim the **midpoints of the widest gaps** between good IDs.
///
/// Good IDs placed u.a.r. leave largest gaps of width `≈ ln n / n`; an
/// adversary that may *choose* values claims them and amplifies its
/// recruitment share from `β` to `≈ β·ln n / 2` — enough to flip group
/// majorities that uniform placement never threatens. This is the
/// placement attack that motivates §IV.
#[derive(Clone, Copy, Debug, Default)]
pub struct GapFilling;

impl AdversaryStrategy for GapFilling {
    fn name(&self) -> &'static str {
        "gap-filling"
    }

    fn place(
        &mut self,
        _view: &AdversaryView<'_>,
        good: &[Id],
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<Id> {
        let mut sorted = good.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.is_empty() {
            return Uniform.place(_view, good, budget, rng);
        }
        let gaps = gaps_widest_first(&sorted);
        let ids = (0..budget)
            .map(|j| {
                // Past one ID per gap, stack deeper midpoints (¾, ⅞, …).
                let (start, width) = gaps[j % gaps.len()];
                let mut offset = width.0 / 2;
                for _ in 0..(j / gaps.len()) {
                    offset += (width.0 - offset) / 2;
                }
                start.add(RingDistance(offset))
            })
            .collect();
        dedup_against(ids, good, rng)
    }
}

/// Concentrate the budget in the arc **ending at a victim key** — the
/// censorship attack: every key in `[victim − width, victim)` resolves
/// to an adversarial successor, so the tail of any search path for the
/// victim's neighborhood lands on adversary-owned ring positions and
/// the adversary picks *which* slice of the key space it owns instead
/// of a random `β`-fraction.
///
/// Group graphs blunt this at the group layer (the victim's resolver
/// group still draws its members from oracle points spread over the
/// whole ring), which experiment E10 measures directly — the strategy
/// owns the victim interval while its captured-group fraction stays
/// near uniform.
#[derive(Clone, Copy, Debug)]
pub struct IntervalTargeting {
    /// The key whose search path is under attack.
    pub victim: Id,
    /// Width of the claimed arc, as a ring fraction.
    pub width: f64,
}

impl AdversaryStrategy for IntervalTargeting {
    fn name(&self) -> &'static str {
        "interval-targeting"
    }

    fn place(
        &mut self,
        _view: &AdversaryView<'_>,
        good: &[Id],
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<Id> {
        let start = self.victim.sub(RingDistance::from_f64(self.width));
        let ids = (0..budget)
            .map(|_| start.add(RingDistance::from_f64(rng.gen::<f64>() * self.width)))
            .collect();
        dedup_against(ids, good, rng)
    }
}

/// Observe the previous epoch's **near-tied groups** and place to flip
/// them.
///
/// Membership draws are oracle outputs, so no placement aims at one
/// specific group; what an adaptive adversary *can* do after watching an
/// epoch is decide whether flips are within reach at all, and if so
/// maximize the rate at which near-ties convert. When the observed
/// margin histogram shows blue groups within `margin` members of losing
/// their good majority, the strategy claims the widest good-ID gaps
/// *end-on* (an ID one ulp before the next good ID owns the whole gap,
/// twice the share of a midpoint claim), maximizing the probability that
/// next epoch's draws push marginal groups over. When every group sits
/// comfortably above the threshold it reverts to uniform camouflage
/// rather than spend its budget on unwinnable concentration.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveMajorityFlipper {
    /// A blue group within this many members of losing its good
    /// majority counts as near-tied.
    pub margin: usize,
}

impl Default for AdaptiveMajorityFlipper {
    fn default() -> Self {
        AdaptiveMajorityFlipper { margin: 2 }
    }
}

impl AdaptiveMajorityFlipper {
    /// Number of near-tied blue groups across all observed sides: live
    /// good-minus-bad member margin at most `2·margin` (flipping needs
    /// `margin` recruits to swing both counts).
    pub fn near_tied(&self, view: &AdversaryView<'_>) -> usize {
        view.graphs
            .iter()
            .map(|g| {
                (0..g.len())
                    .filter(|&i| {
                        if g.is_red(i) {
                            return false;
                        }
                        let size = g.group_size(i);
                        let bad = g.group_bad_count(i);
                        size - bad <= bad + 2 * self.margin
                    })
                    .count()
            })
            .sum()
    }
}

impl AdversaryStrategy for AdaptiveMajorityFlipper {
    fn name(&self) -> &'static str {
        "adaptive-majority-flipper"
    }

    fn place(
        &mut self,
        view: &AdversaryView<'_>,
        good: &[Id],
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<Id> {
        // No observation yet (genesis) ⇒ assume ties are reachable.
        if !view.graphs.is_empty() && self.near_tied(view) == 0 {
            return Uniform.place(view, good, budget, rng);
        }
        end_on_strike(view, good, budget, rng)
    }
}

/// The full end-on strike: claim the widest gaps of the good census a
/// few ulps short of each gap's end, so every claimed ID's
/// responsibility arc is the entire gap (the strongest placement the
/// successor rule admits per gap — twice a midpoint claim's share);
/// extra budget stacks further back in the same gaps. Falls back to
/// uniform placement on an empty census. Shared by the strategies that
/// concentrate when they decide to strike ([`AdaptiveMajorityFlipper`],
/// [`ChurnTimed`]).
fn end_on_strike(
    view: &AdversaryView<'_>,
    good: &[Id],
    budget: usize,
    rng: &mut StdRng,
) -> Vec<Id> {
    let mut sorted = good.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.is_empty() {
        return Uniform.place(view, good, budget, rng);
    }
    let gaps = gaps_widest_first(&sorted);
    let ids = (0..budget)
        .map(|j| {
            let (start, width) = gaps[j % gaps.len()];
            let depth = 1 + (j / gaps.len()) as u64;
            start.add(RingDistance(width.0.saturating_sub(depth)))
        })
        .collect();
    dedup_against(ids, good, rng)
}

/// Time the budget to the protocol's weakest epochs: strike with
/// end-on gap claims **immediately after heavy good-ID departure**,
/// camouflage otherwise.
///
/// §III's epoch argument survives churn because the invariant margin
/// (`ε' = 1 − 2(1+δ)β`) absorbs up to `ε'/2` good departures per epoch;
/// an adaptive adversary that watches the operational graphs knows when
/// that slack has just been spent. This strategy observes the fraction
/// of good member-pool IDs that departed during the epoch it just
/// watched ([`ChurnTimed::observed_departure`]). While departure stays
/// below [`ChurnTimed::trigger`] it spends only a
/// [`ChurnTimed::retainer`] fraction of its budget, placed uniformly —
/// indistinguishable from the background noise the paper already
/// defends against. The epoch a heavy departure wave lands, it commits
/// the entire budget end-on into the widest good-ID gaps, maximizing
/// recruitment share exactly when surviving groups are thinnest.
///
/// Under the `f∘g` minting defense the timing still goes through (the
/// adversary may always choose *when* to present solutions) but the
/// placement does not — which is precisely the contrast the E12
/// churn-axis frontier measures.
#[derive(Clone, Copy, Debug)]
pub struct ChurnTimed {
    /// Observed good-departure fraction at or above which the watched
    /// epoch counts as a heavy-churn epoch and the full budget is spent.
    pub trigger: f64,
    /// Fraction of the budget spent (uniformly, as camouflage) in quiet
    /// epochs. The rest is withheld — timing, not hoarding: withheld
    /// identities are forfeited, never banked.
    pub retainer: f64,
}

impl Default for ChurnTimed {
    fn default() -> Self {
        // Strike on departure waves clearly above the mild-churn regime
        // the sweeps use as background (0.05–0.1), camouflaging with a
        // fifth of the budget meanwhile.
        ChurnTimed { trigger: 0.12, retainer: 0.2 }
    }
}

impl ChurnTimed {
    /// The good-ID departure fraction visible in the observed graphs:
    /// departed good members of the serving pool over all good members
    /// (side 0 — every side shares the one physical population). `0`
    /// at genesis, when there is nothing to observe.
    pub fn observed_departure(view: &AdversaryView<'_>) -> f64 {
        if view.graphs.is_empty() {
            return 0.0;
        }
        let g = view.graphs.side(0);
        let pool = g.pool();
        let (mut good, mut gone) = (0usize, 0usize);
        for i in 0..pool.len() {
            if pool.is_bad(i) {
                continue;
            }
            good += 1;
            if pool.is_departed(i) {
                gone += 1;
            }
        }
        gone as f64 / good.max(1) as f64
    }
}

impl AdversaryStrategy for ChurnTimed {
    fn name(&self) -> &'static str {
        "churn-timed"
    }

    fn place(
        &mut self,
        view: &AdversaryView<'_>,
        good: &[Id],
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<Id> {
        if Self::observed_departure(view) < self.trigger {
            // Quiet epoch (or genesis): camouflage with the retainer.
            let held = ((budget as f64 * self.retainer).round() as usize).min(budget);
            return Uniform.place(view, good, held, rng);
        }
        end_on_strike(view, good, budget, rng)
    }
}

/// A no-PoW identity pipeline driven by a strategy: good IDs follow the
/// honest protocol (u.a.r.), bad IDs land wherever the strategy says.
/// This is the world §IV is defending against, made pluggable.
pub struct StrategicProvider {
    /// Good IDs per epoch.
    pub n_good: usize,
    /// The adversary's identity budget per epoch (`≈ βn`).
    pub budget: usize,
    /// The placement policy.
    pub strategy: Box<dyn AdversaryStrategy>,
}

impl std::fmt::Debug for StrategicProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategicProvider")
            .field("n_good", &self.n_good)
            .field("budget", &self.budget)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

impl StrategicProvider {
    /// A provider placing `budget` adversarial IDs per epoch with the
    /// given strategy.
    pub fn new(n_good: usize, budget: usize, strategy: impl AdversaryStrategy + 'static) -> Self {
        StrategicProvider { n_good, budget, strategy: Box::new(strategy) }
    }

    /// Like [`StrategicProvider::new`], for a strategy chosen at runtime.
    pub fn boxed(n_good: usize, budget: usize, strategy: Box<dyn AdversaryStrategy>) -> Self {
        StrategicProvider { n_good, budget, strategy }
    }
}

impl IdentityProvider for StrategicProvider {
    fn ids_for_epoch(
        &mut self,
        _epoch: u64,
        view: &AdversaryView<'_>,
        rng: &mut StdRng,
    ) -> EpochIds {
        let good: Vec<Id> = (0..self.n_good).map(|_| Id(rng.gen())).collect();
        let bad = self.strategy.place(view, &good, self.budget, rng);
        EpochIds { good, bad }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{BuildMode, DynamicSystem};
    use rand::SeedableRng;
    use tg_overlay::GraphKind;

    fn census(n: usize, seed: u64) -> (Vec<Id>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let good = (0..n).map(|_| Id(rng.gen())).collect();
        (good, rng)
    }

    fn share_of(good: &[Id], bad: &[Id]) -> f64 {
        EpochIds { good: good.to_vec(), bad: bad.to_vec() }.bad_ring_share()
    }

    #[test]
    fn all_strategies_respect_budget_and_uniqueness() {
        let (good, mut rng) = census(500, 1);
        let view = AdversaryView::genesis(0);
        let strategies: Vec<Box<dyn AdversaryStrategy>> = vec![
            Box::new(Uniform),
            Box::new(GapFilling),
            Box::new(IntervalTargeting { victim: Id::from_f64(0.4), width: 0.01 }),
            Box::new(AdaptiveMajorityFlipper::default()),
        ];
        for mut s in strategies {
            let bad = s.place(&view, &good, 30, &mut rng);
            assert_eq!(bad.len(), 30, "{}", s.name());
            let mut all: Vec<Id> = good.iter().chain(bad.iter()).copied().collect();
            all.sort_unstable();
            assert!(all.windows(2).all(|w| w[0] != w[1]), "{}: collision", s.name());
        }
    }

    #[test]
    fn placement_share_ordering() {
        // uniform ≈ β < gap-filling (midpoints ≈ half the widest gaps)
        // < flipper (end-on claims ≈ the whole widest gaps).
        let (good, mut rng) = census(2000, 2);
        let view = AdversaryView::genesis(0);
        let budget = 100;
        let beta = budget as f64 / 2100.0;
        let uniform = share_of(&good, &Uniform.place(&view, &good, budget, &mut rng));
        let gap = share_of(&good, &GapFilling.place(&view, &good, budget, &mut rng));
        let flip = share_of(
            &good,
            &AdaptiveMajorityFlipper::default().place(&view, &good, budget, &mut rng),
        );
        assert!((0.5 * beta..2.0 * beta).contains(&uniform), "uniform share {uniform:.4}");
        assert!(gap > 2.0 * beta, "gap share {gap:.4} vs β {beta:.4}");
        assert!(flip > 1.5 * gap, "flipper {flip:.4} must beat midpoints {gap:.4}");
    }

    #[test]
    fn interval_targeting_owns_its_arc() {
        let (good, mut rng) = census(1000, 3);
        let view = AdversaryView::genesis(0);
        let victim = Id::from_f64(0.4);
        let mut s = IntervalTargeting { victim, width: 0.01 };
        let bad = s.place(&view, &good, 50, &mut rng);
        for id in &bad {
            let f = id.as_f64();
            assert!((0.39..0.4).contains(&f), "bad ID {f} outside the victim arc");
        }
    }

    #[test]
    fn flipper_with_no_reachable_ties_goes_uniform() {
        // Build a tiny clean system: every group has zero bad members and
        // a margin far above 2·margin, so the flipper sees no reachable
        // tie and reverts to uniform placement.
        let mut provider = StrategicProvider::new(400, 0, Uniform);
        let sys = DynamicSystem::new(
            crate::params::Params::paper_defaults(),
            GraphKind::Chord,
            BuildMode::DualGraph,
            &mut provider,
            5,
        );
        let view =
            AdversaryView { epoch: 1, graphs: GraphsView::Legacy(&sys.graphs), epoch_string: None };
        let mut s = AdaptiveMajorityFlipper { margin: 0 };
        assert_eq!(s.near_tied(&view), 0, "clean groups are not near-tied at margin 0");
        let (good, mut rng) = census(400, 7);
        let bad = s.place(&view, &good, 20, &mut rng);
        let share = share_of(&good, &bad);
        let beta = 20.0 / 420.0;
        assert!(share < 2.0 * beta, "uniform fallback share {share:.4}");
    }

    /// A view over graphs whose pools just lost `frac` of their good
    /// members — the post-churn observation `ChurnTimed` keys on.
    fn churned_system(frac: f64, seed: u64) -> DynamicSystem {
        let mut provider = StrategicProvider::new(400, 20, Uniform);
        let mut sys = DynamicSystem::new(
            crate::params::Params::paper_defaults(),
            GraphKind::Chord,
            BuildMode::DualGraph,
            &mut provider,
            seed,
        );
        for g in sys.graphs.iter_mut() {
            let good = g.pool.good_indices();
            let departing = (good.len() as f64 * frac).round() as usize;
            // Deterministic pick is fine here: which IDs leave does not
            // matter to the observation, only how many.
            for &i in good.iter().take(departing) {
                g.pool.mark_departed(i);
            }
            g.recolor();
        }
        sys
    }

    #[test]
    fn churn_timed_observes_departure_fraction() {
        let sys = churned_system(0.3, 21);
        let view =
            AdversaryView { epoch: 2, graphs: GraphsView::Legacy(&sys.graphs), epoch_string: None };
        let seen = ChurnTimed::observed_departure(&view);
        assert!((0.28..0.32).contains(&seen), "observed departure {seen:.3}");
        assert_eq!(ChurnTimed::observed_departure(&AdversaryView::genesis(0)), 0.0);
    }

    #[test]
    fn churn_timed_holds_back_in_quiet_epochs() {
        let quiet = churned_system(0.05, 23);
        let view = AdversaryView {
            epoch: 2,
            graphs: GraphsView::Legacy(&quiet.graphs),
            epoch_string: None,
        };
        let (good, mut rng) = census(400, 25);
        let mut s = ChurnTimed::default();
        let bad = s.place(&view, &good, 40, &mut rng);
        assert_eq!(bad.len(), 8, "retainer = 20% of the budget");
        let share = share_of(&good, &bad);
        assert!(share < 2.0 * 8.0 / 440.0, "camouflage share {share:.4} must look uniform");
    }

    #[test]
    fn churn_timed_strikes_with_full_budget_after_heavy_departure() {
        let heavy = churned_system(0.3, 27);
        let view = AdversaryView {
            epoch: 2,
            graphs: GraphsView::Legacy(&heavy.graphs),
            epoch_string: None,
        };
        let (good, mut rng) = census(2000, 29);
        let budget = 100;
        let mut s = ChurnTimed::default();
        let bad = s.place(&view, &good, budget, &mut rng);
        assert_eq!(bad.len(), budget, "strike epochs spend the whole budget");
        let strike = share_of(&good, &bad);
        let mut rng_u = StdRng::seed_from_u64(31);
        let uniform = share_of(&good, &Uniform.place(&view, &good, budget, &mut rng_u));
        assert!(
            strike > 2.0 * uniform,
            "end-on strike share {strike:.4} must beat uniform {uniform:.4}"
        );
    }

    #[test]
    fn strategic_provider_is_deterministic() {
        let run = || {
            let mut p = StrategicProvider::new(300, 15, GapFilling);
            let mut rng = StdRng::seed_from_u64(11);
            p.ids_for_epoch(1, &AdversaryView::genesis(1), &mut rng)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.good, b.good);
        assert_eq!(a.bad, b.bad);
    }
}
