//! The epoch loop: churn, build, measure, swap (§III).

use crate::dynamic::adversary::AdversaryView;
use crate::dynamic::build::{build_new_graphs, BuildMode, BuildStats};
use crate::dynamic::provider::IdentityProvider;
use crate::graph::{GraphsView, GroupGraph};
use crate::params::Params;
use crate::population::Population;
use crate::robustness::{measure_dual_success, measure_robustness};
use rand::rngs::StdRng;
use rand::Rng;
use tg_crypto::OracleFamily;
use tg_overlay::GraphKind;
use tg_sim::{stream_rng, Metrics};

/// Per-epoch measurements (taken on the freshly built graphs, which are
/// the ones the next epoch operates on).
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Epoch index (the epoch these graphs will serve).
    pub epoch: u64,
    /// Red fraction per side.
    pub frac_red: Vec<f64>,
    /// Good-majority fraction per side.
    pub frac_good_majority: Vec<f64>,
    /// Confused fraction per side.
    pub frac_confused: Vec<f64>,
    /// Paper-invariant fraction per side.
    pub frac_paper_invariant: Vec<f64>,
    /// Search success using a single side (the `q_f` realization).
    pub search_success_single: f64,
    /// Search success using both sides (what the protocol achieves).
    pub search_success_dual: f64,
    /// Construction counters.
    pub build: BuildStats,
    /// Per-good-pool-ID group memberships (Lemma 10): mean and max.
    pub mean_memberships: f64,
    /// Maximum memberships held by one good pool ID.
    pub max_memberships: usize,
    /// Messages spent on construction searches this epoch.
    pub metrics: Metrics,
}

/// The dynamic system: a pair of operational group graphs that re-derive
/// themselves every epoch through the old pair.
pub struct DynamicSystem {
    /// Construction constants.
    pub params: Params,
    /// Input-graph topology family.
    pub kind: GraphKind,
    /// Oracle family (fixed at system initialization — the hash functions
    /// ship with the software, §III footnote 12).
    pub fam: OracleFamily,
    /// Dual-graph (paper) or single-graph (ablation) construction.
    pub mode: BuildMode,
    /// The operational graphs (2 for dual, 1 for single).
    pub graphs: Vec<GroupGraph>,
    /// The epoch the operational graphs serve.
    pub epoch: u64,
    /// Searches sampled per epoch for the robustness report.
    pub searches_per_epoch: usize,
    master_seed: u64,
}

impl DynamicSystem {
    /// Initialize at epoch 1 with trusted-bootstrap graphs (`G⁰₁, G⁰₂`;
    /// the paper's Appendix X initialization assumption).
    pub fn new(
        params: Params,
        kind: GraphKind,
        mode: BuildMode,
        provider: &mut dyn IdentityProvider,
        master_seed: u64,
    ) -> Self {
        let fam = OracleFamily::new(master_seed);
        let mut rng = stream_rng(master_seed, "init", 0);
        let ids = provider.ids_for_epoch(0, &AdversaryView::genesis(0), &mut rng);
        let pop = Population::new(ids.good, ids.bad);
        let graphs: Vec<GroupGraph> = (0..mode.sides())
            .map(|s| {
                crate::build::build_initial_graph(
                    pop.clone(),
                    kind,
                    fam.membership(if mode == BuildMode::SingleGraph { 0 } else { s }),
                    &params,
                )
            })
            .collect();
        DynamicSystem {
            params,
            kind,
            fam,
            mode,
            graphs,
            epoch: 1,
            searches_per_epoch: 400,
            master_seed,
        }
    }

    /// Run one epoch: intra-epoch churn on the serving pool, construction
    /// of the next pair through the current one, measurement, swap.
    ///
    /// The dynamic layer itself has no notion of epoch strings — they
    /// belong to §IV's minting pipeline, so the [`AdversaryView`] handed
    /// to the provider carries `epoch_string: None`. A composed system
    /// (e.g. `tg-pow::FullSystem`) that agrees on a string *before*
    /// minting injects it at the provider layer instead: wrap the
    /// strategic provider in [`crate::dynamic::WithEpochString`] and the
    /// view its inner provider observes carries the string in force —
    /// hoarding strategies grind against it, and the fresh-vs-frozen
    /// contrast of §IV-B plays out over the real protocol string rather
    /// than a synthesized stand-in.
    pub fn advance_epoch(&mut self, provider: &mut dyn IdentityProvider) -> EpochReport {
        let mut rng = stream_rng(self.master_seed, "epoch", self.epoch);
        let mut metrics = Metrics::new();

        // 1. Intra-epoch churn: a fraction of the good *member pool*
        //    departs while the graphs serve (§III model; bad IDs stay —
        //    the adversary's worst case). The same IDs depart from every
        //    side's pool (it is one physical population).
        let depart_fraction = self.params.churn_rate;
        if depart_fraction > 0.0 {
            let pool_len = self.graphs[0].pool.len();
            let mut pick_rng = stream_rng(self.master_seed, "churn", self.epoch);
            let mut departing: Vec<usize> = Vec::new();
            {
                // Choose on a scratch clone so every side gets the same set.
                let mut scratch = self.graphs[0].pool.clone();
                let before: Vec<bool> = (0..pool_len).map(|i| scratch.is_live(i)).collect();
                scratch.depart_good_fraction(depart_fraction, &mut pick_rng);
                for (i, &was_live) in before.iter().enumerate() {
                    if was_live && !scratch.is_live(i) {
                        departing.push(i);
                    }
                }
            }
            for g in self.graphs.iter_mut() {
                for &i in &departing {
                    g.pool.mark_departed(i);
                }
                g.recolor();
            }
        }

        // 2. Mint the next epoch's IDs and build the new graphs through
        //    the (churned) current ones. A strategic adversary inside the
        //    provider observes the graphs that just served this epoch.
        let view = AdversaryView {
            epoch: self.epoch + 1,
            graphs: GraphsView::Legacy(&self.graphs),
            epoch_string: None,
        };
        let ids = provider.ids_for_epoch(self.epoch + 1, &view, &mut rng);
        let new_pop = Population::new(ids.good, ids.bad);
        let (news, build) = build_new_graphs(
            &self.graphs,
            &new_pop,
            self.kind,
            &self.fam,
            &self.params,
            self.mode,
            &mut rng,
            &mut metrics,
        );

        // 3. Measure the fresh graphs (they serve epoch + 1).
        let mut meas_rng = stream_rng(self.master_seed, "measure", self.epoch);
        let single =
            measure_robustness(&news[0], &self.params, self.searches_per_epoch, &mut meas_rng);
        let dual = if news.len() == 2 {
            let mut dual_rng = stream_rng(self.master_seed, "measure-dual", self.epoch);
            measure_dual_success([&news[0], &news[1]], self.searches_per_epoch, &mut dual_rng)
        } else {
            single.search_success
        };

        // 4. Membership-state accounting (Lemma 10): how many groups does
        //    each good pool ID serve in, across all sides?
        let pool_len = news[0].pool.len();
        let mut memberships = vec![0usize; pool_len];
        for g in &news {
            for group in &g.groups {
                for &m in &group.members {
                    memberships[m as usize] += 1;
                }
            }
        }
        let good_counts: Vec<usize> =
            (0..pool_len).filter(|&i| !news[0].pool.is_bad(i)).map(|i| memberships[i]).collect();
        let mean_memberships =
            good_counts.iter().sum::<usize>() as f64 / good_counts.len().max(1) as f64;
        let max_memberships = good_counts.iter().copied().max().unwrap_or(0);

        let report = EpochReport {
            epoch: self.epoch + 1,
            frac_red: news.iter().map(|g| g.frac_red()).collect(),
            frac_good_majority: news.iter().map(|g| g.frac_good_majority()).collect(),
            frac_confused: news.iter().map(|g| g.frac_confused()).collect(),
            frac_paper_invariant: news
                .iter()
                .map(|g| g.frac_paper_invariant(&self.params))
                .collect(),
            search_success_single: single.search_success,
            search_success_dual: dual,
            build,
            mean_memberships,
            max_memberships,
            metrics,
        };

        // 5. Swap: the new pair becomes operational.
        self.graphs = news;
        self.epoch += 1;
        report
    }

    /// Run `epochs` epochs, returning all reports.
    pub fn run(&mut self, provider: &mut dyn IdentityProvider, epochs: usize) -> Vec<EpochReport> {
        (0..epochs).map(|_| self.advance_epoch(provider)).collect()
    }

    /// A u.a.r. good leader index of side 0 (handy for examples).
    pub fn random_good_leader(&self, rng: &mut StdRng) -> usize {
        let g = &self.graphs[0];
        loop {
            let i = rng.gen_range(0..g.len());
            if !g.leaders.is_bad(i) {
                return i;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::provider::UniformProvider;

    fn small_system(mode: BuildMode, seed: u64) -> (DynamicSystem, UniformProvider) {
        let mut params = Params::paper_defaults();
        params.attack_requests_per_id = 1;
        // Gentler churn than the worst-case bound keeps the small-n test
        // fast and stable.
        params.churn_rate = 0.1;
        let mut provider = UniformProvider { n_good: 380, n_bad: 20 };
        let sys = DynamicSystem::new(params, GraphKind::D2B, mode, &mut provider, seed);
        (sys, provider)
    }

    #[test]
    fn epochs_advance_and_swap() {
        let (mut sys, mut provider) = small_system(BuildMode::DualGraph, 1);
        assert_eq!(sys.epoch, 1);
        let r = sys.advance_epoch(&mut provider);
        assert_eq!(r.epoch, 2);
        assert_eq!(sys.epoch, 2);
        assert_eq!(sys.graphs.len(), 2);
        // New leaders are a fresh generation.
        let r2 = sys.advance_epoch(&mut provider);
        assert_eq!(r2.epoch, 3);
    }

    #[test]
    fn dual_mode_stays_robust_over_epochs() {
        let (mut sys, mut provider) = small_system(BuildMode::DualGraph, 2);
        let reports = sys.run(&mut provider, 5);
        for r in &reports {
            assert!(
                r.search_success_dual > 0.85,
                "epoch {}: dual success {:.3}",
                r.epoch,
                r.search_success_dual
            );
            for (s, &fr) in r.frac_red.iter().enumerate() {
                assert!(fr < 0.15, "epoch {} side {s}: frac_red {fr:.3}", r.epoch);
            }
        }
        // No compounding: the last epoch is no worse than ~the first.
        let first = reports.first().unwrap().frac_red[0];
        let last = reports.last().unwrap().frac_red[0];
        assert!(last <= first + 0.1, "red fraction compounded: {first:.3} -> {last:.3}");
    }

    #[test]
    fn membership_state_is_small() {
        let (mut sys, mut provider) = small_system(BuildMode::DualGraph, 3);
        let r = sys.advance_epoch(&mut provider);
        // Each ID serves in O(log log n) groups per side in expectation
        // (Lemma 10): with draws ≈ 9 and two sides, the mean is ≈ 18–20
        // and the max is a small multiple.
        assert!(r.mean_memberships < 40.0, "mean memberships {:.1}", r.mean_memberships);
        assert!(r.max_memberships < 120, "max memberships {}", r.max_memberships);
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut a, mut pa) = small_system(BuildMode::DualGraph, 7);
        let (mut b, mut pb) = small_system(BuildMode::DualGraph, 7);
        let ra = a.advance_epoch(&mut pa);
        let rb = b.advance_epoch(&mut pb);
        assert_eq!(ra.frac_red, rb.frac_red);
        assert_eq!(ra.search_success_dual, rb.search_success_dual);
        assert_eq!(ra.build.captured_slots, rb.build.captured_slots);
    }

    #[test]
    fn epoch_string_reaches_the_view_through_the_provider_wrapper() {
        use crate::dynamic::provider::WithEpochString;

        struct StringSpy {
            inner: UniformProvider,
            seen: Vec<Option<u64>>,
        }
        impl IdentityProvider for StringSpy {
            fn ids_for_epoch(
                &mut self,
                epoch: u64,
                view: &AdversaryView<'_>,
                rng: &mut StdRng,
            ) -> crate::dynamic::EpochIds {
                self.seen.push(view.epoch_string);
                self.inner.ids_for_epoch(epoch, view, rng)
            }
        }
        let mut params = Params::paper_defaults();
        params.churn_rate = 0.1;
        params.attack_requests_per_id = 0;
        let spy = StringSpy { inner: UniformProvider { n_good: 380, n_bad: 20 }, seen: Vec::new() };
        let mut wrapped = WithEpochString { inner: spy, epoch_string: None };
        let mut sys =
            DynamicSystem::new(params, GraphKind::D2B, BuildMode::DualGraph, &mut wrapped, 11);
        sys.advance_epoch(&mut wrapped);
        wrapped.epoch_string = Some(0xABCD);
        sys.advance_epoch(&mut wrapped);
        assert_eq!(wrapped.inner.seen, vec![None, None, Some(0xABCD)]);
    }

    #[test]
    fn single_graph_mode_runs() {
        let (mut sys, mut provider) = small_system(BuildMode::SingleGraph, 4);
        let r = sys.advance_epoch(&mut provider);
        assert_eq!(r.frac_red.len(), 1);
        assert_eq!(r.search_success_single, r.search_success_dual);
    }
}
