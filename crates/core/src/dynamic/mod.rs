//! The dynamic case (§III): epochs, churn, and building new group graphs
//! from old ones.
//!
//! Per epoch `j` there are **two old** group graphs (operational, built
//! during epoch `j−1`) and **two new** ones under construction. New
//! groups are populated by dual searches (`h1`/`h2` points, each searched
//! in *both* old graphs) with independent verification by the solicited
//! member; neighbor links are located and verified the same way. Using
//! two graphs makes per-slot failure `q_f²` instead of `q_f`, which is
//! what stops the bad-group population from compounding epoch over epoch
//! (the §III "Algorithmic Overview" argument; ablated in experiment E4).
//!
//! Generations: the members of the graphs built during epoch `j` are the
//! epoch-`j` IDs (which stay passive and forwarding through epoch `j+1`),
//! while the leaders are the epoch-`j+1` IDs minted in advance (§III-A,
//! "Preliminaries" / "Making a Group-Membership Request").
//!
//! The [`adversary`] module supplies the other side of the game: a
//! pluggable [`AdversaryStrategy`] that observes each epoch's graphs
//! and chooses the bad-ID placement for the next (swept by E10).
//!
//! Consumers should rarely construct [`DynamicSystem`] directly: the
//! unified scenario API ([`crate::scenario`]) describes a run
//! declaratively and builds the right system behind an
//! [`crate::scenario::EpochDriver`] — direct construction is for tests
//! of this layer itself and for compositions the spec does not model.

pub mod adversary;
pub mod build;
pub mod kernel;
pub mod provider;
pub mod system;

pub use adversary::{
    AdaptiveMajorityFlipper, AdversaryStrategy, AdversaryView, ChurnTimed, GapFilling,
    IntervalTargeting, StrategicProvider, Uniform,
};
pub use build::{BuildMode, BuildStats};
pub use kernel::{EpochKernel, KernelChoice};
pub use provider::{EpochIds, IdentityProvider, UniformProvider, WithEpochString};
pub use system::{DynamicSystem, EpochReport};
