//! Kernel selection: one epoch loop, two storage layouts.
//!
//! [`EpochKernel`] dispatches the churn → build → measure → swap cycle to
//! either the legacy per-group kernel ([`DynamicSystem`]) or the arena
//! SoA kernel ([`ArenaSystem`]). Both consume identical RNG streams and
//! produce identical [`EpochReport`]s; the choice is purely a storage and
//! throughput decision, surfaced on [`crate::scenario::ScenarioSpec`] as
//! the `kernel` knob (`legacy` default, `arena` for million-identity
//! runs).

use crate::arena::ArenaSystem;
use crate::dynamic::build::BuildMode;
use crate::dynamic::provider::IdentityProvider;
use crate::dynamic::system::{DynamicSystem, EpochReport};
use crate::graph::GraphsView;
use crate::params::Params;
use tg_overlay::GraphKind;

/// Which epoch-kernel implementation backs a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelChoice {
    /// Per-group `Vec` storage — the original implementation, kept as
    /// the conformance oracle.
    #[default]
    Legacy,
    /// Flat arena/SoA storage with deterministic parallel fan-out.
    Arena,
}

impl KernelChoice {
    /// Stable codec token (`legacy` / `arena`).
    pub fn label(self) -> &'static str {
        match self {
            KernelChoice::Legacy => "legacy",
            KernelChoice::Arena => "arena",
        }
    }

    /// Parse a codec token.
    pub fn parse(s: &str) -> Option<KernelChoice> {
        match s {
            "legacy" => Some(KernelChoice::Legacy),
            "arena" => Some(KernelChoice::Arena),
            _ => None,
        }
    }
}

/// A dynamic system behind either storage layout. All epoch-loop entry
/// points the drivers need are forwarded; layout-specific access goes
/// through [`EpochKernel::graphs`] (a [`GraphsView`]) or the `as_*`
/// accessors.
pub enum EpochKernel {
    /// The legacy kernel.
    Legacy(DynamicSystem),
    /// The arena kernel.
    Arena(ArenaSystem),
}

impl EpochKernel {
    /// Initialize the chosen kernel at epoch 1. `capacity` is the arena
    /// member-column pre-size hint (ignored by the legacy kernel).
    pub fn new(
        choice: KernelChoice,
        params: Params,
        kind: GraphKind,
        mode: BuildMode,
        provider: &mut dyn IdentityProvider,
        master_seed: u64,
        capacity: Option<usize>,
    ) -> Self {
        match choice {
            KernelChoice::Legacy => {
                EpochKernel::Legacy(DynamicSystem::new(params, kind, mode, provider, master_seed))
            }
            KernelChoice::Arena => EpochKernel::Arena(ArenaSystem::new(
                params,
                kind,
                mode,
                provider,
                master_seed,
                capacity,
            )),
        }
    }

    /// Which layout this kernel runs on.
    pub fn choice(&self) -> KernelChoice {
        match self {
            EpochKernel::Legacy(_) => KernelChoice::Legacy,
            EpochKernel::Arena(_) => KernelChoice::Arena,
        }
    }

    /// Run one epoch (churn, build, measure, swap).
    pub fn advance_epoch(&mut self, provider: &mut dyn IdentityProvider) -> EpochReport {
        match self {
            EpochKernel::Legacy(s) => s.advance_epoch(provider),
            EpochKernel::Arena(s) => s.advance_epoch(provider),
        }
    }

    /// Run `epochs` epochs, returning all reports.
    pub fn run(&mut self, provider: &mut dyn IdentityProvider, epochs: usize) -> Vec<EpochReport> {
        match self {
            EpochKernel::Legacy(s) => s.run(provider, epochs),
            EpochKernel::Arena(s) => s.run(provider, epochs),
        }
    }

    /// The epoch the operational graphs serve.
    pub fn epoch(&self) -> u64 {
        match self {
            EpochKernel::Legacy(s) => s.epoch,
            EpochKernel::Arena(s) => s.epoch,
        }
    }

    /// The construction constants.
    pub fn params(&self) -> &Params {
        match self {
            EpochKernel::Legacy(s) => &s.params,
            EpochKernel::Arena(s) => &s.params,
        }
    }

    /// Searches sampled per epoch for the robustness report.
    pub fn searches_per_epoch(&self) -> usize {
        match self {
            EpochKernel::Legacy(s) => s.searches_per_epoch,
            EpochKernel::Arena(s) => s.searches_per_epoch,
        }
    }

    /// Override the per-epoch measurement sample size.
    pub fn set_searches_per_epoch(&mut self, searches: usize) {
        match self {
            EpochKernel::Legacy(s) => s.searches_per_epoch = searches,
            EpochKernel::Arena(s) => s.searches_per_epoch = searches,
        }
    }

    /// The operational graphs, layout-agnostic.
    pub fn graphs(&self) -> GraphsView<'_> {
        match self {
            EpochKernel::Legacy(s) => GraphsView::Legacy(&s.graphs),
            EpochKernel::Arena(s) => GraphsView::Arena(&s.graphs),
        }
    }

    /// The legacy system, if that is the active kernel.
    pub fn as_legacy(&self) -> Option<&DynamicSystem> {
        match self {
            EpochKernel::Legacy(s) => Some(s),
            EpochKernel::Arena(_) => None,
        }
    }

    /// Mutable access to the legacy system, if active.
    pub fn as_legacy_mut(&mut self) -> Option<&mut DynamicSystem> {
        match self {
            EpochKernel::Legacy(s) => Some(s),
            EpochKernel::Arena(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::provider::UniformProvider;

    #[test]
    fn choice_tokens_round_trip() {
        for c in [KernelChoice::Legacy, KernelChoice::Arena] {
            assert_eq!(KernelChoice::parse(c.label()), Some(c));
        }
        assert_eq!(KernelChoice::parse("simd"), None);
        assert_eq!(KernelChoice::default(), KernelChoice::Legacy);
    }

    #[test]
    fn kernels_agree_through_the_dispatcher() {
        let mut params = Params::paper_defaults();
        params.churn_rate = 0.1;
        params.attack_requests_per_id = 1;
        let mut provider = UniformProvider { n_good: 380, n_bad: 20 };
        let mut reports = Vec::new();
        for choice in [KernelChoice::Legacy, KernelChoice::Arena] {
            let mut k = EpochKernel::new(
                choice,
                params,
                GraphKind::D2B,
                BuildMode::DualGraph,
                &mut provider,
                5,
                None,
            );
            assert_eq!(k.choice(), choice);
            assert_eq!(k.graphs().sides(), 2);
            reports.push(format!("{:?}", k.run(&mut provider, 2)));
        }
        assert_eq!(reports[0], reports[1]);
    }
}
