//! One generation of IDs with good/bad marking and liveness.

use rand::rngs::StdRng;
use rand::Rng;
use tg_idspace::{Id, SortedRing};

/// A generation of IDs: the ring plus, per ID, whether it is Byzantine
/// and whether it has departed.
///
/// In the dynamic construction (§III) each epoch has its own generation:
/// epoch-`j` IDs are the *leaders* (vertices) of the group graphs built
/// during epoch `j`, and the *members* of those graphs are drawn from the
/// epoch-`j−1` generation (which stays in a passive, forwarding-only state
/// through epoch `j+1`).
#[derive(Clone, Debug)]
pub struct Population {
    ring: SortedRing,
    /// `bad[i]` — the ID at ring index `i` is Byzantine.
    bad: Vec<bool>,
    /// `departed[i]` — the ID at ring index `i` left the system
    /// (intra-epoch churn). Departed IDs stop serving in groups.
    departed: Vec<bool>,
}

impl Population {
    /// Build a population from good and bad ID lists.
    ///
    /// # Panics
    /// Panics if an ID value appears twice (collisions are negligible
    /// under the random-oracle minting and rejected outright here).
    pub fn new(good: Vec<Id>, bad_ids: Vec<Id>) -> Self {
        let mut tagged: Vec<(Id, bool)> = good
            .into_iter()
            .map(|id| (id, false))
            .chain(bad_ids.into_iter().map(|id| (id, true)))
            .collect();
        tagged.sort_unstable_by_key(|&(id, _)| id);
        for w in tagged.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate ID value {:?}", w[0].0);
        }
        let ring = SortedRing::from_sorted_unique(tagged.iter().map(|&(id, _)| id).collect());
        let bad = tagged.iter().map(|&(_, b)| b).collect();
        let n = ring.len();
        Population { ring, bad, departed: vec![false; n] }
    }

    /// A population of `n_good + n_bad` u.a.r. IDs — the standing
    /// assumption of §II–III (enforced by PoW in §IV; Lemma 11).
    pub fn uniform(n_good: usize, n_bad: usize, rng: &mut StdRng) -> Self {
        // Rejection-free: u64 collisions over ≤ 2^21 draws are ~2^-22;
        // regenerate on the (effectively impossible) collision.
        loop {
            let good: Vec<Id> = (0..n_good).map(|_| Id(rng.gen())).collect();
            let bad: Vec<Id> = (0..n_bad).map(|_| Id(rng.gen())).collect();
            let mut all: Vec<Id> = good.iter().chain(bad.iter()).copied().collect();
            all.sort_unstable();
            if all.windows(2).all(|w| w[0] != w[1]) {
                return Population::new(good, bad);
            }
        }
    }

    /// The ID ring.
    #[inline]
    pub fn ring(&self) -> &SortedRing {
        &self.ring
    }

    /// Number of IDs (including departed ones, which remain addressable).
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the population is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Whether the ID at ring index `i` is Byzantine.
    #[inline]
    pub fn is_bad(&self, i: usize) -> bool {
        self.bad[i]
    }

    /// Whether the ID at ring index `i` has departed.
    #[inline]
    pub fn is_departed(&self, i: usize) -> bool {
        self.departed[i]
    }

    /// Whether the ID at ring index `i` is still serving (not departed).
    #[inline]
    pub fn is_live(&self, i: usize) -> bool {
        !self.departed[i]
    }

    /// Mark the ID at ring index `i` as departed.
    pub fn mark_departed(&mut self, i: usize) {
        self.departed[i] = true;
    }

    /// Number of Byzantine IDs.
    pub fn bad_count(&self) -> usize {
        self.bad.iter().filter(|&&b| b).count()
    }

    /// Indices of all good IDs (departed or not).
    pub fn good_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.bad[i]).collect()
    }

    /// Indices of all bad IDs.
    pub fn bad_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.bad[i]).collect()
    }

    /// Depart a u.a.r. `fraction` of the good IDs (the §III churn model:
    /// good IDs come and go; the adversary keeps its IDs in place, which
    /// is its worst case for group majorities).
    pub fn depart_good_fraction(&mut self, fraction: f64, rng: &mut StdRng) -> usize {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let mut live_good: Vec<usize> =
            (0..self.len()).filter(|&i| !self.bad[i] && !self.departed[i]).collect();
        let k = (live_good.len() as f64 * fraction).floor() as usize;
        // Partial Fisher–Yates: pick k distinct indices.
        for pick in 0..k {
            let j = rng.gen_range(pick..live_good.len());
            live_good.swap(pick, j);
            self.departed[live_good[pick]] = true;
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_tags_correctly() {
        let good = vec![Id::from_f64(0.1), Id::from_f64(0.5)];
        let bad = vec![Id::from_f64(0.3)];
        let p = Population::new(good, bad);
        assert_eq!(p.len(), 3);
        assert_eq!(p.bad_count(), 1);
        let bad_idx = p.ring().index_of(Id::from_f64(0.3)).unwrap();
        assert!(p.is_bad(bad_idx));
        assert!(!p.is_bad((bad_idx + 1) % 3));
    }

    #[test]
    #[should_panic(expected = "duplicate ID")]
    fn duplicate_ids_rejected() {
        let _ = Population::new(vec![Id::from_f64(0.1)], vec![Id::from_f64(0.1)]);
    }

    #[test]
    fn uniform_population_has_requested_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Population::uniform(100, 10, &mut rng);
        assert_eq!(p.len(), 110);
        assert_eq!(p.bad_count(), 10);
    }

    #[test]
    fn churn_departs_only_good() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = Population::uniform(1000, 100, &mut rng);
        let departed = p.depart_good_fraction(0.25, &mut rng);
        assert_eq!(departed, 250);
        for i in 0..p.len() {
            if p.is_bad(i) {
                assert!(p.is_live(i), "bad IDs never depart in the worst case");
            }
        }
        let live_good = (0..p.len()).filter(|&i| !p.is_bad(i) && p.is_live(i)).count();
        assert_eq!(live_good, 750);
    }

    #[test]
    fn churn_is_cumulative() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = Population::uniform(100, 0, &mut rng);
        p.depart_good_fraction(0.5, &mut rng);
        p.depart_good_fraction(0.5, &mut rng);
        let live = (0..p.len()).filter(|&i| p.is_live(i)).count();
        assert_eq!(live, 25);
    }
}
