//! Bootstrapping groups (Appendix IX).
//!
//! A joining ID needs a good group to perform searches on its behalf
//! (§III-A). Prior work hands joiners `O(log n)` members of one
//! `Θ(log n)`-size group; with tiny groups no single group is large
//! enough to be trustworthy on its own w.h.p. — the paper's fix is to
//! contact `O(log n / log log n)` groups chosen u.a.r. and pool their
//! members: the union holds `O(log n)` IDs and, since each member slot is
//! (close to) an independent `β`-biased draw, the *union* has a good
//! majority w.h.p. even though a `1/poly log n` fraction of the
//! constituent groups may individually be bad.
//!
//! The paper notes the cost footprint: with `O(1)`-degree input graphs
//! this lifts a joiner's transient state to `O(log n)`; with `O(log n)`-
//! degree graphs it disappears in the noise.

use crate::graph::GroupGraphView;
use rand::rngs::StdRng;
use rand::Rng;

/// A pooled bootstrap group assembled from several tiny groups.
#[derive(Clone, Debug)]
pub struct BootstrapGroup {
    /// Leader-ring indices of the groups contacted.
    pub contacted: Vec<usize>,
    /// Pool ring indices of the union of their live members.
    pub members: Vec<u32>,
    /// Live bad members in the union.
    pub bad_members: usize,
}

impl BootstrapGroup {
    /// Whether the pooled membership has a strict good majority — the
    /// property that makes it safe to route joins through it.
    pub fn has_good_majority(&self) -> bool {
        !self.members.is_empty() && 2 * self.bad_members < self.members.len()
    }

    /// Transient state the joiner must hold: one link per pooled member.
    pub fn state_cost(&self) -> usize {
        self.members.len()
    }
}

/// The paper's recommended number of groups to contact:
/// `⌈ln n / ln ln n⌉`.
pub fn recommended_contacts(n: usize) -> usize {
    let ln_n = (n.max(16) as f64).ln();
    (ln_n / ln_n.ln()).ceil() as usize
}

/// Assemble a bootstrap group by pooling `k` groups chosen u.a.r.
pub fn assemble_bootstrap<G: GroupGraphView>(gg: &G, k: usize, rng: &mut StdRng) -> BootstrapGroup {
    assert!(k >= 1, "must contact at least one group");
    let mut contacted = Vec::with_capacity(k);
    let mut members: Vec<u32> = Vec::new();
    for _ in 0..k {
        let gi = rng.gen_range(0..gg.len());
        contacted.push(gi);
        members.extend(
            gg.group_members(gi).iter().copied().filter(|&m| gg.pool().is_live(m as usize)),
        );
    }
    members.sort_unstable();
    members.dedup();
    let bad_members = members.iter().filter(|&&m| gg.pool().is_bad(m as usize)).count();
    BootstrapGroup { contacted, members, bad_members }
}

/// Empirical failure probability of the pooling strategy: fraction of
/// `trials` assembled bootstraps lacking a good majority.
pub fn measure_bootstrap_failure<G: GroupGraphView>(
    gg: &G,
    k: usize,
    trials: usize,
    rng: &mut StdRng,
) -> f64 {
    let failures =
        (0..trials).filter(|_| !assemble_bootstrap(gg, k, rng).has_good_majority()).count();
    failures as f64 / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_initial_graph;
    use crate::graph::GroupGraph;
    use crate::params::Params;
    use crate::population::Population;
    use rand::SeedableRng;
    use tg_crypto::OracleFamily;
    use tg_overlay::GraphKind;

    fn graph(n_good: usize, n_bad: usize, seed: u64) -> GroupGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::uniform(n_good, n_bad, &mut rng);
        build_initial_graph(
            pop,
            GraphKind::Chord,
            OracleFamily::new(seed).h1,
            &Params::paper_defaults(),
        )
    }

    #[test]
    fn recommended_contacts_scale() {
        // ln n / ln ln n: slow growth.
        assert_eq!(recommended_contacts(1 << 10), 4);
        let big = recommended_contacts(1 << 20);
        assert!((5..=8).contains(&big), "2^20 → {big}");
    }

    #[test]
    fn pooled_bootstrap_has_good_majority_whp() {
        let gg = graph(1900, 100, 1); // β = 5%
        let k = recommended_contacts(gg.len());
        let mut rng = StdRng::seed_from_u64(2);
        let fail = measure_bootstrap_failure(&gg, k, 500, &mut rng);
        assert_eq!(fail, 0.0, "pooling {k} groups at β=5% must essentially never fail");
    }

    #[test]
    fn pooling_beats_single_group_at_high_beta() {
        // Crank β to 0.25 so single tiny groups fail noticeably; pooling
        // must still reduce the failure rate substantially.
        let gg = graph(1500, 500, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let single = measure_bootstrap_failure(&gg, 1, 800, &mut rng);
        let pooled = measure_bootstrap_failure(&gg, 6, 800, &mut rng);
        assert!(single > 0.01, "single tiny groups fail sometimes at β=25%: {single:.4}");
        assert!(
            pooled < single / 2.0,
            "pooling must help: single {single:.4} vs pooled {pooled:.4}"
        );
    }

    #[test]
    fn failure_decreases_monotonically_in_k() {
        let gg = graph(1200, 300, 5); // β = 20%
        let mut rng = StdRng::seed_from_u64(6);
        let rates: Vec<f64> = [1usize, 3, 8]
            .iter()
            .map(|&k| measure_bootstrap_failure(&gg, k, 600, &mut rng))
            .collect();
        assert!(rates[0] >= rates[1] && rates[1] >= rates[2], "rates {rates:?}");
    }

    #[test]
    fn state_cost_is_logarithmic() {
        let gg = graph(1900, 100, 7);
        let k = recommended_contacts(gg.len());
        let mut rng = StdRng::seed_from_u64(8);
        let boot = assemble_bootstrap(&gg, k, &mut rng);
        let ln_n = (gg.len() as f64).ln();
        assert!(
            (boot.state_cost() as f64) < 8.0 * ln_n,
            "state {} vs O(ln n) = {:.0}",
            boot.state_cost(),
            ln_n
        );
        assert!(boot.state_cost() >= k, "at least one member per contacted group");
    }

    #[test]
    fn departed_members_are_not_pooled() {
        let mut gg = graph(400, 20, 9);
        let mut rng = StdRng::seed_from_u64(10);
        gg.pool.depart_good_fraction(0.5, &mut rng);
        let boot = assemble_bootstrap(&gg, 4, &mut rng);
        for &m in &boot.members {
            assert!(gg.pool.is_live(m as usize));
        }
    }
}
