//! # tg-core
//!
//! The paper's primary contribution: **group graphs with
//! `Θ(log log n)`-size groups** that tolerate a Byzantine adversary
//! controlling a `β`-fraction of computational power, achieving
//! `O(1/poly(log n))`-robustness (Theorem 3).
//!
//! ## Layout
//!
//! * [`params`] — the tunable constants of the construction
//!   (`β, δ, d1, d2`, group-size rule),
//! * [`population`] — one generation of IDs with its good/bad marking,
//! * [`group`] — a single group and its classification (good/bad; the
//!   paper's §I-C invariant and the operational good-majority test),
//! * [`graph`] — the **group graph** `G` over an input graph `H`
//!   (§II-A): one group per ID, blue/red coloring (S1–S3),
//! * [`build`] — constructing groups by hashing
//!   (`member i of G_w = suc(h(w,i))`, §III-A),
//! * [`routing`] — secure search along group paths: group-level search
//!   paths (the §II-B semantics: a search fails iff it meets a red group)
//!   and message-level all-to-all routing with majority filtering,
//! * [`robustness`] — measuring ε-robustness (Theorem 3's two bullets),
//! * [`abstract_model`] — the idealized S1–S3 model (each group red
//!   i.i.d. with probability `pf`) used to validate Lemmas 1–4 in
//!   isolation,
//! * [`dynamic`] — the dynamic case (§III): epochs, two old + two new
//!   group graphs, dual-search membership and neighbor construction with
//!   verification, churn, and the single-graph ablation,
//! * [`dynamic::adversary`] — the pluggable adversary-strategy engine:
//!   placement policies (uniform, gap-filling, interval-targeting,
//!   adaptive majority flipping) that observe each epoch's graphs and
//!   choose the next epoch's bad-ID values (swept by E10),
//! * [`scenario`] — the unified scenario API: a declarative
//!   [`ScenarioSpec`] (defense ∈ {none, single-hash, f∘g, frozen
//!   variants}, strategy, topology, churn, seed — round-tripping through
//!   a stable label/JSON codec) built into a [`scenario::EpochDriver`],
//!   the one trait every experiment, frontier cell, and bench drives,
//! * [`runtime`] — the actor epoch runtime: per-node actors exchanging
//!   typed protocol messages (membership announcements, routing probes,
//!   string dissemination) over an injectable transport with seeded
//!   fault injection; byte-identical to the synchronous drivers over a
//!   perfect transport,
//! * [`bootstrap`] — pooled bootstrap groups for joiners (Appendix IX),
//! * [`dht`] — the replicated key→value store over groups (the §I-A
//!   motivating application),
//! * [`render`] — DOT rendering of `H` and `G` (Figure 1).

pub mod abstract_model;
pub mod arena;
pub mod bootstrap;
pub mod build;
pub mod dht;
pub mod dynamic;
pub mod graph;
pub mod group;
pub mod params;
pub mod population;
pub mod render;
pub mod robustness;
pub mod routing;
pub mod runtime;
pub mod scenario;

pub use arena::{ArenaGraphs, ArenaSideRef, ArenaSystem};
pub use bootstrap::{assemble_bootstrap, recommended_contacts, BootstrapGroup};
pub use build::build_initial_graph;
pub use dht::{GetOutcome, SecureDht};
pub use graph::{Color, GraphsView, GroupGraph, GroupGraphView, SideRef};
pub use group::Group;
pub use params::{GroupSizeRule, Params};
pub use population::Population;
pub use robustness::{measure_robustness, RobustnessReport};
pub use routing::{search_path, SearchOutcome};
pub use runtime::{ActorDriver, EpochNet, NetFilter, ProtocolMsg, RuntimeChoice};
pub use scenario::{
    Defense, EpochDriver, EpochObservation, MintScheme, ScenarioError, ScenarioSpec, StrategySpec,
    StringMode,
};
