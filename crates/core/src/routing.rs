//! Secure search over the group graph (§II).
//!
//! A search proceeds along the `H`-route of its initiating leader with
//! the corresponding groups doing the work: each hop is an **all-to-all
//! exchange** between consecutive groups (`|G_i| · |G_{i+1}|` messages)
//! followed by majority filtering at the receiver. Two fidelity levels:
//!
//! * [`search_path`] — the §II-B *search-path* semantics: the search is
//!   truncated at the first red group and fails there; used by the
//!   large-scale robustness experiments. This is sound because a red
//!   group's output is adversary-controlled — counting it as failure is
//!   the worst case — and a blue group's output is correct.
//! * [`secure_route_verified`] — full message-level simulation with
//!   per-member claims and majority filtering, used to validate that the
//!   group-level semantics matches what the messages actually do, and to
//!   account messages exactly (E3).

use crate::graph::{GroupGraph, GroupGraphView};
use rand::rngs::StdRng;
use rand::Rng;
use tg_ba::{majority_filter, AdversaryMode};
use tg_idspace::Id;
use tg_sim::Metrics;

/// Outcome of a group-level search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// The search traversed only blue groups and resolved.
    Success {
        /// Groups traversed (including initiator and resolver).
        hops: usize,
        /// All-to-all messages spent.
        msgs: u64,
    },
    /// The search hit a red group.
    Fail {
        /// Index into the route at which the red group was met.
        failed_at: usize,
        /// Groups traversed before truncation.
        hops: usize,
        /// Messages spent up to and including the failing edge.
        msgs: u64,
    },
}

impl SearchOutcome {
    /// Whether the search succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, SearchOutcome::Success { .. })
    }

    /// Messages spent.
    pub fn msgs(&self) -> u64 {
        match *self {
            SearchOutcome::Success { msgs, .. } | SearchOutcome::Fail { msgs, .. } => msgs,
        }
    }

    /// Groups traversed.
    pub fn hops(&self) -> usize {
        match *self {
            SearchOutcome::Success { hops, .. } | SearchOutcome::Fail { hops, .. } => hops,
        }
    }
}

/// Group-level search from the group of `from_leader` (a leader ring
/// index) for `key`. Updates `metrics`.
///
/// Generic over the graph's storage layout ([`GroupGraphView`]): the
/// legacy per-group and the arena SoA kernels share this one routine, so
/// their search semantics cannot drift apart.
pub fn search_path<G: GroupGraphView>(
    gg: &G,
    from_leader: usize,
    key: Id,
    metrics: &mut Metrics,
) -> SearchOutcome {
    metrics.searches += 1;
    let from_id = gg.leaders().ring().at(from_leader);
    let route = gg.topology().route(from_id, key);
    let mut msgs = 0u64;
    let mut prev_size = 0usize;
    for (pos, &hop) in route.hops.iter().enumerate() {
        let gi = gg.leaders().ring().index_of(hop).expect("route hops are leader-ring IDs");
        let size = gg.group_size(gi);
        if pos > 0 {
            msgs += (prev_size * size) as u64;
        }
        if gg.is_red(gi) {
            metrics.failed_searches += 1;
            metrics.routing_msgs += msgs;
            metrics.hops += (pos + 1) as u64;
            return SearchOutcome::Fail { failed_at: pos, hops: pos + 1, msgs };
        }
        prev_size = size;
    }
    metrics.routing_msgs += msgs;
    metrics.hops += route.hops.len() as u64;
    SearchOutcome::Success { hops: route.hops.len(), msgs }
}

/// Dual search over the two group graphs of one epoch: succeeds if either
/// side's search path succeeds (the construction protocol performs both
/// and favors the true successor — with verifiable IDs, one honest result
/// suffices; §III-A "if different IDs are returned by the two searches,
/// the successor to `h1(w,i)` is selected").
pub fn dual_search<G: GroupGraphView>(
    sides: [&G; 2],
    from_leader: usize,
    key: Id,
    metrics: &mut Metrics,
) -> bool {
    let a = search_path(sides[0], from_leader, key, metrics);
    let b = search_path(sides[1], from_leader, key, metrics);
    a.is_success() || b.is_success()
}

/// Outcome of a message-level verified route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedOutcome {
    /// The value a majority of the resolver group's good members hold
    /// (`None` if the resolver has no good members or they got nothing).
    pub delivered: Option<u64>,
    /// Whether the delivered value equals the payload.
    pub correct: bool,
    /// Messages exchanged.
    pub msgs: u64,
    /// Whether the group-level search-path prediction agrees with the
    /// message-level result (sound abstraction check: group-level success
    /// must imply message-level correctness).
    pub abstraction_sound: bool,
}

/// Message-level secure routing: carry `payload` from the group of
/// `from_leader` to the group responsible for `key`, with every member
/// claiming a value at each hop and receivers majority-filtering.
///
/// Byzantine members send per `mode`; the route itself follows `H` (the
/// adversary cannot rewire edges incident to blue groups, S3).
pub fn secure_route_verified(
    gg: &GroupGraph,
    from_leader: usize,
    key: Id,
    payload: u64,
    mode: AdversaryMode,
    metrics: &mut Metrics,
) -> VerifiedOutcome {
    let mut shadow = Metrics::new();
    let group_level = search_path(gg, from_leader, key, &mut shadow);

    let from_id = gg.leaders.ring().at(from_leader);
    let route = gg.topology.route(from_id, key);
    let ring = gg.leaders.ring();
    let mut msgs = 0u64;

    // The values held by the *live members* of the current group:
    // good members start with the payload in the initiating group.
    let first = ring.index_of(route.hops[0]).expect("initiator on ring");
    let mut holder_values: Vec<(bool, Option<u64>)> = member_values_init(gg, first, payload);

    for (pos, pair) in route.hops.windows(2).enumerate() {
        let to = ring.index_of(pair[1]).expect("route hops are leader IDs");
        let senders = holder_values.clone();
        let receivers = live_members(gg, to);
        let mut next_values: Vec<(bool, Option<u64>)> = Vec::with_capacity(receivers.len());
        for (ri, &(r_bad, _)) in receivers.iter().enumerate() {
            // Every sender transmits one claim to this receiver.
            let claims: Vec<Option<u64>> = senders
                .iter()
                .enumerate()
                .map(
                    |(si, &(s_bad, v))| {
                        if s_bad {
                            mode.send(si, ri + 1000 * pos, pos as u64, v)
                        } else {
                            v
                        }
                    },
                )
                .collect();
            msgs += claims.len() as u64;
            if r_bad {
                next_values.push((true, None)); // bad receivers hold whatever they like
            } else {
                let (winner, _) = majority_filter(&claims);
                next_values.push((false, winner));
            }
        }
        holder_values =
            next_values.iter().zip(receivers.iter()).map(|(&(b, v), _)| (b, v)).collect();
    }

    // What does the resolver group deliver? Majority over its good
    // members' held values.
    let good_values: Vec<Option<u64>> =
        holder_values.iter().filter(|&&(b, _)| !b).map(|&(_, v)| v).collect();
    let (delivered, _) = majority_filter(&good_values);
    let correct = delivered == Some(payload);

    // Soundness: group-level success must imply message-level success.
    let abstraction_sound = !group_level.is_success() || correct;

    metrics.routing_msgs += msgs;
    VerifiedOutcome { delivered, correct, msgs, abstraction_sound }
}

/// The live members of group `gi` as `(is_bad, _)` placeholders.
fn live_members(gg: &GroupGraph, gi: usize) -> Vec<(bool, ())> {
    let g = &gg.groups[gi];
    let mut out: Vec<(bool, ())> = g
        .members
        .iter()
        .filter(|&&m| gg.pool.is_live(m as usize))
        .map(|&m| (gg.pool.is_bad(m as usize), ()))
        .collect();
    for _ in 0..g.captured_slots {
        out.push((true, ()));
    }
    out
}

/// Initial holder values for the initiating group.
fn member_values_init(gg: &GroupGraph, gi: usize, payload: u64) -> Vec<(bool, Option<u64>)> {
    live_members(gg, gi)
        .into_iter()
        .map(|(bad, _)| if bad { (true, None) } else { (false, Some(payload)) })
        .collect()
}

/// Initiate a search from a random *blue* group for a random key;
/// convenience for robustness sampling. Returns `None` if the graph has
/// no blue group (fully compromised).
pub fn random_search(
    gg: &GroupGraph,
    rng: &mut StdRng,
    metrics: &mut Metrics,
) -> Option<SearchOutcome> {
    let from = rng.gen_range(0..gg.len());
    let key = Id(rng.gen());
    Some(search_path(gg, from, key, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_initial_graph;
    use crate::params::Params;
    use crate::population::Population;
    use rand::SeedableRng;
    use tg_crypto::OracleFamily;
    use tg_overlay::GraphKind;

    fn graph(n_good: usize, n_bad: usize, seed: u64) -> GroupGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::uniform(n_good, n_bad, &mut rng);
        let fam = OracleFamily::new(seed);
        build_initial_graph(pop, GraphKind::Chord, fam.h1, &Params::paper_defaults())
    }

    #[test]
    fn all_good_searches_succeed() {
        let gg = graph(512, 0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = Metrics::new();
        for _ in 0..100 {
            let out = random_search(&gg, &mut rng, &mut m).unwrap();
            assert!(out.is_success());
        }
        assert_eq!(m.failure_rate(), 0.0);
    }

    #[test]
    fn message_cost_is_hops_times_group_size_squared() {
        let gg = graph(512, 0, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = Metrics::new();
        let out = random_search(&gg, &mut rng, &mut m).unwrap();
        let (hops, msgs) = match out {
            SearchOutcome::Success { hops, msgs } => (hops, msgs),
            _ => panic!("must succeed with no adversary"),
        };
        let s = gg.mean_group_size();
        let predicted = (hops.saturating_sub(1)) as f64 * s * s;
        assert!(
            (msgs as f64) > 0.3 * predicted && (msgs as f64) < 3.0 * predicted,
            "msgs {msgs} vs predicted ~{predicted:.0}"
        );
    }

    #[test]
    fn red_initiator_fails_immediately() {
        let mut gg = graph(256, 0, 5);
        gg.confused[7] = true;
        gg.recolor();
        let mut m = Metrics::new();
        let out = search_path(&gg, 7, Id::from_f64(0.5), &mut m);
        match out {
            SearchOutcome::Fail { failed_at, hops, msgs } => {
                assert_eq!(failed_at, 0);
                assert_eq!(hops, 1);
                assert_eq!(msgs, 0, "no edge traversed before the initiator check");
            }
            _ => panic!("search from a red group must fail"),
        }
    }

    #[test]
    fn search_truncates_at_first_red_group() {
        let mut gg = graph(256, 0, 6);
        // Redden every group except the initiator: any nontrivial route
        // fails at its second hop.
        for i in 0..gg.len() {
            if i != 3 {
                gg.confused[i] = true;
            }
        }
        gg.recolor();
        let mut m = Metrics::new();
        let out = search_path(&gg, 3, Id::from_f64(0.777), &mut m);
        if let SearchOutcome::Fail { failed_at, .. } = out {
            assert_eq!(failed_at, 1, "first non-initiator hop is red");
        }
        // (If the key happens to resolve locally the search succeeds with
        // one hop — allowed.)
    }

    #[test]
    fn dual_search_beats_single() {
        // Side A red-initiator, side B clean: dual must succeed.
        let mut a = graph(256, 0, 7);
        for i in 0..a.len() {
            a.confused[i] = true;
        }
        a.recolor();
        let b = graph(256, 0, 7);
        let mut m = Metrics::new();
        assert!(dual_search([&a, &b], 0, Id::from_f64(0.9), &mut m));
        assert!(dual_search([&b, &a], 0, Id::from_f64(0.9), &mut m));
    }

    #[test]
    fn verified_routing_delivers_payload_through_good_groups() {
        let gg = graph(512, 25, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let mut m = Metrics::new();
        let mut sound = true;
        let mut successes = 0;
        for _ in 0..60 {
            let from = rng.gen_range(0..gg.len());
            let key = Id(rng.gen());
            let out = secure_route_verified(
                &gg,
                from,
                key,
                0xDEADBEEF,
                AdversaryMode::Equivocate { seed: 11 },
                &mut m,
            );
            sound &= out.abstraction_sound;
            if out.correct {
                successes += 1;
            }
        }
        assert!(sound, "group-level success must imply message-level delivery");
        assert!(successes > 50, "β≈0.047: most routes deliver, got {successes}/60");
    }

    #[test]
    fn verified_routing_with_colluding_adversary_is_still_sound() {
        let gg = graph(512, 50, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = Metrics::new();
        for _ in 0..40 {
            let from = rng.gen_range(0..gg.len());
            let key = Id(rng.gen());
            let out = secure_route_verified(
                &gg,
                from,
                key,
                42,
                AdversaryMode::Collude { value: 666 },
                &mut m,
            );
            assert!(out.abstraction_sound);
        }
    }
}
