//! A single group and its classification.

use crate::params::Params;
use crate::population::Population;

/// A group `G_w`: a leader from the current generation plus members drawn
/// from the member pool (the previous generation in the dynamic case).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    /// Ring index of the leader `w` in the *leader* population.
    pub leader: u32,
    /// Ring indices of the members in the *member pool* population,
    /// deduplicated and sorted.
    pub members: Vec<u32>,
    /// Membership slots the adversary captured outright (both
    /// construction searches failed, §III-B / Lemma 7 first failure
    /// mode). These count as bad members that are *not* in the pool.
    pub captured_slots: u32,
}

impl Group {
    /// A group with the given leader and raw member draws (deduplicates).
    pub fn new(leader: u32, mut members: Vec<u32>, captured_slots: u32) -> Self {
        members.sort_unstable();
        members.dedup();
        Group { leader, members, captured_slots }
    }

    /// Current size: live members plus captured slots (the adversary's
    /// plants never depart).
    pub fn size(&self, pool: &Population) -> usize {
        self.members.iter().filter(|&&m| pool.is_live(m as usize)).count()
            + self.captured_slots as usize
    }

    /// Number of live bad members, including captured slots.
    pub fn bad_count(&self, pool: &Population) -> usize {
        self.members
            .iter()
            .filter(|&&m| pool.is_live(m as usize) && pool.is_bad(m as usize))
            .count()
            + self.captured_slots as usize
    }

    /// **The operational test**: strictly more live good members than
    /// live bad ones. This is what makes majority filtering and in-group
    /// agreement correct; an empty group trivially fails.
    pub fn has_good_majority(&self, pool: &Population) -> bool {
        let size = self.size(pool);
        let bad = self.bad_count(pool);
        size > 0 && 2 * bad < size
    }

    /// **The paper's §I-C good-group invariant**: size within
    /// `[d1·ln ln n, d2·ln ln n]` and at most `(1+δ)β|G|` bad members.
    /// Stricter than a good majority; the gap is the allowance the
    /// analysis spends on intra-epoch churn.
    pub fn meets_paper_invariant(&self, pool: &Population, params: &Params, n: usize) -> bool {
        let size = self.size(pool);
        if size < params.min_good_size(n) || size > params.draws(n) + 1 {
            return false;
        }
        (self.bad_count(pool) as f64) <= params.max_bad_members(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_idspace::Id;

    /// A pool where indices `bad_set` are Byzantine.
    fn pool(n: usize, bad_set: &[usize]) -> Population {
        let ids: Vec<Id> = (0..n).map(|i| Id::from_f64((i as f64 + 0.5) / n as f64)).collect();
        let good: Vec<Id> =
            ids.iter().enumerate().filter(|(i, _)| !bad_set.contains(i)).map(|(_, &x)| x).collect();
        let bad: Vec<Id> =
            ids.iter().enumerate().filter(|(i, _)| bad_set.contains(i)).map(|(_, &x)| x).collect();
        Population::new(good, bad)
    }

    #[test]
    fn dedup_members() {
        let g = Group::new(0, vec![3, 1, 3, 2, 1], 0);
        assert_eq!(g.members, vec![1, 2, 3]);
    }

    #[test]
    fn majority_counting() {
        let p = pool(10, &[0, 1]);
        // 2 bad (0, 1) + 3 good (2, 3, 4): good majority.
        let g = Group::new(5, vec![0, 1, 2, 3, 4], 0);
        assert_eq!(g.size(&p), 5);
        assert_eq!(g.bad_count(&p), 2);
        assert!(g.has_good_majority(&p));
        // Adding a captured slot makes it 3 bad vs 3 good: no majority.
        let g2 = Group::new(5, vec![0, 1, 2, 3, 4], 1);
        assert!(!g2.has_good_majority(&p));
    }

    #[test]
    fn departures_shift_majority() {
        let mut p = pool(10, &[0, 1]);
        let g = Group::new(5, vec![0, 1, 2, 3, 4], 0);
        assert!(g.has_good_majority(&p));
        // Two good members depart: 2 bad vs 1 good.
        p.mark_departed(2);
        p.mark_departed(3);
        assert_eq!(g.size(&p), 3);
        assert!(!g.has_good_majority(&p));
    }

    #[test]
    fn empty_group_has_no_majority() {
        let p = pool(4, &[]);
        let g = Group::new(0, vec![], 0);
        assert!(!g.has_good_majority(&p));
    }

    #[test]
    fn paper_invariant_is_stricter_than_majority() {
        let params = Params::paper_defaults();
        let n = 1 << 14; // draws ≈ 10, min size ≈ 4
        let p = pool(20, &[0, 1, 2]);
        // 3 bad of 9: has a good majority but violates (1+δ)β·9 ≈ 0.56.
        let g = Group::new(10, (0..9).collect(), 0);
        assert!(g.has_good_majority(&p));
        assert!(!g.meets_paper_invariant(&p, &params, n));
        // 9 good members: meets both.
        let g2 = Group::new(10, (3..12).collect(), 0);
        assert!(g2.has_good_majority(&p));
        assert!(g2.meets_paper_invariant(&p, &params, n));
    }

    #[test]
    fn undersized_group_violates_invariant() {
        let params = Params::paper_defaults();
        let n = 1 << 14;
        let p = pool(20, &[]);
        let g = Group::new(0, vec![1], 0);
        assert!(g.has_good_majority(&p), "a single good member is a majority");
        assert!(!g.meets_paper_invariant(&p, &params, n), "but the size is out of range");
    }
}
