//! A replicated key→value store over the group graph — the paper's
//! motivating application (§I-A: "decentralized storage and retrieval of
//! data… all but an ε-fraction of data is reachable and maintained
//! reliably"; footnote 2: "data may also be redundantly stored at
//! multiple group members").
//!
//! An item with key `k` lives at the group of `suc(k)`: every good live
//! member keeps a replica. A read routes to that group and
//! majority-filters the members' claims, so a good-majority owner group
//! serves correct data no matter what its Byzantine members answer; the
//! `ε`-fraction of keys owned by red groups is what Theorem 3's bound is
//! about, and [`SecureDht::measure_availability`] measures it directly.

use crate::graph::GroupGraphView;
use crate::routing::{search_path, SearchOutcome};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use tg_ba::{majority_filter, AdversaryMode};
use tg_idspace::Id;
use tg_sim::Metrics;

/// A replicated store over one group graph (any layout implementing
/// [`GroupGraphView`] — legacy per-group storage or an arena side).
pub struct SecureDht<'g, G: GroupGraphView> {
    gg: &'g G,
    /// Replicas: `(pool member index, key) → value`. Only good members
    /// store faithfully; Byzantine members answer reads via the
    /// adversary mode instead of this map.
    replicas: HashMap<(u32, u64), u64>,
    /// What Byzantine members answer on reads.
    pub adversary: AdversaryMode,
}

/// Result of a read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GetOutcome {
    /// Majority of the owner group's claims agreed on this value.
    Value(u64),
    /// The route to the owner group failed (red group on the path).
    RouteFailed,
    /// The owner group had no usable majority claim (item missing or
    /// owner compromised).
    NoMajority,
}

impl<'g, G: GroupGraphView> SecureDht<'g, G> {
    /// A DHT over the given group graph.
    pub fn new(gg: &'g G, adversary: AdversaryMode) -> Self {
        SecureDht { gg, replicas: HashMap::new(), adversary }
    }

    /// The leader-ring index of the group owning `key`.
    pub fn owner_group(&self, key: Id) -> usize {
        self.gg.leaders().ring().successor_index(key)
    }

    /// Store `value` under `key`, initiating from the group of
    /// `from_leader`. Returns `false` if the route failed (the write
    /// never reached the owner group).
    pub fn put(&mut self, from_leader: usize, key: Id, value: u64, metrics: &mut Metrics) -> bool {
        if !search_path(self.gg, from_leader, key, metrics).is_success() {
            return false;
        }
        let owner = self.owner_group(key);
        for &m in self.gg.group_members(owner) {
            if self.gg.pool().is_live(m as usize) && !self.gg.pool().is_bad(m as usize) {
                self.replicas.insert((m, key.raw()), value);
            }
            // Byzantine members accept the write and store nothing
            // useful — their read answers come from the adversary.
        }
        // Replication is one all-to-all burst into the owner group.
        let size = self.gg.group_size(owner);
        metrics.control_msgs += (size * size) as u64;
        true
    }

    /// Read `key`, initiating from the group of `from_leader`.
    pub fn get(&self, from_leader: usize, key: Id, metrics: &mut Metrics) -> GetOutcome {
        match search_path(self.gg, from_leader, key, metrics) {
            SearchOutcome::Fail { .. } => GetOutcome::RouteFailed,
            SearchOutcome::Success { .. } => {
                let owner = self.owner_group(key);
                let members = self.gg.group_members(owner);
                let mut claims: Vec<Option<u64>> = Vec::new();
                for (i, &m) in members.iter().enumerate() {
                    if !self.gg.pool().is_live(m as usize) {
                        continue;
                    }
                    if self.gg.pool().is_bad(m as usize) {
                        claims.push(self.adversary.send(i, from_leader, key.raw(), None));
                    } else {
                        claims.push(self.replicas.get(&(m, key.raw())).copied());
                    }
                }
                for j in 0..self.gg.captured_slots(owner) {
                    claims.push(self.adversary.send(
                        members.len() + j as usize,
                        from_leader,
                        key.raw(),
                        None,
                    ));
                }
                metrics.control_msgs += claims.len() as u64;
                match majority_filter(&claims) {
                    (Some(v), true) => GetOutcome::Value(v),
                    _ => GetOutcome::NoMajority,
                }
            }
        }
    }

    /// Store `items` and report the fraction retrievable with the
    /// correct value from random initiators — the §I-A availability
    /// measure. Returns `(stored_fraction, retrievable_fraction)`.
    pub fn measure_availability(
        &mut self,
        items: &[(Id, u64)],
        rng: &mut StdRng,
        metrics: &mut Metrics,
    ) -> (f64, f64) {
        let mut stored = 0usize;
        for &(key, value) in items {
            let from = rng.gen_range(0..self.gg.len());
            if self.put(from, key, value, metrics) {
                stored += 1;
            }
        }
        let mut ok = 0usize;
        for &(key, value) in items {
            let from = rng.gen_range(0..self.gg.len());
            if self.get(from, key, metrics) == GetOutcome::Value(value) {
                ok += 1;
            }
        }
        (stored as f64 / items.len().max(1) as f64, ok as f64 / items.len().max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_initial_graph;
    use crate::graph::GroupGraph;
    use crate::params::Params;
    use crate::population::Population;
    use rand::SeedableRng;
    use tg_crypto::OracleFamily;
    use tg_overlay::GraphKind;

    fn graph(n_good: usize, n_bad: usize, seed: u64) -> GroupGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::uniform(n_good, n_bad, &mut rng);
        build_initial_graph(
            pop,
            GraphKind::Chord,
            OracleFamily::new(seed).h1,
            &Params::paper_defaults(),
        )
    }

    #[test]
    fn put_get_roundtrip() {
        let gg = graph(500, 0, 1);
        let mut dht = SecureDht::new(&gg, AdversaryMode::Honest);
        let mut m = Metrics::new();
        let key = Id::from_f64(0.42);
        assert!(dht.put(3, key, 777, &mut m));
        assert_eq!(dht.get(9, key, &mut m), GetOutcome::Value(777));
        assert!(m.control_msgs > 0, "replication and reads cost messages");
    }

    #[test]
    fn missing_key_gives_no_majority() {
        let gg = graph(500, 0, 2);
        let dht = SecureDht::new(&gg, AdversaryMode::Honest);
        let mut m = Metrics::new();
        assert_eq!(dht.get(0, Id::from_f64(0.9), &mut m), GetOutcome::NoMajority);
    }

    #[test]
    fn byzantine_minority_cannot_corrupt_reads() {
        let gg = graph(1900, 100, 3); // β = 5%
        let mut rng = StdRng::seed_from_u64(4);
        for mode in [
            AdversaryMode::Silent,
            AdversaryMode::Equivocate { seed: 5 },
            AdversaryMode::Collude { value: 666 },
        ] {
            let mut dht = SecureDht::new(&gg, mode);
            let mut m = Metrics::new();
            let items: Vec<(Id, u64)> = (0..120).map(|i| (Id(rng.gen()), 1000 + i)).collect();
            let (_, available) = dht.measure_availability(&items, &mut rng, &mut m);
            assert!(available > 0.95, "mode {mode:?}: availability {available:.3}");
            // And no read ever returned a *wrong* value: re-check every
            // item individually.
            for &(key, value) in &items {
                // Unavailable is allowed (the ε-fraction); corrupt is not.
                if let GetOutcome::Value(v) = dht.get(0, key, &mut m) {
                    assert_eq!(v, value, "corrupted read under {mode:?}");
                }
            }
        }
    }

    #[test]
    fn availability_tracks_red_fraction() {
        // Force a chunk of groups red: keys owned by them become
        // unavailable, everything else stays served.
        let mut gg = graph(800, 0, 6);
        for i in 0..gg.len() / 10 {
            gg.confused[i * 10] = true;
        }
        gg.recolor();
        let mut rng = StdRng::seed_from_u64(7);
        let mut dht = SecureDht::new(&gg, AdversaryMode::Honest);
        let mut m = Metrics::new();
        let items: Vec<(Id, u64)> = (0..300).map(|i| (Id(rng.gen()), i)).collect();
        let (stored, available) = dht.measure_availability(&items, &mut rng, &mut m);
        assert!(stored < 1.0, "some writes must fail through red groups");
        assert!(available < stored + 1e-9);
        // Rough correspondence with the red mass (each route crosses
        // several groups, so unavailability exceeds frac_red).
        assert!(available > 1.0 - 8.0 * gg.frac_red(), "availability {available:.3}");
    }

    #[test]
    fn replicas_survive_partial_churn() {
        let mut gg = graph(600, 0, 8);
        let mut m = Metrics::new();
        let key = Id::from_f64(0.31);
        // Write first, then churn.
        {
            let mut dht = SecureDht::new(&gg, AdversaryMode::Honest);
            dht.put(5, key, 4242, &mut m);
            // Move the replica map out before gg is mutated.
            let replicas = dht.replicas;
            let mut rng = StdRng::seed_from_u64(9);
            gg.pool.depart_good_fraction(0.3, &mut rng);
            gg.recolor();
            let mut dht = SecureDht::new(&gg, AdversaryMode::Honest);
            dht.replicas = replicas;
            assert_eq!(dht.get(7, key, &mut m), GetOutcome::Value(4242));
        }
    }
}
