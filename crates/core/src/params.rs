//! Tunable constants of the construction (§I-C, §III).

/// How many membership draws a group makes, as a function of `n`.
///
/// The paper's construction draws `d2·ln ln n` members per group
/// ([`GroupSizeRule::TinyLogLog`]); the prior-work baseline uses
/// `Θ(log n)` ([`GroupSizeRule::ClassicLog`]); `Fixed` supports
/// threshold-sweep experiments (E2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GroupSizeRule {
    /// The paper: `d2 · ln ln n` draws, good size range
    /// `[d1·ln ln n, d2·ln ln n]`.
    TinyLogLog,
    /// Prior work: `c · ln n` draws.
    ClassicLog {
        /// The constant `c` in `c · ln n`.
        c: f64,
    },
    /// A fixed number of draws, for sweeps.
    Fixed(usize),
}

/// All tunable constants of the construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// The adversary's fraction of computational power; "a sufficiently
    /// small positive constant less than 1/2" (§I-C).
    pub beta: f64,
    /// The slack `δ` in the good-group invariant: a group that starts
    /// with more than a `(1+δ)β` fraction of bad IDs is bad (§I-C).
    pub delta: f64,
    /// Lower group-size factor `d1` (good size ≥ `d1·ln ln n`).
    pub d1: f64,
    /// Upper group-size factor `d2` (draws = `d2·ln ln n`).
    pub d2: f64,
    /// Group-size rule (paper vs baseline vs sweep).
    pub size_rule: GroupSizeRule,
    /// Fraction of good member-pool IDs departing per epoch in dynamic
    /// runs. The paper allows up to `ε'/2` with `ε' = 1 − 2(1+δ)β`; the
    /// default uses exactly that bound.
    pub churn_rate: f64,
    /// Spurious membership/neighbor requests the adversary sends per good
    /// ID per epoch (the state attack of Lemma 10).
    pub attack_requests_per_id: usize,
    /// Additional dual-search attempts when locating/verifying a neighbor
    /// link. The paper's "Updating Links" re-runs the update on every
    /// relevant join event and only the *final* selection matters
    /// (Lemma 8's proof), so a link effectively gets many chances; we
    /// model a bounded number. Setting 0 gives the strict one-shot
    /// reading, which at finite `n` puts the confusion feedback loop
    /// above unit gain (one red group ⇒ `q_f ≈ D/n` ⇒
    /// `2L·q_f² > 1/n` new confused groups) — experiment E4 charts this.
    pub link_retries: usize,
}

impl Params {
    /// Paper defaults: `β = 0.05`, `δ = 0.25`, `d1 = 2, d2 = 4`, tiny
    /// groups, churn at the allowed bound, a mild state attack.
    pub fn paper_defaults() -> Self {
        let beta = 0.05;
        let delta = 0.25;
        Params {
            beta,
            delta,
            d1: 2.0,
            d2: 4.0,
            size_rule: GroupSizeRule::TinyLogLog,
            churn_rate: Params::max_churn(beta, delta),
            attack_requests_per_id: 4,
            link_retries: 2,
        }
    }

    /// The paper's maximum allowed per-epoch good-departure fraction
    /// `ε'/2` where `ε' = 1 − 2(1+δ)β` (§III).
    pub fn max_churn(beta: f64, delta: f64) -> f64 {
        (1.0 - 2.0 * (1.0 + delta) * beta) / 2.0
    }

    /// Switch to the `Θ(log n)` baseline sizing with constant `c`.
    pub fn with_classic_groups(mut self, c: f64) -> Self {
        self.size_rule = GroupSizeRule::ClassicLog { c };
        self
    }

    /// Switch to a fixed number of draws (sweep support).
    pub fn with_fixed_groups(mut self, draws: usize) -> Self {
        self.size_rule = GroupSizeRule::Fixed(draws);
        self
    }

    /// Number of membership draws per group for a system of size `n`.
    pub fn draws(&self, n: usize) -> usize {
        let lnln = ((n.max(16) as f64).ln()).ln();
        match self.size_rule {
            GroupSizeRule::TinyLogLog => (self.d2 * lnln).ceil() as usize,
            GroupSizeRule::ClassicLog { c } => (c * (n.max(3) as f64).ln()).ceil() as usize,
            GroupSizeRule::Fixed(k) => k,
        }
        .max(1)
    }

    /// Minimum size a good group may have (the `d1·ln ln n` bound, scaled
    /// appropriately for the other rules).
    pub fn min_good_size(&self, n: usize) -> usize {
        let lnln = ((n.max(16) as f64).ln()).ln();
        match self.size_rule {
            GroupSizeRule::TinyLogLog => (self.d1 * lnln).floor() as usize,
            GroupSizeRule::ClassicLog { c } => (0.5 * c * (n.max(3) as f64).ln()).floor() as usize,
            GroupSizeRule::Fixed(k) => k / 2,
        }
        .max(1)
    }

    /// The maximum number of bad members a good group may contain:
    /// `(1+δ)·β·|G|` (§I-C). Note this is an *analysis* invariant — the
    /// operational property that makes routing work is a good majority,
    /// which `(1+δ)β < 1/2` implies with room for churn.
    pub fn max_bad_members(&self, group_size: usize) -> f64 {
        (1.0 + self.delta) * self.beta * group_size as f64
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_grow_doubly_logarithmically() {
        let p = Params::paper_defaults();
        let d10 = p.draws(1 << 10);
        let d20 = p.draws(1 << 20);
        assert!(d10 >= 4, "1k IDs still need a nontrivial group: {d10}");
        assert!(d20 > d10, "draws must grow with n");
        // Doubling the exponent grows draws by ~d2·ln 2 ≈ 2.8, far less
        // than the 2× a log-n rule would give.
        assert!(d20 - d10 <= 4, "log log growth is slow: {d10} -> {d20}");
    }

    #[test]
    fn classic_rule_is_logarithmic() {
        let p = Params::paper_defaults().with_classic_groups(2.0);
        let d10 = p.draws(1 << 10);
        let d20 = p.draws(1 << 20);
        assert!((d20 as f64 / d10 as f64 - 2.0).abs() < 0.15, "{d10} -> {d20}");
    }

    #[test]
    fn tiny_groups_are_exponentially_smaller() {
        let tiny = Params::paper_defaults();
        let classic = Params::paper_defaults().with_classic_groups(2.0);
        let n = 1 << 16;
        assert!(classic.draws(n) as f64 / tiny.draws(n) as f64 > 2.0);
    }

    #[test]
    fn churn_bound_matches_paper_formula() {
        // ε' = 1 − 2(1+δ)β; with β=0.05, δ=0.25: ε' = 0.875, bound 0.4375.
        let b = Params::max_churn(0.05, 0.25);
        assert!((b - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn min_size_below_draws() {
        let p = Params::paper_defaults();
        for n in [1 << 10, 1 << 14, 1 << 20] {
            assert!(p.min_good_size(n) <= p.draws(n));
            assert!(p.min_good_size(n) >= 1);
        }
    }

    #[test]
    fn fixed_rule_is_flat() {
        let p = Params::paper_defaults().with_fixed_groups(7);
        assert_eq!(p.draws(1 << 10), 7);
        assert_eq!(p.draws(1 << 20), 7);
    }
}
