//! The group graph `G` (§II-A).
//!
//! For an input graph `H` over the leader ring, the group graph has one
//! group per ID (S1). Each group is **blue** or **red**:
//!
//! * *red* — the group is bad (no good majority among its live members)
//!   or *confused* (its neighbor links differ from the topology's
//!   linking rules — the Lemma 8 failure mode),
//! * *blue* — good and correctly linked.
//!
//! Edges incident to blue groups follow `H` (S3): the good majority keeps
//! a blue group's neighbor knowledge consistent, so the adversary cannot
//! rewire it — it can only rewire among red groups, which never helps a
//! search that (by the search-path semantics) dies at the first red group
//! anyway.

use crate::group::Group;
use crate::params::Params;
use crate::population::Population;
use tg_overlay::InputGraph;

/// Blue/red classification of a group (§II-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Color {
    /// Good majority and correct neighbor set.
    Blue,
    /// Bad majority, dead, or confused.
    Red,
}

/// A group graph: groups over a leader ring, members from a pool
/// generation, atop an input-graph topology.
pub struct GroupGraph {
    /// The current generation: leaders / vertices of the graph.
    pub leaders: Population,
    /// The member pool (previous generation in the dynamic case; the
    /// same generation for initial/static graphs).
    pub pool: Population,
    /// One group per leader, indexed by leader ring index.
    pub groups: Vec<Group>,
    /// Whether each group's neighbor links are incorrect (Lemma 8).
    pub confused: Vec<bool>,
    /// The input-graph topology `H` over the leader ring.
    pub topology: Box<dyn InputGraph>,
    colors: Vec<Color>,
}

impl GroupGraph {
    /// Assemble a group graph and compute its coloring.
    pub fn new(
        leaders: Population,
        pool: Population,
        groups: Vec<Group>,
        confused: Vec<bool>,
        topology: Box<dyn InputGraph>,
    ) -> Self {
        assert_eq!(groups.len(), leaders.len(), "one group per leader");
        assert_eq!(confused.len(), groups.len());
        let mut gg = GroupGraph { leaders, pool, groups, confused, topology, colors: Vec::new() };
        gg.recolor();
        gg
    }

    /// Number of groups (= number of leaders).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Recompute all colors (after churn or link updates).
    pub fn recolor(&mut self) {
        self.colors = (0..self.groups.len())
            .map(|i| {
                if self.groups[i].has_good_majority(&self.pool) && !self.confused[i] {
                    Color::Blue
                } else {
                    Color::Red
                }
            })
            .collect();
    }

    /// The color of group `i`.
    #[inline]
    pub fn color(&self, i: usize) -> Color {
        self.colors[i]
    }

    /// Whether group `i` is red.
    #[inline]
    pub fn is_red(&self, i: usize) -> bool {
        self.colors[i] == Color::Red
    }

    /// The live size of group `i` (for message accounting).
    #[inline]
    pub fn group_size(&self, i: usize) -> usize {
        self.groups[i].size(&self.pool)
    }

    /// Fraction of red groups — the quantity `pf` bounds (S2).
    pub fn frac_red(&self) -> f64 {
        let red = self.colors.iter().filter(|&&c| c == Color::Red).count();
        red as f64 / self.colors.len().max(1) as f64
    }

    /// Fraction of groups with a good majority (Theorem 3, first bullet,
    /// operational reading).
    pub fn frac_good_majority(&self) -> f64 {
        let good = self.groups.iter().filter(|g| g.has_good_majority(&self.pool)).count();
        good as f64 / self.groups.len().max(1) as f64
    }

    /// Fraction of groups meeting the paper's §I-C invariant (size range
    /// and `(1+δ)β` bad bound).
    pub fn frac_paper_invariant(&self, params: &Params) -> f64 {
        let n = self.leaders.len();
        let ok =
            self.groups.iter().filter(|g| g.meets_paper_invariant(&self.pool, params, n)).count();
        ok as f64 / self.groups.len().max(1) as f64
    }

    /// Fraction of confused groups.
    pub fn frac_confused(&self) -> f64 {
        let c = self.confused.iter().filter(|&&x| x).count();
        c as f64 / self.confused.len().max(1) as f64
    }

    /// Mean live group size.
    pub fn mean_group_size(&self) -> f64 {
        let total: usize = (0..self.len()).map(|i| self.group_size(i)).sum();
        total as f64 / self.len().max(1) as f64
    }

    /// Leader-ring indices of all blue groups.
    pub fn blue_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.is_red(i)).collect()
    }
}

/// Read access to one side's group graph, independent of storage layout.
///
/// Two kernels implement the epoch loop: the legacy per-group
/// [`GroupGraph`] (one `Vec<u32>` member list per group) and the arena
/// kernel's SoA columns ([`crate::arena::ArenaGraphs`], one contiguous
/// member column per side with CSR offsets). Everything that *reads* a
/// group graph — search paths, robustness measurement, construction
/// bootstraps, string agreement, adversary observation — goes through
/// this trait, so the two layouts are interchangeable and, because they
/// share the same reading code, structurally forced to agree.
///
/// The provided methods derive every aggregate fraction from the four
/// per-group primitives, mirroring the corresponding [`GroupGraph`]
/// inherent methods exactly (the kernel-equivalence suite holds both
/// layouts to byte-identical observation streams).
pub trait GroupGraphView {
    /// Number of groups (= number of leaders).
    fn len(&self) -> usize;
    /// Whether group `i` is red (bad majority, dead, or confused).
    fn is_red(&self, i: usize) -> bool;
    /// Live size of group `i` (live members plus captured slots).
    fn group_size(&self, i: usize) -> usize;
    /// Live bad members of group `i`, including captured slots.
    fn group_bad_count(&self, i: usize) -> usize;
    /// Whether group `i`'s neighbor links are incorrect (Lemma 8).
    fn is_confused(&self, i: usize) -> bool;
    /// The member column of group `i`: pool ring indices, sorted and
    /// deduplicated (live and departed members alike — filter through
    /// [`GroupGraphView::pool`] for liveness).
    fn group_members(&self, i: usize) -> &[u32];
    /// Adversary-captured slots of group `i` (slots whose dual searches
    /// both failed and were claimed by bad pool members).
    fn captured_slots(&self, i: usize) -> u32;
    /// The leader generation (vertices of the graph).
    fn leaders(&self) -> &Population;
    /// The member pool generation.
    fn pool(&self) -> &Population;
    /// The input-graph topology `H` over the leader ring.
    fn topology(&self) -> &dyn InputGraph;

    /// Whether the graph has no groups.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether group `i` has strictly more live good members than bad.
    fn has_good_majority(&self, i: usize) -> bool {
        let size = self.group_size(i);
        let bad = self.group_bad_count(i);
        size > 0 && 2 * bad < size
    }

    /// Fraction of red groups — the quantity `pf` bounds (S2).
    fn frac_red(&self) -> f64 {
        let red = (0..self.len()).filter(|&i| self.is_red(i)).count();
        red as f64 / self.len().max(1) as f64
    }

    /// Fraction of groups with a good majority.
    fn frac_good_majority(&self) -> f64 {
        let good = (0..self.len()).filter(|&i| self.has_good_majority(i)).count();
        good as f64 / self.len().max(1) as f64
    }

    /// Fraction of groups meeting the paper's §I-C invariant.
    fn frac_paper_invariant(&self, params: &Params) -> f64 {
        let n = self.leaders().len();
        let ok = (0..self.len())
            .filter(|&i| {
                let size = self.group_size(i);
                if size < params.min_good_size(n) || size > params.draws(n) + 1 {
                    return false;
                }
                (self.group_bad_count(i) as f64) <= params.max_bad_members(size)
            })
            .count();
        ok as f64 / self.len().max(1) as f64
    }

    /// Fraction of confused groups.
    fn frac_confused(&self) -> f64 {
        let c = (0..self.len()).filter(|&i| self.is_confused(i)).count();
        c as f64 / self.len().max(1) as f64
    }

    /// Mean live group size.
    fn mean_group_size(&self) -> f64 {
        let total: usize = (0..self.len()).map(|i| self.group_size(i)).sum();
        total as f64 / self.len().max(1) as f64
    }

    /// Leader-ring indices of all blue groups.
    fn blue_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.is_red(i)).collect()
    }
}

impl GroupGraphView for GroupGraph {
    fn len(&self) -> usize {
        self.groups.len()
    }

    fn is_red(&self, i: usize) -> bool {
        self.colors[i] == Color::Red
    }

    fn group_size(&self, i: usize) -> usize {
        self.groups[i].size(&self.pool)
    }

    fn group_bad_count(&self, i: usize) -> usize {
        self.groups[i].bad_count(&self.pool)
    }

    fn is_confused(&self, i: usize) -> bool {
        self.confused[i]
    }

    fn group_members(&self, i: usize) -> &[u32] {
        &self.groups[i].members
    }

    fn captured_slots(&self, i: usize) -> u32 {
        self.groups[i].captured_slots
    }

    fn leaders(&self) -> &Population {
        &self.leaders
    }

    fn pool(&self) -> &Population {
        &self.pool
    }

    fn topology(&self) -> &dyn InputGraph {
        self.topology.as_ref()
    }

    // Delegate the aggregates to the color-cache-backed inherent methods:
    // identical results, one array lookup instead of a member scan.
    fn frac_red(&self) -> f64 {
        GroupGraph::frac_red(self)
    }

    fn frac_good_majority(&self) -> f64 {
        GroupGraph::frac_good_majority(self)
    }

    fn frac_paper_invariant(&self, params: &Params) -> f64 {
        GroupGraph::frac_paper_invariant(self, params)
    }

    fn frac_confused(&self) -> f64 {
        GroupGraph::frac_confused(self)
    }

    fn mean_group_size(&self) -> f64 {
        GroupGraph::mean_group_size(self)
    }

    fn blue_indices(&self) -> Vec<usize> {
        GroupGraph::blue_indices(self)
    }
}

/// A borrowed, layout-agnostic view of one epoch's operational graphs —
/// what [`crate::dynamic::AdversaryView`] exposes to strategies and what
/// [`crate::scenario::EpochDriver::graphs`] returns.
///
/// `Copy`, so provider wrappers (`WithEpochString`, the PoW pipeline's
/// re-wrapping) can forward it without lifetime gymnastics.
#[derive(Clone, Copy)]
pub enum GraphsView<'a> {
    /// Per-group `Vec` storage (the legacy kernel).
    Legacy(&'a [GroupGraph]),
    /// Flat SoA columns (the arena kernel).
    Arena(&'a crate::arena::ArenaGraphs),
}

impl<'a> GraphsView<'a> {
    /// The view of no graphs at all (genesis: nothing to observe).
    pub fn empty() -> GraphsView<'static> {
        GraphsView::Legacy(&[])
    }

    /// Number of sides (2 dual, 1 single-graph ablation, 0 at genesis).
    pub fn sides(&self) -> usize {
        match self {
            GraphsView::Legacy(gs) => gs.len(),
            GraphsView::Arena(a) => a.sides(),
        }
    }

    /// Whether there are no graphs to observe.
    pub fn is_empty(&self) -> bool {
        self.sides() == 0
    }

    /// The view of side `s`.
    pub fn side(&self, s: usize) -> SideRef<'a> {
        match self {
            GraphsView::Legacy(gs) => SideRef::Legacy(&gs[s]),
            GraphsView::Arena(a) => SideRef::Arena(a.side(s)),
        }
    }

    /// Iterate over the sides.
    pub fn iter(&self) -> impl Iterator<Item = SideRef<'a>> {
        let this = *self;
        (0..this.sides()).map(move |s| this.side(s))
    }
}

/// One side of a [`GraphsView`]: a `Copy` handle implementing
/// [`GroupGraphView`] by delegation to whichever layout backs it.
#[derive(Clone, Copy)]
pub enum SideRef<'a> {
    /// A legacy per-group graph.
    Legacy(&'a GroupGraph),
    /// An arena side.
    Arena(crate::arena::ArenaSideRef<'a>),
}

macro_rules! side_delegate {
    ($self:ident, $g:ident => $e:expr) => {
        match $self {
            SideRef::Legacy($g) => $e,
            SideRef::Arena($g) => $e,
        }
    };
}

impl GroupGraphView for SideRef<'_> {
    fn len(&self) -> usize {
        side_delegate!(self, g => g.len())
    }

    fn is_red(&self, i: usize) -> bool {
        side_delegate!(self, g => g.is_red(i))
    }

    fn group_size(&self, i: usize) -> usize {
        side_delegate!(self, g => g.group_size(i))
    }

    fn group_bad_count(&self, i: usize) -> usize {
        side_delegate!(self, g => g.group_bad_count(i))
    }

    fn is_confused(&self, i: usize) -> bool {
        side_delegate!(self, g => g.is_confused(i))
    }

    fn group_members(&self, i: usize) -> &[u32] {
        side_delegate!(self, g => g.group_members(i))
    }

    fn captured_slots(&self, i: usize) -> u32 {
        side_delegate!(self, g => g.captured_slots(i))
    }

    fn leaders(&self) -> &Population {
        side_delegate!(self, g => g.leaders())
    }

    fn pool(&self) -> &Population {
        side_delegate!(self, g => g.pool())
    }

    fn topology(&self) -> &dyn InputGraph {
        side_delegate!(self, g => g.topology())
    }

    fn frac_red(&self) -> f64 {
        side_delegate!(self, g => g.frac_red())
    }

    fn frac_good_majority(&self) -> f64 {
        side_delegate!(self, g => g.frac_good_majority())
    }

    fn frac_paper_invariant(&self, params: &Params) -> f64 {
        side_delegate!(self, g => g.frac_paper_invariant(params))
    }

    fn frac_confused(&self) -> f64 {
        side_delegate!(self, g => g.frac_confused())
    }

    fn mean_group_size(&self) -> f64 {
        side_delegate!(self, g => g.mean_group_size())
    }

    fn blue_indices(&self) -> Vec<usize> {
        side_delegate!(self, g => g.blue_indices())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tg_overlay::GraphKind;

    fn tiny_graph() -> GroupGraph {
        let mut rng = StdRng::seed_from_u64(7);
        let leaders = Population::uniform(16, 4, &mut rng);
        let pool = leaders.clone();
        // Group i = {i, i+1, i+2} mod 20 — deterministic membership for
        // the test.
        let n = leaders.len();
        let groups: Vec<Group> = (0..n)
            .map(|i| {
                Group::new(i as u32, vec![i as u32, ((i + 1) % n) as u32, ((i + 2) % n) as u32], 0)
            })
            .collect();
        let topology = GraphKind::Chord.build(leaders.ring().clone());
        GroupGraph::new(leaders, pool, groups, vec![false; n], topology)
    }

    #[test]
    fn colors_follow_majority() {
        let gg = tiny_graph();
        for i in 0..gg.len() {
            let expect =
                if gg.groups[i].has_good_majority(&gg.pool) { Color::Blue } else { Color::Red };
            assert_eq!(gg.color(i), expect);
        }
    }

    #[test]
    fn confusion_makes_red() {
        let mut gg = tiny_graph();
        let blue = gg.blue_indices()[0];
        gg.confused[blue] = true;
        gg.recolor();
        assert!(gg.is_red(blue));
    }

    #[test]
    fn fractions_are_consistent() {
        let gg = tiny_graph();
        assert!(gg.frac_red() >= 0.0 && gg.frac_red() <= 1.0);
        assert!(
            (gg.frac_red() + gg.blue_indices().len() as f64 / gg.len() as f64 - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn churn_recolor_flips_groups() {
        let mut gg = tiny_graph();
        let before = gg.frac_good_majority();
        // Depart most good pool members.
        let mut rng = StdRng::seed_from_u64(9);
        gg.pool.depart_good_fraction(0.9, &mut rng);
        gg.recolor();
        let after = gg.frac_good_majority();
        assert!(after < before, "mass departures must hurt: {before} -> {after}");
    }
}
