//! The group graph `G` (§II-A).
//!
//! For an input graph `H` over the leader ring, the group graph has one
//! group per ID (S1). Each group is **blue** or **red**:
//!
//! * *red* — the group is bad (no good majority among its live members)
//!   or *confused* (its neighbor links differ from the topology's
//!   linking rules — the Lemma 8 failure mode),
//! * *blue* — good and correctly linked.
//!
//! Edges incident to blue groups follow `H` (S3): the good majority keeps
//! a blue group's neighbor knowledge consistent, so the adversary cannot
//! rewire it — it can only rewire among red groups, which never helps a
//! search that (by the search-path semantics) dies at the first red group
//! anyway.

use crate::group::Group;
use crate::params::Params;
use crate::population::Population;
use tg_overlay::InputGraph;

/// Blue/red classification of a group (§II-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Color {
    /// Good majority and correct neighbor set.
    Blue,
    /// Bad majority, dead, or confused.
    Red,
}

/// A group graph: groups over a leader ring, members from a pool
/// generation, atop an input-graph topology.
pub struct GroupGraph {
    /// The current generation: leaders / vertices of the graph.
    pub leaders: Population,
    /// The member pool (previous generation in the dynamic case; the
    /// same generation for initial/static graphs).
    pub pool: Population,
    /// One group per leader, indexed by leader ring index.
    pub groups: Vec<Group>,
    /// Whether each group's neighbor links are incorrect (Lemma 8).
    pub confused: Vec<bool>,
    /// The input-graph topology `H` over the leader ring.
    pub topology: Box<dyn InputGraph>,
    colors: Vec<Color>,
}

impl GroupGraph {
    /// Assemble a group graph and compute its coloring.
    pub fn new(
        leaders: Population,
        pool: Population,
        groups: Vec<Group>,
        confused: Vec<bool>,
        topology: Box<dyn InputGraph>,
    ) -> Self {
        assert_eq!(groups.len(), leaders.len(), "one group per leader");
        assert_eq!(confused.len(), groups.len());
        let mut gg = GroupGraph { leaders, pool, groups, confused, topology, colors: Vec::new() };
        gg.recolor();
        gg
    }

    /// Number of groups (= number of leaders).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Recompute all colors (after churn or link updates).
    pub fn recolor(&mut self) {
        self.colors = (0..self.groups.len())
            .map(|i| {
                if self.groups[i].has_good_majority(&self.pool) && !self.confused[i] {
                    Color::Blue
                } else {
                    Color::Red
                }
            })
            .collect();
    }

    /// The color of group `i`.
    #[inline]
    pub fn color(&self, i: usize) -> Color {
        self.colors[i]
    }

    /// Whether group `i` is red.
    #[inline]
    pub fn is_red(&self, i: usize) -> bool {
        self.colors[i] == Color::Red
    }

    /// The live size of group `i` (for message accounting).
    #[inline]
    pub fn group_size(&self, i: usize) -> usize {
        self.groups[i].size(&self.pool)
    }

    /// Fraction of red groups — the quantity `pf` bounds (S2).
    pub fn frac_red(&self) -> f64 {
        let red = self.colors.iter().filter(|&&c| c == Color::Red).count();
        red as f64 / self.colors.len().max(1) as f64
    }

    /// Fraction of groups with a good majority (Theorem 3, first bullet,
    /// operational reading).
    pub fn frac_good_majority(&self) -> f64 {
        let good = self.groups.iter().filter(|g| g.has_good_majority(&self.pool)).count();
        good as f64 / self.groups.len().max(1) as f64
    }

    /// Fraction of groups meeting the paper's §I-C invariant (size range
    /// and `(1+δ)β` bad bound).
    pub fn frac_paper_invariant(&self, params: &Params) -> f64 {
        let n = self.leaders.len();
        let ok =
            self.groups.iter().filter(|g| g.meets_paper_invariant(&self.pool, params, n)).count();
        ok as f64 / self.groups.len().max(1) as f64
    }

    /// Fraction of confused groups.
    pub fn frac_confused(&self) -> f64 {
        let c = self.confused.iter().filter(|&&x| x).count();
        c as f64 / self.confused.len().max(1) as f64
    }

    /// Mean live group size.
    pub fn mean_group_size(&self) -> f64 {
        let total: usize = (0..self.len()).map(|i| self.group_size(i)).sum();
        total as f64 / self.len().max(1) as f64
    }

    /// Leader-ring indices of all blue groups.
    pub fn blue_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.is_red(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tg_overlay::GraphKind;

    fn tiny_graph() -> GroupGraph {
        let mut rng = StdRng::seed_from_u64(7);
        let leaders = Population::uniform(16, 4, &mut rng);
        let pool = leaders.clone();
        // Group i = {i, i+1, i+2} mod 20 — deterministic membership for
        // the test.
        let n = leaders.len();
        let groups: Vec<Group> = (0..n)
            .map(|i| {
                Group::new(i as u32, vec![i as u32, ((i + 1) % n) as u32, ((i + 2) % n) as u32], 0)
            })
            .collect();
        let topology = GraphKind::Chord.build(leaders.ring().clone());
        GroupGraph::new(leaders, pool, groups, vec![false; n], topology)
    }

    #[test]
    fn colors_follow_majority() {
        let gg = tiny_graph();
        for i in 0..gg.len() {
            let expect =
                if gg.groups[i].has_good_majority(&gg.pool) { Color::Blue } else { Color::Red };
            assert_eq!(gg.color(i), expect);
        }
    }

    #[test]
    fn confusion_makes_red() {
        let mut gg = tiny_graph();
        let blue = gg.blue_indices()[0];
        gg.confused[blue] = true;
        gg.recolor();
        assert!(gg.is_red(blue));
    }

    #[test]
    fn fractions_are_consistent() {
        let gg = tiny_graph();
        assert!(gg.frac_red() >= 0.0 && gg.frac_red() <= 1.0);
        assert!(
            (gg.frac_red() + gg.blue_indices().len() as f64 / gg.len() as f64 - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn churn_recolor_flips_groups() {
        let mut gg = tiny_graph();
        let before = gg.frac_good_majority();
        // Depart most good pool members.
        let mut rng = StdRng::seed_from_u64(9);
        gg.pool.depart_good_fraction(0.9, &mut rng);
        gg.recolor();
        let after = gg.frac_good_majority();
        assert!(after < before, "mass departures must hurt: {before} -> {after}");
    }
}
