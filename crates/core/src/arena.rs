//! The arena epoch kernel: flat SoA group storage for million-identity
//! epochs.
//!
//! The legacy kernel ([`crate::dynamic::DynamicSystem`]) stores each
//! group as its own [`crate::group::Group`] with a heap-allocated member
//! `Vec` — `n` allocations per side per epoch, pointer-chasing on every
//! majority scan. At paper scale (`n ≈ 10³–10⁴`) that is irrelevant; at
//! `n = 10⁶` it dominates the epoch wall clock.
//!
//! This module replaces the per-group storage with one contiguous arena
//! per side:
//!
//! ```text
//!              group 0      group 1    group 2
//!            ┌──────────┬────────────┬─────────┬─ ─ ─
//!   members  │ 3 17 901 │ 4 17 88 90 │ 2 5     │ ...     (u32 column,
//!            └──────────┴────────────┴─────────┴─ ─ ─     sorted+deduped
//!   offsets  0          3            7         9           per range)
//!
//!   captured [ 0, 1, 0, ... ]   (u32 per group)
//!   confused [ f, f, t, ... ]   (bool per group)
//!   colors   [ B, B, R, ... ]   (recomputed per epoch)
//! ```
//!
//! Group `i`'s members are `members[offsets[i]..offsets[i+1]]` — a CSR
//! range scan instead of a `Vec` dereference. The leader/pool populations
//! and the topology are shared per epoch rather than cloned per side.
//!
//! **Determinism contract.** [`ArenaSystem::advance_epoch`] consumes the
//! exact RNG streams of the legacy kernel, draw for draw:
//!
//! * membership bootstrap picks are unconditional per slot and precede
//!   each leader's link-phase draws (the legacy order), so they are
//!   pre-drawn into a flat column in pass 1;
//! * construction searches consume no randomness, so pass 2 fans the
//!   whole slot column out over [`tg_sim::parallel_map`] blocks and folds
//!   the per-slot outcomes back in slot order — [`tg_sim::Metrics`] and
//!   [`BuildStats`] are additive sums, so totals are exact for any
//!   thread count;
//! * link-phase draws are conditional on link-search outcomes, so the
//!   link loop stays inline in pass 1, byte-compatible with the legacy
//!   loop;
//! * measurement pre-draws its `(initiator, key)` sample and uses the
//!   chunked fan-out of [`crate::robustness::measure_robustness_chunked`].
//!
//! The conformance suite replays identical scenarios through both kernels
//! and asserts identical observation streams; the committed seed-42
//! goldens replay byte-identically through this kernel.

use crate::dynamic::adversary::AdversaryView;
use crate::dynamic::build::{construction_search, pick_boot, BuildMode, BuildStats};
use crate::dynamic::provider::IdentityProvider;
use crate::dynamic::system::EpochReport;
use crate::graph::{Color, GraphsView, GroupGraphView};
use crate::params::Params;
use crate::population::Population;
use crate::robustness::{measure_dual_success_chunked, measure_robustness_chunked};
use rand::rngs::StdRng;
use rand::Rng;
use tg_crypto::OracleFamily;
use tg_idspace::Id;
use tg_overlay::{GraphKind, InputGraph};
use tg_sim::{parallel_map, parallel_map_chunked, stream_rng, Metrics};

/// Slots per parallel work block in the membership fan-out. Block
/// boundaries only affect scheduling — results are folded in slot order,
/// so any block size yields bit-identical epochs.
const SLOT_BLOCK: usize = 2048;

/// One side's groups in CSR layout (see the module docs for the layout
/// diagram).
pub struct ArenaSide {
    /// `offsets[i]..offsets[i+1]` is group `i`'s member range.
    offsets: Vec<u32>,
    /// Concatenated member columns, sorted and deduplicated per range.
    members: Vec<u32>,
    /// Captured slots per group (adversarial plants outside the pool).
    captured: Vec<u32>,
    /// Whether each group's links are incorrect (Lemma 8).
    confused: Vec<bool>,
    /// Blue/red classification, recomputed by [`ArenaGraphs::recolor`].
    colors: Vec<Color>,
}

impl ArenaSide {
    /// Number of groups on this side.
    pub fn len(&self) -> usize {
        self.captured.len()
    }

    /// Whether the side has no groups.
    pub fn is_empty(&self) -> bool {
        self.captured.is_empty()
    }

    /// Group `i`'s member column (pool ring indices, sorted).
    #[inline]
    fn group_members(&self, i: usize) -> &[u32] {
        &self.members[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// One epoch's operational graphs in arena layout: shared leader/pool
/// populations and topology, plus one [`ArenaSide`] per side.
pub struct ArenaGraphs {
    /// The current generation: leaders / vertices of the graphs.
    pub leaders: Population,
    /// The member pool (previous generation). One physical population —
    /// the sides share it, unlike the legacy kernel's per-side clones.
    pub pool: Population,
    /// The input-graph topology `H` over the leader ring. A pure function
    /// of the ring, so one instance serves every side.
    topology: Box<dyn InputGraph>,
    /// The per-side group columns.
    sides: Vec<ArenaSide>,
}

impl ArenaGraphs {
    /// Number of sides (2 dual, 1 single-graph ablation).
    pub fn sides(&self) -> usize {
        self.sides.len()
    }

    /// A [`GroupGraphView`] handle onto side `s`.
    pub fn side(&self, s: usize) -> ArenaSideRef<'_> {
        ArenaSideRef { arena: self, side: &self.sides[s] }
    }

    /// Recompute every side's colors (after churn or construction):
    /// blue iff a live good majority and not confused.
    pub fn recolor(&mut self) {
        let pool = &self.pool;
        for side in &mut self.sides {
            let n = side.captured.len();
            let mut colors = Vec::with_capacity(n);
            for i in 0..n {
                let range = &side.members[side.offsets[i] as usize..side.offsets[i + 1] as usize];
                let mut size = side.captured[i] as usize;
                let mut bad = side.captured[i] as usize;
                for &m in range {
                    if pool.is_live(m as usize) {
                        size += 1;
                        if pool.is_bad(m as usize) {
                            bad += 1;
                        }
                    }
                }
                let blue = size > 0 && 2 * bad < size && !side.confused[i];
                colors.push(if blue { Color::Blue } else { Color::Red });
            }
            side.colors = colors;
        }
    }
}

/// A `Copy` handle onto one arena side, implementing [`GroupGraphView`]
/// over the CSR columns.
#[derive(Clone, Copy)]
pub struct ArenaSideRef<'a> {
    arena: &'a ArenaGraphs,
    side: &'a ArenaSide,
}

impl GroupGraphView for ArenaSideRef<'_> {
    fn len(&self) -> usize {
        self.side.len()
    }

    fn is_red(&self, i: usize) -> bool {
        self.side.colors[i] == Color::Red
    }

    fn group_size(&self, i: usize) -> usize {
        let pool = &self.arena.pool;
        self.side.group_members(i).iter().filter(|&&m| pool.is_live(m as usize)).count()
            + self.side.captured[i] as usize
    }

    fn group_bad_count(&self, i: usize) -> usize {
        let pool = &self.arena.pool;
        self.side
            .group_members(i)
            .iter()
            .filter(|&&m| pool.is_live(m as usize) && pool.is_bad(m as usize))
            .count()
            + self.side.captured[i] as usize
    }

    fn is_confused(&self, i: usize) -> bool {
        self.side.confused[i]
    }

    fn group_members(&self, i: usize) -> &[u32] {
        self.side.group_members(i)
    }

    fn captured_slots(&self, i: usize) -> u32 {
        self.side.captured[i]
    }

    fn leaders(&self) -> &Population {
        &self.arena.leaders
    }

    fn pool(&self) -> &Population {
        &self.arena.pool
    }

    fn topology(&self) -> &dyn InputGraph {
        self.arena.topology.as_ref()
    }
}

/// Per-slot outcome of the membership fan-out, folded back in slot order.
/// Kept to 8 bytes — at `n = 10⁶` there are ~10⁷ slots per side.
#[derive(Clone, Copy)]
enum SlotOut {
    /// All construction searches failed: the adversary answers (Lemma 7).
    Captured,
    /// Honest resolution to a bad pool ID (Lemma 6).
    Bad(u32),
    /// Honest resolution, verified by the good candidate.
    Member(u32),
    /// Good candidate's own verification searches failed: slot lost.
    Rejected,
}

/// The arena epoch system: the same churn → build → measure → swap loop
/// as [`crate::dynamic::DynamicSystem`], on SoA storage with the
/// membership and measurement phases fanned out deterministically.
pub struct ArenaSystem {
    /// Construction constants.
    pub params: Params,
    /// Input-graph topology family.
    pub kind: GraphKind,
    /// Oracle family (fixed at initialization).
    pub fam: OracleFamily,
    /// Dual-graph (paper) or single-graph (ablation) construction.
    pub mode: BuildMode,
    /// The operational graphs.
    pub graphs: ArenaGraphs,
    /// The epoch the operational graphs serve.
    pub epoch: u64,
    /// Searches sampled per epoch for the robustness report.
    pub searches_per_epoch: usize,
    master_seed: u64,
    /// Member-column capacity hint (pre-sizes the arena allocation; the
    /// scenario layer surfaces this as the `cap` knob).
    capacity: Option<usize>,
}

impl ArenaSystem {
    /// Initialize at epoch 1 with trusted-bootstrap graphs. Consumes the
    /// same `"init"` RNG stream as the legacy kernel.
    pub fn new(
        params: Params,
        kind: GraphKind,
        mode: BuildMode,
        provider: &mut dyn IdentityProvider,
        master_seed: u64,
        capacity: Option<usize>,
    ) -> Self {
        let fam = OracleFamily::new(master_seed);
        let mut rng = stream_rng(master_seed, "init", 0);
        let ids = provider.ids_for_epoch(0, &AdversaryView::genesis(0), &mut rng);
        let pop = Population::new(ids.good, ids.bad);
        let n = pop.len();
        let draws = params.draws(n);
        let cap = capacity.unwrap_or(n * (draws + 1));

        let topology = kind.build(pop.ring().clone());
        let sides: Vec<ArenaSide> = (0..mode.sides())
            .map(|s| {
                let oracle = fam.membership(if mode == BuildMode::SingleGraph { 0 } else { s });
                let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
                let mut members: Vec<u32> = Vec::with_capacity(cap);
                offsets.push(0);
                let mut buf: Vec<u32> = Vec::with_capacity(draws + 1);
                for w in 0..n {
                    let wid = pop.ring().at(w);
                    buf.clear();
                    buf.push(w as u32);
                    for i in 0..draws {
                        let point = oracle.hash_id_index(wid, i as u32);
                        buf.push(pop.ring().successor_index(point) as u32);
                    }
                    buf.sort_unstable();
                    buf.dedup();
                    members.extend_from_slice(&buf);
                    offsets.push(members.len() as u32);
                }
                ArenaSide {
                    offsets,
                    members,
                    captured: vec![0; n],
                    confused: vec![false; n],
                    colors: Vec::new(),
                }
            })
            .collect();

        let mut graphs = ArenaGraphs { leaders: pop.clone(), pool: pop, topology, sides };
        graphs.recolor();
        ArenaSystem {
            params,
            kind,
            fam,
            mode,
            graphs,
            epoch: 1,
            searches_per_epoch: 400,
            master_seed,
            capacity,
        }
    }

    /// Run one epoch: churn, build, measure, swap — bit-identical to
    /// [`crate::dynamic::DynamicSystem::advance_epoch`] for the same
    /// seed, regardless of thread count.
    pub fn advance_epoch(&mut self, provider: &mut dyn IdentityProvider) -> EpochReport {
        let mut rng = stream_rng(self.master_seed, "epoch", self.epoch);
        let mut metrics = Metrics::new();

        // 1. Intra-epoch churn. One shared pool: departing it directly
        //    consumes the same "churn"-stream draws and produces the same
        //    departed set as the legacy scratch-clone detection.
        if self.params.churn_rate > 0.0 {
            let mut pick_rng = stream_rng(self.master_seed, "churn", self.epoch);
            self.graphs.pool.depart_good_fraction(self.params.churn_rate, &mut pick_rng);
            self.graphs.recolor();
        }

        // 2. Mint the next generation through the (churned) current one.
        let view = AdversaryView {
            epoch: self.epoch + 1,
            graphs: GraphsView::Arena(&self.graphs),
            epoch_string: None,
        };
        let ids = provider.ids_for_epoch(self.epoch + 1, &view, &mut rng);
        let new_pop = Population::new(ids.good, ids.bad);
        let (news, build) = build_new_arena(
            &self.graphs,
            &new_pop,
            self.kind,
            &self.fam,
            &self.params,
            self.mode,
            self.capacity,
            &mut rng,
            &mut metrics,
        );

        // 3. Measure the fresh graphs on the legacy measurement streams,
        //    fanned out in deterministic chunks.
        let mut meas_rng = stream_rng(self.master_seed, "measure", self.epoch);
        let side0 = news.side(0);
        let single = measure_robustness_chunked(
            &side0,
            &self.params,
            self.searches_per_epoch,
            &mut meas_rng,
        );
        let dual = if news.sides() == 2 {
            let mut dual_rng = stream_rng(self.master_seed, "measure-dual", self.epoch);
            let s0 = news.side(0);
            let s1 = news.side(1);
            measure_dual_success_chunked([&s0, &s1], self.searches_per_epoch, &mut dual_rng)
        } else {
            single.search_success
        };

        // 4. Membership-state accounting over the member columns.
        let pool_len = news.pool.len();
        let mut memberships = vec![0usize; pool_len];
        for side in &news.sides {
            for &m in &side.members {
                memberships[m as usize] += 1;
            }
        }
        let good_counts: Vec<usize> =
            (0..pool_len).filter(|&i| !news.pool.is_bad(i)).map(|i| memberships[i]).collect();
        let mean_memberships =
            good_counts.iter().sum::<usize>() as f64 / good_counts.len().max(1) as f64;
        let max_memberships = good_counts.iter().copied().max().unwrap_or(0);

        let report = EpochReport {
            epoch: self.epoch + 1,
            frac_red: (0..news.sides()).map(|s| news.side(s).frac_red()).collect(),
            frac_good_majority: (0..news.sides())
                .map(|s| news.side(s).frac_good_majority())
                .collect(),
            frac_confused: (0..news.sides()).map(|s| news.side(s).frac_confused()).collect(),
            frac_paper_invariant: (0..news.sides())
                .map(|s| news.side(s).frac_paper_invariant(&self.params))
                .collect(),
            search_success_single: single.search_success,
            search_success_dual: dual,
            build,
            mean_memberships,
            max_memberships,
            metrics,
        };

        // 5. Swap.
        self.graphs = news;
        self.epoch += 1;
        report
    }

    /// Run `epochs` epochs, returning all reports.
    pub fn run(&mut self, provider: &mut dyn IdentityProvider, epochs: usize) -> Vec<EpochReport> {
        (0..epochs).map(|_| self.advance_epoch(provider)).collect()
    }
}

/// Build the next epoch's arena graphs through the old ones — the arena
/// counterpart of [`crate::dynamic::build::build_new_graphs`], split into a
/// sequential RNG pass and a parallel search pass (see the module docs).
#[allow(clippy::too_many_arguments)] // the protocol's full parameter surface
fn build_new_arena(
    olds: &ArenaGraphs,
    new_leaders: &Population,
    kind: GraphKind,
    fam: &OracleFamily,
    params: &Params,
    mode: BuildMode,
    capacity: Option<usize>,
    rng: &mut StdRng,
    metrics: &mut Metrics,
) -> (ArenaGraphs, BuildStats) {
    assert_eq!(olds.sides(), mode.sides(), "old-graph count must match the build mode");
    let n_sides = mode.sides();
    let old_views: Vec<ArenaSideRef<'_>> = (0..n_sides).map(|s| olds.side(s)).collect();
    let n_new = new_leaders.len();
    let pool = olds.leaders.clone();
    let pool_bad: Vec<usize> = pool.bad_indices();
    let draws = params.draws(n_new);
    let n_slots = n_new * draws;
    let cap = capacity.unwrap_or(n_slots);
    let mut stats = BuildStats::default();

    let topology = kind.build(new_leaders.ring().clone());
    let mut sides: Vec<ArenaSide> = Vec::with_capacity(n_sides);

    for side in 0..n_sides {
        let oracle = match mode {
            BuildMode::DualGraph => fam.membership(side),
            BuildMode::SingleGraph => fam.h1,
        };

        // --- Pass 1 (sequential): every RNG draw, in the legacy order.
        // Per leader: the slot bootstrap picks (unconditional — searches
        // draw nothing, so they can be deferred), then the link phase
        // inline (its draw count depends on link-search outcomes).
        let mut boots: Vec<u32> = vec![u32::MAX; n_slots * n_sides];
        let mut confused = vec![false; n_new];
        let attempts = 1 + params.link_retries;
        for w in 0..n_new {
            let wid = new_leaders.ring().at(w);
            for i in 0..draws {
                stats.member_slots += 1;
                let base = (w * draws + i) * n_sides;
                for (k, old) in old_views.iter().enumerate() {
                    if let Some(b) = pick_boot(old, rng) {
                        boots[base + k] = b as u32;
                    }
                }
            }
            for u in topology.neighbors(wid) {
                stats.links_required += 1;
                let mut established = false;
                for _ in 0..attempts {
                    let boots_try: Vec<Option<usize>> =
                        old_views.iter().map(|g| pick_boot(g, rng)).collect();
                    if !construction_search(&old_views, &boots_try, u, metrics) {
                        continue;
                    }
                    let u_idx = new_leaders.ring().index_of(u).expect("neighbor is a new leader");
                    let verified = if new_leaders.is_bad(u_idx) {
                        true
                    } else {
                        let u_boots: Vec<Option<usize>> =
                            old_views.iter().map(|g| pick_boot(g, rng)).collect();
                        construction_search(&old_views, &u_boots, u, metrics)
                    };
                    if verified {
                        established = true;
                        break;
                    }
                }
                if !established {
                    stats.links_failed += 1;
                    confused[w] = true;
                }
            }
        }

        // --- Pass 2 (parallel, RNG-free): the slot searches, fanned out
        // in fixed blocks and folded in slot order.
        let n_blocks = n_slots.div_ceil(SLOT_BLOCK);
        let boots_ref = &boots;
        let views_ref = &old_views;
        let pool_ref = &pool;
        let block_results: Vec<(Metrics, Vec<SlotOut>)> =
            parallel_map((0..n_blocks).collect(), |b| {
                let start = b * SLOT_BLOCK;
                let end = ((b + 1) * SLOT_BLOCK).min(n_slots);
                let mut m = Metrics::new();
                let mut outs = Vec::with_capacity(end - start);
                for slot in start..end {
                    let w = slot / draws;
                    let i = slot % draws;
                    let wid = new_leaders.ring().at(w);
                    let point = oracle.hash_id_index(wid, i as u32);
                    let base = slot * n_sides;
                    let mut from = [None, None];
                    for (k, f) in from.iter_mut().take(n_sides).enumerate() {
                        let v = boots_ref[base + k];
                        if v != u32::MAX {
                            *f = Some(v as usize);
                        }
                    }
                    let out = if !construction_search(views_ref, &from[..n_sides], point, &mut m) {
                        SlotOut::Captured
                    } else {
                        let cand = pool_ref.ring().successor_index(point);
                        if pool_ref.is_bad(cand) {
                            SlotOut::Bad(cand as u32)
                        } else {
                            let own = [Some(cand), Some(cand)];
                            if construction_search(views_ref, &own[..n_sides], point, &mut m) {
                                SlotOut::Member(cand as u32)
                            } else {
                                SlotOut::Rejected
                            }
                        }
                    };
                    outs.push(out);
                }
                (m, outs)
            });

        // --- Fold in slot order: CSR assembly plus the additive counters.
        let mut offsets: Vec<u32> = Vec::with_capacity(n_new + 1);
        let mut members: Vec<u32> = Vec::with_capacity(cap);
        let mut captured: Vec<u32> = vec![0; n_new];
        offsets.push(0);
        for (m, _) in &block_results {
            metrics.merge(m);
        }
        let mut slots = block_results.iter().flat_map(|(_, outs)| outs.iter());
        let mut buf: Vec<u32> = Vec::with_capacity(draws);
        for w in 0..n_new {
            buf.clear();
            for _ in 0..draws {
                match *slots.next().expect("one outcome per slot") {
                    SlotOut::Captured => {
                        stats.captured_slots += 1;
                        if !pool_bad.is_empty() {
                            captured[w] += 1;
                        }
                    }
                    SlotOut::Bad(c) => {
                        stats.bad_member_draws += 1;
                        buf.push(c);
                    }
                    SlotOut::Member(c) => buf.push(c),
                    SlotOut::Rejected => stats.rejected_slots += 1,
                }
            }
            buf.sort_unstable();
            buf.dedup();
            members.extend_from_slice(&buf);
            offsets.push(members.len() as u32);
        }

        sides.push(ArenaSide { offsets, members, captured, confused, colors: Vec::new() });
    }

    // --- The Lemma 10 state attack, fanned out the same way: the fake
    // points are pre-drawn in the legacy order, the verification searches
    // draw nothing.
    let good_pool = pool.good_indices();
    if params.attack_requests_per_id > 0 && !good_pool.is_empty() {
        let mut tasks: Vec<(u32, Id)> =
            Vec::with_capacity(good_pool.len() * params.attack_requests_per_id);
        for &u in &good_pool {
            for _ in 0..params.attack_requests_per_id {
                stats.spurious_issued += 1;
                tasks.push((u as u32, Id(rng.gen())));
            }
        }
        let views_ref = &old_views;
        let results = parallel_map_chunked(tasks, SLOT_BLOCK, |(u, fake_point)| {
            let mut m = Metrics::new();
            let own = [Some(u as usize), Some(u as usize)];
            let accepted = !construction_search(views_ref, &own[..n_sides], fake_point, &mut m);
            (m, accepted)
        });
        for (m, accepted) in &results {
            metrics.merge(m);
            if *accepted {
                stats.spurious_accepted += 1;
            }
        }
    }

    let mut graphs = ArenaGraphs { leaders: new_leaders.clone(), pool, topology, sides };
    graphs.recolor();
    (graphs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::provider::UniformProvider;
    use crate::dynamic::DynamicSystem;

    fn paired(mode: BuildMode, seed: u64) -> (DynamicSystem, ArenaSystem, UniformProvider) {
        let mut params = Params::paper_defaults();
        params.attack_requests_per_id = 1;
        params.churn_rate = 0.1;
        let mut pa = UniformProvider { n_good: 380, n_bad: 20 };
        let legacy = DynamicSystem::new(params, GraphKind::D2B, mode, &mut pa, seed);
        let arena = ArenaSystem::new(params, GraphKind::D2B, mode, &mut pa, seed, None);
        (legacy, arena, pa)
    }

    fn assert_reports_identical(a: &EpochReport, b: &EpochReport) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn initial_graphs_match_legacy() {
        let (legacy, arena, _) = paired(BuildMode::DualGraph, 1);
        for s in 0..2 {
            let l = &legacy.graphs[s];
            let v = arena.graphs.side(s);
            assert_eq!(GroupGraphView::len(l), v.len());
            for i in 0..v.len() {
                assert_eq!(l.group_size(i), v.group_size(i), "side {s} group {i} size");
                assert_eq!(
                    GroupGraphView::group_bad_count(l, i),
                    v.group_bad_count(i),
                    "side {s} group {i} bad"
                );
                assert_eq!(l.is_red(i), v.is_red(i), "side {s} group {i} color");
                assert_eq!(
                    &l.groups[i].members[..],
                    arena.graphs.sides[s].group_members(i),
                    "side {s} group {i} members"
                );
            }
        }
    }

    #[test]
    fn epochs_match_legacy_exactly() {
        let (mut legacy, mut arena, mut provider) = paired(BuildMode::DualGraph, 7);
        for _ in 0..3 {
            let rl = legacy.advance_epoch(&mut provider);
            let ra = arena.advance_epoch(&mut provider);
            assert_reports_identical(&rl, &ra);
        }
    }

    #[test]
    fn single_graph_mode_matches_legacy() {
        let (mut legacy, mut arena, mut provider) = paired(BuildMode::SingleGraph, 4);
        let rl = legacy.advance_epoch(&mut provider);
        let ra = arena.advance_epoch(&mut provider);
        assert_reports_identical(&rl, &ra);
    }

    #[test]
    fn zero_churn_zero_attack_matches_legacy() {
        let mut params = Params::paper_defaults();
        params.attack_requests_per_id = 0;
        params.churn_rate = 0.0;
        let mut provider = UniformProvider { n_good: 300, n_bad: 15 };
        let mut legacy =
            DynamicSystem::new(params, GraphKind::Chord, BuildMode::DualGraph, &mut provider, 9);
        let mut arena = ArenaSystem::new(
            params,
            GraphKind::Chord,
            BuildMode::DualGraph,
            &mut provider,
            9,
            Some(1 << 16),
        );
        let rl = legacy.advance_epoch(&mut provider);
        let ra = arena.advance_epoch(&mut provider);
        assert_reports_identical(&rl, &ra);
    }
}
