//! Measuring ε-robustness (§I-A, Theorem 3).
//!
//! The definition: at least `(1−ε)n` groups have a non-faulty majority
//! and can securely route to each other. We report:
//!
//! * the good-group fractions (both the operational good-majority count
//!   and the paper's stricter §I-C invariant),
//! * the red fraction (bad ∪ confused — the S2 quantity `pf`),
//! * the empirical search success rate from random groups to random keys
//!   (Theorem 3's second bullet / Lemma 4),
//! * per-search cost (hops, messages — Corollary 1),
//! * the maximum *responsibility* `ρ(G_v)` over groups: the probability a
//!   random search path traverses `G_v` (Lemma 1 bounds this by
//!   `O(log^c n / n)`).

use crate::graph::GroupGraphView;
use crate::params::Params;
use crate::routing::{search_path, SearchOutcome};
use rand::rngs::StdRng;
use rand::Rng;
use tg_idspace::Id;
use tg_sim::{parallel_map_chunked, Metrics};

/// Robustness measurements for one group graph.
#[derive(Clone, Copy, Debug)]
pub struct RobustnessReport {
    /// Number of groups.
    pub n: usize,
    /// Fraction of red groups (`pf` realization).
    pub frac_red: f64,
    /// Fraction with good majority (operational Theorem 3 bullet 1).
    pub frac_good_majority: f64,
    /// Fraction meeting the §I-C invariant.
    pub frac_paper_invariant: f64,
    /// Fraction of sampled searches that succeeded (Theorem 3 bullet 2).
    pub search_success: f64,
    /// Mean traversed groups per successful search.
    pub mean_hops: f64,
    /// Mean messages per search (all-to-all accounting).
    pub mean_msgs: f64,
    /// Max over groups of the empirical traversal probability (Lemma 1).
    pub max_responsibility: f64,
    /// Mean live group size.
    pub mean_group_size: f64,
}

/// Sample `searches` random (initiator, key) pairs and measure.
pub fn measure_robustness<G: GroupGraphView>(
    gg: &G,
    params: &Params,
    searches: usize,
    rng: &mut StdRng,
) -> RobustnessReport {
    let mut metrics = Metrics::new();
    let mut traversals = vec![0u32; gg.len()];
    let mut success = 0usize;
    let mut success_hops = 0usize;

    for _ in 0..searches {
        let from = rng.gen_range(0..gg.len());
        let key = Id(rng.gen());
        // Track the truncated search path for responsibility accounting.
        let from_id = gg.leaders().ring().at(from);
        let route = gg.topology().route(from_id, key);
        let out = search_path(gg, from, key, &mut metrics);
        let traversed = out.hops();
        let mut idx: Vec<usize> = route.hops[..traversed]
            .iter()
            .map(|&h| gg.leaders().ring().index_of(h).expect("leader hop"))
            .collect();
        idx.sort_unstable();
        idx.dedup();
        for i in idx {
            traversals[i] += 1;
        }
        if let SearchOutcome::Success { hops, .. } = out {
            success += 1;
            success_hops += hops;
        }
    }

    RobustnessReport {
        n: gg.len(),
        frac_red: gg.frac_red(),
        frac_good_majority: gg.frac_good_majority(),
        frac_paper_invariant: gg.frac_paper_invariant(params),
        search_success: success as f64 / searches.max(1) as f64,
        mean_hops: if success > 0 { success_hops as f64 / success as f64 } else { 0.0 },
        mean_msgs: metrics.routing_msgs as f64 / searches.max(1) as f64,
        max_responsibility: traversals.iter().copied().max().unwrap_or(0) as f64
            / searches.max(1) as f64,
        mean_group_size: gg.mean_group_size(),
    }
}

/// Fraction of sampled searches for which at least one of the two sides
/// succeeds (the dual-graph availability the construction exploits).
pub fn measure_dual_success<G: GroupGraphView>(
    sides: [&G; 2],
    searches: usize,
    rng: &mut StdRng,
) -> f64 {
    let mut metrics = Metrics::new();
    let mut ok = 0usize;
    for _ in 0..searches {
        let from = rng.gen_range(0..sides[0].len());
        let key = Id(rng.gen());
        if crate::routing::dual_search(sides, from, key, &mut metrics) {
            ok += 1;
        }
    }
    ok as f64 / searches.max(1) as f64
}

/// Parallel [`measure_robustness`]: pre-draws the whole `(from, key)`
/// sample (the exact RNG sequence the sequential loop consumes — searches
/// themselves draw nothing) and fans the searches out in deterministic
/// chunks, folding per-search results back in sample order. Produces a
/// bit-identical [`RobustnessReport`] for any thread count; the arena
/// kernel uses this at million-identity scale.
pub fn measure_robustness_chunked<G: GroupGraphView + Sync>(
    gg: &G,
    params: &Params,
    searches: usize,
    rng: &mut StdRng,
) -> RobustnessReport {
    let pairs: Vec<(usize, Id)> =
        (0..searches).map(|_| (rng.gen_range(0..gg.len()), Id(rng.gen()))).collect();
    let per_search = parallel_map_chunked(pairs, 64, |(from, key)| {
        let mut m = Metrics::new();
        let from_id = gg.leaders().ring().at(from);
        let route = gg.topology().route(from_id, key);
        let out = search_path(gg, from, key, &mut m);
        let mut idx: Vec<usize> = route.hops[..out.hops()]
            .iter()
            .map(|&h| gg.leaders().ring().index_of(h).expect("leader hop"))
            .collect();
        idx.sort_unstable();
        idx.dedup();
        (m, out, idx)
    });

    let mut metrics = Metrics::new();
    let mut traversals = vec![0u32; gg.len()];
    let mut success = 0usize;
    let mut success_hops = 0usize;
    for (m, out, idx) in &per_search {
        metrics.merge(m);
        for &i in idx {
            traversals[i] += 1;
        }
        if let SearchOutcome::Success { hops, .. } = out {
            success += 1;
            success_hops += hops;
        }
    }

    RobustnessReport {
        n: gg.len(),
        frac_red: gg.frac_red(),
        frac_good_majority: gg.frac_good_majority(),
        frac_paper_invariant: gg.frac_paper_invariant(params),
        search_success: success as f64 / searches.max(1) as f64,
        mean_hops: if success > 0 { success_hops as f64 / success as f64 } else { 0.0 },
        mean_msgs: metrics.routing_msgs as f64 / searches.max(1) as f64,
        max_responsibility: traversals.iter().copied().max().unwrap_or(0) as f64
            / searches.max(1) as f64,
        mean_group_size: gg.mean_group_size(),
    }
}

/// Parallel [`measure_dual_success`], same pre-draw-then-fan-out scheme
/// as [`measure_robustness_chunked`]; bit-identical to the sequential
/// measurement for any thread count.
pub fn measure_dual_success_chunked<G: GroupGraphView + Sync>(
    sides: [&G; 2],
    searches: usize,
    rng: &mut StdRng,
) -> f64 {
    let pairs: Vec<(usize, Id)> =
        (0..searches).map(|_| (rng.gen_range(0..sides[0].len()), Id(rng.gen()))).collect();
    let oks = parallel_map_chunked(pairs, 64, |(from, key)| {
        let mut m = Metrics::new();
        crate::routing::dual_search(sides, from, key, &mut m)
    });
    oks.iter().filter(|&&ok| ok).count() as f64 / searches.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_initial_graph;
    use crate::graph::GroupGraph;
    use crate::population::Population;
    use rand::SeedableRng;
    use tg_crypto::OracleFamily;
    use tg_overlay::GraphKind;

    fn graph(n_good: usize, n_bad: usize, seed: u64) -> (GroupGraph, Params) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::uniform(n_good, n_bad, &mut rng);
        let fam = OracleFamily::new(seed);
        let params = Params::paper_defaults();
        (build_initial_graph(pop, GraphKind::Chord, fam.h1, &params), params)
    }

    #[test]
    fn clean_system_is_fully_robust() {
        let (gg, params) = graph(512, 0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let rep = measure_robustness(&gg, &params, 300, &mut rng);
        assert_eq!(rep.frac_red, 0.0);
        assert_eq!(rep.search_success, 1.0);
        assert!(rep.mean_hops > 1.0);
        assert!(rep.mean_msgs > 0.0);
    }

    #[test]
    fn responsibility_is_bounded_by_congestion() {
        let (gg, params) = graph(1024, 50, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let rep = measure_robustness(&gg, &params, 2000, &mut rng);
        // Lemma 1: ρ(G_v) = O(log^c n / n); for Chord c = 1 and the
        // constant is small. ln(1074) ≈ 7 → bound ≈ 8·7/1074 ≈ 0.05.
        let bound = 8.0 * (gg.len() as f64).ln() / gg.len() as f64;
        assert!(
            rep.max_responsibility < bound,
            "max responsibility {:.4} vs bound {:.4}",
            rep.max_responsibility,
            bound
        );
    }

    #[test]
    fn small_beta_keeps_high_success() {
        let (gg, params) = graph(2000, 100, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let rep = measure_robustness(&gg, &params, 500, &mut rng);
        assert!(rep.frac_red < 0.02, "frac red {:.4}", rep.frac_red);
        assert!(rep.search_success > 0.85, "success {:.3}", rep.search_success);
    }

    #[test]
    fn success_degrades_with_beta() {
        let (low, params) = graph(2000, 60, 7); // β ≈ 0.03
        let (high, _) = graph(2000, 500, 7); // β = 0.2
        let mut rng = StdRng::seed_from_u64(8);
        let r_low = measure_robustness(&low, &params, 400, &mut rng);
        let r_high = measure_robustness(&high, &params, 400, &mut rng);
        assert!(
            r_high.search_success < r_low.search_success,
            "more adversary, less success: {:.3} vs {:.3}",
            r_high.search_success,
            r_low.search_success
        );
        assert!(r_high.frac_red > r_low.frac_red);
    }

    #[test]
    fn chunked_measurement_is_bit_identical() {
        // The parallel variants pre-draw the identical RNG sequence and
        // fold in sample order: every report field must match bit for bit.
        let (gg, params) = graph(1000, 80, 12);
        let mut r_seq = StdRng::seed_from_u64(13);
        let mut r_par = StdRng::seed_from_u64(13);
        let a = measure_robustness(&gg, &params, 300, &mut r_seq);
        let b = measure_robustness_chunked(&gg, &params, 300, &mut r_par);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));

        let mut rng0 = StdRng::seed_from_u64(14);
        let pop = Population::uniform(1000, 80, &mut rng0);
        let fam = OracleFamily::new(12);
        let other = build_initial_graph(pop, GraphKind::Chord, fam.h2, &params);
        let mut r_seq = StdRng::seed_from_u64(15);
        let mut r_par = StdRng::seed_from_u64(15);
        let d_seq = measure_dual_success([&gg, &other], 300, &mut r_seq);
        let d_par = measure_dual_success_chunked([&gg, &other], 300, &mut r_par);
        assert_eq!(d_seq.to_bits(), d_par.to_bits());
    }

    #[test]
    fn dual_success_at_least_single() {
        let (a, params) = graph(1000, 80, 9);
        let mut rng0 = StdRng::seed_from_u64(10);
        let pop_rng = &mut rng0;
        let pop = Population::uniform(1000, 80, pop_rng);
        let fam = OracleFamily::new(9);
        let b = build_initial_graph(pop, GraphKind::Chord, fam.h2, &params);
        let mut rng = StdRng::seed_from_u64(11);
        let single = measure_robustness(&a, &params, 400, &mut rng).search_success;
        let mut rng = StdRng::seed_from_u64(11);
        let dual = measure_dual_success([&a, &b], 400, &mut rng);
        assert!(dual >= single - 0.03, "dual {dual:.3} vs single {single:.3}");
    }
}
