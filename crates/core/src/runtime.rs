//! The **actor epoch runtime**: per-node message passing over an
//! injectable transport.
//!
//! The synchronous drivers advance an epoch as one in-process step — the
//! right fast path for the paper's synchronous-rounds model, but silent
//! about everything the model assumes away: delivery timing, loss, and
//! partitions. This module splits the epoch into protocol *phases* whose
//! participants are per-node actors exchanging typed [`ProtocolMsg`]s
//! over a [`Transport`] (`tg_sim::net`), so a scenario can run against
//! an imperfect network:
//!
//! * **String dissemination** — the freshly agreed epoch string is
//!   broadcast to every node; nodes the broadcast misses cannot verify
//!   peers, scaling the PoW pipeline's `verification_coverage`.
//! * **Membership announcement** — every good identity announces itself
//!   as a [`ProtocolMsg::Join`] from its home node to the aggregator;
//!   announcements the network loses never enter the epoch's ring. The
//!   adversary is modelled as a *network insider*: its identities bypass
//!   the transport entirely (the worst case — faults only ever weaken
//!   the good population, so capture grows with the fault rates).
//! * **Routing probes** — each robustness search issues a two-hop probe
//!   chain (source → relay → aggregator); the measured search success is
//!   scaled by the fraction of probe chains the network completes.
//!
//! ## Equivalence with the synchronous drivers
//!
//! Over a *perfect* transport (zero latency, lossless, never
//! partitioned) every phase delivers all messages in send order, all
//! delivered fractions are exactly `1.0`, and no observation field is
//! rescaled — the actor runtime reproduces the synchronous drivers'
//! [`EpochObservation`]s **byte-identically** (the conformance suite and
//! the golden replays pin this). The transport draws no RNG, so the
//! kernels' seeded streams are untouched whatever the fault plan; see
//! `tg_sim::net` for the determinism contract.
//!
//! ## Transports and phase windows
//!
//! The network itself is injectable: `transport=mem` (default) runs the
//! deterministic in-memory transport, `transport=socket` the real
//! localhost-TCP [`SocketTransport`].
//! Both apply the identical hash-derived fault fates, so the choice is
//! about *how bytes move*, never about what is observed.
//!
//! Each phase hands the transport a tick deadline sized by an adaptive
//! [`PhaseWindow`]: it starts at [`PHASE_WINDOW`]
//! ticks and tracks the observed per-phase delivery latency up to
//! [`MAX_PHASE_WINDOW`], with zero latency as a fixpoint — which is why
//! perfect-transport replays (mem or socket) stay byte-identical to the
//! fixed-window goldens. A spec-level `window=` knob pins the deadline
//! for sweeps.
//!
//! Select the runtime with [`RuntimeChoice`] on a
//! [`ScenarioSpec`] (`runtime=actor` in
//! the codec, emitted only when non-default) and the fault knobs with
//! [`FaultPlan`](tg_sim::net::FaultPlan) (`drop=`, `lat=`, `part=`).

use crate::dynamic::adversary::AdversaryView;
use crate::dynamic::provider::{EpochIds, IdentityProvider};
use crate::graph::GraphsView;
use crate::scenario::{EpochDriver, EpochKernel, EpochObservation, ObservationBatch, ScenarioSpec};
use rand::rngs::StdRng;
use tg_sim::clock::PhaseWindow;
use tg_sim::net::{
    InMemoryTransport, NetStats, NodeId, SocketTransport, Transport, TransportChoice, Wire,
};

/// Which execution model advances a scenario's epochs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RuntimeChoice {
    /// One synchronous in-process step per epoch — the deterministic
    /// fast path and conformance oracle.
    #[default]
    Sync,
    /// Per-node actors exchanging [`ProtocolMsg`]s over an injectable
    /// [`Transport`] with seeded fault injection.
    Actor,
}

impl RuntimeChoice {
    /// Stable codec token (`sync` / `actor`).
    pub fn label(self) -> &'static str {
        match self {
            RuntimeChoice::Sync => "sync",
            RuntimeChoice::Actor => "actor",
        }
    }

    /// Parse a codec token.
    pub fn parse(s: &str) -> Option<RuntimeChoice> {
        match s {
            "sync" => Some(RuntimeChoice::Sync),
            "actor" => Some(RuntimeChoice::Actor),
            _ => None,
        }
    }
}

/// The typed protocol messages the per-node actors exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolMsg {
    /// A good identity announcing itself for the next epoch's ring.
    Join {
        /// The announced ring position (raw fixed-point).
        id: u64,
    },
    /// One hop of a two-hop routing probe chain.
    Probe {
        /// Which robustness search this chain belongs to.
        search: u32,
        /// Hop index: `0` source → relay, `1` relay → aggregator.
        hop: u8,
    },
    /// The freshly agreed epoch string, broadcast to every node.
    StringAnnounce {
        /// The string value minting will bind to.
        key: u64,
    },
}

/// Round-trip byte codec for the wire: a one-byte variant tag followed
/// by the variant's fields, little-endian, fixed width. `decode`
/// demands the exact length — a truncated or padded frame is malformed
/// and degrades to a transport drop.
impl Wire for ProtocolMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            ProtocolMsg::Join { id } => {
                buf.push(0);
                buf.extend_from_slice(&id.to_le_bytes());
            }
            ProtocolMsg::Probe { search, hop } => {
                buf.push(1);
                buf.extend_from_slice(&search.to_le_bytes());
                buf.push(hop);
            }
            ProtocolMsg::StringAnnounce { key } => {
                buf.push(2);
                buf.extend_from_slice(&key.to_le_bytes());
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes.split_first()? {
            (0, rest) if rest.len() == 8 => {
                Some(ProtocolMsg::Join { id: u64::from_le_bytes(rest.try_into().ok()?) })
            }
            (1, rest) if rest.len() == 5 => Some(ProtocolMsg::Probe {
                search: u32::from_le_bytes(rest[..4].try_into().ok()?),
                hop: rest[4],
            }),
            (2, rest) if rest.len() == 8 => {
                Some(ProtocolMsg::StringAnnounce { key: u64::from_le_bytes(rest.try_into().ok()?) })
            }
            _ => None,
        }
    }
}

/// Virtual network size: protocol participants are mapped onto this
/// many nodes (node `0` doubles as the aggregator/observer).
pub const NET_NODES: u64 = 64;
/// Base (and zero-latency fixpoint) of the adaptive phase window: the
/// ticks spanned by one phase's initial sends on a quiet network. Fault
/// windows (e.g.
/// [`FaultPlan::partition_ticks`](tg_sim::net::FaultPlan::partition_ticks)) are expressed in the same unit.
pub const PHASE_WINDOW: u64 = 64;
/// Ceiling of the adaptive phase window: under heavy observed latency
/// the deadline stretches, but never beyond this.
pub const MAX_PHASE_WINDOW: u64 = 4096;

const AGGREGATOR: NodeId = 0;
const PHASE_STRINGS: u64 = 0;
const PHASE_ANNOUNCE: u64 = 1;
const PHASE_PROBE: u64 = 2;

/// The home node of a ring identity.
fn node_of_id(raw: u64) -> NodeId {
    1 + raw % (NET_NODES - 1)
}

/// Send tick of the `i`-th of `m` initial sends: spread monotonically
/// over the first `window` ticks of the phase (order-preserving under a
/// perfect transport).
fn spread_tick(i: u64, m: u64, window: u64) -> u64 {
    (i * window).checked_div(m).unwrap_or(0)
}

/// One scenario's network: the transport plus the per-phase actor
/// protocols that run over it, under a latency-adaptive
/// [`PhaseWindow`].
pub struct EpochNet {
    transport: Box<dyn Transport<ProtocolMsg>>,
    window: PhaseWindow,
}

impl EpochNet {
    /// A network over the given transport with the default adaptive
    /// window ([`PHASE_WINDOW`]..=[`MAX_PHASE_WINDOW`]).
    pub fn new(transport: Box<dyn Transport<ProtocolMsg>>) -> EpochNet {
        EpochNet::with_window(transport, PhaseWindow::adaptive(PHASE_WINDOW, MAX_PHASE_WINDOW))
    }

    /// A network over the given transport and an explicit phase window.
    pub fn with_window(
        transport: Box<dyn Transport<ProtocolMsg>>,
        window: PhaseWindow,
    ) -> EpochNet {
        EpochNet { transport, window }
    }

    /// The network a spec asks for: the spec's transport choice and
    /// fault plan, faults seeded from the spec's master seed (via its
    /// own labelled derivation — kernel streams are untouched), and the
    /// spec's `window=` pin if set.
    ///
    /// # Panics
    /// Panics if `transport=socket` cannot establish its loopback lanes
    /// (no further degradation is possible before a socket exists).
    pub fn for_spec(spec: &ScenarioSpec) -> EpochNet {
        let transport: Box<dyn Transport<ProtocolMsg>> = match spec.transport {
            TransportChoice::Mem => Box::new(InMemoryTransport::new(spec.faults, spec.seed)),
            TransportChoice::Socket => {
                Box::new(SocketTransport::connect(spec.faults, spec.seed).unwrap_or_else(|e| {
                    panic!("transport=socket: cannot establish loopback lanes: {e}")
                }))
            }
        };
        let window = match spec.window {
            Some(ticks) => PhaseWindow::pinned(ticks),
            None => PhaseWindow::adaptive(PHASE_WINDOW, MAX_PHASE_WINDOW),
        };
        EpochNet::with_window(transport, window)
    }

    /// Lifetime delivery counters of the underlying transport.
    pub fn stats(&self) -> NetStats {
        self.transport.stats()
    }

    /// The phase window currently in force.
    pub fn window(&self) -> &PhaseWindow {
        &self.window
    }

    /// Feed one finished phase's delivery observation (the counter
    /// delta since `before`) back into the adaptive window.
    fn observe_phase(&mut self, before: NetStats) {
        let after = self.transport.stats();
        self.window.observe(after.delivered - before.delivered, after.lat_ticks - before.lat_ticks);
    }

    /// **Membership announcement phase.** Every good ID in `ids` sends a
    /// [`ProtocolMsg::Join`] from its home node to the aggregator;
    /// `ids.good` is replaced by the announcements that arrived, in
    /// delivery order. Bad IDs bypass the network (insider adversary).
    ///
    /// Under a perfect transport delivery order equals send order, so
    /// `ids` comes back bit-identical.
    pub fn announce_phase(&mut self, epoch: u64, ids: &mut EpochIds) {
        let w = self.window.current();
        let before = self.transport.stats();
        self.transport.begin_phase(epoch, PHASE_ANNOUNCE, w);
        let m = ids.good.len() as u64;
        for (i, id) in ids.good.iter().enumerate() {
            let raw = id.raw();
            self.transport.send(
                node_of_id(raw),
                AGGREGATOR,
                spread_tick(i as u64, m, w),
                ProtocolMsg::Join { id: raw },
            );
        }
        let mut delivered = Vec::with_capacity(ids.good.len());
        while let Some(env) = self.transport.recv() {
            if let ProtocolMsg::Join { id } = env.msg {
                delivered.push(tg_idspace::Id(id));
            }
        }
        ids.good = delivered;
        self.observe_phase(before);
    }

    /// **Routing probe phase.** Each of `searches` probes runs a two-hop
    /// actor chain (source → relay, relay forwards to the aggregator at
    /// its delivery tick). Returns the fraction of chains that
    /// completed — the factor search success is scaled by. Exactly `1.0`
    /// under a perfect transport (or when `searches == 0`).
    pub fn probe_phase(&mut self, epoch: u64, searches: usize) -> f64 {
        if searches == 0 {
            return 1.0;
        }
        let w = self.window.current();
        let before = self.transport.stats();
        self.transport.begin_phase(epoch, PHASE_PROBE, w);
        let m = searches as u64;
        for s in 0..m {
            let src = 1 + s % (NET_NODES - 1);
            let relay = 1 + (s + NET_NODES / 2) % (NET_NODES - 1);
            self.transport.send(
                src,
                relay,
                spread_tick(s, m, w),
                ProtocolMsg::Probe { search: s as u32, hop: 0 },
            );
        }
        let mut completed = 0u64;
        while let Some(env) = self.transport.recv() {
            match env.msg {
                ProtocolMsg::Probe { search, hop: 0 } => {
                    // The relay actor forwards at its delivery tick.
                    self.transport.send(
                        env.dst,
                        AGGREGATOR,
                        env.deliver_tick,
                        ProtocolMsg::Probe { search, hop: 1 },
                    );
                }
                ProtocolMsg::Probe { hop: 1, .. } => completed += 1,
                _ => {}
            }
        }
        self.observe_phase(before);
        completed as f64 / searches as f64
    }

    /// **String dissemination phase.** The aggregator broadcasts the
    /// agreed epoch string to every other node; returns the fraction of
    /// nodes reached. Exactly `1.0` under a perfect transport.
    pub fn string_phase(&mut self, epoch: u64, key: u64) -> f64 {
        let w = self.window.current();
        let before = self.transport.stats();
        self.transport.begin_phase(epoch, PHASE_STRINGS, w);
        let m = NET_NODES - 1;
        for (i, node) in (1..NET_NODES).enumerate() {
            self.transport.send(
                AGGREGATOR,
                node,
                spread_tick(i as u64, m, w),
                ProtocolMsg::StringAnnounce { key },
            );
        }
        let mut reached = 0u64;
        while let Some(env) = self.transport.recv() {
            if matches!(env.msg, ProtocolMsg::StringAnnounce { .. }) {
                reached += 1;
            }
        }
        self.observe_phase(before);
        reached as f64 / m as f64
    }
}

/// An [`IdentityProvider`] that runs the inner provider's good IDs
/// through the network's announcement phase. Composable anywhere in a
/// provider chain (`tg-pow` inserts it inside its counting wrapper so
/// minted counts reflect what the network delivered).
pub struct NetFilter<'a> {
    /// The provider whose announcements go over the network.
    pub inner: &'a mut dyn IdentityProvider,
    /// The scenario's network.
    pub net: &'a mut EpochNet,
}

impl IdentityProvider for NetFilter<'_> {
    fn ids_for_epoch(
        &mut self,
        epoch: u64,
        view: &AdversaryView<'_>,
        rng: &mut StdRng,
    ) -> EpochIds {
        let mut ids = self.inner.ids_for_epoch(epoch, view, rng);
        self.net.announce_phase(epoch, &mut ids);
        ids
    }
}

/// The [`EpochDriver`] running [`crate::scenario::Defense::NoPow`]
/// scenarios through the actor runtime: the same [`EpochKernel`] as
/// [`crate::scenario::DynamicDriver`], with the membership and probe
/// phases routed over the scenario's network.
///
/// The genesis build is trusted bootstrap (not filtered) — the network
/// exists from the first *advanced* epoch on, mirroring the paper's
/// assumption of a correct initial configuration.
pub struct ActorDriver {
    sys: EpochKernel,
    provider: crate::scenario::RecordingProvider,
    net: EpochNet,
    searches: usize,
    obs: EpochObservation,
    batch: ObservationBatch,
}

impl ActorDriver {
    /// Build the driver for `spec` around an explicit identity provider
    /// (the actor-runtime counterpart of `DynamicDriver::with_provider`).
    pub fn with_provider(spec: &ScenarioSpec, inner: Box<dyn IdentityProvider>) -> ActorDriver {
        let mut provider =
            crate::scenario::RecordingProvider { inner, last_bad: 0, last_share: 0.0 };
        let mut sys = EpochKernel::new(
            spec.kernel,
            spec.params,
            spec.kind,
            spec.mode,
            &mut provider,
            spec.seed,
            spec.capacity,
        );
        sys.set_searches_per_epoch(spec.searches);
        ActorDriver {
            sys,
            provider,
            net: EpochNet::for_spec(spec),
            searches: spec.searches,
            obs: EpochObservation::default(),
            batch: ObservationBatch::new(),
        }
    }
}

impl EpochDriver for ActorDriver {
    fn step(&mut self) -> &EpochObservation {
        let late_before = self.net.stats().late;
        let mut r = {
            let mut filtered = NetFilter { inner: &mut self.provider, net: &mut self.net };
            self.sys.advance_epoch(&mut filtered)
        };
        // Probe phase: scale measured search success by the fraction of
        // probe chains the network completed. The `< 1.0` guard keeps
        // the perfect-transport path bit-exact.
        let f = self.net.probe_phase(r.epoch, self.searches);
        if f < 1.0 {
            r.search_success_single *= f;
            r.search_success_dual *= f;
        }
        self.obs.fill_dynamic(&r, self.sys.graphs());
        self.obs.bad_ids = self.provider.last_bad;
        self.obs.bad_share = self.provider.last_share;
        // The epoch's late-window message count (`NetStats.late` is
        // cumulative over the transport's lifetime). Zero over a
        // perfect transport, so the sync-equivalence contract holds.
        self.obs.late = self.net.stats().late - late_before;
        &self.obs
    }

    fn observation(&self) -> &EpochObservation {
        &self.obs
    }

    fn graphs(&self) -> GraphsView<'_> {
        self.sys.graphs()
    }

    fn epoch(&self) -> u64 {
        self.sys.epoch()
    }

    fn batch(&self) -> &ObservationBatch {
        &self.batch
    }

    fn batch_mut(&mut self) -> &mut ObservationBatch {
        &mut self.batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StrategySpec;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new(240, 42)
            .beta(0.1)
            .churn(0.15)
            .searches(60)
            .strategy(StrategySpec::GapFilling)
    }

    #[test]
    fn runtime_choice_round_trips() {
        for rt in [RuntimeChoice::Sync, RuntimeChoice::Actor] {
            assert_eq!(RuntimeChoice::parse(rt.label()), Some(rt));
        }
        assert_eq!(RuntimeChoice::parse("async"), None);
        assert_eq!(RuntimeChoice::default(), RuntimeChoice::Sync);
    }

    #[test]
    fn actor_over_perfect_transport_matches_sync_driver() {
        let s = spec();
        let mut sync = s.build().expect("sync driver");
        let mut actor = s.clone().runtime(RuntimeChoice::Actor).build().expect("actor driver");
        for _ in 0..3 {
            let a = format!("{:?}", sync.step());
            let b = format!("{:?}", actor.step());
            assert_eq!(a, b, "perfect transport reproduces the sync observation");
        }
    }

    #[test]
    fn drops_lose_announcements_and_probes() {
        let s = spec().runtime(RuntimeChoice::Actor).drop_rate(0.5);
        let mut lossy = s.build().expect("lossy driver");
        let mut perfect = spec().build().expect("sync driver");
        let (mut lost_any, mut scaled_any) = (false, false);
        for _ in 0..4 {
            let (l_groups, l_success) = {
                let o = lossy.step();
                (o.total_groups, o.search_success_dual)
            };
            let p = perfect.step();
            if l_groups < p.total_groups {
                lost_any = true;
            }
            if l_success < p.search_success_dual {
                scaled_any = true;
            }
        }
        assert!(lost_any, "drop rate 0.5 loses some good announcements");
        assert!(scaled_any, "drop rate 0.5 fails some probe chains");
    }

    #[test]
    fn partition_cuts_cross_traffic() {
        let s = spec().runtime(RuntimeChoice::Actor).partition(PHASE_WINDOW);
        let mut d = s.build().expect("partitioned driver");
        d.step();
        // Can't reach the transport through the trait object; observable
        // effect: success scaled below the sync value.
        let mut sync = spec().build().expect("sync driver");
        let s0 = sync.step().search_success_dual;
        assert!(d.observation().search_success_dual < s0);
    }

    #[test]
    fn announce_phase_is_identity_under_perfect_transport() {
        let mut net = EpochNet::new(Box::new(InMemoryTransport::perfect(1)));
        let mut ids = EpochIds {
            good: (0..50u64)
                .map(|i| tg_idspace::Id(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                .collect(),
            bad: vec![tg_idspace::Id(3)],
        };
        let before = ids.good.clone();
        net.announce_phase(7, &mut ids);
        assert_eq!(ids.good, before);
        assert_eq!(ids.bad.len(), 1, "bad IDs bypass the network");
    }

    #[test]
    fn phases_report_perfect_fractions_on_perfect_transport() {
        let mut net = EpochNet::new(Box::new(InMemoryTransport::perfect(9)));
        assert_eq!(net.probe_phase(1, 33), 1.0);
        assert_eq!(net.string_phase(1, 0xABCD), 1.0);
        assert_eq!(net.probe_phase(2, 0), 1.0);
    }

    #[test]
    fn protocol_msg_wire_round_trips() {
        let msgs = [
            ProtocolMsg::Join { id: u64::MAX },
            ProtocolMsg::Join { id: 0 },
            ProtocolMsg::Probe { search: 12345, hop: 0 },
            ProtocolMsg::Probe { search: u32::MAX, hop: 1 },
            ProtocolMsg::StringAnnounce { key: 0xDEAD_BEEF_CAFE_F00D },
        ];
        for m in msgs {
            let mut buf = Vec::new();
            m.encode(&mut buf);
            assert_eq!(ProtocolMsg::decode(&buf), Some(m));
        }
        // Malformed frames decode to None (degrading to a drop) rather
        // than panicking: wrong tag, truncation, trailing garbage.
        assert_eq!(ProtocolMsg::decode(&[]), None);
        assert_eq!(ProtocolMsg::decode(&[9, 0, 0, 0, 0, 0, 0, 0, 0]), None);
        assert_eq!(ProtocolMsg::decode(&[0, 1, 2]), None);
        let mut buf = Vec::new();
        ProtocolMsg::Join { id: 7 }.encode(&mut buf);
        buf.push(0);
        assert_eq!(ProtocolMsg::decode(&buf), None, "padded frame is malformed");
    }

    /// The adaptive window is a zero-latency fixpoint (golden-replay
    /// safety) and stretches under observed latency.
    #[test]
    fn phase_window_adapts_to_observed_latency() {
        let mut quiet = EpochNet::new(Box::new(InMemoryTransport::perfect(3)));
        quiet.string_phase(1, 1);
        quiet.probe_phase(1, 40);
        assert_eq!(quiet.window().current(), PHASE_WINDOW, "zero latency never moves the window");

        let plan = tg_sim::net::FaultPlan { latency_max: 24, ..Default::default() };
        let mut slow = EpochNet::new(Box::new(InMemoryTransport::new(plan, 3)));
        slow.string_phase(1, 1);
        let w = slow.window().current();
        assert!(w > PHASE_WINDOW, "observed latency stretches the deadline (got {w})");
        assert!(w <= MAX_PHASE_WINDOW);
    }

    /// `window=` pins the deadline: observations cannot move it.
    #[test]
    fn spec_window_knob_pins_the_deadline() {
        let s = spec().runtime(RuntimeChoice::Actor).latency(24).window(96);
        let mut net = EpochNet::for_spec(&s);
        assert!(net.window().is_pinned());
        net.string_phase(1, 1);
        net.probe_phase(1, 40);
        assert_eq!(net.window().current(), 96);
    }

    /// The socket transport slots in through `for_spec` and reproduces
    /// the in-memory phase fractions over a perfect loopback.
    #[test]
    fn for_spec_socket_matches_mem_phases() {
        let base = spec().runtime(RuntimeChoice::Actor);
        let mut mem = EpochNet::for_spec(&base);
        let mut sock =
            EpochNet::for_spec(&base.clone().transport(tg_sim::net::TransportChoice::Socket));
        let mut ids_m = EpochIds {
            good: (0..40u64).map(|i| tg_idspace::Id(i * 0x0101_0101)).collect(),
            bad: vec![],
        };
        let mut ids_s = EpochIds { good: ids_m.good.clone(), bad: vec![] };
        mem.announce_phase(2, &mut ids_m);
        sock.announce_phase(2, &mut ids_s);
        assert_eq!(ids_m.good, ids_s.good);
        assert_eq!(mem.probe_phase(2, 50), sock.probe_phase(2, 50));
        assert_eq!(mem.string_phase(2, 0xF00), sock.string_phase(2, 0xF00));
        assert_eq!(mem.stats(), sock.stats());
    }
}
