//! Property-based tests for the scenario codec: every expressible
//! [`ScenarioSpec`] survives the round trip through both serialized
//! forms — canonical label and flat JSON — field-for-field identical.
//! Float axes use the full `f64` range of each parameter (Rust's
//! shortest-roundtrip Display is part of the codec's contract).

use proptest::prelude::*;
use tg_core::dynamic::BuildMode;
use tg_core::params::GroupSizeRule;
use tg_core::runtime::RuntimeChoice;
use tg_core::scenario::{
    Defense, KernelChoice, MintScheme, ScenarioError, ScenarioSpec, StrategySpec,
    StringAdversarySpec, StringMode, TransportChoice,
};
use tg_overlay::GraphKind;

/// Decode an index pair into one of the strategy variants, with
/// parameters driven by the raw inputs.
fn strategy(tag: u8, a: f64, b: f64, n: u64) -> StrategySpec {
    match tag % 7 {
        0 => StrategySpec::Honest,
        1 => StrategySpec::Uniform,
        2 => StrategySpec::GapFilling,
        3 => StrategySpec::IntervalTargeting { victim: a, width: b },
        4 => StrategySpec::AdaptiveMajorityFlipper { margin: (n % 9) as usize },
        5 => StrategySpec::ChurnTimed { trigger: a, retainer: b },
        _ => StrategySpec::PrecomputeHoarder { fam_seed: n, attempts: n.rotate_left(17) },
    }
}

fn defense(tag: u8) -> Defense {
    match tag % 5 {
        0 => Defense::NoPow,
        1 => Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
        2 => Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: false },
        3 => Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true },
        _ => Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: false },
    }
}

fn rule(tag: u8, c: f64, k: u64) -> GroupSizeRule {
    match tag % 3 {
        0 => GroupSizeRule::TinyLogLog,
        1 => GroupSizeRule::ClassicLog { c },
        _ => GroupSizeRule::Fixed(k as usize),
    }
}

fn string_adversary(tag: u8, a: f64, n: u64) -> StringAdversarySpec {
    match tag % 3 {
        0 => StringAdversarySpec::None,
        1 => StringAdversarySpec::DelayedRelease {
            strings: (n % 17) as usize,
            release_frac: a,
            units: a * 3.0,
        },
        _ => StringAdversarySpec::ForcedRecords { strings: (n % 17) as usize, release_frac: a },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// spec → label → parse ⇒ the identical spec, and the same through
    /// the JSON form (satellite contract of the scenario API).
    #[test]
    fn spec_round_trips_through_label_and_json(
        n_good in 1usize..100_000,
        n_bad in 0usize..50_000,
        seed in any::<u64>(),
        searches in 0usize..10_000,
        beta in 0.0f64..0.5,
        delta in 0.0f64..1.0,
        d2 in 0.5f64..16.0,
        churn in 0.0f64..0.45,
        attack in 0usize..32,
        retries in 0usize..8,
        kind_tag in 0u8..4,
        mode_tag in 0u8..2,
        defense_tag in any::<u8>(),
        strings_tag in 0u8..2,
        strategy_tag in any::<u8>(),
        sa in 0.0f64..1.0,
        sb in 0.0f64..1.0,
        sn in any::<u64>(),
        rule_tag in any::<u8>(),
        rule_c in 0.1f64..8.0,
        rule_k in 1u64..64,
        idealized in any::<bool>(),
        kernel_tag in 0u8..2,
        cap in proptest::option::of(1u64..1u64 << 24),
        runtime_tag in 0u8..2,
        drop in 0.0f64..1.0,
        lat in 0u64..1024,
        part in 0u64..1024,
        transport_tag in 0u8..2,
        window in proptest::option::of(1u64..8192),
        stradv_tag in any::<u8>(),
        stradv_frac in 0.0f64..1.0,
        stradv_n in any::<u64>(),
    ) {
        // `transport=socket` is only expressible with the actor
        // runtime — the codec rejects the sync combination (pinned
        // separately below), so the generator honors the constraint.
        let runtime = if runtime_tag == 0 && transport_tag == 0 {
            RuntimeChoice::Sync
        } else {
            RuntimeChoice::Actor
        };
        let transport = if transport_tag == 0 { TransportChoice::Mem } else { TransportChoice::Socket };
        let mut spec = ScenarioSpec::new(n_good, seed)
            .beta(beta)
            .budget(n_bad)
            .group_factor(d2)
            .churn(churn)
            .attack_requests(attack)
            .link_retries(retries)
            .topology(GraphKind::ALL[(kind_tag % 4) as usize])
            .build_mode(if mode_tag == 0 { BuildMode::DualGraph } else { BuildMode::SingleGraph })
            .defense(defense(defense_tag))
            .strings(if strings_tag == 0 { StringMode::Protocol } else { StringMode::Synthesized })
            .strategy(strategy(strategy_tag, sa, sb, sn))
            .searches(searches)
            .idealized(idealized)
            .kernel(if kernel_tag == 0 { KernelChoice::Legacy } else { KernelChoice::Arena })
            .runtime(runtime)
            .drop_rate(drop)
            .latency(lat)
            .partition(part)
            .transport(transport)
            .string_adversary(string_adversary(stradv_tag, stradv_frac, stradv_n));
        if let Some(c) = cap {
            spec = spec.capacity(c as usize);
        }
        if let Some(w) = window {
            spec = spec.window(w);
        }
        spec.params.delta = delta;
        spec.params.size_rule = rule(rule_tag, rule_c, rule_k);

        let label = spec.label();
        let reparsed = ScenarioSpec::parse(&label);
        prop_assert_eq!(reparsed.as_ref(), Ok(&spec), "label: {}", label);

        let json = spec.to_json();
        let reparsed = ScenarioSpec::from_json(&json);
        prop_assert_eq!(reparsed.as_ref(), Ok(&spec), "json: {}", json);

        // The label is canonical: re-serializing the parsed spec yields
        // the same bytes (fit for cache keys / seed-stream labels).
        prop_assert_eq!(ScenarioSpec::parse(&label).unwrap().label(), label);
    }

    /// Corrupting any single field value of a label either fails to
    /// parse or parses to a *different* spec — no two distinct field
    /// values alias one spec (the cell-key property).
    #[test]
    fn distinct_seeds_and_axes_never_alias(
        n_good in 1usize..10_000,
        seed in any::<u64>(),
        other_seed in any::<u64>(),
        churn in 0.0f64..0.45,
        other_churn in 0.0f64..0.45,
    ) {
        let base = ScenarioSpec::new(n_good, seed).churn(churn);
        let seed_changed = ScenarioSpec::new(n_good, other_seed).churn(churn);
        let churn_changed = ScenarioSpec::new(n_good, seed).churn(other_churn);
        if seed != other_seed {
            prop_assert_ne!(base.label(), seed_changed.label());
        }
        if churn != other_churn {
            prop_assert_ne!(base.label(), churn_changed.label());
        }
    }

    /// The scale knobs are versioned *optional* fields: a default-knob
    /// spec emits a label without them (committed labels stay valid and
    /// byte-identical), and appending them to any label round-trips.
    #[test]
    fn scale_knobs_are_backward_compatible(
        n_good in 1usize..10_000,
        seed in any::<u64>(),
        churn in 0.0f64..0.45,
        cap in 1u64..1u64 << 24,
    ) {
        let base = ScenarioSpec::new(n_good, seed).churn(churn);
        let label = base.label();
        prop_assert!(!label.contains("kernel="), "default kernel is elided: {}", label);
        prop_assert!(!label.contains("cap="), "default capacity is elided: {}", label);
        for knob in ["runtime=", "drop=", "lat=", "part=", "transport=", "window=", "stradv="] {
            prop_assert!(!label.contains(knob), "default {} is elided: {}", knob, label);
        }

        // A pre-knob consumer's label parses to the default knobs.
        let parsed = ScenarioSpec::parse(&label).unwrap();
        prop_assert_eq!(parsed.kernel, KernelChoice::Legacy);
        prop_assert_eq!(parsed.capacity, None);
        prop_assert_eq!(parsed.runtime, RuntimeChoice::Sync);
        prop_assert_eq!(parsed.faults, tg_core::scenario::FaultPlan::default());
        prop_assert_eq!(parsed.transport, TransportChoice::Mem);
        prop_assert_eq!(parsed.window, None);
        prop_assert_eq!(parsed.string_adversary, StringAdversarySpec::None);

        // And the knobs themselves round-trip through both codecs.
        let scaled = base.kernel(KernelChoice::Arena).capacity(cap as usize);
        prop_assert_eq!(&ScenarioSpec::parse(&scaled.label()).unwrap(), &scaled);
        prop_assert_eq!(&ScenarioSpec::from_json(&scaled.to_json()).unwrap(), &scaled);
    }

    /// Every key of a label — required or optional — is accepted at
    /// most once: appending a duplicate of *any* field makes the parse
    /// fail loudly instead of silently letting one value win. (The
    /// canonical-label property above makes aliasing impossible for
    /// emitted labels; this pins the behavior for hand-built ones.)
    #[test]
    fn duplicate_label_keys_are_rejected(
        n_good in 1usize..10_000,
        seed in any::<u64>(),
        churn in 0.0f64..0.45,
        drop in 0.001f64..1.0,
        lat in 1u64..1024,
        part in 1u64..1024,
        cap in 1u64..1u64 << 24,
        dup_value_from_label in any::<bool>(),
    ) {
        // Every optional knob is non-default, so all 27 codec keys
        // appear in the label and each one gets a duplication trial.
        let spec = ScenarioSpec::new(n_good, seed)
            .churn(churn)
            .kernel(KernelChoice::Arena)
            .capacity(cap as usize)
            .runtime(RuntimeChoice::Actor)
            .drop_rate(drop)
            .latency(lat)
            .partition(part)
            .transport(TransportChoice::Socket)
            .window(lat + 1)
            .string_adversary(StringAdversarySpec::ForcedRecords {
                strings: 3,
                release_frac: drop,
            });
        let label = spec.label();
        let fields: Vec<(&str, &str)> = label
            .split(';')
            .skip(1) // the `tg1` version tag
            .map(|f| f.split_once('=').expect("every label field is key=value"))
            .collect();
        prop_assert_eq!(fields.len(), 27, "label: {}", label);
        for (key, value) in &fields {
            // Duplicating with the same value must fail exactly like a
            // conflicting one — duplicates are rejected, not merged.
            let dup = if dup_value_from_label { value } else { "0" };
            let poisoned = format!("{label};{key}={dup}");
            let parsed = ScenarioSpec::parse(&poisoned);
            prop_assert!(parsed.is_err(), "duplicate `{}` accepted: {}", key, poisoned);
            let msg = format!("{:?}", parsed.unwrap_err());
            prop_assert!(
                msg.contains("duplicate field"),
                "duplicate `{}` rejected for the wrong reason: {}",
                key,
                msg
            );
        }
    }

    /// `transport=socket` without `runtime=actor` is rejected at parse
    /// time — through both codec forms and through `build()` — with the
    /// typed [`ScenarioError::NeedsActorRuntime`], never at run time.
    #[test]
    fn socket_without_actor_runtime_is_rejected(
        n_good in 1usize..10_000,
        seed in any::<u64>(),
        churn in 0.0f64..0.45,
    ) {
        let base = ScenarioSpec::new(n_good, seed).churn(churn);

        // A hand-built label naming the socket transport but no (or the
        // sync) runtime: the codec refuses to produce the spec at all.
        let sync_label = format!("{};transport=socket", base.label());
        let parsed = ScenarioSpec::parse(&sync_label);
        prop_assert!(
            matches!(parsed, Err(ScenarioError::NeedsActorRuntime(_))),
            "parse accepted a sync socket spec: {:?}",
            parsed
        );
        let explicit = format!("{};runtime=sync;transport=socket", base.label());
        prop_assert!(matches!(
            ScenarioSpec::parse(&explicit),
            Err(ScenarioError::NeedsActorRuntime(_))
        ));

        // Same through the JSON form.
        let json = base.clone()
            .runtime(RuntimeChoice::Actor)
            .transport(TransportChoice::Socket)
            .to_json()
            .replace("\"runtime\": \"actor\",\n  ", "");
        prop_assert!(matches!(
            ScenarioSpec::from_json(&json),
            Err(ScenarioError::NeedsActorRuntime(_))
        ));

        // A builder-composed spec fails at build(), before any driver
        // (or socket) exists.
        let built = base.clone().transport(TransportChoice::Socket).build();
        prop_assert!(matches!(built, Err(ScenarioError::NeedsActorRuntime(_))));

        // The valid pairing parses and round-trips.
        let ok = base.runtime(RuntimeChoice::Actor).transport(TransportChoice::Socket);
        prop_assert_eq!(&ScenarioSpec::parse(&ok.label()).unwrap(), &ok);
    }

    /// The `stradv=` codec arm round-trips every variant and rejects
    /// malformed encodings (wrong arity, unknown name, junk numbers).
    #[test]
    fn string_adversary_codec_round_trips_and_rejects(
        strings in 0usize..1000,
        frac in 0.0f64..1.0,
        units in 0.0f64..64.0,
    ) {
        for adv in [
            StringAdversarySpec::None,
            StringAdversarySpec::DelayedRelease { strings, release_frac: frac, units },
            StringAdversarySpec::ForcedRecords { strings, release_frac: frac },
        ] {
            prop_assert_eq!(StringAdversarySpec::decode(&adv.encode()), Some(adv));
        }
        for bad in [
            "delayed",
            "delayed:1:0.5",
            "delayed:1:0.5:2:9",
            "records:1",
            "records:1:0.5:9",
            "hoard:1:0.5",
            "records:x:0.5",
            "",
        ] {
            prop_assert_eq!(StringAdversarySpec::decode(bad), None, "accepted `{}`", bad);
        }
    }
}

/// One shared store for the observation round-trip cases (a fresh
/// directory per test process; keys are unique per case).
fn prop_store() -> &'static tg_sim::ResultStore {
    use std::sync::OnceLock;
    static STORE: OnceLock<tg_sim::ResultStore> = OnceLock::new();
    STORE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("tg-core-props-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        tg_sim::ResultStore::open(dir).expect("open proptest store")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random `EpochObservation`s survive the full persistence path —
    /// projection to `ObsRow`, the versioned line codec, and a real
    /// store round trip through the hash-chained stream — bit-for-bit
    /// (floats compared as raw bits, so NaN/−0.0/∞ all count).
    #[test]
    fn observation_round_trips_through_the_store(
        case in 0u64..u64::MAX,
        epoch in any::<u64>(),
        frac_red in any::<f64>(),
        sss in any::<f64>(),
        ssd in any::<f64>(),
        mean_memberships in any::<f64>(),
        bad_ids in any::<u32>(),
        bad_share in any::<f64>(),
        captured in any::<u32>(),
        total in any::<u32>(),
        has_pow in any::<bool>(),
        minted_good in any::<u16>(),
        good_misses in any::<u16>(),
        late in any::<u64>(),
    ) {
        use tg_core::scenario::{EpochObservation, ObsRow};
        let obs = EpochObservation {
            epoch,
            frac_red: vec![frac_red],
            search_success_single: sss,
            search_success_dual: ssd,
            mean_memberships,
            bad_ids: bad_ids as usize,
            bad_share,
            captured_groups: captured as usize,
            total_groups: total as usize,
            minted_good: has_pow.then_some(minted_good as usize),
            good_misses: has_pow.then_some(good_misses as usize),
            late,
            ..Default::default()
        };
        let row = ObsRow::of(&obs);
        let store = prop_store();
        let key = format!("prop;case={case};epoch={epoch}");
        store.put(&key, &[row.encode_line()]).expect("store put");
        let records = store.get(&key).expect("store get").expect("stream present");
        prop_assert_eq!(records.len(), 1);
        let back = ObsRow::decode_line(&records[0]).expect("decode");
        prop_assert_eq!(back.epoch, row.epoch);
        prop_assert_eq!(back.search_success_single.to_bits(), row.search_success_single.to_bits());
        prop_assert_eq!(back.search_success_dual.to_bits(), row.search_success_dual.to_bits());
        prop_assert_eq!(back.frac_red_s0.to_bits(), row.frac_red_s0.to_bits());
        prop_assert_eq!(back.captured_groups, row.captured_groups);
        prop_assert_eq!(back.total_groups, row.total_groups);
        prop_assert_eq!(back.bad_ids, row.bad_ids);
        prop_assert_eq!(back.bad_share.to_bits(), row.bad_share.to_bits());
        prop_assert_eq!(back.mean_memberships.to_bits(), row.mean_memberships.to_bits());
        prop_assert_eq!(back.minted_good.to_bits(), row.minted_good.to_bits());
        prop_assert_eq!(back.good_misses.to_bits(), row.good_misses.to_bits());
        prop_assert_eq!(back.late, row.late);
        // The SoA batch preserves the same row (`push` ∘ `row_at` = id).
        let mut batch = tg_core::scenario::ObservationBatch::new();
        batch.push(back);
        prop_assert_eq!(batch.row_at(0).encode_line(), row.encode_line());
    }
}
