//! Property-based tests for the scenario codec: every expressible
//! [`ScenarioSpec`] survives the round trip through both serialized
//! forms — canonical label and flat JSON — field-for-field identical.
//! Float axes use the full `f64` range of each parameter (Rust's
//! shortest-roundtrip Display is part of the codec's contract).

use proptest::prelude::*;
use tg_core::dynamic::BuildMode;
use tg_core::params::GroupSizeRule;
use tg_core::runtime::RuntimeChoice;
use tg_core::scenario::{
    Defense, KernelChoice, MintScheme, ScenarioSpec, StrategySpec, StringMode,
};
use tg_overlay::GraphKind;

/// Decode an index pair into one of the strategy variants, with
/// parameters driven by the raw inputs.
fn strategy(tag: u8, a: f64, b: f64, n: u64) -> StrategySpec {
    match tag % 7 {
        0 => StrategySpec::Honest,
        1 => StrategySpec::Uniform,
        2 => StrategySpec::GapFilling,
        3 => StrategySpec::IntervalTargeting { victim: a, width: b },
        4 => StrategySpec::AdaptiveMajorityFlipper { margin: (n % 9) as usize },
        5 => StrategySpec::ChurnTimed { trigger: a, retainer: b },
        _ => StrategySpec::PrecomputeHoarder { fam_seed: n, attempts: n.rotate_left(17) },
    }
}

fn defense(tag: u8) -> Defense {
    match tag % 5 {
        0 => Defense::NoPow,
        1 => Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
        2 => Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: false },
        3 => Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true },
        _ => Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: false },
    }
}

fn rule(tag: u8, c: f64, k: u64) -> GroupSizeRule {
    match tag % 3 {
        0 => GroupSizeRule::TinyLogLog,
        1 => GroupSizeRule::ClassicLog { c },
        _ => GroupSizeRule::Fixed(k as usize),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// spec → label → parse ⇒ the identical spec, and the same through
    /// the JSON form (satellite contract of the scenario API).
    #[test]
    fn spec_round_trips_through_label_and_json(
        n_good in 1usize..100_000,
        n_bad in 0usize..50_000,
        seed in any::<u64>(),
        searches in 0usize..10_000,
        beta in 0.0f64..0.5,
        delta in 0.0f64..1.0,
        d2 in 0.5f64..16.0,
        churn in 0.0f64..0.45,
        attack in 0usize..32,
        retries in 0usize..8,
        kind_tag in 0u8..4,
        mode_tag in 0u8..2,
        defense_tag in any::<u8>(),
        strings_tag in 0u8..2,
        strategy_tag in any::<u8>(),
        sa in 0.0f64..1.0,
        sb in 0.0f64..1.0,
        sn in any::<u64>(),
        rule_tag in any::<u8>(),
        rule_c in 0.1f64..8.0,
        rule_k in 1u64..64,
        idealized in any::<bool>(),
        kernel_tag in 0u8..2,
        cap in proptest::option::of(1u64..1u64 << 24),
        runtime_tag in 0u8..2,
        drop in 0.0f64..1.0,
        lat in 0u64..1024,
        part in 0u64..1024,
    ) {
        let mut spec = ScenarioSpec::new(n_good, seed)
            .beta(beta)
            .budget(n_bad)
            .group_factor(d2)
            .churn(churn)
            .attack_requests(attack)
            .link_retries(retries)
            .topology(GraphKind::ALL[(kind_tag % 4) as usize])
            .build_mode(if mode_tag == 0 { BuildMode::DualGraph } else { BuildMode::SingleGraph })
            .defense(defense(defense_tag))
            .strings(if strings_tag == 0 { StringMode::Protocol } else { StringMode::Synthesized })
            .strategy(strategy(strategy_tag, sa, sb, sn))
            .searches(searches)
            .idealized(idealized)
            .kernel(if kernel_tag == 0 { KernelChoice::Legacy } else { KernelChoice::Arena })
            .runtime(if runtime_tag == 0 { RuntimeChoice::Sync } else { RuntimeChoice::Actor })
            .drop_rate(drop)
            .latency(lat)
            .partition(part);
        if let Some(c) = cap {
            spec = spec.capacity(c as usize);
        }
        spec.params.delta = delta;
        spec.params.size_rule = rule(rule_tag, rule_c, rule_k);

        let label = spec.label();
        let reparsed = ScenarioSpec::parse(&label);
        prop_assert_eq!(reparsed.as_ref(), Ok(&spec), "label: {}", label);

        let json = spec.to_json();
        let reparsed = ScenarioSpec::from_json(&json);
        prop_assert_eq!(reparsed.as_ref(), Ok(&spec), "json: {}", json);

        // The label is canonical: re-serializing the parsed spec yields
        // the same bytes (fit for cache keys / seed-stream labels).
        prop_assert_eq!(ScenarioSpec::parse(&label).unwrap().label(), label);
    }

    /// Corrupting any single field value of a label either fails to
    /// parse or parses to a *different* spec — no two distinct field
    /// values alias one spec (the cell-key property).
    #[test]
    fn distinct_seeds_and_axes_never_alias(
        n_good in 1usize..10_000,
        seed in any::<u64>(),
        other_seed in any::<u64>(),
        churn in 0.0f64..0.45,
        other_churn in 0.0f64..0.45,
    ) {
        let base = ScenarioSpec::new(n_good, seed).churn(churn);
        let seed_changed = ScenarioSpec::new(n_good, other_seed).churn(churn);
        let churn_changed = ScenarioSpec::new(n_good, seed).churn(other_churn);
        if seed != other_seed {
            prop_assert_ne!(base.label(), seed_changed.label());
        }
        if churn != other_churn {
            prop_assert_ne!(base.label(), churn_changed.label());
        }
    }

    /// The scale knobs are versioned *optional* fields: a default-knob
    /// spec emits a label without them (committed labels stay valid and
    /// byte-identical), and appending them to any label round-trips.
    #[test]
    fn scale_knobs_are_backward_compatible(
        n_good in 1usize..10_000,
        seed in any::<u64>(),
        churn in 0.0f64..0.45,
        cap in 1u64..1u64 << 24,
    ) {
        let base = ScenarioSpec::new(n_good, seed).churn(churn);
        let label = base.label();
        prop_assert!(!label.contains("kernel="), "default kernel is elided: {}", label);
        prop_assert!(!label.contains("cap="), "default capacity is elided: {}", label);
        for knob in ["runtime=", "drop=", "lat=", "part="] {
            prop_assert!(!label.contains(knob), "default {} is elided: {}", knob, label);
        }

        // A pre-knob consumer's label parses to the default knobs.
        let parsed = ScenarioSpec::parse(&label).unwrap();
        prop_assert_eq!(parsed.kernel, KernelChoice::Legacy);
        prop_assert_eq!(parsed.capacity, None);
        prop_assert_eq!(parsed.runtime, RuntimeChoice::Sync);
        prop_assert_eq!(parsed.faults, tg_core::scenario::FaultPlan::default());

        // And the knobs themselves round-trip through both codecs.
        let scaled = base.kernel(KernelChoice::Arena).capacity(cap as usize);
        prop_assert_eq!(&ScenarioSpec::parse(&scaled.label()).unwrap(), &scaled);
        prop_assert_eq!(&ScenarioSpec::from_json(&scaled.to_json()).unwrap(), &scaled);
    }

    /// Every key of a label — required or optional — is accepted at
    /// most once: appending a duplicate of *any* field makes the parse
    /// fail loudly instead of silently letting one value win. (The
    /// canonical-label property above makes aliasing impossible for
    /// emitted labels; this pins the behavior for hand-built ones.)
    #[test]
    fn duplicate_label_keys_are_rejected(
        n_good in 1usize..10_000,
        seed in any::<u64>(),
        churn in 0.0f64..0.45,
        drop in 0.001f64..1.0,
        lat in 1u64..1024,
        part in 1u64..1024,
        cap in 1u64..1u64 << 24,
        dup_value_from_label in any::<bool>(),
    ) {
        // Every optional knob is non-default, so all 24 codec keys
        // appear in the label and each one gets a duplication trial.
        let spec = ScenarioSpec::new(n_good, seed)
            .churn(churn)
            .kernel(KernelChoice::Arena)
            .capacity(cap as usize)
            .runtime(RuntimeChoice::Actor)
            .drop_rate(drop)
            .latency(lat)
            .partition(part);
        let label = spec.label();
        let fields: Vec<(&str, &str)> = label
            .split(';')
            .skip(1) // the `tg1` version tag
            .map(|f| f.split_once('=').expect("every label field is key=value"))
            .collect();
        prop_assert_eq!(fields.len(), 24, "label: {}", label);
        for (key, value) in &fields {
            // Duplicating with the same value must fail exactly like a
            // conflicting one — duplicates are rejected, not merged.
            let dup = if dup_value_from_label { value } else { "0" };
            let poisoned = format!("{label};{key}={dup}");
            let parsed = ScenarioSpec::parse(&poisoned);
            prop_assert!(parsed.is_err(), "duplicate `{}` accepted: {}", key, poisoned);
            let msg = format!("{:?}", parsed.unwrap_err());
            prop_assert!(
                msg.contains("duplicate field"),
                "duplicate `{}` rejected for the wrong reason: {}",
                key,
                msg
            );
        }
    }
}
