//! End-to-end transport equivalence through the actor runtime: a
//! scenario stepped over the loopback-TCP transport must produce the
//! same observation stream as the identical scenario over the
//! in-memory transport — under a perfect network *and* under every
//! fault-plan shape the e14 sweep exercises, and from inside a
//! `parallel_map` fan-out where many socket scenarios race.
//!
//! Both transports share `FaultPlan::fate`, so a given (seed, epoch,
//! phase, src, dst, seq) loses the same frames on the wire as in the
//! heap; the actor runtime on top therefore sees identical delivery
//! streams, and every capture/search/coverage observation follows.

use tg_core::scenario::{ObsRow, RuntimeChoice, ScenarioSpec, TransportChoice};
use tg_sim::parallel_map;

/// A small strategic scenario on the actor runtime with the given
/// fault knobs.
fn spec(drop: f64, lat: u64, part: u64) -> ScenarioSpec {
    ScenarioSpec::new(200, 42)
        .beta(0.12)
        .churn(0.15)
        .attack_requests(0)
        .searches(60)
        .runtime(RuntimeChoice::Actor)
        .drop_rate(drop)
        .latency(lat)
        .partition(part)
}

/// Step `epochs` epochs and return the observation rows in their
/// bit-exact encoded form (`ObsRow` has NaN-bearing optional columns,
/// so the encoded line — not a float compare — is the identity).
fn rows(spec: &ScenarioSpec, epochs: usize) -> Vec<String> {
    let mut driver = spec.build().expect("actor scenarios build");
    (0..epochs).map(|_| ObsRow::of(driver.step()).encode_line()).collect()
}

fn assert_observation_identical(drop: f64, lat: u64, part: u64) {
    let mem = rows(&spec(drop, lat, part).transport(TransportChoice::Mem), 3);
    let sock = rows(&spec(drop, lat, part).transport(TransportChoice::Socket), 3);
    assert_eq!(
        mem, sock,
        "actor observations diverged between transports at drop={drop} lat={lat} part={part}"
    );
}

/// Perfect network: the socket path must be byte-identical to the
/// in-memory path (which is itself pinned byte-identical to the
/// synchronous runtime by the golden suites).
#[test]
fn socket_actor_run_matches_mem_actor_run_on_perfect_network() {
    assert_observation_identical(0.0, 0, 0);
}

/// Every fault axis the e14 sweep drives, one at a time and combined.
#[test]
fn socket_actor_run_matches_mem_actor_run_under_faults() {
    assert_observation_identical(0.3, 0, 0);
    assert_observation_identical(0.0, 6, 0);
    assert_observation_identical(0.0, 0, 16);
    assert_observation_identical(0.4, 5, 24);
}

/// The same equivalence from inside a thread fan-out: one socket
/// scenario per worker, all binding loopback lanes concurrently, each
/// compared against its single-threaded in-memory twin.
#[test]
fn equivalence_holds_inside_parallel_map() {
    let cells = vec![(0.0, 0, 0), (0.3, 0, 0), (0.4, 5, 24), (0.2, 3, 8)];
    let expected: Vec<Vec<String>> = cells
        .iter()
        .map(|&(d, l, p)| rows(&spec(d, l, p).transport(TransportChoice::Mem), 2))
        .collect();
    let got =
        parallel_map(cells, |(d, l, p)| rows(&spec(d, l, p).transport(TransportChoice::Socket), 2));
    assert_eq!(got, expected, "socket scenarios diverged under concurrency");
}
