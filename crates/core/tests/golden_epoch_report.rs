//! Golden snapshot of the raw `EpochReport` structure — all fields,
//! full float precision (Debug prints shortest-roundtrip), including
//! the construction counters and message metrics the experiment CSVs
//! round away. This pins the dynamic-layer *implementation* (the bytes
//! predate the scenario API and must keep reproducing), so it lives
//! with the impl rather than in the experiments crate, whose suites
//! construct systems only through `ScenarioSpec`/`EpochDriver`.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test -p tg-core --test golden_epoch_report
//! ```

use tg_core::dynamic::{BuildMode, DynamicSystem, UniformProvider};
use tg_core::Params;
use tg_overlay::GraphKind;

#[test]
fn epoch_report_matches_golden() {
    let mut params = Params::paper_defaults();
    params.churn_rate = 0.1;
    params.attack_requests_per_id = 1;
    let mut provider = UniformProvider { n_good: 380, n_bad: 20 };
    let mut sys =
        DynamicSystem::new(params, GraphKind::D2B, BuildMode::DualGraph, &mut provider, 42);
    sys.searches_per_epoch = 200;
    let mut snapshot = String::new();
    for _ in 0..2 {
        let r = sys.advance_epoch(&mut provider);
        snapshot.push_str(&format!("{r:#?}\n"));
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/epoch_report_seed42.txt");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, snapshot).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e})", path.display()));
    assert_eq!(
        snapshot, expected,
        "EpochReport drifted from its golden snapshot; if the change is intentional, regenerate \
         with GOLDEN_REGEN=1 and commit the diff"
    );
}
