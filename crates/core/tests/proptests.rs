//! Property-based tests for the group layer's invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tg_core::dynamic::{BuildMode, DynamicSystem, UniformProvider};
use tg_core::{build_initial_graph, search_path, Color, Params, Population};
use tg_crypto::OracleFamily;
use tg_idspace::Id;
use tg_overlay::GraphKind;
use tg_sim::Metrics;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Color classification is consistent: a red group either lacks a
    /// good majority or is confused; a blue group has both properties.
    #[test]
    fn colors_match_definitions(seed in any::<u64>(), n_bad in 0usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::uniform(240, n_bad, &mut rng);
        let params = Params::paper_defaults();
        let gg = build_initial_graph(pop, GraphKind::Chord, OracleFamily::new(seed).h1, &params);
        for i in 0..gg.len() {
            let majority = gg.groups[i].has_good_majority(&gg.pool);
            match gg.color(i) {
                Color::Blue => prop_assert!(majority && !gg.confused[i]),
                Color::Red => prop_assert!(!majority || gg.confused[i]),
            }
        }
    }

    /// Search-path semantics: a successful search's route contains no red
    /// group; a failed search's truncated path is red exactly at its end.
    #[test]
    fn search_path_truncation_invariant(seed in any::<u64>(), n_bad in 0usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::uniform(220, n_bad, &mut rng);
        let params = Params::paper_defaults();
        let gg = build_initial_graph(pop, GraphKind::D2B, OracleFamily::new(seed).h1, &params);
        let mut m = Metrics::new();
        for _ in 0..12 {
            let from = rng.gen_range(0..gg.len());
            let key = Id(rng.gen());
            let route = gg.topology.route(gg.leaders.ring().at(from), key);
            let out = search_path(&gg, from, key, &mut m);
            let idx_of = |id: Id| gg.leaders.ring().index_of(id).expect("leader");
            match out {
                tg_core::SearchOutcome::Success { hops, .. } => {
                    prop_assert_eq!(hops, route.hops.len());
                    for &h in &route.hops {
                        prop_assert!(!gg.is_red(idx_of(h)));
                    }
                }
                tg_core::SearchOutcome::Fail { failed_at, hops, .. } => {
                    prop_assert_eq!(hops, failed_at + 1);
                    prop_assert!(gg.is_red(idx_of(route.hops[failed_at])));
                    for &h in &route.hops[..failed_at] {
                        prop_assert!(!gg.is_red(idx_of(h)));
                    }
                }
            }
        }
    }

    /// Message accounting is conserved: the per-search messages equal the
    /// sum over traversed edges of |G_i|·|G_{i+1}|.
    #[test]
    fn message_accounting_is_exact(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::uniform(200, 10, &mut rng);
        let params = Params::paper_defaults();
        let gg = build_initial_graph(pop, GraphKind::Chord, OracleFamily::new(seed).h1, &params);
        let from = rng.gen_range(0..gg.len());
        let key = Id(rng.gen());
        let route = gg.topology.route(gg.leaders.ring().at(from), key);
        let mut m = Metrics::new();
        let out = search_path(&gg, from, key, &mut m);
        let traversed = out.hops();
        let mut expect = 0u64;
        for pair in route.hops[..traversed].windows(2) {
            let a = gg.leaders.ring().index_of(pair[0]).unwrap();
            let b = gg.leaders.ring().index_of(pair[1]).unwrap();
            expect += (gg.group_size(a) * gg.group_size(b)) as u64;
        }
        prop_assert_eq!(out.msgs(), expect);
        prop_assert_eq!(m.routing_msgs, expect);
    }

    /// A dynamic epoch conserves population counts: every new graph has
    /// one group per new leader and members drawn from the previous
    /// generation.
    #[test]
    fn dynamic_epoch_structure(seed in any::<u64>()) {
        let mut params = Params::paper_defaults();
        params.churn_rate = 0.1;
        params.attack_requests_per_id = 0;
        let mut provider = UniformProvider { n_good: 150, n_bad: 8 };
        let mut sys =
            DynamicSystem::new(params, GraphKind::D2B, BuildMode::DualGraph, &mut provider, seed);
        sys.searches_per_epoch = 20;
        let pool_ring_before = sys.graphs[0].leaders.ring().clone();
        let _ = sys.advance_epoch(&mut provider);
        for g in &sys.graphs {
            prop_assert_eq!(g.len(), 158);
            prop_assert_eq!(g.pool.ring(), &pool_ring_before);
            for (i, group) in g.groups.iter().enumerate() {
                prop_assert_eq!(group.leader as usize, i);
                for &m in &group.members {
                    prop_assert!((m as usize) < g.pool.len());
                }
            }
        }
    }
}
