//! Property-based tests for the in-group agreement protocols.

use proptest::prelude::*;
use tg_ba::{eig_agreement, majority_value, phase_king, AdversaryMode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Phase King agreement + validity over random sizes, traitor
    /// placements, and adversary modes (t < n/4).
    #[test]
    fn phase_king_agreement_and_validity(
        n in 5usize..16,
        placement_seed in any::<u64>(),
        mode_sel in 0usize..3,
        unanimous in any::<bool>(),
    ) {
        let t = (n - 1) / 4;
        // Pseudo-random traitor placement.
        let mut bad = vec![false; n];
        let mut z = placement_seed;
        let mut placed = 0;
        while placed < t {
            z = z.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (z >> 33) as usize % n;
            if !bad[i] {
                bad[i] = true;
                placed += 1;
            }
        }
        let mode = match mode_sel {
            0 => AdversaryMode::Silent,
            1 => AdversaryMode::Equivocate { seed: placement_seed },
            _ => AdversaryMode::Collude { value: 0xE71D },
        };
        let inputs: Vec<u64> =
            (0..n as u64).map(|i| if unanimous { 42 } else { i % 3 }).collect();
        let out = phase_king(&inputs, &bad, mode);
        let agreed = out.agreed_value();
        prop_assert!(agreed.is_some(), "agreement (n={n}, t={t}, mode {mode:?})");
        if unanimous {
            prop_assert_eq!(agreed, Some(42), "validity");
        }
    }

    /// EIG agreement + validity for n ∈ {4..=7}, t = ⌊(n−1)/3⌋ ≤ 2.
    #[test]
    fn eig_agreement_and_validity(
        n in 4usize..8,
        traitor in 0usize..8,
        mode_sel in 0usize..3,
        unanimous in any::<bool>(),
    ) {
        let traitor = traitor % n;
        let bad: Vec<bool> = (0..n).map(|i| i == traitor).collect();
        let mode = match mode_sel {
            0 => AdversaryMode::Silent,
            1 => AdversaryMode::Equivocate { seed: traitor as u64 },
            _ => AdversaryMode::Collude { value: 999 },
        };
        let inputs: Vec<u64> =
            (0..n as u64).map(|i| if unanimous { 7 } else { i % 2 }).collect();
        let out = eig_agreement(&inputs, &bad, mode);
        let agreed = out.agreed_value();
        prop_assert!(agreed.is_some(), "agreement (n={n}, traitor {traitor})");
        if unanimous {
            prop_assert_eq!(agreed, Some(7), "validity");
        }
    }

    /// Majority filtering never invents values: the winner is always one
    /// of the claims.
    #[test]
    fn majority_never_invents(claims in prop::collection::vec(prop::option::of(0u64..6), 0..20)) {
        match majority_value(claims.iter().copied()) {
            None => prop_assert!(claims.iter().all(|c| c.is_none())),
            Some(v) => prop_assert!(claims.contains(&Some(v))),
        }
    }
}
