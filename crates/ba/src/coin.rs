//! A commit–reveal shared coin, with the rushing-adversary caveat.
//!
//! Groups need shared randomness (the paper cites robust random number
//! generation \[8\] as a canonical group task, and §IV's string protocol
//! consumes per-group randomness). The simple construction: every member
//! commits to a random share, then reveals; the coin is the XOR of valid
//! reveals. Commitments are agreed with one Phase King run per member
//! batch so equivocating commitments cannot split the group.
//!
//! The well-known weakness is faithfully modelled: a **rushing** adversary
//! reveals last and chooses *which* of its committed shares to reveal,
//! biasing the coin (each withheld share halves/flips candidate
//! outcomes). `commit_reveal_coin` exposes the bias so tests and
//! experiment E3's group-task costs quantify it honestly rather than
//! pretending the coin is perfect.

use crate::model::{check_group, AdversaryMode};
use rand::rngs::StdRng;
use rand::Rng;

/// Result of one shared-coin generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoinOutcome {
    /// The coin value all good members computed (they always agree — the
    /// reveal set is common knowledge after the exchange).
    pub coin: u64,
    /// How many Byzantine members withheld their reveal.
    pub withheld: usize,
    /// Messages exchanged (commit broadcast + reveal broadcast).
    pub msgs: u64,
}

/// Generate one shared coin in a group of size `n` with Byzantine mask
/// `bad`.
///
/// `target_bit`: when the adversary mode is `Collude`, it tries to force
/// the coin's low bit to `value & 1` by choosing which shares to reveal
/// (the rushing attack). Other modes reveal (`Honest`), withhold
/// everything (`Silent`), or reveal garbage that fails commitment
/// verification (`Equivocate` — equivalent to withholding, since good
/// members discard reveals that do not match the agreed commitment).
pub fn commit_reveal_coin(
    n: usize,
    bad: &[bool],
    mode: AdversaryMode,
    rng: &mut StdRng,
) -> CoinOutcome {
    let n_bad = check_group(n, bad);
    let mut msgs = 0u64;

    // Shares: good members draw locally; the adversary draws its shares
    // too (it must commit before seeing good reveals).
    let shares: Vec<u64> = (0..n).map(|_| rng.gen()).collect();

    // Commit round: each member broadcasts a binding commitment. We model
    // the binding property structurally (a reveal is checked against the
    // committed share). Broadcast = n messages per member.
    msgs += (n * n) as u64;

    // Reveal round. Good members reveal their committed shares.
    let good_xor: u64 = (0..n).filter(|&i| !bad[i]).map(|i| shares[i]).fold(0, |a, b| a ^ b);
    msgs += (0..n).filter(|&i| !bad[i]).count() as u64 * n as u64;

    // Rushing adversary: sees `good_xor` before choosing its reveals.
    let bad_shares: Vec<u64> = (0..n).filter(|&i| bad[i]).map(|i| shares[i]).collect();
    let (revealed, withheld) = match mode {
        AdversaryMode::Honest => (bad_shares.clone(), 0),
        AdversaryMode::Silent | AdversaryMode::Equivocate { .. } => (Vec::new(), n_bad),
        AdversaryMode::Collude { value } => {
            // Greedy subset choice: try to match the target low bit.
            let target = value & 1;
            let mut chosen: Vec<u64> = Vec::new();
            let mut acc = good_xor;
            for &s in &bad_shares {
                // Reveal s iff it moves (or keeps) the low bit toward the
                // target.
                if (acc ^ s) & 1 == target && acc & 1 != target {
                    acc ^= s;
                    chosen.push(s);
                }
            }
            let withheld = n_bad - chosen.len();
            (chosen, withheld)
        }
    };
    msgs += revealed.len() as u64 * n as u64;

    let coin = revealed.iter().fold(good_xor, |a, &b| a ^ b);
    CoinOutcome { coin, withheld, msgs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_good_coin_is_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 8;
        let bad = vec![false; n];
        let trials = 2000;
        let ones: usize = (0..trials)
            .map(|_| commit_reveal_coin(n, &bad, AdversaryMode::Honest, &mut rng))
            .filter(|c| c.coin & 1 == 1)
            .count();
        let frac = ones as f64 / trials as f64;
        assert!((0.45..0.55).contains(&frac), "low bit frequency {frac:.3}");
    }

    #[test]
    fn rushing_adversary_biases_low_bit() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 9;
        let bad: Vec<bool> = (0..n).map(|i| i < 3).collect(); // 3 bad shares
        let trials = 2000;
        let ones: usize = (0..trials)
            .map(|_| commit_reveal_coin(n, &bad, AdversaryMode::Collude { value: 1 }, &mut rng))
            .filter(|c| c.coin & 1 == 1)
            .count();
        let frac = ones as f64 / trials as f64;
        // The attack fails only when all 3 bad shares have even low bit
        // interplay: success probability 1 − 2⁻³ = 0.875.
        assert!(frac > 0.8, "bias failed: low-bit frequency {frac:.3}");
    }

    #[test]
    fn silent_adversary_cannot_block_the_coin() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 6;
        let bad: Vec<bool> = (0..n).map(|i| i < 2).collect();
        let out = commit_reveal_coin(n, &bad, AdversaryMode::Silent, &mut rng);
        assert_eq!(out.withheld, 2);
        // The coin still exists — good shares alone define it.
        // (Deterministic given the rng, nothing to assert beyond shape.)
        assert!(out.msgs >= (n * n) as u64);
    }

    #[test]
    fn message_cost_is_quadratic() {
        let mut rng = StdRng::seed_from_u64(4);
        let small = commit_reveal_coin(6, &[false; 6], AdversaryMode::Honest, &mut rng).msgs;
        let large = commit_reveal_coin(24, &[false; 24], AdversaryMode::Honest, &mut rng).msgs;
        let ratio = large as f64 / small as f64;
        assert!((12.0..20.0).contains(&ratio), "quadratic scaling, got ×{ratio:.1}");
    }

    #[test]
    fn honest_bad_members_are_indistinguishable() {
        // With AdversaryMode::Honest, the coin equals the XOR of all
        // shares — withholding count must be zero.
        let mut rng = StdRng::seed_from_u64(5);
        let bad: Vec<bool> = vec![true, false, false, false];
        let out = commit_reveal_coin(4, &bad, AdversaryMode::Honest, &mut rng);
        assert_eq!(out.withheld, 0);
    }
}
