//! The synchronous in-group model and adversary behaviours.

/// What the Byzantine members of a group do during a protocol run.
///
/// The paper's adversary perfectly coordinates all bad IDs, sees the
/// topology and all message contents, but not good IDs' local coin flips
/// (§I-C). These modes cover the behaviours the analysis cares about; the
/// pseudo-random equivocation uses its own seed so runs are reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryMode {
    /// Bad members follow the protocol (useful as a control).
    Honest,
    /// Bad members send nothing (crash/omission behaviour).
    Silent,
    /// Bad members send different pseudo-random values to different
    /// recipients in every round — maximal confusion.
    Equivocate {
        /// Seed for the deterministic lie stream.
        seed: u64,
    },
    /// Bad members consistently push one chosen value.
    Collude {
        /// The value pushed.
        value: u64,
    },
}

impl AdversaryMode {
    /// The value a bad member `from` sends to `to` in logical round
    /// `round` when an honest sender would send `honest`.
    pub fn send(&self, from: usize, to: usize, round: u64, honest: Option<u64>) -> Option<u64> {
        match *self {
            AdversaryMode::Honest => honest,
            AdversaryMode::Silent => None,
            AdversaryMode::Equivocate { seed } => {
                let mut z = seed
                    ^ (from as u64).wrapping_mul(0x9e3779b97f4a7c15)
                    ^ (to as u64).wrapping_mul(0xc2b2ae3d27d4eb4f)
                    ^ round.wrapping_mul(0x165667b19e3779f9);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                Some(z ^ (z >> 31))
            }
            AdversaryMode::Collude { value } => Some(value),
        }
    }
}

/// Result of one group agreement run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaOutcome {
    /// Decision of each member; `None` for Byzantine members (their
    /// "decisions" are meaningless).
    pub decisions: Vec<Option<u64>>,
    /// Messages sent during the run (each value relayed point-to-point
    /// counts once).
    pub msgs: u64,
    /// Synchronous rounds consumed.
    pub rounds: u64,
}

impl BaOutcome {
    /// Whether all good members decided the same value; returns it.
    pub fn agreed_value(&self) -> Option<u64> {
        let mut it = self.decisions.iter().flatten();
        let first = *it.next()?;
        if it.all(|&v| v == first) {
            Some(first)
        } else {
            None
        }
    }
}

/// Validate a `(n, bad)` group description; returns the number of bad
/// members.
pub(crate) fn check_group(n: usize, bad: &[bool]) -> usize {
    assert_eq!(bad.len(), n, "bad-mask length must equal group size");
    assert!(n >= 1, "empty group");
    bad.iter().filter(|&&b| b).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_mode_passes_through() {
        let m = AdversaryMode::Honest;
        assert_eq!(m.send(0, 1, 0, Some(7)), Some(7));
        assert_eq!(m.send(0, 1, 0, None), None);
    }

    #[test]
    fn silent_mode_omits() {
        assert_eq!(AdversaryMode::Silent.send(0, 1, 0, Some(7)), None);
    }

    #[test]
    fn equivocation_differs_per_recipient_and_round() {
        let m = AdversaryMode::Equivocate { seed: 1 };
        assert_ne!(m.send(0, 1, 0, None), m.send(0, 2, 0, None));
        assert_ne!(m.send(0, 1, 0, None), m.send(0, 1, 1, None));
        // ... but is deterministic.
        assert_eq!(m.send(0, 1, 0, None), m.send(0, 1, 0, None));
    }

    #[test]
    fn collusion_is_consistent() {
        let m = AdversaryMode::Collude { value: 99 };
        assert_eq!(m.send(0, 1, 0, Some(7)), Some(99));
        assert_eq!(m.send(3, 2, 5, None), Some(99));
    }

    #[test]
    fn agreed_value_detects_disagreement() {
        let ok = BaOutcome { decisions: vec![Some(1), None, Some(1)], msgs: 0, rounds: 0 };
        assert_eq!(ok.agreed_value(), Some(1));
        let bad = BaOutcome { decisions: vec![Some(1), Some(2)], msgs: 0, rounds: 0 };
        assert_eq!(bad.agreed_value(), None);
    }
}
