//! Exponential Information Gathering (EIG) agreement: `t < n/3`.
//!
//! The classic unauthenticated synchronous BA of Lamport–Shostak–Pease /
//! Bar-Noy et al.: `t+1` relay rounds build a tree of "who said that who
//! said …" values over labels of distinct members; decisions resolve the
//! tree bottom-up by recursive majority. Message *size* is exponential in
//! `t` — which is exactly why it is only practical for small groups, and
//! why the paper's exponential group-size reduction (`log n → log log n`)
//! matters: at `|G| = Θ(log log n)` even EIG's optimal `t < n/3`
//! resilience is affordable.

use crate::model::{check_group, AdversaryMode, BaOutcome};
use std::collections::HashMap;

/// Default value used when a relay is missing or no majority exists.
const DEFAULT: u64 = 0;

/// Run EIG agreement over a group.
///
/// Guarantees for `#bad < n/3`: agreement among good members, and
/// validity (unanimous good inputs are decided).
///
/// # Panics
/// Panics if `inputs` and `bad` disagree in length.
pub fn eig_agreement(inputs: &[u64], bad: &[bool], mode: AdversaryMode) -> BaOutcome {
    let n = inputs.len();
    let t = check_group(n, bad);
    let rounds = t + 1;
    let mut msgs = 0u64;

    // trees[i]: label (sequence of distinct member indices) → value that
    // member i recorded for that label. Label `[j, k]` reads "k said that
    // j said its input was …" (we append relayers at the end).
    let mut trees: Vec<HashMap<Vec<u8>, u64>> = vec![HashMap::new(); n];

    // Round 1: everyone broadcasts its input.
    for i in 0..n {
        for j in 0..n {
            let honest = Some(inputs[j]);
            let val = if bad[j] { mode.send(j, i, 1, honest) } else { honest };
            if let Some(v) = val {
                msgs += 1;
                if !bad[i] {
                    trees[i].insert(vec![j as u8], v);
                }
            }
        }
    }

    // Rounds 2..=t+1: relay the previous level.
    for r in 2..=rounds {
        // Snapshot the level each member will relay. A bad relayer lies
        // per-recipient via the adversary mode; to keep the lie stream
        // deterministic we key it on a label hash folded into the round.
        let level: Vec<Vec<(Vec<u8>, u64)>> = (0..n)
            .map(|j| {
                trees[j]
                    .iter()
                    .filter(|(label, _)| label.len() == r - 1 && !label.contains(&(j as u8)))
                    .map(|(label, &v)| (label.clone(), v))
                    .collect()
            })
            .collect();
        // Bad members relay every label of the right length, lying about
        // the value; they may also have received nothing (Silent senders
        // earlier), so reconstruct the label set from any good tree.
        let all_labels: Vec<Vec<u8>> = {
            let mut ls: Vec<Vec<u8>> = trees
                .iter()
                .enumerate()
                .filter(|(i, _)| !bad[*i])
                .flat_map(|(_, t)| t.keys().filter(|l| l.len() == r - 1).cloned())
                .collect();
            ls.sort_unstable();
            ls.dedup();
            ls
        };
        for i in 0..n {
            for j in 0..n {
                if bad[j] {
                    for label in &all_labels {
                        if label.contains(&(j as u8)) {
                            continue;
                        }
                        let lie_round = r as u64 * 1_000_003
                            + label
                                .iter()
                                .fold(0u64, |a, &b| a.wrapping_mul(257).wrapping_add(b as u64));
                        if let Some(v) = mode.send(j, i, lie_round, Some(DEFAULT)) {
                            msgs += 1;
                            if !bad[i] {
                                let mut new_label = label.clone();
                                new_label.push(j as u8);
                                trees[i].insert(new_label, v);
                            }
                        }
                    }
                } else {
                    for (label, v) in &level[j] {
                        msgs += 1;
                        if !bad[i] {
                            let mut new_label = label.clone();
                            new_label.push(j as u8);
                            trees[i].insert(new_label, *v);
                        }
                    }
                }
            }
        }
    }

    // Resolve bottom-up with recursive majority.
    let decisions: Vec<Option<u64>> = (0..n)
        .map(|i| {
            if bad[i] {
                None
            } else {
                let roots: Vec<u64> =
                    (0..n).map(|j| resolve(&trees[i], &[j as u8], n, rounds)).collect();
                Some(strict_majority(&roots).unwrap_or(DEFAULT))
            }
        })
        .collect();

    BaOutcome { decisions, msgs, rounds: rounds as u64 }
}

/// Resolve a label: leaves take their recorded value; internal labels take
/// the strict majority of their resolved children.
fn resolve(tree: &HashMap<Vec<u8>, u64>, label: &[u8], n: usize, rounds: usize) -> u64 {
    if label.len() == rounds {
        return tree.get(label).copied().unwrap_or(DEFAULT);
    }
    let mut children = Vec::with_capacity(n);
    for j in 0..n as u8 {
        if label.contains(&j) {
            continue;
        }
        let mut child = label.to_vec();
        child.push(j);
        children.push(resolve(tree, &child, n, rounds));
    }
    strict_majority(&children).unwrap_or(DEFAULT)
}

/// Strict majority of a slice, if one exists.
fn strict_majority(values: &[u64]) -> Option<u64> {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts.into_iter().find(|&(_, c)| 2 * c > values.len()).map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_good_unanimous() {
        let out = eig_agreement(&[9; 4], &[false; 4], AdversaryMode::Honest);
        assert_eq!(out.agreed_value(), Some(9));
        assert_eq!(out.rounds, 1, "t = 0 needs a single round");
    }

    #[test]
    fn validity_with_one_traitor() {
        // n = 4, t = 1: the minimal interesting Byzantine generals case.
        let bad = [true, false, false, false];
        for mode in [
            AdversaryMode::Silent,
            AdversaryMode::Equivocate { seed: 5 },
            AdversaryMode::Collude { value: 123 },
        ] {
            let out = eig_agreement(&[7; 4], &bad, mode);
            assert_eq!(out.agreed_value(), Some(7), "mode {mode:?}");
        }
    }

    #[test]
    fn agreement_with_two_traitors_in_seven() {
        let n = 7;
        let bad: Vec<bool> = (0..n).map(|i| i == 1 || i == 4).collect();
        let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
        for mode in [
            AdversaryMode::Silent,
            AdversaryMode::Equivocate { seed: 17 },
            AdversaryMode::Collude { value: 55 },
        ] {
            let out = eig_agreement(&inputs, &bad, mode);
            assert!(out.agreed_value().is_some(), "mode {mode:?}: {:?}", out.decisions);
        }
    }

    #[test]
    fn three_generals_with_traitor_is_the_classic_impossibility_regime() {
        // n = 3, t = 1 violates t < n/3; we only check termination — the
        // classic result says no protocol can guarantee agreement here.
        let out =
            eig_agreement(&[1, 2, 3], &[true, false, false], AdversaryMode::Equivocate { seed: 9 });
        assert!(out.decisions[1].is_some() && out.decisions[2].is_some());
    }

    #[test]
    fn message_count_grows_with_t() {
        let small = eig_agreement(&[1; 4], &[false; 4], AdversaryMode::Honest).msgs;
        let bad = [true, false, false, false];
        let larger = eig_agreement(&[1; 4], &bad, AdversaryMode::Honest).msgs;
        assert!(larger > small, "t = 1 adds a relay round: {larger} vs {small}");
    }

    #[test]
    fn agreement_across_seeds() {
        let n = 7;
        let inputs = [3, 3, 4, 4, 3, 4, 3];
        for seed in 0..10 {
            let bad: Vec<bool> = (0..n).map(|i| i == (seed % n) || i == ((seed + 3) % n)).collect();
            let out = eig_agreement(&inputs, &bad, AdversaryMode::Equivocate { seed: seed as u64 });
            assert!(out.agreed_value().is_some(), "seed {seed}");
        }
    }
}
