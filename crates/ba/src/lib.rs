//! # tg-ba
//!
//! In-group computation for the tiny-groups construction.
//!
//! The paper's groups "simulate a reliable processor" (§I): members run
//! Byzantine agreement — or more general secure computation — so that a
//! group with a good majority acts correctly as a unit, and inter-group
//! routing applies **majority filtering** to all-to-all exchanges. This
//! crate implements the group-internal machinery with exact message
//! accounting, which is what Corollary 1's `O(poly(log log n))`
//! group-communication claim is measured against (experiment E3):
//!
//! * [`majority`] — the majority filter applied by receivers of all-to-all
//!   inter-group traffic,
//! * [`mod@phase_king`] — Berman–Garay Phase King agreement (`t < n/4`,
//!   `O(t·n²)` messages, polynomial and the workhorse for cost
//!   measurements),
//! * [`eig`] — Exponential Information Gathering agreement (`t < n/3`,
//!   optimal resilience for unauthenticated synchronous BA, exponential
//!   message size — usable because tiny groups are *tiny*),
//! * [`coin`] — a commit–reveal shared coin (the "robust random number
//!   generation" group task of \[8\]), including the rushing-adversary bias
//!   attack that motivates guarded use.
//!
//! All protocols are synchronous (the model of §I-C) and parameterized by
//! an [`AdversaryMode`] controlling what Byzantine members send.

pub mod coin;
pub mod eig;
pub mod majority;
pub mod model;
pub mod phase_king;

pub use coin::{commit_reveal_coin, CoinOutcome};
pub use eig::eig_agreement;
pub use majority::{majority_filter, majority_value};
pub use model::{AdversaryMode, BaOutcome};
pub use phase_king::phase_king;
