//! Berman–Garay **Phase King** agreement: `t < n/4`, `O(t·n²)` messages.
//!
//! Each of `t+1` phases has two all-to-all rounds plus a broadcast by the
//! phase's *king*. A good member keeps its own majority candidate when the
//! candidate's support is overwhelming (`≥ n − t`), otherwise it adopts
//! the king's proposal. Any phase whose king is good aligns all good
//! members, and alignment then persists; with `t+1` distinct kings at
//! least one is good. Polynomial message complexity makes this the
//! workhorse for the group-communication cost measurements (E3); the
//! paper's group-size reduction shrinks each all-to-all round from
//! `Θ(log²n)` to `Θ((log log n)²)` messages.

use crate::majority::majority_value;
use crate::model::{check_group, AdversaryMode, BaOutcome};

/// Run Phase King over a group.
///
/// * `inputs[i]` — member `i`'s initial value (ignored for bad members),
/// * `bad[i]` — whether member `i` is Byzantine,
/// * `mode` — what Byzantine members send.
///
/// Guarantees (for `t = #bad < n/4`): **agreement** — all good members
/// decide the same value; **validity** — if all good members start with
/// the same value they decide it.
///
/// # Panics
/// Panics if `inputs` and `bad` disagree in length.
pub fn phase_king(inputs: &[u64], bad: &[bool], mode: AdversaryMode) -> BaOutcome {
    let n = inputs.len();
    let t = check_group(n, bad);
    let phases = t + 1;
    let mut v: Vec<u64> = inputs.to_vec();
    let mut msgs = 0u64;
    let mut rounds = 0u64;

    for phase in 0..phases {
        // Round A: universal exchange of current values.
        rounds += 1;
        let mut maj = vec![0u64; n];
        let mut cnt = vec![0usize; n];
        for i in 0..n {
            if bad[i] {
                continue; // bad members' local state is irrelevant
            }
            let mut received: Vec<Option<u64>> = Vec::with_capacity(n);
            for j in 0..n {
                let honest = Some(v[j]);
                let val = if bad[j] { mode.send(j, i, rounds, honest) } else { honest };
                if val.is_some() {
                    msgs += 1;
                }
                received.push(val);
            }
            let m = majority_value(received.iter().copied()).unwrap_or(0);
            let c = received.iter().flatten().filter(|&&x| x == m).count();
            maj[i] = m;
            cnt[i] = c;
        }
        // Good members always send; count their messages to bad members
        // too (they cannot tell who is bad).
        msgs +=
            (0..n).filter(|&j| !bad[j]).count() as u64 * bad.iter().filter(|&&b| b).count() as u64;

        // Round B: the king broadcasts its majority candidate.
        rounds += 1;
        let king = phase % n;
        for i in 0..n {
            if bad[i] {
                continue;
            }
            let king_val = if bad[king] {
                mode.send(king, i, rounds, Some(maj[king]))
            } else {
                Some(maj[king])
            };
            if king_val.is_some() {
                msgs += 1;
            }
            // Keep own candidate only with overwhelming support.
            v[i] = if cnt[i] >= n - t { maj[i] } else { king_val.unwrap_or(0) };
        }
    }

    BaOutcome {
        decisions: (0..n).map(|i| if bad[i] { None } else { Some(v[i]) }).collect(),
        msgs,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_bad(n: usize) -> Vec<bool> {
        vec![false; n]
    }

    /// Mark the first `t` members bad (kings of the early phases — the
    /// hardest placement, since bad kings get to steer first).
    fn first_bad(n: usize, t: usize) -> Vec<bool> {
        (0..n).map(|i| i < t).collect()
    }

    #[test]
    fn all_good_unanimous() {
        let out = phase_king(&[7; 9], &no_bad(9), AdversaryMode::Honest);
        assert_eq!(out.agreed_value(), Some(7));
    }

    #[test]
    fn all_good_mixed_inputs_agree() {
        let inputs = [1, 2, 3, 1, 2, 1, 1, 3, 2];
        let out = phase_king(&inputs, &no_bad(9), AdversaryMode::Honest);
        assert!(out.agreed_value().is_some());
    }

    #[test]
    fn validity_with_byzantine_minority() {
        // n = 9, t = 2 < 9/4: all good start with 5; they must decide 5.
        let n = 9;
        let bad = first_bad(n, 2);
        for mode in [
            AdversaryMode::Silent,
            AdversaryMode::Equivocate { seed: 3 },
            AdversaryMode::Collude { value: 666 },
        ] {
            let out = phase_king(&[5; 9], &bad, mode);
            assert_eq!(out.agreed_value(), Some(5), "mode {mode:?}");
        }
    }

    #[test]
    fn agreement_with_byzantine_minority_and_split_inputs() {
        // Good members split 4/3 between two values; agreement must still
        // hold for every adversary mode.
        let n = 9;
        let bad = first_bad(n, 2);
        let mut inputs = [0u64; 9];
        for (i, x) in inputs.iter_mut().enumerate() {
            *x = if i % 2 == 0 { 10 } else { 20 };
        }
        for mode in [
            AdversaryMode::Silent,
            AdversaryMode::Equivocate { seed: 11 },
            AdversaryMode::Collude { value: 666 },
        ] {
            let out = phase_king(&inputs, &bad, mode);
            assert!(out.agreed_value().is_some(), "mode {mode:?}: {:?}", out.decisions);
        }
    }

    #[test]
    fn agreement_across_bad_placements() {
        // Sweep which members are bad (including late kings).
        let n = 13; // t = 3
        let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
        for shift in 0..n {
            let bad: Vec<bool> = (0..n).map(|i| (i + shift) % n < 3).collect();
            let out = phase_king(&inputs, &bad, AdversaryMode::Equivocate { seed: shift as u64 });
            assert!(out.agreed_value().is_some(), "shift {shift}");
        }
    }

    #[test]
    fn message_complexity_is_quadratic_per_phase() {
        let n = 16;
        let out = phase_king(&[1; 16], &no_bad(16), AdversaryMode::Honest);
        // One phase would be n² + n; t = 0 so exactly one phase.
        assert_eq!(out.msgs, (n * n + n) as u64);
        assert_eq!(out.rounds, 2);
    }

    #[test]
    fn message_scaling_with_group_size() {
        // The Corollary-1 story in miniature: message cost grows
        // quadratically in |G|.
        let small = phase_king(&[1; 8], &no_bad(8), AdversaryMode::Honest).msgs;
        let large = phase_king(&[1; 32], &no_bad(32), AdversaryMode::Honest).msgs;
        let ratio = large as f64 / small as f64;
        assert!((14.0..20.0).contains(&ratio), "quadratic scaling, got ×{ratio:.1}");
    }

    #[test]
    fn beyond_quarter_threshold_can_fail_validity() {
        // Demonstration (not a guarantee): with t ≥ n/4 the protocol's
        // premise is void. We don't assert failure — just that the run
        // completes and documents the regime boundary.
        let n = 8;
        let bad = first_bad(n, 2); // t = 2 = n/4, at the boundary
        let out = phase_king(&[5; 8], &bad, AdversaryMode::Collude { value: 9 });
        // Either outcome is possible at the boundary; the protocol must
        // at least terminate with decisions for all good members.
        assert!(out.decisions.iter().enumerate().all(|(i, d)| bad[i] || d.is_some()));
    }

    #[test]
    fn single_member_group() {
        let out = phase_king(&[3], &[false], AdversaryMode::Honest);
        assert_eq!(out.agreed_value(), Some(3));
    }
}
