//! Majority filtering — the primitive behind secure inter-group routing.
//!
//! When groups `G1 → G2` exchange all-to-all, each good member of `G2`
//! receives one claimed value per member of `G1` and keeps the most
//! frequent one. If `G1` has a good majority and its good members agree,
//! the filtered value is correct no matter what the bad members send
//! (§I, first bullet).

use std::collections::HashMap;

/// The most frequent present value, ties broken toward the smallest value
/// (a deterministic rule so all good receivers filter identically).
/// Returns `None` when no value is present.
pub fn majority_value(values: impl IntoIterator<Item = Option<u64>>) -> Option<u64> {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for v in values.into_iter().flatten() {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0))).map(|(v, _)| v)
}

/// Majority-filter an all-to-all exchange: `claims[i]` is what sender `i`
/// delivered (or `None` for an omission). Also reports whether the
/// winning value achieved a strict majority of the *group size* (not just
/// of present values) — the condition under which correctness is
/// guaranteed by a good-majority sender group.
pub fn majority_filter(claims: &[Option<u64>]) -> (Option<u64>, bool) {
    let winner = majority_value(claims.iter().copied());
    match winner {
        None => (None, false),
        Some(v) => {
            let count = claims.iter().flatten().filter(|&&x| x == v).count();
            (Some(v), 2 * count > claims.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_majority() {
        assert_eq!(majority_value([Some(3), Some(3), Some(5)]), Some(3));
    }

    #[test]
    fn ties_break_to_smaller() {
        assert_eq!(majority_value([Some(9), Some(2), Some(9), Some(2)]), Some(2));
    }

    #[test]
    fn omissions_ignored() {
        assert_eq!(majority_value([None, Some(4), None, Some(4), Some(1)]), Some(4));
    }

    #[test]
    fn empty_and_all_omitted() {
        assert_eq!(majority_value([]), None);
        assert_eq!(majority_value([None, None]), None);
    }

    #[test]
    fn strict_majority_flag() {
        // 3 of 5 agree: strict majority of group size.
        let (v, strict) = majority_filter(&[Some(1), Some(1), Some(1), Some(2), None]);
        assert_eq!(v, Some(1));
        assert!(strict);
        // 2 of 5 agree, rest split/omitted: winner but not strict.
        let (v, strict) = majority_filter(&[Some(1), Some(1), Some(2), None, None]);
        assert_eq!(v, Some(1));
        assert!(!strict);
    }

    /// The routing guarantee: with a good-majority sender group whose good
    /// members all send the true value, no Byzantine strategy changes the
    /// filtered result.
    #[test]
    fn good_majority_beats_any_lie() {
        let truth = 42u64;
        let n = 9;
        let bad = 4; // minority
        for lie_style in 0..3 {
            let mut claims: Vec<Option<u64>> = vec![Some(truth); n - bad];
            for b in 0..bad {
                claims.push(match lie_style {
                    0 => None,                  // omit
                    1 => Some(7),               // collude on one lie
                    _ => Some(1000 + b as u64), // scatter distinct lies
                });
            }
            let (v, strict) = majority_filter(&claims);
            assert_eq!(v, Some(truth), "lie style {lie_style}");
            assert!(strict, "lie style {lie_style}");
        }
    }

    /// The failure mode the paper's ε accounts for: a bad-majority group
    /// can make the filter emit anything.
    #[test]
    fn bad_majority_controls_output() {
        let claims = [Some(666), Some(666), Some(666), Some(42), Some(42)];
        let (v, strict) = majority_filter(&claims);
        assert_eq!(v, Some(666));
        assert!(strict, "a colluding bad majority even looks strict");
    }
}
