//! The domain-separated random-oracle family.
//!
//! The paper uses several independent hash functions, all modelled as
//! random oracles with range `[0,1)`:
//!
//! | Oracle | Paper role |
//! |---|---|
//! | `h1`   | membership of group graph 1: member `i` of `G_w` is `suc(h1(w,i))` (§III-A) |
//! | `h2`   | membership of group graph 2 (§III-A) |
//! | `g`    | puzzle predicate: `σ` valid iff `g(σ ⊕ r) ≤ τ` (§IV-A) |
//! | `f`    | ID extraction: the minted ID is `f(g(σ ⊕ r))` (§IV-A) |
//! | `h`    | string scoring in the propagation protocol (App. VIII) |
//!
//! Independence is obtained by **domain separation**: every oracle prefixes
//! its input with a distinct tag before hashing, so a single SHA-256 core
//! yields a family of oracles that behave independently (the standard
//! random-oracle cloning construction). An additional per-system `instance`
//! seed lets simulations draw fresh, mutually independent oracle families —
//! one per trial — so that repetitions are honest i.i.d. samples.

use crate::sha256::Sha256;
use tg_idspace::Id;

/// A single random oracle `{byte strings} → [0,1)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Oracle {
    /// Domain-separation tag; distinct tags give independent oracles.
    tag: u64,
    /// Simulation instance seed; distinct instances give independent
    /// oracle families.
    instance: u64,
}

impl Oracle {
    /// An oracle with the given tag in the given instance.
    pub fn new(instance: u64, tag: u64) -> Self {
        Oracle { tag, instance }
    }

    fn base(&self) -> Sha256 {
        let mut h = Sha256::new();
        h.update(b"tiny-groups/ro/v1");
        h.update_u64(self.instance);
        h.update_u64(self.tag);
        h
    }

    /// Hash raw bytes to a ring point.
    pub fn hash_bytes(&self, data: &[u8]) -> Id {
        let mut h = self.base();
        h.update(data);
        digest_to_id(h.finalize())
    }

    /// Hash a ring point to a ring point (the `f(·)` and `g(·)` shapes of
    /// §IV use `[0,1)` for both domain and range).
    pub fn hash_id(&self, x: Id) -> Id {
        let mut h = self.base();
        h.update_u64(x.raw());
        digest_to_id(h.finalize())
    }

    /// Hash an `(ID, index)` pair — the `h1(w, i)` / `h2(w, i)` shape used
    /// for group membership.
    pub fn hash_id_index(&self, w: Id, i: u32) -> Id {
        let mut h = self.base();
        h.update_u64(w.raw());
        h.update(&i.to_be_bytes());
        digest_to_id(h.finalize())
    }

    /// Hash a pair of 64-bit words (e.g. `σ ⊕ r` split across words, or a
    /// string identifier) to a ring point.
    pub fn hash_u64_pair(&self, a: u64, b: u64) -> Id {
        let mut h = self.base();
        h.update_u64(a);
        h.update_u64(b);
        digest_to_id(h.finalize())
    }

    /// Hash a single 64-bit word to a ring point.
    pub fn hash_u64(&self, a: u64) -> Id {
        let mut h = self.base();
        h.update_u64(a);
        digest_to_id(h.finalize())
    }
}

/// Interpret the first 8 digest bytes as a ring point.
fn digest_to_id(d: [u8; 32]) -> Id {
    Id(u64::from_be_bytes(d[..8].try_into().expect("8 bytes")))
}

/// The full oracle family of one simulated system instance.
///
/// Construct one per trial with a fresh `instance` seed: all oracles in the
/// family are mutually independent, and families from different seeds are
/// independent of each other.
#[derive(Clone, Copy, Debug)]
pub struct OracleFamily {
    /// `h1` — membership for group graph 1.
    pub h1: Oracle,
    /// `h2` — membership for group graph 2.
    pub h2: Oracle,
    /// `f` — ID extraction from puzzle solutions.
    pub f: Oracle,
    /// `g` — puzzle threshold predicate.
    pub g: Oracle,
    /// `h` — string scoring for the propagation protocol.
    pub h: Oracle,
}

impl OracleFamily {
    /// The oracle family for a simulation instance.
    pub fn new(instance: u64) -> Self {
        OracleFamily {
            h1: Oracle::new(instance, 0x6831), // "h1"
            h2: Oracle::new(instance, 0x6832), // "h2"
            f: Oracle::new(instance, 0x66),    // "f"
            g: Oracle::new(instance, 0x67),    // "g"
            h: Oracle::new(instance, 0x68),    // "h"
        }
    }

    /// The membership oracle for group-graph side `side` (0 → `h1`,
    /// 1 → `h2`), matching the paper's use of a different hash per graph.
    pub fn membership(&self, side: usize) -> Oracle {
        match side {
            0 => self.h1,
            1 => self.h2,
            _ => panic!("there are exactly two group graphs per epoch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let fam = OracleFamily::new(42);
        let w = Id::from_f64(0.123);
        assert_eq!(fam.h1.hash_id_index(w, 3), fam.h1.hash_id_index(w, 3));
        assert_eq!(fam.f.hash_id(w), fam.f.hash_id(w));
    }

    #[test]
    fn oracles_are_distinct() {
        let fam = OracleFamily::new(42);
        let w = Id::from_f64(0.123);
        let outs = [
            fam.h1.hash_id(w),
            fam.h2.hash_id(w),
            fam.f.hash_id(w),
            fam.g.hash_id(w),
            fam.h.hash_id(w),
        ];
        for i in 0..outs.len() {
            for j in i + 1..outs.len() {
                assert_ne!(outs[i], outs[j], "oracles {i} and {j} collided");
            }
        }
    }

    #[test]
    fn instances_are_distinct() {
        let w = Id::from_f64(0.5);
        let a = OracleFamily::new(1).h1.hash_id(w);
        let b = OracleFamily::new(2).h1.hash_id(w);
        assert_ne!(a, b);
    }

    #[test]
    fn index_matters() {
        let fam = OracleFamily::new(7);
        let w = Id::from_f64(0.9);
        assert_ne!(fam.h1.hash_id_index(w, 0), fam.h1.hash_id_index(w, 1));
    }

    #[test]
    fn outputs_look_uniform() {
        // Coarse uniformity check: bucket 4096 outputs into 16 bins; each
        // bin expectation is 256, and a deviation beyond ±50% would signal
        // a broken digest-to-ring mapping.
        let fam = OracleFamily::new(99);
        let mut bins = [0usize; 16];
        for i in 0..4096u64 {
            let x = fam.h.hash_u64(i);
            bins[(x.raw() >> 60) as usize] += 1;
        }
        for (b, &count) in bins.iter().enumerate() {
            assert!((128..=384).contains(&count), "bin {b} wildly off uniform: {count}");
        }
    }

    #[test]
    fn membership_selector() {
        let fam = OracleFamily::new(5);
        assert_eq!(fam.membership(0), fam.h1);
        assert_eq!(fam.membership(1), fam.h2);
    }

    #[test]
    #[should_panic(expected = "exactly two group graphs")]
    fn membership_selector_rejects_bad_side() {
        let fam = OracleFamily::new(5);
        let _ = fam.membership(2);
    }
}
