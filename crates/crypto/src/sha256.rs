//! SHA-256 from scratch, per FIPS 180-4.
//!
//! The paper instantiates its random oracles with "a cryptographic hash
//! function, such as SHA-2 \[40\]". We implement SHA-256 directly rather than
//! pulling a dependency: the implementation is ~150 lines, it keeps the
//! workspace's trust base explicit, and the unit tests pin it to the NIST
//! vectors so the protocol layers above can rely on exact, portable output.

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use tg_crypto::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), tg_crypto::sha256(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered awaiting a full 64-byte block.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buf: [0u8; 64], buf_len: 0, total_len: 0 }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        // Top up a partial block first.
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            rest = tail;
        }
        // Buffer the remainder.
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Convenience: absorb a `u64` big-endian.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_be_bytes());
    }

    /// Finish and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit message length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` would recount the length bytes, so splice them manually.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte word"));
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16].wrapping_add(s0).wrapping_add(w[t - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(big_s1).wrapping_add(ch).wrapping_add(K[t]).wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // NIST FIPS 180-4 / CAVP example vectors.
    #[test]
    fn nist_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block() {
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_four_block() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(&sha256(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn nist_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let msg: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let expect = sha256(&msg);
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn incremental_byte_by_byte() {
        let msg = b"The quick brown fox jumps over the lazy dog";
        let mut h = Sha256::new();
        for &b in msg.iter() {
            h.update(&[b]);
        }
        assert_eq!(
            hex(&h.finalize()),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 56-byte padding boundary exercise the
        // two-block finalization path.
        for len in 54..=66usize {
            let msg = vec![0x5au8; len];
            let d1 = sha256(&msg);
            let mut h = Sha256::new();
            h.update(&msg);
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}
