//! # tg-crypto
//!
//! The hashing substrate for the tiny-groups construction.
//!
//! The paper assumes the **random oracle model** (§I-C, citing Bellare &
//! Rogaway): hash functions whose outputs are uniform on first query, and
//! suggests SHA-2 as the practical instantiation. This crate provides:
//!
//! * [`mod@sha256`] — a from-scratch FIPS 180-4 SHA-256 implementation
//!   (validated against the NIST test vectors in the unit tests),
//! * [`oracle`] — the domain-separated random-oracle family used by the
//!   protocols:
//!   * `h1`, `h2` — group-membership hashes (§III-A): member `i` of group
//!     `G_w` is `suc(h1(w, i))` in the first group graph and
//!     `suc(h2(w, i))` in the second,
//!   * `f`, `g` — the ID-minting pair (§IV-A): a solution `σ` is valid when
//!     `g(σ ⊕ r) ≤ τ`, and the ID is `f(g(σ ⊕ r))`,
//!   * `h` — the string-scoring hash of the propagation protocol
//!     (Appendix VIII).
//!
//! All oracle outputs live on the unit ring as [`tg_idspace::Id`] values
//! (the paper's `[0,1)` domain), taken from the first 8 bytes of the
//! SHA-256 digest.

pub mod oracle;
pub mod sha256;

pub use oracle::{Oracle, OracleFamily};
pub use sha256::{sha256, Sha256};
