//! Property-based tests for the hashing substrate.

use proptest::prelude::*;
use tg_crypto::{sha256, OracleFamily, Sha256};
use tg_idspace::Id;

proptest! {
    /// Incremental hashing equals one-shot for every split of every
    /// message.
    #[test]
    fn incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..512),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Multi-chunk absorption equals one-shot.
    #[test]
    fn chunked_equals_oneshot(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..100), 0..8),
    ) {
        let mut h = Sha256::new();
        let mut all = Vec::new();
        for c in &chunks {
            h.update(c);
            all.extend_from_slice(c);
        }
        prop_assert_eq!(h.finalize(), sha256(&all));
    }

    /// Distinct single-block inputs never collide (a collision here would
    /// be a broken implementation, not a cryptographic event).
    #[test]
    fn no_trivial_collisions(a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        prop_assume!(a != b);
        prop_assert_ne!(sha256(&a), sha256(&b));
    }

    /// Oracle outputs are deterministic and domain-separated: the same
    /// input under different family members differs.
    #[test]
    fn oracle_determinism_and_separation(instance in any::<u64>(), x in any::<u64>()) {
        let fam = OracleFamily::new(instance);
        let id = Id(x);
        prop_assert_eq!(fam.h1.hash_id(id), fam.h1.hash_id(id));
        prop_assert_ne!(fam.h1.hash_id(id), fam.h2.hash_id(id));
        prop_assert_ne!(fam.f.hash_id(id), fam.g.hash_id(id));
    }

    /// `hash_id_index` is injective-in-practice over small index ranges
    /// (no accidental aliasing between (w, i) pairs).
    #[test]
    fn index_pairs_do_not_alias(w in any::<u64>(), i in 0u32..64, j in 0u32..64) {
        prop_assume!(i != j);
        let fam = OracleFamily::new(7);
        prop_assert_ne!(
            fam.h1.hash_id_index(Id(w), i),
            fam.h1.hash_id_index(Id(w), j)
        );
    }
}
