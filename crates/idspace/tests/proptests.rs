//! Property-based tests for the ring ID space.

use proptest::prelude::*;
use tg_idspace::{Id, RingDistance, RingInterval, SortedRing};

proptest! {
    /// Clockwise and counter-clockwise distances sum to a full turn for
    /// distinct points.
    #[test]
    fn cw_ccw_distances_complement(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let (a, b) = (Id(a), Id(b));
        let cw = a.distance_cw(b).0 as u128;
        let ccw = b.distance_cw(a).0 as u128;
        prop_assert_eq!(cw + ccw, 1u128 << 64);
    }

    /// add/sub by the same distance is the identity.
    #[test]
    fn add_sub_inverse(a in any::<u64>(), d in any::<u64>()) {
        let id = Id(a);
        let dist = RingDistance(d);
        prop_assert_eq!(id.add(dist).sub(dist), id);
        prop_assert_eq!(id.sub(dist).add(dist), id);
    }

    /// distance is translation-invariant.
    #[test]
    fn distance_translation_invariant(a in any::<u64>(), b in any::<u64>(), t in any::<u64>()) {
        let (a, b, t) = (Id(a), Id(b), RingDistance(t));
        prop_assert_eq!(a.distance_cw(b), a.add(t).distance_cw(b.add(t)));
    }

    /// half_left and half_right are the two preimages of doubling.
    #[test]
    fn halving_are_doubling_preimages(a in any::<u64>()) {
        let x = Id(a);
        // Doubling loses the top bit; halving loses the bottom bit. The
        // composition double∘half recovers x up to its lowest bit.
        prop_assert_eq!(x.half_left().double().0, x.0 & !1);
        prop_assert_eq!(x.half_right().double().0, x.0 & !1);
    }

    /// The successor of any point is on the ring, and no ID lies strictly
    /// between the point and its successor.
    #[test]
    fn successor_is_nearest_clockwise(
        ids in prop::collection::btree_set(any::<u64>(), 1..200),
        probe in any::<u64>(),
    ) {
        let ring = SortedRing::new(ids.iter().map(|&v| Id(v)).collect());
        let probe = Id(probe);
        let suc = ring.successor(probe);
        prop_assert!(ring.contains(suc));
        let d = probe.distance_cw(suc);
        for &v in &ids {
            let dv = probe.distance_cw(Id(v));
            prop_assert!(dv >= d, "ID {v} is closer clockwise than the successor");
        }
    }

    /// Responsibility intervals partition the ring: every probe key is
    /// owned by exactly one ID, and that ID is its successor.
    #[test]
    fn responsibilities_partition(
        ids in prop::collection::btree_set(any::<u64>(), 2..100),
        probe in any::<u64>(),
    ) {
        let ring = SortedRing::new(ids.iter().map(|&v| Id(v)).collect());
        let probe = Id(probe);
        let owners: Vec<usize> = (0..ring.len())
            .filter(|&i| ring.responsibility_of(i).contains(probe))
            .collect();
        prop_assert_eq!(owners.len(), 1, "exactly one owner per key");
        prop_assert_eq!(ring.at(owners[0]), ring.successor(probe));
    }

    /// Interval intersection is symmetric.
    #[test]
    fn interval_intersection_symmetric(
        a in any::<u64>(), la in 1u64.., b in any::<u64>(), lb in 1u64..,
    ) {
        let i1 = RingInterval::new(Id(a), RingDistance(la));
        let i2 = RingInterval::new(Id(b), RingDistance(lb));
        prop_assert_eq!(i1.intersects(&i2), i2.intersects(&i1));
    }

    /// Membership in an interval is equivalent to membership in either
    /// half after splitting at the midpoint.
    #[test]
    fn interval_split_preserves_membership(
        start in any::<u64>(), len in 2u64.., x in any::<u64>(),
    ) {
        let iv = RingInterval::new(Id(start), RingDistance(len));
        let mid = Id(start).add(RingDistance(len / 2));
        let left = RingInterval::between(Id(start), mid);
        let right = RingInterval::between(mid, iv.end());
        let x = Id(x);
        prop_assert_eq!(iv.contains(x), left.contains(x) || right.contains(x));
    }

    /// Gaps of a ring always sum to exactly one full turn.
    #[test]
    fn gaps_sum_to_full_turn(ids in prop::collection::btree_set(any::<u64>(), 2..300)) {
        let ring = SortedRing::new(ids.into_iter().map(Id).collect());
        let total: u128 = ring.gaps().map(|(_, g)| g.0 as u128).sum();
        prop_assert_eq!(total, 1u128 << 64);
    }
}
