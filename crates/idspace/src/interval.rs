//! Half-open clockwise arcs `[a, b)` on the unit ring.

use crate::id::{Id, RingDistance};

/// A half-open clockwise interval `[start, start + len)` on the unit ring.
///
/// Intervals are represented by their start point and clockwise length, so
/// wrap-around arcs are first-class: the arc `[0.9, 0.1)` has start `0.9`
/// and length `0.2`. The paper uses such arcs for node segments in the
/// continuous-discrete constructions, for the bins of the string-propagation
/// protocol, and for the "well-spread placement" argument of Lemma 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RingInterval {
    start: Id,
    len: RingDistance,
}

impl RingInterval {
    /// The interval `[start, start + len)`.
    #[inline]
    pub fn new(start: Id, len: RingDistance) -> Self {
        RingInterval { start, len }
    }

    /// The interval from `start` clockwise to `end` (exclusive). If
    /// `start == end` the interval is empty (use [`RingInterval::full`] for
    /// the whole ring).
    #[inline]
    pub fn between(start: Id, end: Id) -> Self {
        RingInterval { start, len: start.distance_cw(end) }
    }

    /// The whole ring, anchored at `start`. Represented with the maximal
    /// distance, so it excludes a single ulp; for all practical predicates
    /// this is the full ring.
    #[inline]
    pub fn full(start: Id) -> Self {
        RingInterval { start, len: RingDistance::MAX }
    }

    /// Interval start (inclusive end of the arc).
    #[inline]
    pub fn start(&self) -> Id {
        self.start
    }

    /// Clockwise length.
    #[inline]
    pub fn len(&self) -> RingDistance {
        self.len
    }

    /// Whether the interval is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == RingDistance::ZERO
    }

    /// The exclusive end point `start + len`.
    #[inline]
    pub fn end(&self) -> Id {
        self.start.add(self.len)
    }

    /// Whether `x` lies in `[start, start + len)`.
    #[inline]
    pub fn contains(&self, x: Id) -> bool {
        self.start.distance_cw(x).0 < self.len.0
    }

    /// Whether this interval and `other` share at least one point.
    pub fn intersects(&self, other: &RingInterval) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.contains(other.start) || other.contains(self.start)
    }

    /// The image of this interval under the doubling map `x ↦ 2x mod 1`.
    ///
    /// If the interval covers at least half the ring the image is the whole
    /// ring. Otherwise the image is the arc of doubled length starting at
    /// the doubled start point.
    pub fn double(&self) -> RingInterval {
        if self.len.0 >= 1u64 << 63 {
            RingInterval::full(self.start.double())
        } else {
            RingInterval { start: self.start.double(), len: RingDistance(self.len.0 << 1) }
        }
    }

    /// The left-half image under `x ↦ x/2`: an arc of half the length
    /// starting at `start/2`.
    pub fn half_left(&self) -> RingInterval {
        RingInterval { start: self.start.half_left(), len: self.len.halved() }
    }

    /// The right-half image under `x ↦ x/2 + 1/2`.
    pub fn half_right(&self) -> RingInterval {
        RingInterval { start: self.start.half_right(), len: self.len.halved() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: f64, b: f64) -> RingInterval {
        RingInterval::between(Id::from_f64(a), Id::from_f64(b))
    }

    #[test]
    fn contains_basic() {
        let i = iv(0.2, 0.5);
        assert!(i.contains(Id::from_f64(0.2)), "closed at start");
        assert!(i.contains(Id::from_f64(0.49)));
        assert!(!i.contains(Id::from_f64(0.5)), "open at end");
        assert!(!i.contains(Id::from_f64(0.7)));
    }

    #[test]
    fn contains_wrapping() {
        let i = iv(0.9, 0.1);
        assert!(i.contains(Id::from_f64(0.95)));
        assert!(i.contains(Id::from_f64(0.05)));
        assert!(i.contains(Id::ZERO));
        assert!(!i.contains(Id::from_f64(0.5)));
        assert!((i.len().as_f64() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_interval_contains_nothing() {
        let i = iv(0.3, 0.3);
        assert!(i.is_empty());
        assert!(!i.contains(Id::from_f64(0.3)));
        assert!(!i.contains(Id::from_f64(0.4)));
    }

    #[test]
    fn intersections() {
        assert!(iv(0.1, 0.4).intersects(&iv(0.3, 0.6)));
        assert!(!iv(0.1, 0.3).intersects(&iv(0.3, 0.6)), "half-open arcs touch but do not overlap");
        assert!(iv(0.8, 0.2).intersects(&iv(0.1, 0.15)), "wrap case");
        assert!(iv(0.8, 0.2).intersects(&iv(0.9, 0.95)));
        assert!(!iv(0.8, 0.2).intersects(&iv(0.3, 0.5)));
        // Nested intervals intersect.
        assert!(iv(0.1, 0.9).intersects(&iv(0.4, 0.5)));
        assert!(iv(0.4, 0.5).intersects(&iv(0.1, 0.9)));
    }

    #[test]
    fn doubling_image() {
        let i = iv(0.3, 0.4); // len 0.1
        let d = i.double();
        assert!((d.start().as_f64() - 0.6).abs() < 1e-9);
        assert!((d.len().as_f64() - 0.2).abs() < 1e-9);
        // Points map consistently: x in I implies 2x in double(I).
        let x = Id::from_f64(0.35);
        assert!(i.contains(x));
        assert!(d.contains(x.double()));
    }

    #[test]
    fn doubling_saturates_to_full_ring() {
        let i = iv(0.1, 0.8); // len 0.7 >= 1/2
        let d = i.double();
        assert!(d.contains(Id::from_f64(0.123)));
        assert!(d.contains(Id::from_f64(0.99)));
    }

    #[test]
    fn halving_images() {
        let i = iv(0.4, 0.6); // len 0.2
        let l = i.half_left();
        let r = i.half_right();
        assert!((l.start().as_f64() - 0.2).abs() < 1e-9);
        assert!((l.len().as_f64() - 0.1).abs() < 1e-9);
        assert!((r.start().as_f64() - 0.7).abs() < 1e-9);
        // x in I implies x/2 in half_left(I) and x/2 + 1/2 in half_right(I).
        let x = Id::from_f64(0.5);
        assert!(l.contains(x.half_left()));
        assert!(r.contains(x.half_right()));
    }
}
